/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the library: generate a graph with a
/// prescribed degree sequence, randomize it with the parallel global edge
/// switching chain (ParGlobalES), and verify the degrees are untouched.
///
///   ./examples/quickstart [n] [gamma] [supersteps]
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "graph/degree_sequence.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <cstdlib>
#include <iostream>

using namespace gesmc;

int main(int argc, char** argv) {
    const node_t n = argc > 1 ? static_cast<node_t>(std::atoi(argv[1])) : 20000;
    const double gamma = argc > 2 ? std::atof(argv[2]) : 2.2;
    const std::uint64_t supersteps = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;

    std::cout << "1. Build an initial graph with a power-law degree sequence\n"
              << "   (Pld([1..n^(1/(gamma-1))], gamma) realized by Havel-Hakimi):\n";
    const EdgeList initial = generate_powerlaw_graph(n, gamma, /*seed=*/42);
    const DegreeSequence degrees = degree_sequence_of(initial);
    std::cout << "   n = " << initial.num_nodes() << ", m = " << initial.num_edges()
              << ", max degree = " << degrees.max_degree() << "\n\n";

    std::cout << "2. Randomize with G-ES-MC (ParGlobalES), " << supersteps
              << " global switches:\n";
    ChainConfig config;
    config.seed = 1;
    config.threads = hardware_threads();
    auto chain = make_chain(ChainAlgorithm::kParGlobalES, initial, config);
    Timer timer;
    chain->run_supersteps(supersteps);
    const double secs = timer.elapsed_s();

    const auto& st = chain->stats();
    std::cout << "   " << st.attempted << " switches attempted, " << st.accepted
              << " accepted (" << fmt_double(100.0 * st.accepted / st.attempted, 1)
              << "%), " << st.rejected_loop << " loop / " << st.rejected_edge
              << " multi-edge rejections\n"
              << "   mean rounds per global switch: "
              << fmt_double(double(st.rounds_total) / double(st.supersteps), 2) << "\n"
              << "   wall time: " << fmt_seconds(secs) << " ("
              << fmt_si(double(st.attempted) / secs) << " switches/s)\n\n";

    std::cout << "3. Verify the sample:\n";
    const EdgeList& randomized = chain->graph();
    const bool degrees_ok = randomized.degrees() == degrees.degrees();
    std::cout << "   simple: " << (randomized.is_simple() ? "yes" : "NO!")
              << ", degrees preserved: " << (degrees_ok ? "yes" : "NO!")
              << ", graph changed: " << (randomized.same_graph(initial) ? "NO!" : "yes")
              << "\n";
    return (randomized.is_simple() && degrees_ok) ? 0 : 1;
}
