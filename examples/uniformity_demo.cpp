/// \file uniformity_demo.cpp
/// \brief Theorem 1 made visible: on a degree sequence whose realization
/// space is small enough to enumerate, run G-ES-MC many times and compare
/// the empirical state frequencies with the uniform distribution.
///
///   ./examples/uniformity_demo [runs]
#include "core/chain.hpp"
#include "gen/configuration_model.hpp"
#include "util/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <numeric>
#include <vector>

using namespace gesmc;

namespace {

/// All simple realizations of d = (2,2,2,2,2): the labeled 5-cycles.
/// (4!/2 = 12 of them — enumerable by brute force over edge subsets.)
std::vector<std::vector<edge_key_t>> enumerate_states(const std::vector<std::uint32_t>& deg) {
    const node_t n = static_cast<node_t>(deg.size());
    std::vector<Edge> all;
    for (node_t u = 0; u < n; ++u)
        for (node_t v = u + 1; v < n; ++v) all.push_back(Edge{u, v});
    const std::uint64_t m = std::accumulate(deg.begin(), deg.end(), 0u) / 2;
    std::vector<int> pick(all.size(), 0);
    std::fill(pick.end() - static_cast<std::ptrdiff_t>(m), pick.end(), 1);
    std::vector<std::vector<edge_key_t>> states;
    do {
        std::vector<std::uint32_t> d(n, 0);
        std::vector<edge_key_t> keys;
        for (std::size_t i = 0; i < all.size(); ++i) {
            if (pick[i]) {
                ++d[all[i].u];
                ++d[all[i].v];
                keys.push_back(edge_key(all[i]));
            }
        }
        if (d == deg) {
            std::sort(keys.begin(), keys.end());
            states.push_back(std::move(keys));
        }
    } while (std::next_permutation(pick.begin(), pick.end()));
    return states;
}

} // namespace

int main(int argc, char** argv) {
    const int runs = argc > 1 ? std::atoi(argv[1]) : 12000;
    const std::vector<std::uint32_t> deg{2, 2, 2, 2, 2};

    const auto states = enumerate_states(deg);
    std::cout << "Degree sequence d = (2,2,2,2,2) has " << states.size()
              << " simple realizations (the labeled 5-cycles).\n"
              << "Running G-ES-MC " << runs << " times for 25 supersteps each, always\n"
              << "starting from the same state...\n\n";

    const EdgeList start =
        EdgeList::from_keys(5, std::vector<edge_key_t>(states.front()));
    std::map<std::vector<edge_key_t>, int> counts;
    for (int run = 0; run < runs; ++run) {
        ChainConfig config;
        config.seed = 31337 + static_cast<std::uint64_t>(run);
        config.pl = 0.1;
        auto chain = make_chain(ChainAlgorithm::kSeqGlobalES, start, config);
        chain->run_supersteps(25);
        ++counts[chain->graph().sorted_keys()];
    }

    TextTable table({"state", "empirical", "uniform", "deviation"});
    const double uniform = 1.0 / static_cast<double>(states.size());
    double chi2 = 0;
    for (std::size_t s = 0; s < states.size(); ++s) {
        const auto it = counts.find(states[s]);
        const int c = it == counts.end() ? 0 : it->second;
        const double freq = static_cast<double>(c) / runs;
        chi2 += (c - runs * uniform) * (c - runs * uniform) / (runs * uniform);
        table.add_row({"cycle #" + std::to_string(s + 1), fmt_double(freq, 4),
                       fmt_double(uniform, 4), fmt_double(freq - uniform, 4)});
    }
    table.print(std::cout);
    const double dof = static_cast<double>(states.size() - 1);
    std::cout << "\nchi-square = " << fmt_double(chi2, 2) << " with " << dof
              << " dof (95% quantile ~ " << fmt_double(dof + 2 * std::sqrt(2 * dof), 1)
              << ") — " << (chi2 < dof + 3 * std::sqrt(2 * dof) ? "consistent" : "NOT consistent")
              << " with the uniform distribution (Theorem 1).\n";
    return 0;
}
