/// \file batch_pipeline.cpp
/// \brief Using the batch sampling pipeline as a library.
///
/// The gesmc_sample CLI is a thin wrapper over run_pipeline(); this example
/// drives the same subsystem programmatically: sample 12 randomized
/// replicates of a clustered test graph and use the per-replicate metrics
/// from the run report to place the input's triangle count inside its
/// null-model distribution — the motif-significance workflow (Milo et al.)
/// the pipeline exists to serve.  A RunObserver streams one progress line
/// per replicate *as it finishes* — with R in the thousands that is the
/// difference between a live dashboard and staring at a silent run until
/// the full RunReport lands.
#include "gen/corpus.hpp"
#include "graph/adjacency.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "util/format.hpp"

#include <cmath>
#include <iostream>
#include <mutex>

using namespace gesmc;

namespace {

/// Streams per-replicate results live.  Under the replicate-parallel policy
/// on_replicate_done fires concurrently from pool threads, hence the mutex.
class LiveProgress final : public RunObserver {
public:
    explicit LiveProgress(std::uint64_t replicates) : replicates_(replicates) {}

    void on_replicate_done(const ReplicateReport& r) override {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++finished_;
        std::cerr << "replicate " << r.index << " done in " << fmt_seconds(r.seconds)
                  << ": " << r.triangles << " triangles  [" << finished_ << "/"
                  << replicates_ << "]\n";
    }

private:
    std::mutex mutex_;
    std::uint64_t replicates_;
    std::uint64_t finished_ = 0;
};

} // namespace

int main() {
    // A graph with real clustering: the null model should destroy most of it.
    const EdgeList input = generate_powerlaw_graph(4000, 2.0, /*seed=*/7);
    write_edge_list_binary_file("batch_pipeline_input.gesb", input);

    PipelineConfig config;
    config.input_path = "batch_pipeline_input.gesb";
    config.algorithm = "par-global-es";
    config.supersteps = 30;
    config.replicates = 12;
    config.seed = 2022;
    config.threads = 0; // hardware concurrency
    config.policy = SchedulePolicy::kAuto;
    config.metrics = true; // per-replicate triangles/clustering in the report

    LiveProgress progress(config.replicates);
    const RunReport report = run_pipeline(config, &std::cerr, &progress);
    if (!all_succeeded(report)) return 1;

    double mean = 0;
    for (const ReplicateReport& r : report.replicates) {
        mean += static_cast<double>(r.triangles);
    }
    mean /= static_cast<double>(report.replicates.size());
    double var = 0;
    for (const ReplicateReport& r : report.replicates) {
        const double d = static_cast<double>(r.triangles) - mean;
        var += d * d;
    }
    var /= static_cast<double>(report.replicates.size());

    const Adjacency adj(input);
    const auto observed = static_cast<double>(triangle_count(adj));
    const double z = var > 0 ? (observed - mean) / std::sqrt(var) : 0;

    std::cout << "observed triangles:   " << fmt_double(observed, 0) << "\n"
              << "null-model mean:      " << fmt_double(mean, 1) << " (over "
              << report.replicates.size() << " replicates)\n"
              << "null-model std dev:   " << fmt_double(std::sqrt(var), 1) << "\n"
              << "z-score:              " << fmt_double(z, 2) << "\n";
    return 0;
}
