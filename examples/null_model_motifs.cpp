/// \file null_model_motifs.cpp
/// \brief The paper's §1 motivation end to end: quantify the statistical
/// significance of an observed graph property against the uniform
/// fixed-degree null model.
///
/// We take an "observed" network with pronounced clustering, draw N
/// independent samples from G(d) with G-ES-MC, and report the z-score of
/// the observed triangle count under the null distribution — the classic
/// motif-significance methodology (Milo et al.; refs [3-5] of the paper).
///
///   ./examples/null_model_motifs [n] [samples]
#include "analysis/proxy_metrics.hpp"
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "graph/adjacency.hpp"
#include "graph/metrics.hpp"
#include "util/format.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

using namespace gesmc;

int main(int argc, char** argv) {
    const node_t n = argc > 1 ? static_cast<node_t>(std::atoi(argv[1])) : 3000;
    const int samples = argc > 2 ? std::atoi(argv[2]) : 40;
    constexpr std::uint64_t kBurnInSupersteps = 15; // ~ paper's 10-30 switches/edge

    // "Observed" network: a Havel-Hakimi power-law realization — HH packs
    // high-degree nodes together, so it is strongly clustered, like real
    // collaboration networks.
    const EdgeList observed = generate_powerlaw_graph(n, 2.3, 7);
    const std::uint64_t observed_triangles = triangle_count(Adjacency(observed));
    std::cout << "Observed graph: n = " << observed.num_nodes()
              << ", m = " << observed.num_edges() << ", triangles = " << observed_triangles
              << "\n\nSampling " << samples << " null-model graphs (uniform over G(d), "
              << "G-ES-MC, " << kBurnInSupersteps << " supersteps burn-in each)...\n";

    std::vector<double> null_triangles;
    null_triangles.reserve(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s) {
        ChainConfig config;
        config.seed = 1000 + static_cast<std::uint64_t>(s);
        config.threads = hardware_threads();
        auto chain = make_chain(ChainAlgorithm::kParGlobalES, observed, config);
        chain->run_supersteps(kBurnInSupersteps);
        null_triangles.push_back(static_cast<double>(triangle_count(Adjacency(chain->graph()))));
    }

    double mean = 0;
    for (const double t : null_triangles) mean += t;
    mean /= samples;
    double var = 0;
    for (const double t : null_triangles) var += (t - mean) * (t - mean);
    var /= std::max(1, samples - 1);
    const double sd = std::sqrt(var);
    const double z = sd > 0 ? (static_cast<double>(observed_triangles) - mean) / sd : 0.0;

    std::cout << "\nNull model:  triangles = " << fmt_double(mean, 1) << " +- "
              << fmt_double(sd, 1) << "\n"
              << "Observed:    triangles = " << observed_triangles << "\n"
              << "z-score:     " << fmt_double(z, 1) << "\n\n"
              << (std::abs(z) > 3
                      ? "|z| > 3: the observed clustering is NOT explained by the degree\n"
                        "sequence alone — exactly the kind of finding the fixed-degree\n"
                        "null model exists to establish (paper §1).\n"
                      : "|z| <= 3: the observed triangle count is compatible with the\n"
                        "degree sequence alone.\n");
    return 0;
}
