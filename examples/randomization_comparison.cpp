/// \file randomization_comparison.cpp
/// \brief Side-by-side comparison of every chain in the library on one
/// graph: proxy-metric decay per superstep plus the stricter
/// autocorrelation verdict, illustrating §6.1's point that aggregate
/// proxies converge (apparently) faster than the per-edge BIC criterion.
///
///   ./examples/randomization_comparison [n]
#include "analysis/autocorrelation.hpp"
#include "analysis/proxy_metrics.hpp"
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "util/format.hpp"

#include <cstdlib>
#include <iostream>

using namespace gesmc;

int main(int argc, char** argv) {
    const node_t n = argc > 1 ? static_cast<node_t>(std::atoi(argv[1])) : 2000;
    const EdgeList initial = generate_powerlaw_graph(n, 2.2, 3);
    std::cout << "Initial graph: n = " << initial.num_nodes() << ", m = "
              << initial.num_edges() << " (Havel-Hakimi power-law, highly structured)\n\n";

    constexpr std::uint64_t kSupersteps = 64;

    TextTable proxies({"chain", "superstep", "triangles", "clustering", "assortativity"});
    TextTable verdicts({"chain", "non-indep @k=1", "non-indep @k=2", "non-indep @k=8"});

    for (const auto algo : {ChainAlgorithm::kSeqES, ChainAlgorithm::kSeqGlobalES,
                            ChainAlgorithm::kParGlobalES, ChainAlgorithm::kNaiveParES}) {
        ChainConfig config;
        config.seed = 17;
        config.threads = hardware_threads();
        auto chain = make_chain(algo, initial, config);

        ThinningAutocorrelation tracker(*chain, {1, 2, 8},
                                        ThinningAutocorrelation::Track::kInitialEdges);
        for (std::uint64_t step = 1; step <= kSupersteps; ++step) {
            chain->run_supersteps(1);
            tracker.observe(*chain);
            if (step == 1 || step == 4 || step == kSupersteps) {
                const ProxySample s = measure_proxies(*chain, step);
                proxies.add_row({chain->name(), std::to_string(step),
                                 std::to_string(s.triangles),
                                 fmt_double(s.global_clustering, 4),
                                 fmt_double(s.assortativity, 4)});
            }
        }
        verdicts.add_row({chain->name(), fmt_double(tracker.non_independent_fraction(0), 3),
                          fmt_double(tracker.non_independent_fraction(1), 3),
                          fmt_double(tracker.non_independent_fraction(2), 3)});
    }

    const ProxySample before = measure_proxies(
        *make_chain(ChainAlgorithm::kSeqES, initial, ChainConfig{}), 0);
    std::cout << "Superstep 0 (initial): triangles = " << before.triangles
              << ", clustering = " << fmt_double(before.global_clustering, 4)
              << ", assortativity = " << fmt_double(before.assortativity, 4) << "\n\n";

    std::cout << "Aggregate proxies along the run (converge within a few supersteps):\n";
    proxies.print(std::cout);

    std::cout << "\nPer-edge autocorrelation verdict after " << kSupersteps
              << " supersteps (stricter; needs thinning >> 1 to look independent):\n";
    verdicts.print(std::cout);

    std::cout << "\nNote how all chains drive the proxies to the same plateau, while\n"
                 "the BIC criterion still flags dependence at small thinning — the\n"
                 "reason the paper uses autocorrelation analysis for Fig. 2/3.\n";
    return 0;
}
