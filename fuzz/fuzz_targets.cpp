/// \file fuzz_targets.cpp
/// \brief Harness bodies shared by the libFuzzer drivers and the
/// deterministic regression replay (see fuzz_targets.hpp).

#include "fuzz_targets.hpp"

#include "graph/io.hpp"
#include "pipeline/config.hpp"
#include "pipeline/corpus.hpp"
#include "service/frame.hpp"
#include "service/json.hpp"
#include "util/check.hpp"

#include <sstream>
#include <string>

namespace gesmc::fuzz {

namespace {

std::string as_string(const std::uint8_t* data, std::size_t size) {
    return std::string(reinterpret_cast<const char*>(data), size);
}

}  // namespace

void fuzz_target_json(const std::uint8_t* data, std::size_t size) {
    const std::string text = as_string(data, size);
    try {
        const JsonValue value = parse_json(text);
        // Exercise the typed accessors the protocol handlers lean on.
        if (value.is_object()) {
            (void)value.find("type");
            for (const auto& [key, member] : value.object_members) {
                (void)member.is_number();
                if (member.has_uint) (void)member.uint_value;
            }
        }
    } catch (const Error&) {
        // Rejection with a diagnostic is the contract.
    }
    try {
        (void)parse_request(text);
    } catch (const Error&) {
    }
}

void fuzz_target_frame(const std::uint8_t* data, std::size_t size) {
    const std::string stream = as_string(data, size);

    // One-shot decoder directly on the buffer.
    try {
        std::size_t consumed = 0;
        (void)decode_frame(stream.data(), stream.size(), consumed);
    } catch (const Error&) {
    }

    // Buffering reader fed in two halves (exercises the compaction path),
    // with each decoded frame pushed through the payload decoders and the
    // chunked-transfer state machine exactly as gesmc_submit does.
    try {
        FrameReader reader;
        GraphTransferState transfer;
        const std::size_t half = stream.size() / 2;
        reader.feed(stream.data(), half);
        reader.feed(stream.data() + half, stream.size() - half);
        for (int frames = 0; frames < 64; ++frames) {
            const std::optional<Frame> frame = reader.next();
            if (!frame.has_value()) break;
            switch (frame->type) {
            case FrameType::kJson:
                try {
                    (void)parse_json(frame->payload);
                } catch (const Error&) {
                }
                break;
            case FrameType::kGraph:
                (void)transfer.begin(decode_graph_payload(frame->payload));
                break;
            case FrameType::kGraphData:
                (void)transfer.consume(frame->payload.size());
                break;
            }
        }
    } catch (const Error&) {
    }
}

void fuzz_target_config(const std::uint8_t* data, std::size_t size) {
    const std::string text = as_string(data, size);
    try {
        const PipelineConfig config = read_pipeline_config_string(text);
        validate(config);
    } catch (const Error&) {
    }
    try {
        std::istringstream is(text);
        (void)parse_corpus_manifest(is, "<fuzz>", "");
    } catch (const Error&) {
    }
}

void fuzz_target_graph_io(const std::uint8_t* data, std::size_t size) {
    // First byte selects the reader so one corpus covers all four formats;
    // the sniffers run on every input (they must never throw).
    if (size == 0) return;
    const unsigned char selector = data[0];
    const std::string body = as_string(data + 1, size - 1);
    {
        std::istringstream is(body);
        (void)is_binary_edge_list(is);
    }
    {
        std::istringstream is(body);
        (void)is_chain_state(is);
    }
    try {
        std::istringstream is(body);
        switch (selector % 4) {
        case 0:
            (void)read_edge_list(is);
            break;
        case 1:
            (void)read_edge_list_binary(is);
            break;
        case 2:
            (void)read_chain_state(is);
            break;
        default:
            (void)read_degree_sequence(is);
            break;
        }
    } catch (const Error&) {
    }
}

}  // namespace gesmc::fuzz
