/// \file fuzz_config.cpp
/// \brief libFuzzer driver for fuzz_target_config (Clang, GESMC_BUILD_FUZZERS).

#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    gesmc::fuzz::fuzz_target_config(data, size);
    return 0;
}
