/// \file fuzz_targets.hpp
/// \brief Shared harness bodies for the parser fuzzers.
///
/// One body per untrusted-input surface of the daemon.  Each body feeds the
/// bytes to the parser and swallows gesmc::Error — a *rejected* input is
/// the contract working; anything else (crash, sanitizer report, uncaught
/// non-Error exception) is a bug.  The bodies are plain functions so two
/// drivers share them:
///
///   * fuzz_<name>.cpp — libFuzzer entry points (Clang-only,
///     GESMC_BUILD_FUZZERS=ON), used by the CI fuzz-smoke job and local
///     fuzzing sessions (docs/static_analysis.md);
///   * tests/test_fuzz_regression.cpp — replays fuzz/corpus/** and
///     fuzz/crashes/** deterministically on every build, any compiler.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gesmc::fuzz {

/// parse_json + parse_request over one control line.
void fuzz_target_json(const std::uint8_t* data, std::size_t size);

/// decode_frame / FrameReader / graph-payload decode / transfer state
/// machine over a daemon->client byte stream.
void fuzz_target_frame(const std::uint8_t* data, std::size_t size);

/// read_pipeline_config_string (+ validate) and parse_corpus_manifest.
void fuzz_target_config(const std::uint8_t* data, std::size_t size);

/// Graph file readers: text/GESB edge lists, .gesc chain state, degree
/// sequences; the first input byte selects the reader.
void fuzz_target_graph_io(const std::uint8_t* data, std::size_t size);

}  // namespace gesmc::fuzz
