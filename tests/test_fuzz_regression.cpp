/// \file test_fuzz_regression.cpp
/// \brief Deterministic replay of the fuzz seed + crash corpora.
///
/// Every file under fuzz/corpus/<target>/ runs through its harness body,
/// and every file under fuzz/crashes/ through the harness its name prefix
/// selects (all of them when the prefix is unknown).  The harnesses
/// swallow gesmc::Error — the pass criterion is simply "no crash, no
/// sanitizer report, no foreign exception", which is exactly the contract
/// the fuzzers enforce (fuzz/fuzz_targets.hpp).  This keeps past fuzz
/// findings covered on every build, including GCC builds without libFuzzer.

#include "fuzz_targets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

using FuzzBody = void (*)(const std::uint8_t*, std::size_t);

struct Target {
    const char* name;
    FuzzBody body;
};

constexpr Target kTargets[] = {
    {"json", &gesmc::fuzz::fuzz_target_json},
    {"frame", &gesmc::fuzz::fuzz_target_frame},
    {"config", &gesmc::fuzz::fuzz_target_config},
    {"graph_io", &gesmc::fuzz::fuzz_target_graph_io},
};

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                     std::istreambuf_iterator<char>());
}

std::vector<fs::path> files_in(const fs::path& dir) {
    std::vector<fs::path> files;
    if (!fs::is_directory(dir)) return files;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

const fs::path kFuzzDir = GESMC_FUZZ_CORPUS_DIR;

}  // namespace

TEST(FuzzRegression, SeedCorporaReplayCleanly) {
    std::size_t replayed = 0;
    for (const Target& target : kTargets) {
        for (const fs::path& file : files_in(kFuzzDir / "corpus" / target.name)) {
            SCOPED_TRACE(file.string());
            const std::vector<std::uint8_t> bytes = read_bytes(file);
            target.body(bytes.data(), bytes.size());
            ++replayed;
        }
    }
    // The committed seeds must actually be found: an empty corpus would turn
    // this suite (and the CI fuzz-smoke seeds) into a silent no-op.
    EXPECT_GE(replayed, 30u) << "seed corpora missing under " << kFuzzDir;
}

TEST(FuzzRegression, CrashCorpusReplaysCleanly) {
    for (const fs::path& file : files_in(kFuzzDir / "crashes")) {
        if (file.extension() == ".md") continue;  // the directory README
        SCOPED_TRACE(file.string());
        const std::vector<std::uint8_t> bytes = read_bytes(file);
        const std::string name = file.filename().string();
        bool matched = false;
        for (const Target& target : kTargets) {
            if (name.rfind(std::string(target.name) + "-", 0) == 0) {
                target.body(bytes.data(), bytes.size());
                matched = true;
            }
        }
        // No recognized prefix: replay through every harness — a crash
        // reproducer must never be skipped because of a filename typo.
        if (!matched) {
            for (const Target& target : kTargets) target.body(bytes.data(), bytes.size());
        }
    }
}

TEST(FuzzRegression, HarnessesAcceptEmptyAndTinyInputs) {
    const std::uint8_t byte = 0xff;
    for (const Target& target : kTargets) {
        target.body(nullptr, 0);
        target.body(&byte, 1);
    }
}
