// Tests for the sampling service: JSON/control-frame parsing, stream-frame
// encode/decode round-trips and malformed-frame rejection, multi-job
// admission of the JobManager over one shared executor (byte-identical to
// direct pipeline runs), cancel semantics for queued and running jobs,
// drain/resume, and an end-to-end Unix-socket session against a live
// ServiceServer.
#include "gen/corpus.hpp"
#include "graph/io.hpp"
#include "pipeline/config.hpp"
#include "pipeline/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "service/corpus_client.hpp"
#include "service/frame.hpp"
#include "service/job_manager.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/socket.h>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / ("gesmc_svc_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// A small generator-input job config writing binary graphs into `out`.
PipelineConfig job_config(const fs::path& out, std::uint64_t seed) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = "powerlaw";
    c.gen_n = 300;
    c.gen_gamma = 2.2;
    c.algorithm = "par-global-es";
    c.supersteps = 4;
    c.replicates = 3;
    c.seed = seed;
    c.metrics = false;
    c.output_dir = out.string();
    c.output_format = OutputFormat::kBinary;
    return c;
}

// ------------------------------------------------------------ JSON parser

TEST(ServiceJson, ParsesScalarsObjectsAndArrays) {
    const JsonValue doc = parse_json(
        R"({"type": "submit", "job": 42, "ok": true, "none": null,)"
        R"( "pi": 3.25, "neg": -7, "exp": 1e3, "list": [1, "two", false]})");
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.string_member("type"), "submit");
    EXPECT_EQ(doc.uint_member("job"), 42u);
    EXPECT_TRUE(doc.find("ok")->bool_value);
    EXPECT_TRUE(doc.find("none")->is_null());
    EXPECT_DOUBLE_EQ(doc.find("pi")->number_value, 3.25);
    EXPECT_DOUBLE_EQ(doc.find("neg")->number_value, -7.0);
    EXPECT_DOUBLE_EQ(doc.find("exp")->number_value, 1000.0);
    const JsonValue* list = doc.find("list");
    ASSERT_TRUE(list != nullptr && list->is_array());
    ASSERT_EQ(list->array_items.size(), 3u);
    EXPECT_EQ(list->array_items[1].string_value, "two");
}

TEST(ServiceJson, DecodesStringEscapes) {
    const JsonValue doc =
        parse_json(R"({"s": "a\nb\t\"q\"\\ A é 😀"})");
    // A = 'A', é = e-acute (2 UTF-8 bytes), the surrogate pair a
    // 4-byte emoji.
    EXPECT_EQ(doc.string_member("s"), "a\nb\t\"q\"\\ A \xC3\xA9 \xF0\x9F\x98\x80");
}

TEST(ServiceJson, RejectsMalformedDocuments) {
    EXPECT_THROW(parse_json(""), Error);
    EXPECT_THROW(parse_json("{"), Error);
    EXPECT_THROW(parse_json("{\"a\": }"), Error);
    EXPECT_THROW(parse_json("{\"a\": 1,}"), Error);
    EXPECT_THROW(parse_json("{\"a\": 01}"), Error);
    EXPECT_THROW(parse_json("[1, 2"), Error);
    EXPECT_THROW(parse_json("tru"), Error);
    EXPECT_THROW(parse_json("\"unterminated"), Error);
    EXPECT_THROW(parse_json("\"bad \\x escape\""), Error);
    EXPECT_THROW(parse_json("\"lone \\ud800 surrogate\""), Error);
    EXPECT_THROW(parse_json("{} trailing"), Error);
    EXPECT_THROW(parse_json("{\"a\": 1} {\"b\": 2}"), Error);
    // Unescaped control characters are not valid JSON strings.
    EXPECT_THROW(parse_json("\"a\nb\""), Error);
    // Nesting bomb: rejected by depth, not by stack overflow.
    EXPECT_THROW(parse_json(std::string(1000, '[') + std::string(1000, ']')), Error);
}

// ---------------------------------------------------------- stream frames

TEST(ServiceFrames, EncodeDecodeRoundTrip) {
    const std::string payload = "{\"event\": \"accepted\", \"job\": 1}";
    const std::string encoded = encode_frame(FrameType::kJson, payload);
    ASSERT_EQ(encoded.size(), 9 + payload.size());

    std::size_t consumed = 0;
    const auto frame = decode_frame(encoded.data(), encoded.size(), consumed);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(consumed, encoded.size());
    EXPECT_EQ(frame->type, FrameType::kJson);
    EXPECT_EQ(frame->payload, payload);
}

TEST(ServiceFrames, BinaryPayloadsSurviveUnchanged) {
    std::string binary;
    for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
    const std::string encoded = encode_frame(FrameType::kGraph, binary);
    std::size_t consumed = 0;
    const auto frame = decode_frame(encoded.data(), encoded.size(), consumed);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kGraph);
    EXPECT_EQ(frame->payload, binary);
}

TEST(ServiceFrames, ReaderReassemblesByteWiseDelivery) {
    // A TCP-like stream can fragment arbitrarily: feed one byte at a time
    // and require exactly the original frame sequence back.
    const std::string stream = encode_frame(FrameType::kJson, "first") +
                               encode_frame(FrameType::kGraph, std::string("\0\x01", 2)) +
                               encode_frame(FrameType::kJson, "");
    FrameReader reader;
    std::vector<Frame> frames;
    for (const char byte : stream) {
        reader.feed(&byte, 1);
        while (auto frame = reader.next()) frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].payload, "first");
    EXPECT_EQ(frames[1].payload, std::string("\0\x01", 2));
    EXPECT_EQ(frames[2].payload, "");
}

TEST(ServiceFrames, RejectsMalformedFrames) {
    std::size_t consumed = 0;
    // Unknown type byte: rejected immediately, even before the length.
    const char bad_type[] = {'X', 0, 0, 0, 0, 0, 0, 0, 0};
    EXPECT_THROW((void)decode_frame(bad_type, sizeof(bad_type), consumed), Error);

    // Length prefix beyond the protocol maximum.
    std::string huge;
    huge.push_back('J');
    for (int i = 0; i < 8; ++i) huge.push_back(static_cast<char>(0xFF));
    EXPECT_THROW((void)decode_frame(huge.data(), huge.size(), consumed), Error);

    // A 'D' chunk over the chunk bound is rejected from the header alone —
    // no buffering of a hostile multi-GiB "chunk" while waiting for bytes.
    std::string fat_chunk;
    fat_chunk.push_back('D');
    const std::uint64_t fat = kGraphChunkBytes + 1;
    for (int i = 0; i < 8; ++i) {
        fat_chunk.push_back(static_cast<char>((fat >> (8 * i)) & 0xFF));
    }
    EXPECT_THROW((void)decode_frame(fat_chunk.data(), fat_chunk.size(), consumed),
                 Error);
    // The same length is fine for a 'J' frame (just incomplete here).
    fat_chunk[0] = 'J';
    EXPECT_FALSE(decode_frame(fat_chunk.data(), fat_chunk.size(), consumed).has_value());

    // Truncation is not an error — it means "wait for more bytes".
    const std::string ok = encode_frame(FrameType::kJson, "payload");
    for (std::size_t cut = 0; cut < ok.size(); ++cut) {
        const auto frame = decode_frame(ok.data(), cut, consumed);
        EXPECT_FALSE(frame.has_value()) << "cut at " << cut;
        EXPECT_EQ(consumed, 0u);
    }
}

TEST(ServiceFrames, GraphHeaderRoundTripsAndRejectsGarbage) {
    GraphFrame graph;
    graph.replicate = 7;
    graph.name = "replicate_07.gesb";
    graph.total_bytes = 123456789;
    const std::string payload = encode_graph_payload(graph);
    const GraphFrame back = decode_graph_payload(payload);
    EXPECT_EQ(back.replicate, 7u);
    EXPECT_EQ(back.name, graph.name);
    EXPECT_EQ(back.total_bytes, graph.total_bytes);

    EXPECT_THROW((void)decode_graph_payload("short"), Error);
    EXPECT_THROW((void)decode_graph_payload(payload.substr(0, payload.size() - 1)),
                 Error);
    EXPECT_THROW((void)decode_graph_payload(payload + "x"), Error);
    // Path-traversal names must never reach the client's filesystem.
    GraphFrame evil = graph;
    evil.name = "../../etc/passwd";
    const std::string evil_payload = encode_graph_payload(evil);
    EXPECT_THROW((void)decode_graph_payload(evil_payload), Error);
}

TEST(ServiceFrames, GraphTransferEnforcesSequencingAndCaps) {
    GraphTransferState transfer;
    // A chunk before any header is a protocol violation.
    EXPECT_THROW((void)transfer.consume(1), Error);

    GraphFrame header;
    header.replicate = 3;
    header.name = "replicate_3.gesb";
    header.total_bytes = 10;
    EXPECT_FALSE(transfer.begin(header));
    ASSERT_TRUE(transfer.open());
    EXPECT_EQ(transfer.remaining(), 10u);

    // A second header while a transfer is open is a violation.
    EXPECT_THROW((void)transfer.begin(header), Error);
    // Chunks over the protocol bound are rejected regardless of remaining.
    EXPECT_THROW((void)transfer.consume(kGraphChunkBytes + 1), Error);
    // Empty chunks are meaningless and rejected.
    EXPECT_THROW((void)transfer.consume(0), Error);

    EXPECT_FALSE(transfer.consume(4));
    EXPECT_EQ(transfer.remaining(), 6u);
    // Overflowing the announced total is the cap-enforcement case: the
    // client must reject before any byte lands on disk.
    EXPECT_THROW((void)transfer.consume(7), Error);
    EXPECT_TRUE(transfer.consume(6));
    EXPECT_FALSE(transfer.open());

    // Zero-byte transfers complete at the header.
    header.total_bytes = 0;
    EXPECT_TRUE(transfer.begin(header));
    EXPECT_FALSE(transfer.open());
}

TEST(ServiceFrames, ChunkedGraphStreamReassemblesByteIdentically) {
    // Drive a SocketObserver with a tiny chunk size over a socketpair and
    // reassemble: the multi-chunk path must reproduce the file exactly and
    // keep each transfer's frames contiguous.
    const fs::path dir = scratch_dir("chunk_stream");
    const std::string path = (dir / "replicate_0.gesb").string();
    std::string blob;
    for (int i = 0; i < 1000; ++i) blob.push_back(static_cast<char>(i * 31));
    {
        std::ofstream os(path, std::ios::binary);
        os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FdHandle write_end(fds[0]);
    FdHandle read_end(fds[1]);

    SocketObserver observer(write_end.get(), 1, nullptr, /*chunk_bytes=*/64);
    ReplicateReport report;
    report.index = 0;
    report.output_path = path;
    observer.on_replicate_done(report);
    write_end.reset(); // EOF so the reader loop terminates

    FrameReader reader;
    GraphTransferState transfer;
    std::string reassembled;
    std::uint64_t chunks = 0;
    bool complete = false;
    for (;;) {
        const std::optional<Frame> frame = read_frame(read_end.get(), reader);
        if (!frame.has_value()) break;
        if (frame->type == FrameType::kGraph) {
            complete = transfer.begin(decode_graph_payload(frame->payload));
        } else if (frame->type == FrameType::kGraphData) {
            EXPECT_LE(frame->payload.size(), 64u);
            complete = transfer.consume(frame->payload.size());
            reassembled += frame->payload;
            ++chunks;
        }
    }
    EXPECT_TRUE(complete);
    EXPECT_EQ(chunks, (blob.size() + 63) / 64);
    EXPECT_EQ(reassembled, blob);
}

// --------------------------------------------------------- control frames

TEST(ServiceRequests, RoundTripThroughTheWireFormat) {
    Request submit;
    submit.kind = RequestKind::kSubmit;
    submit.config_text = "replicates = 4\nseed = 9\n# comment with \"quotes\"\n";
    const std::string line = make_request_line(submit);
    EXPECT_EQ(line.back(), '\n');
    const Request back = parse_request(line.substr(0, line.size() - 1));
    EXPECT_EQ(back.kind, RequestKind::kSubmit);
    EXPECT_EQ(back.config_text, submit.config_text);

    Request cancel;
    cancel.kind = RequestKind::kCancel;
    cancel.job = 12;
    cancel.has_job = true;
    const Request cancel_back =
        parse_request(make_request_line(cancel).substr(0, make_request_line(cancel).size() - 1));
    EXPECT_EQ(cancel_back.kind, RequestKind::kCancel);
    EXPECT_EQ(cancel_back.job, 12u);

    Request metrics;
    metrics.kind = RequestKind::kMetrics;
    const std::string metrics_line = make_request_line(metrics);
    const Request metrics_back =
        parse_request(metrics_line.substr(0, metrics_line.size() - 1));
    EXPECT_EQ(metrics_back.kind, RequestKind::kMetrics);

    Request watch;
    watch.kind = RequestKind::kWatch;
    const std::string watch_line = make_request_line(watch);
    EXPECT_EQ(parse_request(watch_line.substr(0, watch_line.size() - 1)).kind,
              RequestKind::kWatch);

    Request prom;
    prom.kind = RequestKind::kProm;
    const std::string prom_line = make_request_line(prom);
    EXPECT_EQ(parse_request(prom_line.substr(0, prom_line.size() - 1)).kind,
              RequestKind::kProm);
}

TEST(ServiceRequests, RejectsUnknownAndIncompleteRequests) {
    EXPECT_THROW((void)parse_request("not json at all"), Error);
    EXPECT_THROW((void)parse_request("[1, 2, 3]"), Error);
    EXPECT_THROW((void)parse_request("{\"type\": \"frobnicate\"}"), Error);
    EXPECT_THROW((void)parse_request("{\"type\": \"submit\"}"), Error);   // no config
    EXPECT_THROW((void)parse_request("{\"type\": \"cancel\"}"), Error);   // no job
    EXPECT_THROW((void)parse_request("{\"type\": \"cancel\", \"job\": -1}"), Error);
    EXPECT_THROW((void)parse_request("{\"type\": 42}"), Error);
}

// ------------------------------------------------------------- JobManager

TEST(JobManager, RunsConcurrentJobsOverOnePoolByteIdentically) {
    // Two jobs admitted together against one shared executor must produce
    // exactly what two direct run_pipeline calls produce: scheduling across
    // jobs must never leak into results (counter-based randomness).
    const fs::path direct_a = scratch_dir("jm_direct_a");
    const fs::path direct_b = scratch_dir("jm_direct_b");
    const RunReport ref_a = run_pipeline(job_config(direct_a, 101));
    const RunReport ref_b = run_pipeline(job_config(direct_b, 202));
    ASSERT_TRUE(all_succeeded(ref_a));
    ASSERT_TRUE(all_succeeded(ref_b));

    const fs::path svc_a = scratch_dir("jm_svc_a");
    const fs::path svc_b = scratch_dir("jm_svc_b");
    JobManager manager(2, 2);
    const std::uint64_t id_a = manager.submit(job_config(svc_a, 101), nullptr);
    const std::uint64_t id_b = manager.submit(job_config(svc_b, 202), nullptr);
    EXPECT_NE(id_a, id_b);
    const JobInfo done_a = manager.wait(id_a);
    const JobInfo done_b = manager.wait(id_b);
    EXPECT_EQ(done_a.status, JobStatus::kSucceeded) << done_a.error;
    EXPECT_EQ(done_b.status, JobStatus::kSucceeded) << done_b.error;
    EXPECT_EQ(done_a.replicates_done, 3u);

    for (std::uint64_t r = 0; r < ref_a.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref_a.replicates[r].output_path),
                  slurp((svc_a / fs::path(ref_a.replicates[r].output_path).filename())
                            .string()));
        EXPECT_EQ(slurp(ref_b.replicates[r].output_path),
                  slurp((svc_b / fs::path(ref_b.replicates[r].output_path).filename())
                            .string()));
    }
}

TEST(JobManager, RespectsPerJobSchedulePolicies) {
    // An intra-chain job (borrows the whole fork-join pool per chain) and a
    // replicate-parallel job run concurrently against the same executor.
    const fs::path dir_intra = scratch_dir("jm_intra");
    const fs::path dir_repl = scratch_dir("jm_repl");
    PipelineConfig intra = job_config(dir_intra, 7);
    intra.policy = SchedulePolicy::kIntraChain;
    PipelineConfig repl = job_config(dir_repl, 8);
    repl.policy = SchedulePolicy::kReplicates;

    const fs::path ref_dir = scratch_dir("jm_policy_ref");
    PipelineConfig ref_config = job_config(ref_dir, 7);
    const RunReport ref = run_pipeline(ref_config);
    ASSERT_TRUE(all_succeeded(ref));

    JobManager manager(2, 2);
    const std::uint64_t id_intra = manager.submit(intra, nullptr);
    const std::uint64_t id_repl = manager.submit(repl, nullptr);
    EXPECT_EQ(manager.wait(id_intra).status, JobStatus::kSucceeded);
    EXPECT_EQ(manager.wait(id_repl).status, JobStatus::kSucceeded);

    // Policy never changes bytes (exact chains): the intra-chain job
    // matches the default-policy reference run with the same seed.
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp((dir_intra / fs::path(ref.replicates[r].output_path).filename())
                            .string()));
    }
}

TEST(JobManager, RejectsInvalidConfigsAtSubmit) {
    JobManager manager(1, 1);
    PipelineConfig bad; // no input at all
    EXPECT_THROW((void)manager.submit(bad, nullptr), Error);
    EXPECT_TRUE(manager.jobs().empty());
}

TEST(JobManager, CancelsQueuedJobsBeforeTheyStart) {
    // One runner slot: job B sits queued behind a long-running A and must
    // be cancellable without ever starting.
    const fs::path dir_a = scratch_dir("jm_cancel_a");
    const fs::path dir_b = scratch_dir("jm_cancel_b");
    PipelineConfig long_a = job_config(dir_a, 1);
    long_a.gen_n = 2000;
    long_a.supersteps = 50;
    long_a.replicates = 4;

    JobManager manager(1, 1);
    const std::uint64_t id_a = manager.submit(long_a, nullptr);
    const std::uint64_t id_b = manager.submit(job_config(dir_b, 2), nullptr);

    EXPECT_TRUE(manager.cancel(id_b));
    const JobInfo info_b = manager.wait(id_b);
    EXPECT_EQ(info_b.status, JobStatus::kCancelled);
    EXPECT_EQ(info_b.replicates_done, 0u);
    EXPECT_FALSE(fs::exists(dir_b / "replicate_0.gesb")); // never ran

    EXPECT_TRUE(manager.cancel(id_a));
    const JobInfo info_a = manager.wait(id_a);
    EXPECT_EQ(info_a.status, JobStatus::kCancelled);
    // Terminal jobs cannot be re-cancelled; unknown ids are refused.
    EXPECT_FALSE(manager.cancel(id_a));
    EXPECT_FALSE(manager.cancel(9999));
}

TEST(JobManager, CancelFromTheObserverFactoryLandsBeforeTheJobStarts) {
    // The server's factory sends the "accepted" frame; when that write
    // breaks, its on_broken callback cancels the job from *inside* the
    // factory.  This must neither deadlock (the factory runs outside the
    // manager lock) nor be dropped (the job is registered before the
    // factory runs): the job finalizes cancelled without ever running.
    const fs::path dir = scratch_dir("jm_factory_cancel");
    JobManager manager(1, 1);
    const std::uint64_t id =
        manager.submit(job_config(dir, 7), [&](std::uint64_t job_id) -> RunObserver* {
            EXPECT_TRUE(manager.cancel(job_id));
            return nullptr;
        });
    const JobInfo info = manager.wait(id);
    EXPECT_EQ(info.status, JobStatus::kCancelled);
    EXPECT_EQ(info.replicates_done, 0u);
    EXPECT_FALSE(fs::exists(dir / "replicate_0.gesb")); // never ran
}

TEST(JobManager, CancelInterruptsARunningCheckpointedJob) {
    const fs::path dir = scratch_dir("jm_cancel_running");
    PipelineConfig config = job_config(dir, 5);
    config.gen_n = 1500;
    config.supersteps = 200; // long enough to still be running when cancelled
    config.replicates = 2;
    config.checkpoint_every = 1;

    class FirstCheckpoint final : public RunObserver {
    public:
        void on_checkpoint(std::uint64_t, const ChainState&,
                           const std::string&) override {
            seen.store(true, std::memory_order_relaxed);
        }
        std::atomic<bool> seen{false};
    };

    JobManager manager(2, 1);
    FirstCheckpoint observer;
    const std::uint64_t id = manager.submit(config, &observer);
    while (!observer.seen.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
    }
    EXPECT_TRUE(manager.cancel(id));
    const JobInfo info = manager.wait(id);
    EXPECT_EQ(info.status, JobStatus::kCancelled);
    // The interrupted replicates checkpointed: the job is resumable.
    EXPECT_TRUE(fs::exists(dir / "checkpoints"));
}

TEST(JobManager, DrainInterruptsCheckpointedJobsAndResumeFinishesThem) {
    // The SIGTERM path minus the signal: drain() stops a running
    // checkpointed job at a boundary; a resume run (as after a daemon
    // restart) finishes it byte-identically to an uninterrupted reference.
    const fs::path ref_dir = scratch_dir("jm_drain_ref");
    PipelineConfig ref_config = job_config(ref_dir, 33);
    ref_config.supersteps = 30;
    const RunReport ref = run_pipeline(ref_config);
    ASSERT_TRUE(all_succeeded(ref));

    const fs::path dir = scratch_dir("jm_drain");
    PipelineConfig config = job_config(dir, 33);
    config.supersteps = 30;
    config.checkpoint_every = 1;

    class FirstCheckpoint final : public RunObserver {
    public:
        void on_checkpoint(std::uint64_t, const ChainState&,
                           const std::string&) override {
            seen.store(true, std::memory_order_relaxed);
        }
        std::atomic<bool> seen{false};
    };

    FirstCheckpoint observer;
    JobStatus drained_status;
    {
        JobManager manager(2, 1);
        const std::uint64_t id = manager.submit(config, &observer);
        while (!observer.seen.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
        }
        manager.drain();
        drained_status = manager.wait(id).status;
    } // destructor: a second drain must be a no-op

    // The job either finished before drain noticed (tiny graphs move fast)
    // or was interrupted; both must leave a resumable/complete directory.
    ASSERT_TRUE(drained_status == JobStatus::kInterrupted ||
                drained_status == JobStatus::kSucceeded);

    PipelineConfig resume = job_config(dir, 33);
    resume.supersteps = 30;
    resume.checkpoint_every = 1;
    resume.resume_from = dir.string();
    const RunReport resumed = run_pipeline(resume);
    ASSERT_TRUE(all_succeeded(resumed));
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(resumed.replicates[r].output_path))
            << "replicate " << r;
    }
}

TEST(JobManager, RefusesSubmissionsWhileDraining) {
    JobManager manager(1, 1);
    manager.drain();
    EXPECT_THROW((void)manager.submit(job_config(scratch_dir("jm_refuse"), 1), nullptr),
                 Error);
}

// --------------------------------------------- width-counting admission

TEST(SharedExecutor, AdmitsAWideChainAndNarrowReplicatesConcurrently) {
    // The acceptance bar for the width-counting gate: a pool-borrowing
    // T = 2 chain of one run and width-1 replicates of another run must
    // *compute at the same time* inside one budget of 4.  Under the old
    // binary shared/unique gate this test deadlocks: the wide body blocks
    // waiting to observe a narrow body running, which the gate would never
    // have admitted concurrently.
    SharedExecutor executor(4);
    std::atomic<bool> wide_running{false};
    std::atomic<bool> narrow_ran_during_wide{false};

    std::thread wide_job([&] {
        ScheduleRequest request;
        request.policy = SchedulePolicy::kIntraChain;
        request.chain_threads = 2; // pool-borrowing chain, not whole-budget
        executor.run(1, request, [&](const ReplicateSlot& slot) {
            EXPECT_EQ(slot.chain_threads, 2u);
            ASSERT_NE(slot.shared_pool, nullptr);
            wide_running.store(true, std::memory_order_relaxed);
            while (!narrow_ran_during_wide.load(std::memory_order_relaxed)) {
                std::this_thread::yield();
            }
        });
    });

    while (!wide_running.load(std::memory_order_relaxed)) std::this_thread::yield();
    ScheduleRequest narrow;
    narrow.policy = SchedulePolicy::kReplicates;
    executor.run(2, narrow, [&](const ReplicateSlot& slot) {
        EXPECT_EQ(slot.chain_threads, 1u);
        EXPECT_EQ(slot.shared_pool, nullptr);
        if (wide_running.load(std::memory_order_relaxed)) {
            narrow_ran_during_wide.store(true, std::memory_order_relaxed);
        }
    });
    wide_job.join();
    EXPECT_TRUE(narrow_ran_during_wide.load());
}

TEST(SharedExecutor, MixedWidthStressNeverOversubscribesTheBudget) {
    // Concurrent runs of every policy shape against one budget of 4: the
    // summed width of computing replicates must never exceed the budget,
    // every replicate must run exactly once, and the whole thing must not
    // deadlock.  Run under TSan in CI this also shakes out gate races.
    constexpr unsigned kBudget = 4;
    SharedExecutor executor(kBudget);
    std::atomic<unsigned> active_width{0};
    std::atomic<unsigned> max_width{0};
    std::atomic<std::uint64_t> bodies{0};

    const auto body = [&](const ReplicateSlot& slot) {
        const unsigned width = slot.chain_threads;
        const unsigned now =
            active_width.fetch_add(width, std::memory_order_relaxed) + width;
        unsigned seen = max_width.load(std::memory_order_relaxed);
        while (seen < now && !max_width.compare_exchange_weak(
                                 seen, now, std::memory_order_relaxed)) {
        }
        if (slot.shared_pool != nullptr) {
            // Exercise the leased team: a real fork-join on `width` threads.
            std::atomic<unsigned> hits{0};
            slot.shared_pool->run([&](unsigned) { hits.fetch_add(1); });
            EXPECT_EQ(hits.load(), width);
        }
        bodies.fetch_add(1, std::memory_order_relaxed);
        active_width.fetch_sub(width, std::memory_order_relaxed);
    };

    constexpr std::uint64_t kPerRun = 24;
    const ScheduleRequest shapes[] = {
        {SchedulePolicy::kReplicates, 0, 0},
        {SchedulePolicy::kHybrid, 2, 0},
        {SchedulePolicy::kIntraChain, 0, 0},
        {SchedulePolicy::kHybrid, 3, 1},
    };
    std::vector<std::thread> runs;
    for (const ScheduleRequest& request : shapes) {
        runs.emplace_back([&executor, &body, request] {
            executor.run(kPerRun, request, body);
        });
    }
    for (std::thread& run : runs) run.join();
    EXPECT_EQ(bodies.load(), kPerRun * std::size(shapes));
    EXPECT_LE(max_width.load(), kBudget);
    EXPECT_GE(max_width.load(), 1u);
    EXPECT_EQ(active_width.load(), 0u);
}

TEST(JobManager, MixedWidthJobsSettleUnderCancelAndDrainMidLease) {
    // Cancel one mixed-width job mid-run and drain the rest: every job must
    // reach a terminal status (no deadlock with leases in flight), and the
    // drain must leave resumable or complete state behind.
    const fs::path dir_wide = scratch_dir("jm_mixed_wide");
    const fs::path dir_narrow = scratch_dir("jm_mixed_narrow");
    const fs::path dir_victim = scratch_dir("jm_mixed_victim");

    PipelineConfig wide = job_config(dir_wide, 11);
    wide.policy = SchedulePolicy::kHybrid;
    wide.chain_threads = 2;
    wide.supersteps = 12;
    wide.checkpoint_every = 1;
    PipelineConfig narrow = job_config(dir_narrow, 12);
    narrow.policy = SchedulePolicy::kReplicates;
    narrow.supersteps = 12;
    narrow.checkpoint_every = 1;
    PipelineConfig victim = job_config(dir_victim, 13);
    victim.policy = SchedulePolicy::kHybrid;
    victim.chain_threads = 2;
    victim.gen_n = 1500;
    victim.supersteps = 200; // long enough to still be running when cancelled
    victim.checkpoint_every = 1;

    class FirstCheckpoint final : public RunObserver {
    public:
        void on_checkpoint(std::uint64_t, const ChainState&,
                           const std::string&) override {
            seen.store(true, std::memory_order_relaxed);
        }
        std::atomic<bool> seen{false};
    };

    JobManager manager(4, 3);
    FirstCheckpoint victim_started;
    const std::uint64_t id_wide = manager.submit(wide, nullptr);
    const std::uint64_t id_narrow = manager.submit(narrow, nullptr);
    const std::uint64_t id_victim = manager.submit(victim, &victim_started);
    while (!victim_started.seen.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
    }
    EXPECT_TRUE(manager.cancel(id_victim));
    manager.drain(); // must not deadlock with leases of both widths in flight

    const JobStatus wide_status = manager.wait(id_wide).status;
    const JobStatus narrow_status = manager.wait(id_narrow).status;
    const JobStatus victim_status = manager.wait(id_victim).status;
    EXPECT_TRUE(wide_status == JobStatus::kSucceeded ||
                wide_status == JobStatus::kInterrupted)
        << to_string(wide_status);
    EXPECT_TRUE(narrow_status == JobStatus::kSucceeded ||
                narrow_status == JobStatus::kInterrupted)
        << to_string(narrow_status);
    EXPECT_EQ(victim_status, JobStatus::kCancelled);
}

TEST(JobManager, HybridJobsAreByteIdenticalToDirectRuns) {
    // The cross-policy determinism contract through the service path: the
    // same config at two hybrid (K, T) points and under the replicate
    // policy, admitted concurrently, matches a direct single-run reference
    // byte for byte.
    const fs::path ref_dir = scratch_dir("jm_hybrid_ref");
    const RunReport ref = run_pipeline(job_config(ref_dir, 55));
    ASSERT_TRUE(all_succeeded(ref));

    struct Variant {
        const char* tag;
        SchedulePolicy policy;
        unsigned chain_threads;
    };
    const Variant variants[] = {
        {"h2", SchedulePolicy::kHybrid, 2},   // 2 x 2 on a 4-budget
        {"h3", SchedulePolicy::kHybrid, 3},   // 1 x 3
        {"r", SchedulePolicy::kReplicates, 0} // 4 x 1
    };
    JobManager manager(4, 3);
    std::vector<std::pair<std::uint64_t, fs::path>> jobs;
    for (const Variant& v : variants) {
        const fs::path dir = scratch_dir(std::string("jm_hybrid_") + v.tag);
        PipelineConfig config = job_config(dir, 55);
        config.policy = v.policy;
        config.chain_threads = v.chain_threads;
        jobs.emplace_back(manager.submit(config, nullptr), dir);
    }
    for (const auto& [id, dir] : jobs) {
        const JobInfo done = manager.wait(id);
        EXPECT_EQ(done.status, JobStatus::kSucceeded) << done.error;
        for (const ReplicateReport& r : ref.replicates) {
            EXPECT_EQ(slurp(r.output_path),
                      slurp((dir / fs::path(r.output_path).filename()).string()));
        }
    }
}

// ------------------------------------------------------------ corpus runs

TEST(JobManager, RejectsCorpusConfigsAtSubmit) {
    // A corpus config must be fanned out client-side (gesmc_submit
    // --corpus); submitting it as one job is refused with a pointer at the
    // expansion path, not silently run on the first input.
    JobManager manager(1, 1);
    PipelineConfig corpus;
    corpus.input_glob = "data/*.gesb";
    EXPECT_THROW((void)manager.submit(corpus, nullptr), Error);
    EXPECT_TRUE(manager.jobs().empty());
}

TEST(CorpusClient, RowFromReportJsonMatchesTheInMemoryRow) {
    // The client-side merge parses the shard report the daemon wrote; the
    // row it rebuilds must be field-equal to the one run_corpus computes
    // from the in-memory RunReport.
    const fs::path dir = scratch_dir("corpus_row");
    PipelineConfig config = job_config(dir, 41);
    config.metrics = true;
    const RunReport report = run_pipeline(config);
    ASSERT_TRUE(all_succeeded(report));

    const CorpusInput input{"row-test", "in/row-test.gesb"};
    const CorpusGraphRow direct = corpus_row_from_report(input, report);
    std::ostringstream os;
    write_json_report(os, report);
    const CorpusGraphRow parsed = corpus_row_from_report_json(input, os.str());

    EXPECT_EQ(parsed.name, direct.name);
    EXPECT_EQ(parsed.input_path, direct.input_path);
    EXPECT_EQ(parsed.seed, direct.seed);
    EXPECT_EQ(parsed.input_nodes, direct.input_nodes);
    EXPECT_EQ(parsed.input_edges, direct.input_edges);
    EXPECT_EQ(parsed.replicates, direct.replicates);
    EXPECT_EQ(parsed.failed, direct.failed);
    EXPECT_EQ(parsed.interrupted, direct.interrupted);
    EXPECT_NEAR(parsed.seconds, direct.seconds, 1e-12);
    EXPECT_NEAR(parsed.switches_per_second, direct.switches_per_second, 1e-6);
    EXPECT_NEAR(parsed.acceptance_rate, direct.acceptance_rate, 1e-12);
    ASSERT_TRUE(parsed.has_metrics);
    EXPECT_NEAR(parsed.mean_triangles, direct.mean_triangles, 1e-9);
    EXPECT_NEAR(parsed.mean_clustering, direct.mean_clustering, 1e-12);
    EXPECT_NEAR(parsed.mean_assortativity, direct.mean_assortativity, 1e-12);
    EXPECT_NEAR(parsed.mean_components, direct.mean_components, 1e-12);
    EXPECT_EQ(parsed.error, direct.error);

    EXPECT_THROW((void)corpus_row_from_report_json(input, "{}"), Error);
    EXPECT_THROW((void)corpus_row_from_report_json(input, "not json"), Error);
}

TEST(JobManager, CorpusShardsSubmittedAsJobsMatchALocalCorpusRun) {
    // The gesmc_submit --corpus contract at the JobManager seam: every
    // shard rendered to config text, parsed back (as the daemon does), and
    // submitted as an ordinary job produces outputs byte-identical to the
    // local run_corpus over the same corpus config.
    const fs::path inputs = scratch_dir("corpus_jm_inputs");
    std::vector<std::string> paths;
    for (std::uint64_t i = 0; i < 3; ++i) {
        const EdgeList g = generate_powerlaw_graph(300 + 30 * i, 2.2, 700 + i);
        const std::string path =
            (inputs / ("g" + std::to_string(i) + ".gesb")).string();
        write_edge_list_binary_file(path, g);
        paths.push_back(path);
    }
    const auto corpus_config = [&](const fs::path& out) {
        PipelineConfig base;
        base.input_path = paths[0] + " " + paths[1] + " " + paths[2];
        base.algorithm = "par-global-es";
        base.supersteps = 3;
        base.replicates = 3;
        base.seed = 66;
        base.metrics = false;
        base.threads = 2;
        base.output_format = OutputFormat::kBinary;
        base.output_dir = out.string();
        return base;
    };

    const fs::path local_dir = scratch_dir("corpus_jm_local");
    const CorpusPlan local_plan = plan_corpus(corpus_config(local_dir));
    const CorpusReport local = run_corpus(local_plan);
    ASSERT_TRUE(all_succeeded(local));

    const fs::path svc_dir = scratch_dir("corpus_jm_svc");
    const CorpusPlan svc_plan = plan_corpus(corpus_config(svc_dir));
    JobManager manager(2, 2);
    std::vector<std::uint64_t> jobs;
    for (std::size_t i = 0; i < svc_plan.graphs.size(); ++i) {
        // Render + re-parse: exactly what travels over the submit frame.
        const std::string text =
            pipeline_config_to_string(corpus_shard(svc_plan, i));
        jobs.push_back(manager.submit(read_pipeline_config_string(text), nullptr));
    }
    for (const std::uint64_t id : jobs) {
        const JobInfo done = manager.wait(id);
        EXPECT_EQ(done.status, JobStatus::kSucceeded) << done.error;
    }

    std::uint64_t compared = 0;
    for (const CorpusInput& graph : local_plan.graphs) {
        for (const fs::directory_entry& entry :
             fs::directory_iterator(local_dir / graph.name)) {
            if (!entry.is_regular_file() || entry.path().extension() != ".gesb") {
                continue;
            }
            const fs::path svc_file = svc_dir / graph.name / entry.path().filename();
            EXPECT_EQ(slurp(entry.path().string()), slurp(svc_file.string()))
                << svc_file;
            ++compared;
        }
        // The daemon-side shard wrote the report the client merge reads.
        const std::string report_json =
            slurp((svc_dir / graph.name / "report.json").string());
        const CorpusGraphRow row = corpus_row_from_report_json(graph, report_json);
        EXPECT_EQ(row.replicates, 3u);
        EXPECT_EQ(row.failed, 0u);
    }
    EXPECT_EQ(compared, 9u);
}

// ------------------------------------------------- end-to-end over socket

TEST(ServiceServer, SubmitStreamsFramesByteIdenticalToADirectRun) {
    const fs::path dir = scratch_dir("e2e");
    const std::string socket_path = (dir / "sock").string();

    ServerConfig server_config;
    server_config.socket_path = socket_path;
    server_config.threads = 2;
    server_config.max_jobs = 2;
    // Fast sampler ticks so the watch subscription below sees several
    // telemetry frames without stalling the test.
    server_config.telemetry_interval = std::chrono::milliseconds(25);
    ServiceServer server(server_config);
    std::thread server_thread([&server] { server.serve(nullptr); });
    // An assertion failure must not leave server_thread joinable (that
    // would terminate() and eat the failure message).
    struct StopGuard {
        ServiceServer* server;
        std::thread* thread;
        ~StopGuard() {
            server->request_stop();
            if (thread->joinable()) thread->join();
        }
    } guard{&server, &server_thread};

    const fs::path job_dir = dir / "job";
    std::ostringstream config_text;
    config_text << "input-kind = generator\ngenerator = powerlaw\ngen-n = 300\n"
                << "algorithm = par-global-es\nsupersteps = 4\nreplicates = 3\n"
                << "seed = 77\nmetrics = false\noutput-format = binary\n"
                << "output-dir = " << job_dir.string() << "\n";

    // Submit and collect the full frame stream.
    std::vector<Frame> frames;
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kSubmit;
        request.config_text = config_text.str();
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        for (;;) {
            auto frame = read_frame(fd.get(), reader);
            ASSERT_TRUE(frame.has_value()) << "connection closed before done";
            const bool is_done =
                frame->type == FrameType::kJson &&
                parse_json(frame->payload).string_member("event") == "done";
            frames.push_back(std::move(*frame));
            if (is_done) break;
        }
    }

    // First frame: accepted.  Last: done/succeeded.
    ASSERT_GE(frames.size(), 3u);
    EXPECT_EQ(parse_json(frames.front().payload).string_member("event"), "accepted");
    const JsonValue done = parse_json(frames.back().payload);
    EXPECT_EQ(done.string_member("status"), "succeeded");
    EXPECT_EQ(done.uint_member("replicates_done"), 3u);

    // The streamed graph bytes — reassembled from chunked transfers —
    // equal a direct pipeline run's outputs.
    const fs::path direct_dir = scratch_dir("e2e_direct");
    const RunReport ref = run_pipeline(job_config(direct_dir, 77));
    ASSERT_TRUE(all_succeeded(ref));
    std::uint64_t graphs = 0;
    GraphTransferState transfer;
    std::string reassembled;
    for (const Frame& frame : frames) {
        if (frame.type == FrameType::kGraph) {
            reassembled.clear();
            if (transfer.begin(decode_graph_payload(frame.payload))) {
                ADD_FAILURE() << "zero-byte replicate graph";
            }
            continue;
        }
        if (frame.type != FrameType::kGraphData) continue;
        reassembled += frame.payload;
        if (transfer.consume(frame.payload.size())) {
            EXPECT_EQ(reassembled,
                      slurp((direct_dir / transfer.header().name).string()))
                << transfer.header().name;
            ++graphs;
        }
    }
    EXPECT_EQ(graphs, 3u);

    // A hybrid (K, T) submission over the same live socket streams the
    // same bytes: the schedule never leaks into results.
    {
        const fs::path hybrid_dir = dir / "job_hybrid";
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kSubmit;
        request.config_text = config_text.str() +
                              "output-dir = " + hybrid_dir.string() +
                              "\npolicy = hybrid\nchain-threads = 2\n";
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        GraphTransferState hybrid_transfer;
        std::string bytes;
        std::uint64_t hybrid_graphs = 0;
        for (;;) {
            const auto frame = read_frame(fd.get(), reader);
            ASSERT_TRUE(frame.has_value()) << "connection closed before done";
            if (frame->type == FrameType::kGraph) {
                bytes.clear();
                ASSERT_FALSE(hybrid_transfer.begin(decode_graph_payload(frame->payload)));
                continue;
            }
            if (frame->type == FrameType::kGraphData) {
                bytes += frame->payload;
                if (hybrid_transfer.consume(frame->payload.size())) {
                    EXPECT_EQ(bytes,
                              slurp((direct_dir / hybrid_transfer.header().name).string()))
                        << hybrid_transfer.header().name;
                    ++hybrid_graphs;
                }
                continue;
            }
            const JsonValue event = parse_json(frame->payload);
            if (event.string_member("event") == "done") {
                EXPECT_EQ(event.string_member("status"), "succeeded");
                break;
            }
        }
        EXPECT_EQ(hybrid_graphs, 3u);
    }

    // Status over a second connection sees the finished jobs.
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kStatus;
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        const JsonValue status = parse_json(frame->payload);
        ASSERT_EQ(status.find("jobs")->array_items.size(), 2u);
        EXPECT_EQ(status.find("jobs")->array_items[0].string_member("status"),
                  "succeeded");
        EXPECT_EQ(status.find("jobs")->array_items[1].string_member("status"),
                  "succeeded");
    }

    // A metrics request answers with one snapshot frame: executor occupancy,
    // per-status job counts, per-job throughput, and the metrics registry.
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kMetrics;
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        const JsonValue metrics = parse_json(frame->payload);
        EXPECT_EQ(metrics.string_member("event"), "metrics");
        const JsonValue* executor = metrics.find("executor");
        ASSERT_NE(executor, nullptr);
        EXPECT_EQ(executor->uint_member("threads"), 2u);
        EXPECT_EQ(executor->uint_member("active_runs"), 0u);
        const JsonValue* jobs = metrics.find("jobs");
        ASSERT_NE(jobs, nullptr);
        EXPECT_EQ(jobs->uint_member("succeeded"), 2u);
        EXPECT_EQ(jobs->uint_member("running"), 0u);
        const JsonValue* per_job = metrics.find("per_job");
        ASSERT_TRUE(per_job != nullptr && per_job->is_array());
        ASSERT_EQ(per_job->array_items.size(), 2u);
        for (const JsonValue& job : per_job->array_items) {
            EXPECT_EQ(job.string_member("status"), "succeeded");
            EXPECT_EQ(job.string_member("edge_set_backend"), "locked");
            EXPECT_EQ(job.uint_member("replicates_done"), 3u);
            EXPECT_GT(job.find("seconds")->number_value, 0.0);
            EXPECT_GT(job.find("attempted_switches")->number_value, 0.0);
            EXPECT_GT(job.find("switches_per_second")->number_value, 0.0);
        }
        ASSERT_NE(metrics.find("registry"), nullptr);
        // The test process never called set_metrics_enabled (that's
        // gesmc_serve's startup), so the registry reports itself disabled.
        EXPECT_FALSE(metrics.find("registry")->find("enabled")->bool_value);
    }

    // A prom request answers with one frame wrapping the Prometheus text
    // exposition (the payload is JSON because decode_frame only admits the
    // three frame types; clients print the "exposition" member).
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kProm;
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        ASSERT_EQ(frame->type, FrameType::kJson);
        const JsonValue prom = parse_json(frame->payload);
        EXPECT_EQ(prom.string_member("event"), "prom");
        const JsonValue* exposition = prom.find("exposition");
        ASSERT_TRUE(exposition != nullptr && exposition->is_string());
        // The test process never enabled metrics collection, but the daemon
        // always exports its executor occupancy as gauges.
        EXPECT_NE(exposition->string_value.find("gesmc_executor_threads"),
                  std::string::npos)
            << exposition->string_value;
        EXPECT_NE(exposition->string_value.find("# TYPE"), std::string::npos);
    }

    // A watch subscription streams one telemetry frame per sampler tick
    // with strictly monotone sequence numbers until the client hangs up.
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kWatch;
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        std::uint64_t last_seq = 0;
        unsigned ticks = 0;
        while (ticks < 3) {
            const auto frame = read_frame(fd.get(), reader);
            ASSERT_TRUE(frame.has_value()) << "watch stream ended early";
            ASSERT_EQ(frame->type, FrameType::kJson);
            const JsonValue tick = parse_json(frame->payload);
            if (tick.string_member("event") != "telemetry") continue;
            const std::uint64_t seq = tick.uint_member("seq");
            EXPECT_GT(seq, last_seq);
            last_seq = seq;
            ASSERT_NE(tick.find("executor"), nullptr);
            EXPECT_EQ(tick.find("executor")->uint_member("threads"), 2u);
            ASSERT_NE(tick.find("rates"), nullptr);
            ++ticks;
        }
        // Dropping the connection (fd closes here) unsubscribes; the daemon
        // keeps serving — the requests below still work.
    }

    // Malformed control data answers with an error frame, not a hangup.
    {
        const FdHandle fd = connect_unix(socket_path);
        write_all(fd.get(), std::string("this is not json\n"));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(parse_json(frame->payload).string_member("event"), "error");
    }

    // An idle client that connects and never sends a line must not be able
    // to hang the daemon's shutdown (its read is cut by SHUT_RD).
    const FdHandle idle = connect_unix(socket_path);

    // Shutdown via the protocol; serve() drains and returns.
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kShutdown;
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(parse_json(frame->payload).string_member("event"), "shutting-down");
    }
    server_thread.join(); // the shutdown frame alone must stop serve()
    EXPECT_FALSE(fs::exists(socket_path)); // socket file cleaned up
}

TEST(ServiceServer, RefusesASecondDaemonOnALiveSocket) {
    const fs::path dir = scratch_dir("e2e_live");
    ServerConfig config;
    config.socket_path = (dir / "sock").string();
    config.threads = 1;
    config.max_jobs = 1;
    ServiceServer server(config);
    EXPECT_THROW(ServiceServer second(config), Error);
    // No serve() ever ran; destruction must still be clean.
}

} // namespace
} // namespace gesmc
