// Tests for the sampling service: JSON/control-frame parsing, stream-frame
// encode/decode round-trips and malformed-frame rejection, multi-job
// admission of the JobManager over one shared executor (byte-identical to
// direct pipeline runs), cancel semantics for queued and running jobs,
// drain/resume, and an end-to-end Unix-socket session against a live
// ServiceServer.
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "service/frame.hpp"
#include "service/job_manager.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / ("gesmc_svc_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// A small generator-input job config writing binary graphs into `out`.
PipelineConfig job_config(const fs::path& out, std::uint64_t seed) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = "powerlaw";
    c.gen_n = 300;
    c.gen_gamma = 2.2;
    c.algorithm = "par-global-es";
    c.supersteps = 4;
    c.replicates = 3;
    c.seed = seed;
    c.metrics = false;
    c.output_dir = out.string();
    c.output_format = OutputFormat::kBinary;
    return c;
}

// ------------------------------------------------------------ JSON parser

TEST(ServiceJson, ParsesScalarsObjectsAndArrays) {
    const JsonValue doc = parse_json(
        R"({"type": "submit", "job": 42, "ok": true, "none": null,)"
        R"( "pi": 3.25, "neg": -7, "exp": 1e3, "list": [1, "two", false]})");
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.string_member("type"), "submit");
    EXPECT_EQ(doc.uint_member("job"), 42u);
    EXPECT_TRUE(doc.find("ok")->bool_value);
    EXPECT_TRUE(doc.find("none")->is_null());
    EXPECT_DOUBLE_EQ(doc.find("pi")->number_value, 3.25);
    EXPECT_DOUBLE_EQ(doc.find("neg")->number_value, -7.0);
    EXPECT_DOUBLE_EQ(doc.find("exp")->number_value, 1000.0);
    const JsonValue* list = doc.find("list");
    ASSERT_TRUE(list != nullptr && list->is_array());
    ASSERT_EQ(list->array_items.size(), 3u);
    EXPECT_EQ(list->array_items[1].string_value, "two");
}

TEST(ServiceJson, DecodesStringEscapes) {
    const JsonValue doc =
        parse_json(R"({"s": "a\nb\t\"q\"\\ A é 😀"})");
    // A = 'A', é = e-acute (2 UTF-8 bytes), the surrogate pair a
    // 4-byte emoji.
    EXPECT_EQ(doc.string_member("s"), "a\nb\t\"q\"\\ A \xC3\xA9 \xF0\x9F\x98\x80");
}

TEST(ServiceJson, RejectsMalformedDocuments) {
    EXPECT_THROW(parse_json(""), Error);
    EXPECT_THROW(parse_json("{"), Error);
    EXPECT_THROW(parse_json("{\"a\": }"), Error);
    EXPECT_THROW(parse_json("{\"a\": 1,}"), Error);
    EXPECT_THROW(parse_json("{\"a\": 01}"), Error);
    EXPECT_THROW(parse_json("[1, 2"), Error);
    EXPECT_THROW(parse_json("tru"), Error);
    EXPECT_THROW(parse_json("\"unterminated"), Error);
    EXPECT_THROW(parse_json("\"bad \\x escape\""), Error);
    EXPECT_THROW(parse_json("\"lone \\ud800 surrogate\""), Error);
    EXPECT_THROW(parse_json("{} trailing"), Error);
    EXPECT_THROW(parse_json("{\"a\": 1} {\"b\": 2}"), Error);
    // Unescaped control characters are not valid JSON strings.
    EXPECT_THROW(parse_json("\"a\nb\""), Error);
    // Nesting bomb: rejected by depth, not by stack overflow.
    EXPECT_THROW(parse_json(std::string(1000, '[') + std::string(1000, ']')), Error);
}

// ---------------------------------------------------------- stream frames

TEST(ServiceFrames, EncodeDecodeRoundTrip) {
    const std::string payload = "{\"event\": \"accepted\", \"job\": 1}";
    const std::string encoded = encode_frame(FrameType::kJson, payload);
    ASSERT_EQ(encoded.size(), 9 + payload.size());

    std::size_t consumed = 0;
    const auto frame = decode_frame(encoded.data(), encoded.size(), consumed);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(consumed, encoded.size());
    EXPECT_EQ(frame->type, FrameType::kJson);
    EXPECT_EQ(frame->payload, payload);
}

TEST(ServiceFrames, BinaryPayloadsSurviveUnchanged) {
    std::string binary;
    for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
    const std::string encoded = encode_frame(FrameType::kGraph, binary);
    std::size_t consumed = 0;
    const auto frame = decode_frame(encoded.data(), encoded.size(), consumed);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kGraph);
    EXPECT_EQ(frame->payload, binary);
}

TEST(ServiceFrames, ReaderReassemblesByteWiseDelivery) {
    // A TCP-like stream can fragment arbitrarily: feed one byte at a time
    // and require exactly the original frame sequence back.
    const std::string stream = encode_frame(FrameType::kJson, "first") +
                               encode_frame(FrameType::kGraph, std::string("\0\x01", 2)) +
                               encode_frame(FrameType::kJson, "");
    FrameReader reader;
    std::vector<Frame> frames;
    for (const char byte : stream) {
        reader.feed(&byte, 1);
        while (auto frame = reader.next()) frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].payload, "first");
    EXPECT_EQ(frames[1].payload, std::string("\0\x01", 2));
    EXPECT_EQ(frames[2].payload, "");
}

TEST(ServiceFrames, RejectsMalformedFrames) {
    std::size_t consumed = 0;
    // Unknown type byte: rejected immediately, even before the length.
    const char bad_type[] = {'X', 0, 0, 0, 0, 0, 0, 0, 0};
    EXPECT_THROW((void)decode_frame(bad_type, sizeof(bad_type), consumed), Error);

    // Length prefix beyond the protocol maximum.
    std::string huge;
    huge.push_back('J');
    for (int i = 0; i < 8; ++i) huge.push_back(static_cast<char>(0xFF));
    EXPECT_THROW((void)decode_frame(huge.data(), huge.size(), consumed), Error);

    // Truncation is not an error — it means "wait for more bytes".
    const std::string ok = encode_frame(FrameType::kJson, "payload");
    for (std::size_t cut = 0; cut < ok.size(); ++cut) {
        const auto frame = decode_frame(ok.data(), cut, consumed);
        EXPECT_FALSE(frame.has_value()) << "cut at " << cut;
        EXPECT_EQ(consumed, 0u);
    }
}

TEST(ServiceFrames, GraphPayloadRoundTripsAndRejectsGarbage) {
    GraphFrame graph;
    graph.replicate = 7;
    graph.name = "replicate_07.gesb";
    graph.bytes = std::string("GESB\x01 raw bytes \x00\xFF", 18);
    const std::string payload = encode_graph_payload(graph);
    const GraphFrame back = decode_graph_payload(payload);
    EXPECT_EQ(back.replicate, 7u);
    EXPECT_EQ(back.name, graph.name);
    EXPECT_EQ(back.bytes, graph.bytes);

    EXPECT_THROW((void)decode_graph_payload("short"), Error);
    EXPECT_THROW((void)decode_graph_payload(payload.substr(0, 14)), Error);
    // Path-traversal names must never reach the client's filesystem.
    GraphFrame evil = graph;
    evil.name = "../../etc/passwd";
    const std::string evil_payload = encode_graph_payload(evil);
    EXPECT_THROW((void)decode_graph_payload(evil_payload), Error);
}

// --------------------------------------------------------- control frames

TEST(ServiceRequests, RoundTripThroughTheWireFormat) {
    Request submit;
    submit.kind = RequestKind::kSubmit;
    submit.config_text = "replicates = 4\nseed = 9\n# comment with \"quotes\"\n";
    const std::string line = make_request_line(submit);
    EXPECT_EQ(line.back(), '\n');
    const Request back = parse_request(line.substr(0, line.size() - 1));
    EXPECT_EQ(back.kind, RequestKind::kSubmit);
    EXPECT_EQ(back.config_text, submit.config_text);

    Request cancel;
    cancel.kind = RequestKind::kCancel;
    cancel.job = 12;
    cancel.has_job = true;
    const Request cancel_back =
        parse_request(make_request_line(cancel).substr(0, make_request_line(cancel).size() - 1));
    EXPECT_EQ(cancel_back.kind, RequestKind::kCancel);
    EXPECT_EQ(cancel_back.job, 12u);
}

TEST(ServiceRequests, RejectsUnknownAndIncompleteRequests) {
    EXPECT_THROW((void)parse_request("not json at all"), Error);
    EXPECT_THROW((void)parse_request("[1, 2, 3]"), Error);
    EXPECT_THROW((void)parse_request("{\"type\": \"frobnicate\"}"), Error);
    EXPECT_THROW((void)parse_request("{\"type\": \"submit\"}"), Error);   // no config
    EXPECT_THROW((void)parse_request("{\"type\": \"cancel\"}"), Error);   // no job
    EXPECT_THROW((void)parse_request("{\"type\": \"cancel\", \"job\": -1}"), Error);
    EXPECT_THROW((void)parse_request("{\"type\": 42}"), Error);
}

// ------------------------------------------------------------- JobManager

TEST(JobManager, RunsConcurrentJobsOverOnePoolByteIdentically) {
    // Two jobs admitted together against one shared executor must produce
    // exactly what two direct run_pipeline calls produce: scheduling across
    // jobs must never leak into results (counter-based randomness).
    const fs::path direct_a = scratch_dir("jm_direct_a");
    const fs::path direct_b = scratch_dir("jm_direct_b");
    const RunReport ref_a = run_pipeline(job_config(direct_a, 101));
    const RunReport ref_b = run_pipeline(job_config(direct_b, 202));
    ASSERT_TRUE(all_succeeded(ref_a));
    ASSERT_TRUE(all_succeeded(ref_b));

    const fs::path svc_a = scratch_dir("jm_svc_a");
    const fs::path svc_b = scratch_dir("jm_svc_b");
    JobManager manager(2, 2);
    const std::uint64_t id_a = manager.submit(job_config(svc_a, 101), nullptr);
    const std::uint64_t id_b = manager.submit(job_config(svc_b, 202), nullptr);
    EXPECT_NE(id_a, id_b);
    const JobInfo done_a = manager.wait(id_a);
    const JobInfo done_b = manager.wait(id_b);
    EXPECT_EQ(done_a.status, JobStatus::kSucceeded) << done_a.error;
    EXPECT_EQ(done_b.status, JobStatus::kSucceeded) << done_b.error;
    EXPECT_EQ(done_a.replicates_done, 3u);

    for (std::uint64_t r = 0; r < ref_a.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref_a.replicates[r].output_path),
                  slurp((svc_a / fs::path(ref_a.replicates[r].output_path).filename())
                            .string()));
        EXPECT_EQ(slurp(ref_b.replicates[r].output_path),
                  slurp((svc_b / fs::path(ref_b.replicates[r].output_path).filename())
                            .string()));
    }
}

TEST(JobManager, RespectsPerJobSchedulePolicies) {
    // An intra-chain job (borrows the whole fork-join pool per chain) and a
    // replicate-parallel job run concurrently against the same executor.
    const fs::path dir_intra = scratch_dir("jm_intra");
    const fs::path dir_repl = scratch_dir("jm_repl");
    PipelineConfig intra = job_config(dir_intra, 7);
    intra.policy = SchedulePolicy::kIntraChain;
    PipelineConfig repl = job_config(dir_repl, 8);
    repl.policy = SchedulePolicy::kReplicates;

    const fs::path ref_dir = scratch_dir("jm_policy_ref");
    PipelineConfig ref_config = job_config(ref_dir, 7);
    const RunReport ref = run_pipeline(ref_config);
    ASSERT_TRUE(all_succeeded(ref));

    JobManager manager(2, 2);
    const std::uint64_t id_intra = manager.submit(intra, nullptr);
    const std::uint64_t id_repl = manager.submit(repl, nullptr);
    EXPECT_EQ(manager.wait(id_intra).status, JobStatus::kSucceeded);
    EXPECT_EQ(manager.wait(id_repl).status, JobStatus::kSucceeded);

    // Policy never changes bytes (exact chains): the intra-chain job
    // matches the default-policy reference run with the same seed.
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp((dir_intra / fs::path(ref.replicates[r].output_path).filename())
                            .string()));
    }
}

TEST(JobManager, RejectsInvalidConfigsAtSubmit) {
    JobManager manager(1, 1);
    PipelineConfig bad; // no input at all
    EXPECT_THROW((void)manager.submit(bad, nullptr), Error);
    EXPECT_TRUE(manager.jobs().empty());
}

TEST(JobManager, CancelsQueuedJobsBeforeTheyStart) {
    // One runner slot: job B sits queued behind a long-running A and must
    // be cancellable without ever starting.
    const fs::path dir_a = scratch_dir("jm_cancel_a");
    const fs::path dir_b = scratch_dir("jm_cancel_b");
    PipelineConfig long_a = job_config(dir_a, 1);
    long_a.gen_n = 2000;
    long_a.supersteps = 50;
    long_a.replicates = 4;

    JobManager manager(1, 1);
    const std::uint64_t id_a = manager.submit(long_a, nullptr);
    const std::uint64_t id_b = manager.submit(job_config(dir_b, 2), nullptr);

    EXPECT_TRUE(manager.cancel(id_b));
    const JobInfo info_b = manager.wait(id_b);
    EXPECT_EQ(info_b.status, JobStatus::kCancelled);
    EXPECT_EQ(info_b.replicates_done, 0u);
    EXPECT_FALSE(fs::exists(dir_b / "replicate_0.gesb")); // never ran

    EXPECT_TRUE(manager.cancel(id_a));
    const JobInfo info_a = manager.wait(id_a);
    EXPECT_EQ(info_a.status, JobStatus::kCancelled);
    // Terminal jobs cannot be re-cancelled; unknown ids are refused.
    EXPECT_FALSE(manager.cancel(id_a));
    EXPECT_FALSE(manager.cancel(9999));
}

TEST(JobManager, CancelFromTheObserverFactoryLandsBeforeTheJobStarts) {
    // The server's factory sends the "accepted" frame; when that write
    // breaks, its on_broken callback cancels the job from *inside* the
    // factory.  This must neither deadlock (the factory runs outside the
    // manager lock) nor be dropped (the job is registered before the
    // factory runs): the job finalizes cancelled without ever running.
    const fs::path dir = scratch_dir("jm_factory_cancel");
    JobManager manager(1, 1);
    const std::uint64_t id =
        manager.submit(job_config(dir, 7), [&](std::uint64_t job_id) -> RunObserver* {
            EXPECT_TRUE(manager.cancel(job_id));
            return nullptr;
        });
    const JobInfo info = manager.wait(id);
    EXPECT_EQ(info.status, JobStatus::kCancelled);
    EXPECT_EQ(info.replicates_done, 0u);
    EXPECT_FALSE(fs::exists(dir / "replicate_0.gesb")); // never ran
}

TEST(JobManager, CancelInterruptsARunningCheckpointedJob) {
    const fs::path dir = scratch_dir("jm_cancel_running");
    PipelineConfig config = job_config(dir, 5);
    config.gen_n = 1500;
    config.supersteps = 200; // long enough to still be running when cancelled
    config.replicates = 2;
    config.checkpoint_every = 1;

    class FirstCheckpoint final : public RunObserver {
    public:
        void on_checkpoint(std::uint64_t, const ChainState&,
                           const std::string&) override {
            seen.store(true, std::memory_order_relaxed);
        }
        std::atomic<bool> seen{false};
    };

    JobManager manager(2, 1);
    FirstCheckpoint observer;
    const std::uint64_t id = manager.submit(config, &observer);
    while (!observer.seen.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
    }
    EXPECT_TRUE(manager.cancel(id));
    const JobInfo info = manager.wait(id);
    EXPECT_EQ(info.status, JobStatus::kCancelled);
    // The interrupted replicates checkpointed: the job is resumable.
    EXPECT_TRUE(fs::exists(dir / "checkpoints"));
}

TEST(JobManager, DrainInterruptsCheckpointedJobsAndResumeFinishesThem) {
    // The SIGTERM path minus the signal: drain() stops a running
    // checkpointed job at a boundary; a resume run (as after a daemon
    // restart) finishes it byte-identically to an uninterrupted reference.
    const fs::path ref_dir = scratch_dir("jm_drain_ref");
    PipelineConfig ref_config = job_config(ref_dir, 33);
    ref_config.supersteps = 30;
    const RunReport ref = run_pipeline(ref_config);
    ASSERT_TRUE(all_succeeded(ref));

    const fs::path dir = scratch_dir("jm_drain");
    PipelineConfig config = job_config(dir, 33);
    config.supersteps = 30;
    config.checkpoint_every = 1;

    class FirstCheckpoint final : public RunObserver {
    public:
        void on_checkpoint(std::uint64_t, const ChainState&,
                           const std::string&) override {
            seen.store(true, std::memory_order_relaxed);
        }
        std::atomic<bool> seen{false};
    };

    FirstCheckpoint observer;
    JobStatus drained_status;
    {
        JobManager manager(2, 1);
        const std::uint64_t id = manager.submit(config, &observer);
        while (!observer.seen.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
        }
        manager.drain();
        drained_status = manager.wait(id).status;
    } // destructor: a second drain must be a no-op

    // The job either finished before drain noticed (tiny graphs move fast)
    // or was interrupted; both must leave a resumable/complete directory.
    ASSERT_TRUE(drained_status == JobStatus::kInterrupted ||
                drained_status == JobStatus::kSucceeded);

    PipelineConfig resume = job_config(dir, 33);
    resume.supersteps = 30;
    resume.checkpoint_every = 1;
    resume.resume_from = dir.string();
    const RunReport resumed = run_pipeline(resume);
    ASSERT_TRUE(all_succeeded(resumed));
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(resumed.replicates[r].output_path))
            << "replicate " << r;
    }
}

TEST(JobManager, RefusesSubmissionsWhileDraining) {
    JobManager manager(1, 1);
    manager.drain();
    EXPECT_THROW((void)manager.submit(job_config(scratch_dir("jm_refuse"), 1), nullptr),
                 Error);
}

// ------------------------------------------------- end-to-end over socket

TEST(ServiceServer, SubmitStreamsFramesByteIdenticalToADirectRun) {
    const fs::path dir = scratch_dir("e2e");
    const std::string socket_path = (dir / "sock").string();

    ServerConfig server_config;
    server_config.socket_path = socket_path;
    server_config.threads = 2;
    server_config.max_jobs = 2;
    ServiceServer server(server_config);
    std::thread server_thread([&server] { server.serve(nullptr); });
    // An assertion failure must not leave server_thread joinable (that
    // would terminate() and eat the failure message).
    struct StopGuard {
        ServiceServer* server;
        std::thread* thread;
        ~StopGuard() {
            server->request_stop();
            if (thread->joinable()) thread->join();
        }
    } guard{&server, &server_thread};

    const fs::path job_dir = dir / "job";
    std::ostringstream config_text;
    config_text << "input-kind = generator\ngenerator = powerlaw\ngen-n = 300\n"
                << "algorithm = par-global-es\nsupersteps = 4\nreplicates = 3\n"
                << "seed = 77\nmetrics = false\noutput-format = binary\n"
                << "output-dir = " << job_dir.string() << "\n";

    // Submit and collect the full frame stream.
    std::vector<Frame> frames;
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kSubmit;
        request.config_text = config_text.str();
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        for (;;) {
            auto frame = read_frame(fd.get(), reader);
            ASSERT_TRUE(frame.has_value()) << "connection closed before done";
            const bool is_done =
                frame->type == FrameType::kJson &&
                parse_json(frame->payload).string_member("event") == "done";
            frames.push_back(std::move(*frame));
            if (is_done) break;
        }
    }

    // First frame: accepted.  Last: done/succeeded.
    ASSERT_GE(frames.size(), 3u);
    EXPECT_EQ(parse_json(frames.front().payload).string_member("event"), "accepted");
    const JsonValue done = parse_json(frames.back().payload);
    EXPECT_EQ(done.string_member("status"), "succeeded");
    EXPECT_EQ(done.uint_member("replicates_done"), 3u);

    // The streamed graph bytes equal a direct pipeline run's outputs.
    const fs::path direct_dir = scratch_dir("e2e_direct");
    const RunReport ref = run_pipeline(job_config(direct_dir, 77));
    ASSERT_TRUE(all_succeeded(ref));
    std::uint64_t graphs = 0;
    for (const Frame& frame : frames) {
        if (frame.type != FrameType::kGraph) continue;
        const GraphFrame graph = decode_graph_payload(frame.payload);
        EXPECT_EQ(graph.bytes,
                  slurp((direct_dir / graph.name).string()))
            << graph.name;
        ++graphs;
    }
    EXPECT_EQ(graphs, 3u);

    // Status over a second connection sees the finished job.
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kStatus;
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        const JsonValue status = parse_json(frame->payload);
        ASSERT_EQ(status.find("jobs")->array_items.size(), 1u);
        EXPECT_EQ(status.find("jobs")->array_items[0].string_member("status"),
                  "succeeded");
    }

    // Malformed control data answers with an error frame, not a hangup.
    {
        const FdHandle fd = connect_unix(socket_path);
        write_all(fd.get(), std::string("this is not json\n"));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(parse_json(frame->payload).string_member("event"), "error");
    }

    // An idle client that connects and never sends a line must not be able
    // to hang the daemon's shutdown (its read is cut by SHUT_RD).
    const FdHandle idle = connect_unix(socket_path);

    // Shutdown via the protocol; serve() drains and returns.
    {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kShutdown;
        write_all(fd.get(), make_request_line(request));
        FrameReader reader;
        const auto frame = read_frame(fd.get(), reader);
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(parse_json(frame->payload).string_member("event"), "shutting-down");
    }
    server_thread.join(); // the shutdown frame alone must stop serve()
    EXPECT_FALSE(fs::exists(socket_path)); // socket file cleaned up
}

TEST(ServiceServer, RefusesASecondDaemonOnALiveSocket) {
    const fs::path dir = scratch_dir("e2e_live");
    ServerConfig config;
    config.socket_path = (dir / "sock").string();
    config.threads = 1;
    config.max_jobs = 1;
    ServiceServer server(config);
    EXPECT_THROW(ServiceServer second(config), Error);
    // No serve() ever ran; destruction must still be clean.
}

} // namespace
} // namespace gesmc
