// Tests for resumable chains: ChainState snapshot/restore round-trips for
// every chain algorithm, the GESB chain-state section IO, ChainConfig
// validation at make_chain time, and pipeline-level checkpoint/resume
// (interrupted runs resumed with byte-identical outputs) plus RunObserver
// streaming.
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "graph/io.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "pipeline/seeds.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / ("gesmc_ckpt_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// The integer counters of ChainStats (the timing doubles are wall-clock
/// noise and not part of the determinism contract).
void expect_same_counters(const ChainStats& a, const ChainStats& b,
                          const std::string& label) {
    EXPECT_EQ(a.supersteps, b.supersteps) << label;
    EXPECT_EQ(a.attempted, b.attempted) << label;
    EXPECT_EQ(a.accepted, b.accepted) << label;
    EXPECT_EQ(a.rejected_loop, b.rejected_loop) << label;
    EXPECT_EQ(a.rejected_edge, b.rejected_edge) << label;
    EXPECT_EQ(a.rounds_total, b.rounds_total) << label;
    EXPECT_EQ(a.rounds_max, b.rounds_max) << label;
}

// -------------------------------------------------------- chain-state IO

ChainState sample_state() {
    ChainState state;
    state.algorithm = ChainAlgorithm::kParGlobalES;
    state.seed = 0xDEADBEEFCAFEBABEull;
    state.counter = 12345;
    const EdgeList g = generate_powerlaw_graph(200, 2.2, 5);
    state.num_nodes = g.num_nodes();
    state.keys = g.keys();
    state.stats.supersteps = 7;
    state.stats.attempted = 1000;
    state.stats.accepted = 800;
    state.stats.rejected_loop = 120;
    state.stats.rejected_edge = 80;
    state.stats.rounds_total = 21;
    state.stats.rounds_max = 4;
    state.stats.first_round_seconds = 0.125;
    state.stats.later_rounds_seconds = 0.0625;
    return state;
}

TEST(ChainStateIo, RoundTripsThroughAStream) {
    const ChainState state = sample_state();
    std::stringstream ss;
    write_chain_state(ss, state);
    const ChainState back = read_chain_state(ss);
    EXPECT_EQ(back.algorithm, state.algorithm);
    EXPECT_EQ(back.seed, state.seed);
    EXPECT_EQ(back.counter, state.counter);
    EXPECT_EQ(back.num_nodes, state.num_nodes);
    EXPECT_EQ(back.keys, state.keys); // slot order preserved exactly
    expect_same_counters(back.stats, state.stats, "stream round-trip");
    EXPECT_EQ(back.stats.first_round_seconds, state.stats.first_round_seconds);
    EXPECT_EQ(back.stats.later_rounds_seconds, state.stats.later_rounds_seconds);
}

TEST(ChainStateIo, RoundTripsThroughAFile) {
    const fs::path dir = scratch_dir("state_file");
    const std::string path = (dir / "chain.gesc").string();
    const ChainState state = sample_state();
    write_chain_state_file(path, state);
    const ChainState back = read_chain_state_file(path);
    EXPECT_EQ(back.keys, state.keys);
    EXPECT_EQ(back.counter, state.counter);
}

TEST(ChainStateIo, SniffingSeparatesSectionsOfTheGesbFamily) {
    const fs::path dir = scratch_dir("state_sniff");
    const EdgeList g = generate_grid(5, 5);
    const std::string graph_path = (dir / "g.gesb").string();
    const std::string state_path = (dir / "s.gesc").string();
    write_edge_list_binary_file(graph_path, g);
    write_chain_state_file(state_path, sample_state());

    EXPECT_FALSE(is_chain_state_file(graph_path));
    EXPECT_TRUE(is_chain_state_file(state_path));

    // The cross readers reject each other's sections with a clear error.
    EXPECT_THROW(read_chain_state_file(graph_path), Error);
    EXPECT_THROW(read_edge_list_binary_file(state_path), Error);
    try {
        read_edge_list_binary_file(state_path);
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("chain-state"), std::string::npos);
    }
}

TEST(ChainStateIo, RejectsTruncationAndBadVersions) {
    std::stringstream ss;
    write_chain_state(ss, sample_state());
    const std::string full = ss.str();

    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(read_chain_state(truncated), Error);

    std::string bad_version = full;
    bad_version[5] = 99; // section version byte
    std::stringstream bv(bad_version);
    EXPECT_THROW(read_chain_state(bv), Error);

    std::stringstream not_state("definitely not a chain state");
    EXPECT_THROW(read_chain_state(not_state), Error);
}

TEST(ChainStateIo, RejectsDuplicateEdgeKeys) {
    ChainState state = sample_state();
    state.keys[3] = state.keys[7]; // corrupt: two slots, one edge
    std::stringstream ss;
    write_chain_state(ss, state);
    EXPECT_THROW(read_chain_state(ss), Error);
    try {
        std::stringstream again;
        write_chain_state(again, state);
        read_chain_state(again);
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("duplicate edge key"), std::string::npos);
    }
}

// ------------------------------------------------ ChainConfig validation

TEST(ChainConfigValidation, MakeChainRejectsBadPlAndZeroThreads) {
    const EdgeList g = generate_grid(4, 4);
    for (const double bad : {0.0, 1.0, -0.5, 2.0}) {
        ChainConfig config;
        config.pl = bad;
        EXPECT_THROW(make_chain(ChainAlgorithm::kSeqES, g, config), Error) << bad;
    }
    ChainConfig zero_threads;
    zero_threads.threads = 0;
    EXPECT_THROW(make_chain(ChainAlgorithm::kParGlobalES, g, zero_threads), Error);

    // The restore factory validates the *effective* config: threads come
    // from the caller, but seed and pl come from the snapshot — so a bad
    // config pl is irrelevant (the state's wins) while a corrupt state pl
    // must be rejected at restore time, not mid-run.
    ChainConfig ok;
    auto chain = make_chain(ChainAlgorithm::kSeqES, g, ok);
    chain->run_supersteps(1);
    const ChainState state = chain->snapshot();
    EXPECT_THROW(make_chain(state, zero_threads), Error);
    ChainConfig bad_pl;
    bad_pl.pl = 1.0;
    EXPECT_NO_THROW(make_chain(state, bad_pl)); // state.pl (valid) wins
    ChainState corrupt = state;
    corrupt.pl = 0.0;
    EXPECT_THROW(make_chain(corrupt, ok), Error);
}

// --------------------------------------------- per-chain snapshot/restore

/// For every chain kind: run K supersteps, snapshot, serialize the state
/// through the GESB section, restore, run K more — the graph (in slot
/// order!) and the stats counters must be byte-identical to one
/// uninterrupted 2K-superstep run.
TEST(CheckpointRoundTrip, SplitRunEqualsUninterruptedRunForEveryAlgorithm) {
    const EdgeList initial = generate_powerlaw_graph(500, 2.2, 11);
    constexpr std::uint64_t kHalf = 3;

    for (const auto& [name, algo] : chain_algorithm_names()) {
        ChainConfig config;
        config.seed = 77;
        // Fixed-policy caveat: NaiveParES's thread partition is part of the
        // process, so its split-vs-uninterrupted equality only holds for a
        // deterministic single-thread schedule.  The exact chains are
        // reproducible for any thread count.
        config.threads = algo == ChainAlgorithm::kNaiveParES ? 1 : 2;

        auto uninterrupted = make_chain(algo, initial, config);
        uninterrupted->run_supersteps(2 * kHalf);

        auto first = make_chain(algo, initial, config);
        first->run_supersteps(kHalf);
        std::stringstream ss;
        write_chain_state(ss, first->snapshot());
        first.reset(); // the snapshot alone must carry the run

        const ChainState state = read_chain_state(ss);
        EXPECT_EQ(state.algorithm, algo) << name;
        EXPECT_EQ(state.stats.supersteps, kHalf) << name;
        auto resumed = make_chain(state, config);
        EXPECT_EQ(resumed->name(), uninterrupted->name()) << name;
        resumed->run_supersteps(kHalf);

        // Slot order equality — stronger than same_graph: the edge array
        // is the sampling structure, so resumed trajectories only stay
        // identical if the order survived the round-trip.
        EXPECT_EQ(resumed->graph().keys(), uninterrupted->graph().keys()) << name;
        expect_same_counters(resumed->stats(), uninterrupted->stats(), name);
    }
}

TEST(CheckpointRoundTrip, PlIsPartOfTheStateAndSurvivesARestoreWithOtherConfig) {
    // pl drives the G-ES binomial switch-count draw, so a restore must
    // replay the snapshot's pl even when the restore config disagrees.
    const EdgeList initial = generate_powerlaw_graph(400, 2.2, 13);
    ChainConfig with_pl;
    with_pl.seed = 21;
    with_pl.pl = 0.25;

    auto uninterrupted = make_chain(ChainAlgorithm::kParGlobalES, initial, with_pl);
    uninterrupted->run_supersteps(6);

    auto first = make_chain(ChainAlgorithm::kParGlobalES, initial, with_pl);
    first->run_supersteps(3);
    std::stringstream ss;
    write_chain_state(ss, first->snapshot());
    const ChainState state = read_chain_state(ss);
    EXPECT_EQ(state.pl, 0.25);

    ChainConfig default_pl; // 1e-3 — must NOT win over the snapshot's 0.25
    default_pl.seed = 999;  // neither must this seed
    auto resumed = make_chain(state, default_pl);
    resumed->run_supersteps(3);
    EXPECT_EQ(resumed->graph().keys(), uninterrupted->graph().keys());
}

TEST(CheckpointRoundTrip, SnapshotDoesNotPerturbTheChain) {
    const EdgeList initial = generate_powerlaw_graph(300, 2.2, 3);
    ChainConfig config;
    config.seed = 9;
    auto plain = make_chain(ChainAlgorithm::kSeqES, initial, config);
    plain->run_supersteps(4);

    auto snapped = make_chain(ChainAlgorithm::kSeqES, initial, config);
    for (int i = 0; i < 4; ++i) {
        snapped->run_supersteps(1);
        (void)snapped->snapshot(); // observing must not advance any stream
    }
    EXPECT_EQ(snapped->graph().keys(), plain->graph().keys());
}

// ------------------------------------------------- pipeline-level resume

PipelineConfig resume_test_config(const fs::path& out_dir, const std::string& algo) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = "powerlaw";
    c.gen_n = 400;
    c.gen_gamma = 2.2;
    c.algorithm = algo;
    c.supersteps = 6;
    c.replicates = 4;
    c.seed = 4242;
    c.metrics = false;
    c.output_dir = out_dir.string();
    c.checkpoint_every = 2;
    // These tests resume from *successful* runs, so the finished markers
    // must survive the run (the default deletes them; see CheckpointCleanup).
    c.keep_checkpoints = true;
    return c;
}

TEST(PipelineResume, InterruptedRunResumesToByteIdenticalOutputs) {
    for (const std::string algo : {"par-global-es", "seq-es"}) {
        const fs::path dir_ref = scratch_dir("resume_ref_" + algo);
        const fs::path dir_res = scratch_dir("resume_res_" + algo);

        // Reference: one uninterrupted run.
        const RunReport ref = run_pipeline(resume_test_config(dir_ref, algo));
        ASSERT_TRUE(all_succeeded(ref)) << algo;

        // "Interrupted" run: stop every replicate at superstep 4 of 6 (its
        // final checkpoint then looks exactly like a mid-run checkpoint of
        // the full run — same (seed, counter) pair).
        PipelineConfig partial = resume_test_config(dir_res, algo);
        partial.supersteps = 4;
        ASSERT_TRUE(all_succeeded(run_pipeline(partial))) << algo;

        // Resume to the full target.
        PipelineConfig resume = resume_test_config(dir_res, algo);
        resume.resume_from = dir_res.string();
        const RunReport resumed = run_pipeline(resume);
        ASSERT_TRUE(all_succeeded(resumed)) << algo;

        for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
            EXPECT_EQ(resumed.replicates[r].resumed_supersteps, 4u) << algo;
            EXPECT_EQ(slurp(ref.replicates[r].output_path),
                      slurp(resumed.replicates[r].output_path))
                << algo << " replicate " << r;
            expect_same_counters(ref.replicates[r].stats, resumed.replicates[r].stats,
                                 algo + " replicate " + std::to_string(r));
        }
    }
}

TEST(PipelineResume, SkipsFinishedRestoresInFlightStartsMissing) {
    const std::string algo = "par-global-es";
    const fs::path dir_ref = scratch_dir("subset_ref");
    const fs::path dir_partial = scratch_dir("subset_partial");
    const fs::path dir_mixed = scratch_dir("subset_mixed");

    const RunReport ref = run_pipeline(resume_test_config(dir_ref, algo));
    ASSERT_TRUE(all_succeeded(ref));
    PipelineConfig partial = resume_test_config(dir_partial, algo);
    partial.supersteps = 2;
    ASSERT_TRUE(all_succeeded(run_pipeline(partial)));

    // A run directory killed after an arbitrary replicate subset:
    //   replicate 0 — finished (final checkpoint from the reference run;
    //                 its output graph is deleted to prove re-emission),
    //   replicate 1 — in-flight (checkpoint at superstep 2),
    //   replicates 2, 3 — never started (no checkpoint).
    fs::create_directories(dir_mixed / "checkpoints");
    fs::copy_file(dir_ref / "checkpoints" / "replicate_0.gesc",
                  dir_mixed / "checkpoints" / "replicate_0.gesc");
    fs::copy_file(dir_partial / "checkpoints" / "replicate_1.gesc",
                  dir_mixed / "checkpoints" / "replicate_1.gesc");

    PipelineConfig resume = resume_test_config(dir_mixed, algo);
    resume.resume_from = dir_mixed.string();
    const RunReport resumed = run_pipeline(resume);
    ASSERT_TRUE(all_succeeded(resumed));
    EXPECT_EQ(resumed.replicates[0].resumed_supersteps, 6u); // skipped, re-emitted
    EXPECT_EQ(resumed.replicates[1].resumed_supersteps, 2u); // restored mid-run
    EXPECT_EQ(resumed.replicates[2].resumed_supersteps, 0u); // fresh
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(resumed.replicates[r].output_path))
            << "replicate " << r;
    }
}

TEST(PipelineResume, ResumeIntoAFreshDirectoryCarriesTheFinishedMarkers) {
    const fs::path dir_a = scratch_dir("carry_a");
    const fs::path dir_b = scratch_dir("carry_b");

    PipelineConfig first = resume_test_config(dir_a, "par-global-es");
    const RunReport ref = run_pipeline(first);
    ASSERT_TRUE(all_succeeded(ref));

    // Resume the (fully finished) run into a different directory.
    PipelineConfig into_b = resume_test_config(dir_b, "par-global-es");
    into_b.resume_from = dir_a.string();
    const RunReport moved = run_pipeline(into_b);
    ASSERT_TRUE(all_succeeded(moved));

    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(moved.replicates[r].resumed_supersteps, first.supersteps);
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(moved.replicates[r].output_path));
        // The finished marker must exist in the *new* run dir, so a later
        // resume from it skips the replicate instead of re-running.
        EXPECT_TRUE(fs::exists(dir_b / "checkpoints" /
                               ("replicate_" + std::to_string(r) + ".gesc")));
    }
}

TEST(PipelineResume, RejectsCheckpointsFromADifferentRun) {
    const fs::path dir = scratch_dir("mismatch");
    ASSERT_TRUE(all_succeeded(run_pipeline(resume_test_config(dir, "par-global-es"))));

    // Different master seed -> the checkpoint's seed no longer matches the
    // derived replicate seed; the replicate must fail, not silently sample
    // from the wrong stream.
    PipelineConfig resume = resume_test_config(dir, "par-global-es");
    resume.resume_from = dir.string();
    resume.seed = 999;
    const RunReport report = run_pipeline(resume);
    EXPECT_FALSE(all_succeeded(report));

    // Different algorithm -> same protection.
    PipelineConfig wrong_algo = resume_test_config(dir, "seq-es");
    wrong_algo.resume_from = dir.string();
    const RunReport report2 = run_pipeline(wrong_algo);
    EXPECT_FALSE(all_succeeded(report2));
}

// --------------------------------------------------- checkpoint cleanup

TEST(CheckpointCleanup, SuccessfulRunDeletesItsCheckpointsByDefault) {
    const fs::path dir = scratch_dir("cleanup_default");
    PipelineConfig c = resume_test_config(dir, "par-global-es");
    c.keep_checkpoints = false; // the default a fresh PipelineConfig carries
    ASSERT_TRUE(all_succeeded(run_pipeline(c)));
    // Outputs stay, the checkpoint files and their directory are gone.
    for (std::uint64_t r = 0; r < c.replicates; ++r) {
        EXPECT_TRUE(fs::exists(dir / ("replicate_" + std::to_string(r) + ".txt")));
    }
    EXPECT_FALSE(fs::exists(dir / "checkpoints"));
}

TEST(CheckpointCleanup, KeepCheckpointsRetainsThem) {
    const fs::path dir = scratch_dir("cleanup_keep");
    PipelineConfig c = resume_test_config(dir, "par-global-es");
    ASSERT_TRUE(c.keep_checkpoints);
    ASSERT_TRUE(all_succeeded(run_pipeline(c)));
    for (std::uint64_t r = 0; r < c.replicates; ++r) {
        EXPECT_TRUE(fs::exists(dir / "checkpoints" /
                               ("replicate_" + std::to_string(r) + ".gesc")));
    }
}

TEST(CheckpointCleanup, ResumeToleratesACompletedRunWhoseCheckpointsWereCleaned) {
    // A drained job can win its race and finish; its checkpoints are then
    // cleaned.  The documented recovery — resubmit with resume-from — must
    // still work: replicates recompute to byte-identical outputs instead
    // of failing on the missing checkpoints.
    const fs::path dir = scratch_dir("cleanup_resume");
    PipelineConfig c = resume_test_config(dir, "par-global-es");
    c.keep_checkpoints = false;
    const RunReport first = run_pipeline(c);
    ASSERT_TRUE(all_succeeded(first));
    ASSERT_FALSE(fs::exists(dir / "checkpoints"));

    const fs::path dir2 = scratch_dir("cleanup_resume_again");
    PipelineConfig resume = resume_test_config(dir2, "par-global-es");
    resume.keep_checkpoints = false;
    resume.resume_from = dir.string();
    const RunReport again = run_pipeline(resume);
    ASSERT_TRUE(all_succeeded(again));
    for (std::uint64_t r = 0; r < first.replicates.size(); ++r) {
        EXPECT_EQ(slurp(first.replicates[r].output_path),
                  slurp(again.replicates[r].output_path));
    }

    // A genuinely wrong directory still fails fast.
    PipelineConfig wrong = resume_test_config(dir, "par-global-es");
    wrong.resume_from = (dir / "nonexistent").string();
    EXPECT_THROW(run_pipeline(wrong), Error);
}

// ------------------------------------------------------- interrupt / drain

TEST(PipelineInterrupt, InterruptKeepsCheckpointsAndResumesByteIdentically) {
    // The drain path end-to-end in-process: an observer flips the interrupt
    // flag at the first checkpoint, every replicate stops at a boundary
    // with its state persisted, and a resume finishes the run to outputs
    // byte-identical to an uninterrupted reference.
    const fs::path dir_ref = scratch_dir("interrupt_ref");
    const fs::path dir_int = scratch_dir("interrupt_int");

    const RunReport ref = run_pipeline(resume_test_config(dir_ref, "par-global-es"));
    ASSERT_TRUE(all_succeeded(ref));

    class InterruptAtFirstCheckpoint final : public RunObserver {
    public:
        explicit InterruptAtFirstCheckpoint(std::atomic<bool>& flag) : flag_(&flag) {}
        void on_checkpoint(std::uint64_t, const ChainState&,
                           const std::string&) override {
            flag_->store(true, std::memory_order_relaxed);
        }

    private:
        std::atomic<bool>* flag_;
    };

    std::atomic<bool> interrupt{false};
    InterruptAtFirstCheckpoint observer(interrupt);
    PipelineExec exec;
    exec.interrupt = &interrupt;
    PipelineConfig c = resume_test_config(dir_int, "par-global-es");
    c.keep_checkpoints = false; // interrupted runs must keep them regardless
    const RunReport stopped = run_pipeline(c, nullptr, &observer, exec);
    EXPECT_FALSE(all_succeeded(stopped));
    EXPECT_TRUE(was_interrupted(stopped));
    EXPECT_TRUE(fs::exists(dir_int / "checkpoints"));

    PipelineConfig resume = resume_test_config(dir_int, "par-global-es");
    resume.resume_from = dir_int.string();
    const RunReport resumed = run_pipeline(resume);
    ASSERT_TRUE(all_succeeded(resumed));
    EXPECT_FALSE(was_interrupted(resumed));
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(resumed.replicates[r].output_path))
            << "replicate " << r;
    }
}

TEST(PipelineInterrupt, PreSetFlagStopsEveryReplicateBeforeItStarts) {
    const fs::path dir = scratch_dir("interrupt_preset");
    std::atomic<bool> interrupt{true};
    PipelineExec exec;
    exec.interrupt = &interrupt;
    const RunReport report =
        run_pipeline(resume_test_config(dir, "seq-es"), nullptr, nullptr, exec);
    EXPECT_TRUE(was_interrupted(report));
    for (const ReplicateReport& r : report.replicates) {
        EXPECT_FALSE(r.error.empty());
        // Interrupt marker, not a genuine failure: the service keys job
        // status (interrupted-with-resume-hint vs failed) on this split.
        EXPECT_TRUE(is_interrupt_error(r.error)) << r.error;
        EXPECT_EQ(r.stats.supersteps, 0u);
    }
    EXPECT_FALSE(is_interrupt_error(""));
    EXPECT_FALSE(is_interrupt_error("read failed: no such file"));
}

TEST(PipelineResume, ValidateRequiresOutputDirForCheckpoints) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = "powerlaw";
    c.checkpoint_every = 5; // but no output-dir
    EXPECT_THROW(validate(c), Error);
}

// ----------------------------------------------------- observer streaming

TEST(RunObserverStreaming, EventsFireLiveAndOutputsAreOnDiskAtDone) {
    class Recorder final : public RunObserver {
    public:
        void on_superstep(std::uint64_t, const Chain& chain) override {
            supersteps.fetch_add(1);
            EXPECT_GT(chain.stats().supersteps, 0u);
        }
        void on_checkpoint(std::uint64_t, const ChainState& state,
                           const std::string& path) override {
            checkpoints.fetch_add(1);
            EXPECT_TRUE(fs::exists(path));
            EXPECT_FALSE(fs::exists(path + ".tmp")); // rename was atomic
            EXPECT_GT(state.stats.supersteps, 0u);
        }
        void on_replicate_done(const ReplicateReport& r) override {
            const std::lock_guard<std::mutex> lock(mutex);
            // Streaming contract: the replicate's graph is on disk before
            // the full RunReport exists.
            EXPECT_TRUE(r.error.empty()) << r.error;
            EXPECT_TRUE(fs::exists(r.output_path)) << r.output_path;
            done_order.push_back(r.index);
        }

        std::atomic<std::uint64_t> supersteps{0};
        std::atomic<std::uint64_t> checkpoints{0};
        std::mutex mutex;
        std::vector<std::uint64_t> done_order;
    };

    const fs::path dir = scratch_dir("observer");
    PipelineConfig c = resume_test_config(dir, "par-global-es");
    Recorder recorder;
    const RunReport report = run_pipeline(c, nullptr, &recorder);
    ASSERT_TRUE(all_succeeded(report));

    EXPECT_EQ(recorder.supersteps.load(), c.replicates * c.supersteps);
    // checkpoint-every = 2, supersteps = 6 -> 3 checkpoints per replicate
    // (the last one doubles as the finished marker).
    EXPECT_EQ(recorder.checkpoints.load(), c.replicates * 3);
    EXPECT_EQ(recorder.done_order.size(), c.replicates);
    for (std::uint64_t r = 0; r < c.replicates; ++r) {
        EXPECT_TRUE(is_chain_state_file(
            (dir / "checkpoints" / ("replicate_" + std::to_string(r) + ".gesc"))
                .string()));
    }
}

// ------------------------------------------------------ seed consistency

TEST(PipelineResume, CheckpointSeedsMatchTheDerivation) {
    const fs::path dir = scratch_dir("seed_check");
    PipelineConfig c = resume_test_config(dir, "seq-global-es");
    ASSERT_TRUE(all_succeeded(run_pipeline(c)));
    for (std::uint64_t r = 0; r < c.replicates; ++r) {
        const ChainState state = read_chain_state_file(
            (dir / "checkpoints" / ("replicate_" + std::to_string(r) + ".gesc"))
                .string());
        EXPECT_EQ(state.seed, replicate_seed(c.seed, r));
        EXPECT_EQ(state.stats.supersteps, c.supersteps);
    }
}

} // namespace
} // namespace gesmc
