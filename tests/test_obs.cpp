// Tests for the observability subsystem: the sharded metrics registry
// (exact sums under a concurrent hammer — run under TSan in CI), the
// disabled-by-default contract, histogram bucketing, metrics JSON
// round-trips, Chrome trace_event emission, the telemetry sampler (ring
// wraparound, counter-delta rate math, Prometheus exposition, a concurrent
// sample-vs-record hammer), the structured event log, and the headline
// guarantee that instrumentation never changes sampled bytes.
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "service/json.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the process flags as it found them (off): the tests in
/// this binary share the global registry, the trace singleton and the event
/// log sink.
struct ObsFlagsGuard {
    ~ObsFlagsGuard() {
        obs::set_metrics_enabled(false);
        obs::TraceSession::stop();
        obs::close_log_sinks();
        obs::set_log_level(obs::LogLevel::kInfo);
    }
};

std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                            const std::string& name) {
    for (const auto& [n, v] : snapshot.counters) {
        if (n == name) return v;
    }
    ADD_FAILURE() << "counter not in snapshot: " << name;
    return 0;
}

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, DisabledRecordingIsANoOp) {
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(false);
    obs::Counter& counter =
        obs::MetricsRegistry::instance().counter("test.disabled.counter");
    obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge("test.disabled.gauge");
    counter.add(42);
    gauge.set(7);
    gauge.add(3);
    obs::MetricsRegistry::instance().histogram("test.disabled.hist").record(9);
    EXPECT_EQ(counter.total(), 0u);
    EXPECT_EQ(gauge.value(), 0);

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_FALSE(snapshot.enabled);
    EXPECT_EQ(counter_value(snapshot, "test.disabled.counter"), 0u);
}

TEST(Metrics, RegistryReturnsStableHandles) {
    obs::Counter& a = obs::MetricsRegistry::instance().counter("test.stable");
    obs::Counter& b = obs::MetricsRegistry::instance().counter("test.stable");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, ConcurrentHammerSumsExactly) {
    // The sharded counters' correctness contract: adds from many threads are
    // never lost, and a snapshot taken after joining sees the exact total.
    // Concurrent snapshot() calls while writers run must also be safe (they
    // may see partial sums, never torn ones) — TSan in CI checks that.
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::Counter& counter = obs::MetricsRegistry::instance().counter("test.hammer");
    obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge("test.hammer.gauge");
    obs::Histogram& hist =
        obs::MetricsRegistry::instance().histogram("test.hammer.hist");

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kAdds = 50'000;
    std::atomic<bool> stop_snapshots{false};
    std::thread snapshotter([&] {
        while (!stop_snapshots.load(std::memory_order_relaxed)) {
            (void)obs::MetricsRegistry::instance().snapshot();
        }
    });
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t) {
        writers.emplace_back([&counter, &gauge, &hist] {
            for (std::uint64_t i = 0; i < kAdds; ++i) {
                counter.add(1);
                counter.add(3);
                gauge.add(1);
                gauge.add(-1);
                hist.record(i & 1023);
            }
        });
    }
    for (std::thread& w : writers) w.join();
    stop_snapshots.store(true, std::memory_order_relaxed);
    snapshotter.join();

    EXPECT_EQ(counter.total(), kThreads * kAdds * 4);
    EXPECT_EQ(gauge.value(), 0);
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(counter_value(snapshot, "test.hammer"), kThreads * kAdds * 4);
    for (const obs::HistogramSnapshot& h : snapshot.histograms) {
        if (h.name != "test.hammer.hist") continue;
        EXPECT_EQ(h.count, kThreads * kAdds);
        EXPECT_EQ(h.max, 1023u);
    }
}

TEST(Metrics, HistogramBucketsByBitWidth) {
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::Histogram& hist =
        obs::MetricsRegistry::instance().histogram("test.buckets");
    hist.record(0);
    hist.record(1);
    hist.record(5);       // bit_width 3 -> bucket [4, 7]
    hist.record(1000000); // bit_width 20 -> bucket [524288, 1048575]

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    bool found = false;
    for (const obs::HistogramSnapshot& h : snapshot.histograms) {
        if (h.name != "test.buckets") continue;
        found = true;
        EXPECT_EQ(h.count, 4u);
        EXPECT_EQ(h.sum, 1000006u);
        EXPECT_EQ(h.max, 1000000u);
        ASSERT_EQ(h.buckets.size(), 4u);
        EXPECT_EQ(h.buckets[0].upper_bound, 0u);
        EXPECT_EQ(h.buckets[1].upper_bound, 1u);
        EXPECT_EQ(h.buckets[2].upper_bound, 7u);
        EXPECT_EQ(h.buckets[3].upper_bound, (1u << 20) - 1);
        for (const auto& bucket : h.buckets) EXPECT_EQ(bucket.count, 1u);
    }
    EXPECT_TRUE(found);
}

TEST(Metrics, SnapshotJsonRoundTripsThroughTheParser) {
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::MetricsRegistry::instance().counter("test.json.counter").add(11);
    obs::MetricsRegistry::instance().gauge("test.json.gauge").set(4);
    obs::MetricsRegistry::instance().histogram("test.json.hist").record(100);

    std::ostringstream os;
    JsonWriter w(os);
    obs::write_metrics_json(w, obs::MetricsRegistry::instance().snapshot());
    const JsonValue doc = parse_json(os.str());
    EXPECT_TRUE(doc.find("enabled")->bool_value);
    EXPECT_EQ(doc.find("counters")->uint_member("test.json.counter"), 11u);
    EXPECT_EQ(doc.find("gauges")->uint_member("test.json.gauge"), 4u);
    const JsonValue* hist = doc.find("histograms")->find("test.json.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->uint_member("count"), 1u);
    EXPECT_EQ(hist->uint_member("sum"), 100u);
    EXPECT_EQ(hist->uint_member("max"), 100u);
}

// -------------------------------------------------------------------- trace

TEST(Trace, SpansOutsideASessionAreDropped) {
    ObsFlagsGuard guard;
    EXPECT_FALSE(obs::trace_enabled());
    { const obs::TraceSpan span("orphan", "test"); }
    obs::TraceSession::start();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

TEST(Trace, SpanStraddlingStopIsDropped) {
    // A span constructed in one session and destroyed in the next must not
    // record against the wrong epoch (its timestamps are meaningless there).
    ObsFlagsGuard guard;
    obs::TraceSession::start();
    auto straddler = std::make_unique<obs::TraceSpan>("straddler", "test");
    obs::TraceSession::stop();
    obs::TraceSession::start();
    straddler.reset();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

TEST(Trace, EmitsChromeTraceEventJson) {
    ObsFlagsGuard guard;
    obs::TraceSession::start();
    {
        const obs::TraceSpan outer("superstep", "core",
                                   {{"replicate", 2}, {"superstep", 7}});
        const obs::TraceSpan inner("lease.wait", "parallel", {{"width", 3}});
    }
    EXPECT_EQ(obs::TraceSession::event_count(), 2u);
    const std::string json = obs::TraceSession::stop_to_string();

    const JsonValue doc = parse_json(json);
    EXPECT_EQ(doc.string_member("displayTimeUnit"), "ms");
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_TRUE(events != nullptr && events->is_array());
    ASSERT_EQ(events->array_items.size(), 2u);
    bool saw_superstep = false, saw_wait = false;
    for (const JsonValue& event : events->array_items) {
        EXPECT_EQ(event.string_member("ph"), "X");
        EXPECT_GE(event.find("ts")->number_value, 0.0);
        EXPECT_GE(event.find("dur")->number_value, 0.0);
        EXPECT_EQ(event.uint_member("pid"), 1u);
        if (event.string_member("name") == "superstep") {
            saw_superstep = true;
            EXPECT_EQ(event.string_member("cat"), "core");
            EXPECT_EQ(event.find("args")->uint_member("replicate"), 2u);
            EXPECT_EQ(event.find("args")->uint_member("superstep"), 7u);
        } else if (event.string_member("name") == "lease.wait") {
            saw_wait = true;
            EXPECT_EQ(event.find("args")->uint_member("width"), 3u);
        }
    }
    EXPECT_TRUE(saw_superstep);
    EXPECT_TRUE(saw_wait);

    // The session ended: a fresh one starts empty.
    obs::TraceSession::start();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

TEST(Trace, ConcurrentSpansDuringStartStopAreRaceFree) {
    // Regression for a data race the lock-audit surfaced: TraceSpan
    // timestamps read the session epoch without the trace mutex while
    // start() rewrote it under the mutex.  The epoch is an atomic now;
    // spans racing session restarts must neither tear nor trip TSan
    // (this test runs in the TSan CI job).
    ObsFlagsGuard guard;
    std::atomic<bool> stop{false};
    std::vector<std::thread> spanners;
    spanners.reserve(4);
    for (int t = 0; t < 4; ++t) {
        spanners.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                const obs::TraceSpan span("racer", "test", {{"arg", 1}});
            }
        });
    }
    for (int cycle = 0; cycle < 50; ++cycle) {
        obs::TraceSession::start();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        obs::TraceSession::stop();
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : spanners) t.join();
    // Sessions stopped with spans in flight: nothing may leak into a new one.
    obs::TraceSession::start();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

// ---------------------------------------------------------------- telemetry

TEST(Telemetry, QuantileInterpolatesWithinLog2Buckets) {
    obs::HistogramSnapshot h;
    h.count = 10;
    h.max = 7;
    h.buckets = {{0, 2}, {1, 3}, {7, 5}};
    // rank(0.5) = 5 lands in the [1, 1] bucket: exact, no interpolation.
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 1.0);
    // rank(0.9) = 9 lands in [4, 7] with 4 of its 5 ranks consumed:
    // 4 + (7 - 4) * (9 - 5) / 5 = 6.4.
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.9), 6.4);
    // The zero bucket reports exactly zero.
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.1), 0.0);
    // The estimate never exceeds the observed maximum.
    h.max = 5;
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.0), 5.0);

    const obs::HistogramSnapshot empty;
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(empty, 0.5), 0.0);
}

TEST(Telemetry, DiffSnapshotsComputesRatesAndClampsResets) {
    obs::MetricsSnapshot prev;
    obs::MetricsSnapshot cur;
    prev.enabled = cur.enabled = true;
    prev.counters = {{"steady", 100}, {"was_reset", 50}};
    cur.counters = {{"fresh", 30}, {"steady", 300}, {"was_reset", 10}};
    cur.gauges = {{"assortativity_milli", -42}, {"occupancy", 5}};
    obs::HistogramSnapshot ph;
    ph.name = "wait";
    ph.count = 2;
    ph.sum = 2;
    ph.max = 1;
    ph.buckets = {{1, 2}};
    obs::HistogramSnapshot ch = ph;
    ch.count = 6;
    ch.sum = 22;
    ch.max = 7;
    ch.buckets = {{1, 2}, {7, 4}};
    prev.histograms = {ph};
    cur.histograms = {ch};

    const obs::TelemetryTick tick = obs::diff_snapshots(prev, cur, 2.0);

    ASSERT_EQ(tick.counter_rates.size(), 3u);
    EXPECT_EQ(tick.counter_rates[0].first, "fresh");
    EXPECT_DOUBLE_EQ(tick.counter_rates[0].second, 15.0); // implicit previous 0
    EXPECT_EQ(tick.counter_rates[1].first, "steady");
    EXPECT_DOUBLE_EQ(tick.counter_rates[1].second, 100.0); // (300-100)/2s
    EXPECT_EQ(tick.counter_rates[2].first, "was_reset");
    EXPECT_DOUBLE_EQ(tick.counter_rates[2].second, 0.0); // reset clamps, not -20

    // Gauges pass through as point-in-time values, sign preserved.
    ASSERT_EQ(tick.gauges.size(), 2u);
    EXPECT_EQ(tick.gauges[0].second, -42);

    // The histogram window holds only the interval's 4 new samples (all in
    // [4, 7]); quantiles interpolate the *delta* buckets.
    ASSERT_EQ(tick.histograms.size(), 1u);
    EXPECT_EQ(tick.histograms[0].count, 4u);
    EXPECT_DOUBLE_EQ(tick.histograms[0].rate, 2.0);
    EXPECT_DOUBLE_EQ(tick.histograms[0].p50, 5.5); // 4 + 3 * (2/4)
    EXPECT_DOUBLE_EQ(tick.histograms[0].p90, 6.7); // 4 + 3 * (3.6/4)
    EXPECT_EQ(tick.histograms[0].max, 7u);         // cumulative max

    // The NDJSON row round-trips through the service parser with the same
    // numbers — including the negative gauge (the double emission path).
    // …and it is genuinely one line (the NDJSON contract).
    EXPECT_EQ(telemetry_tick_ndjson(tick).find('\n'), std::string::npos);
    const JsonValue row = parse_json(telemetry_tick_ndjson(tick));
    EXPECT_DOUBLE_EQ(row.find("rates")->find("steady")->number_value, 100.0);
    EXPECT_DOUBLE_EQ(row.find("gauges")->find("assortativity_milli")->number_value,
                     -42.0);
    EXPECT_EQ(row.find("histograms")->find("wait")->uint_member("count"), 4u);
    EXPECT_DOUBLE_EQ(row.find("interval_s")->number_value, 2.0);

    // A zero interval (first-ever sample) must not divide by zero.
    const obs::TelemetryTick first = obs::diff_snapshots({}, cur, 0.0);
    for (const auto& [name, rate] : first.counter_rates) {
        EXPECT_DOUBLE_EQ(rate, 0.0) << name;
    }
}

TEST(Telemetry, RingWrapsKeepingTheNewestTicks) {
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::TelemetrySamplerConfig config;
    config.ring_capacity = 4;
    config.executor_stats = [] {
        ExecutorStats stats;
        stats.threads = 8;
        stats.leased = 3;
        return stats;
    };
    obs::TelemetrySampler sampler(config);
    for (int i = 0; i < 10; ++i) (void)sampler.sample_now();

    EXPECT_EQ(sampler.ticks(), 10u);
    ASSERT_TRUE(sampler.latest().has_value());
    EXPECT_EQ(sampler.latest()->sequence, 10u);
    EXPECT_EQ(sampler.latest()->executor.threads, 8u);
    EXPECT_EQ(sampler.latest()->executor.leased, 3u);

    // Only the newest `ring_capacity` ticks survive, oldest first.
    const std::vector<obs::TelemetryTick> all = sampler.since(0);
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all.front().sequence, 7u);
    EXPECT_EQ(all.back().sequence, 10u);

    const std::vector<obs::TelemetryTick> tail = sampler.since(8);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].sequence, 9u);
    EXPECT_EQ(tail[1].sequence, 10u);

    EXPECT_TRUE(sampler.since(10).empty());

    // wait_for_tick returns an already-buffered tick without blocking and
    // times out (nullopt) when nothing newer arrives.
    const auto buffered = sampler.wait_for_tick(8, std::chrono::milliseconds(0));
    ASSERT_TRUE(buffered.has_value());
    EXPECT_EQ(buffered->sequence, 9u);
    EXPECT_FALSE(sampler.wait_for_tick(10, std::chrono::milliseconds(1)).has_value());
}

TEST(Telemetry, ConcurrentSampleAndRecordIsRaceFree) {
    // The sampler only ever reads shared state; writers hammering counters
    // and histograms while ticks fire must be race-free (TSan in CI) and
    // rates must come out non-negative.
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::Counter& counter =
        obs::MetricsRegistry::instance().counter("test.telemetry.hammer");
    obs::Histogram& hist =
        obs::MetricsRegistry::instance().histogram("test.telemetry.hammer.hist");

    obs::TelemetrySamplerConfig config;
    config.interval = std::chrono::milliseconds(1);
    config.ring_capacity = 8;
    obs::TelemetrySampler sampler(config);
    sampler.start(); // background thread ticks while we also sample inline

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&counter, &hist, &stop] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                counter.add(1);
                hist.record(i++ & 255);
            }
        });
    }
    // The writers must actually have started before the inline sampling
    // burst, or all 50 ticks could race past an unscheduled thread.
    while (counter.total() == 0) std::this_thread::yield();
    obs::TelemetryTick last;
    for (int i = 0; i < 50; ++i) last = sampler.sample_now();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& w : writers) w.join();
    sampler.stop();

    EXPECT_GE(sampler.ticks(), 50u);
    for (const auto& [name, rate] : last.counter_rates) {
        EXPECT_GE(rate, 0.0) << name;
    }
    bool found = false;
    for (const auto& [name, total] : last.counter_totals) {
        if (name == "test.telemetry.hammer") found = total > 0;
    }
    EXPECT_TRUE(found);
}

TEST(Telemetry, PrometheusExpositionIsWellFormed) {
    obs::MetricsSnapshot snapshot;
    snapshot.enabled = true;
    snapshot.counters = {{"chain.switches.attempted", 12345}};
    snapshot.gauges = {{"analysis.replicate.assortativity_milli", -250}};
    obs::HistogramSnapshot h;
    h.name = "executor.lease.wait_us";
    h.count = 3;
    h.sum = 10;
    h.max = 5;
    h.buckets = {{1, 1}, {7, 2}};
    h.p50 = obs::histogram_quantile(h, 0.50);
    h.p90 = obs::histogram_quantile(h, 0.90);
    h.p99 = obs::histogram_quantile(h, 0.99);
    snapshot.histograms = {h};

    std::ostringstream os;
    obs::write_metrics_prometheus(os, snapshot);
    const std::string text = os.str();

    // Names are sanitized to the Prometheus charset ('.' -> '_', gesmc_
    // prefix); every family carries HELP + TYPE.
    EXPECT_NE(text.find("# TYPE gesmc_chain_switches_attempted counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("gesmc_chain_switches_attempted 12345\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE gesmc_analysis_replicate_assortativity_milli gauge\n"),
        std::string::npos);
    EXPECT_NE(text.find("gesmc_analysis_replicate_assortativity_milli -250\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE gesmc_executor_lease_wait_us summary\n"),
              std::string::npos);
    EXPECT_NE(text.find("gesmc_executor_lease_wait_us{quantile=\"0.5\"} "),
              std::string::npos);
    EXPECT_NE(text.find("gesmc_executor_lease_wait_us_sum 10\n"),
              std::string::npos);
    EXPECT_NE(text.find("gesmc_executor_lease_wait_us_count 3\n"),
              std::string::npos);
    // No sample line carries an unsanitized metric name (HELP text may
    // mention the dotted registry name; sample lines must not).
    EXPECT_EQ(text.find("\nchain."), std::string::npos);
    EXPECT_EQ(text.find("\nexecutor."), std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

// ---------------------------------------------------------------- event log

TEST(EventLog, EmitsParseableLeveledJsonLines) {
    ObsFlagsGuard guard;
    const fs::path log_path =
        fs::path(testing::TempDir()) / "gesmc_obs_events.ndjson";
    fs::remove(log_path);
    ASSERT_TRUE(obs::set_log_file(log_path.string()));
    obs::set_log_level(obs::LogLevel::kInfo);

    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
    EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));

    GESMC_LOG_EVENT(Info, "test", "lifecycle")
        .str("phase", "start \"quoted\"")
        .num("replicates", 8)
        .snum("z_milli", -1250)
        .real("seconds", 0.25)
        .flag("resumed", false);
    GESMC_LOG_EVENT(Debug, "test", "filtered").num("never", 1);
    obs::close_log_sinks();

    std::ifstream is(log_path);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    const JsonValue doc = parse_json(line);
    EXPECT_EQ(doc.string_member("level"), "info");
    EXPECT_EQ(doc.string_member("component"), "test");
    EXPECT_EQ(doc.string_member("event"), "lifecycle");
    EXPECT_EQ(doc.string_member("phase"), "start \"quoted\"");
    EXPECT_EQ(doc.uint_member("replicates"), 8u);
    EXPECT_DOUBLE_EQ(doc.find("z_milli")->number_value, -1250.0);
    EXPECT_DOUBLE_EQ(doc.find("seconds")->number_value, 0.25);
    EXPECT_FALSE(doc.find("resumed")->bool_value);
    EXPECT_GT(doc.uint_member("ts_ms"), 0u);
    // The debug event was filtered: exactly one line in the file.
    EXPECT_FALSE(std::getline(is, line));
}

// ----------------------------------------------- instrumented-run identity

TEST(Obs, InstrumentationNeverChangesSampledBytes) {
    // The headline contract (and the reason every record path is gated on
    // one flag): a fully instrumented run — metrics, tracing, the telemetry
    // sampler AND the event log all on — emits replicate graphs
    // byte-identical to a bare run of the same config.
    ObsFlagsGuard guard;
    const fs::path base_dir =
        fs::path(testing::TempDir()) / "gesmc_obs_identity";
    fs::remove_all(base_dir);
    const auto config_for = [&](const char* tag) {
        PipelineConfig c;
        c.input_kind = InputKind::kGenerator;
        c.generator = "powerlaw";
        c.gen_n = 400;
        c.gen_gamma = 2.2;
        c.algorithm = "par-global-es";
        c.supersteps = 5;
        c.replicates = 3;
        c.seed = 99;
        c.threads = 2;
        c.checkpoint_every = 2; // exercise the checkpoint + superstep spans
        // The lock-free backend has the denser metrics hooks (CAS retry and
        // PSL accounting); locked-vs-lockfree identity itself is asserted
        // in test_pipeline, so instrumenting the lock-free path here keeps
        // both contracts covered.
        c.edge_set_backend = EdgeSetBackend::kLockFree;
        c.metrics = false;
        c.output_dir = (base_dir / tag).string();
        c.output_format = OutputFormat::kBinary;
        return c;
    };

    obs::set_metrics_enabled(false);
    const RunReport bare = run_pipeline(config_for("bare"));
    ASSERT_TRUE(all_succeeded(bare));

    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::TraceSession::start();
    fs::create_directories(base_dir);
    const fs::path events_path = base_dir / "events.ndjson";
    ASSERT_TRUE(obs::set_log_file(events_path.string()));
    obs::set_log_level(obs::LogLevel::kDebug);
    obs::TelemetrySamplerConfig sampler_config;
    sampler_config.interval = std::chrono::milliseconds(5);
    sampler_config.ndjson_path = (base_dir / "telemetry.ndjson").string();
    obs::TelemetrySampler sampler(sampler_config);
    sampler.start();
    const RunReport instrumented = run_pipeline(config_for("instrumented"));
    (void)sampler.sample_now();
    sampler.stop();
    obs::close_log_sinks();
    obs::set_log_level(obs::LogLevel::kInfo);
    const std::string trace_json = obs::TraceSession::stop_to_string();
    obs::set_metrics_enabled(false);
    ASSERT_TRUE(all_succeeded(instrumented));

    ASSERT_EQ(bare.replicates.size(), instrumented.replicates.size());
    for (std::size_t r = 0; r < bare.replicates.size(); ++r) {
        EXPECT_EQ(slurp(bare.replicates[r].output_path),
                  slurp(instrumented.replicates[r].output_path))
            << "replicate " << r;
    }

    // The instrumented run actually measured: chain counters moved and the
    // trace holds replicate + superstep spans Perfetto can render.
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_GT(counter_value(snapshot, "chain.switches.attempted"), 0u);
    // Per-backend hashset labels: the run used lockfree, so its family
    // moved — and the locked family, never touched, was never registered
    // ("idle layer contributes nothing").
    EXPECT_GT(counter_value(snapshot, "hashset.lockfree.lookups"), 0u);
    for (const auto& [name, value] : snapshot.counters) {
        EXPECT_TRUE(name.rfind("hashset.locked.", 0) != 0)
            << name << " = " << value;
    }
    const JsonValue trace = parse_json(trace_json);
    bool saw_replicate = false, saw_superstep = false;
    for (const JsonValue& event : trace.find("traceEvents")->array_items) {
        if (event.string_member("name") == "replicate") saw_replicate = true;
        if (event.string_member("name") == "superstep") saw_superstep = true;
    }
    EXPECT_TRUE(saw_replicate);
    EXPECT_TRUE(saw_superstep);

    // The sampler ticked (50ms+ of run on a 5ms interval, plus the final
    // synchronous flush) with monotone sequence/timestamps and non-negative
    // rates; the NDJSON sink holds one parseable row per tick.
    EXPECT_GE(sampler.ticks(), 1u);
    std::uint64_t prev_seq = 0;
    for (const obs::TelemetryTick& tick : sampler.since(0)) {
        EXPECT_GT(tick.sequence, prev_seq);
        prev_seq = tick.sequence;
        for (const auto& [name, rate] : tick.counter_rates) {
            EXPECT_GE(rate, 0.0) << name;
        }
    }
    std::ifstream rows(sampler_config.ndjson_path);
    std::string row_line;
    std::size_t rows_seen = 0;
    while (std::getline(rows, row_line)) {
        const JsonValue row = parse_json(row_line);
        EXPECT_GT(row.uint_member("seq"), 0u);
        ++rows_seen;
    }
    EXPECT_GE(rows_seen, 1u);

    // The event log narrated the run's lifecycle.
    const std::string events = slurp(events_path.string());
    EXPECT_NE(events.find("\"event\": \"run_started\""), std::string::npos);
    EXPECT_NE(events.find("\"event\": \"run_done\""), std::string::npos);
    EXPECT_NE(events.find("\"event\": \"replicate_done\""), std::string::npos);
}

} // namespace
} // namespace gesmc
