// Tests for the observability subsystem: the sharded metrics registry
// (exact sums under a concurrent hammer — run under TSan in CI), the
// disabled-by-default contract, histogram bucketing, metrics JSON
// round-trips, Chrome trace_event emission, and the headline guarantee
// that instrumentation never changes sampled bytes.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "service/json.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the process flags as it found them (off): the tests in
/// this binary share the global registry and the trace singleton.
struct ObsFlagsGuard {
    ~ObsFlagsGuard() {
        obs::set_metrics_enabled(false);
        obs::TraceSession::stop();
    }
};

std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                            const std::string& name) {
    for (const auto& [n, v] : snapshot.counters) {
        if (n == name) return v;
    }
    ADD_FAILURE() << "counter not in snapshot: " << name;
    return 0;
}

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, DisabledRecordingIsANoOp) {
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(false);
    obs::Counter& counter =
        obs::MetricsRegistry::instance().counter("test.disabled.counter");
    obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge("test.disabled.gauge");
    counter.add(42);
    gauge.set(7);
    gauge.add(3);
    obs::MetricsRegistry::instance().histogram("test.disabled.hist").record(9);
    EXPECT_EQ(counter.total(), 0u);
    EXPECT_EQ(gauge.value(), 0);

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_FALSE(snapshot.enabled);
    EXPECT_EQ(counter_value(snapshot, "test.disabled.counter"), 0u);
}

TEST(Metrics, RegistryReturnsStableHandles) {
    obs::Counter& a = obs::MetricsRegistry::instance().counter("test.stable");
    obs::Counter& b = obs::MetricsRegistry::instance().counter("test.stable");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, ConcurrentHammerSumsExactly) {
    // The sharded counters' correctness contract: adds from many threads are
    // never lost, and a snapshot taken after joining sees the exact total.
    // Concurrent snapshot() calls while writers run must also be safe (they
    // may see partial sums, never torn ones) — TSan in CI checks that.
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::Counter& counter = obs::MetricsRegistry::instance().counter("test.hammer");
    obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge("test.hammer.gauge");
    obs::Histogram& hist =
        obs::MetricsRegistry::instance().histogram("test.hammer.hist");

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kAdds = 50'000;
    std::atomic<bool> stop_snapshots{false};
    std::thread snapshotter([&] {
        while (!stop_snapshots.load(std::memory_order_relaxed)) {
            (void)obs::MetricsRegistry::instance().snapshot();
        }
    });
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t) {
        writers.emplace_back([&counter, &gauge, &hist] {
            for (std::uint64_t i = 0; i < kAdds; ++i) {
                counter.add(1);
                counter.add(3);
                gauge.add(1);
                gauge.add(-1);
                hist.record(i & 1023);
            }
        });
    }
    for (std::thread& w : writers) w.join();
    stop_snapshots.store(true, std::memory_order_relaxed);
    snapshotter.join();

    EXPECT_EQ(counter.total(), kThreads * kAdds * 4);
    EXPECT_EQ(gauge.value(), 0);
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(counter_value(snapshot, "test.hammer"), kThreads * kAdds * 4);
    for (const obs::HistogramSnapshot& h : snapshot.histograms) {
        if (h.name != "test.hammer.hist") continue;
        EXPECT_EQ(h.count, kThreads * kAdds);
        EXPECT_EQ(h.max, 1023u);
    }
}

TEST(Metrics, HistogramBucketsByBitWidth) {
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::Histogram& hist =
        obs::MetricsRegistry::instance().histogram("test.buckets");
    hist.record(0);
    hist.record(1);
    hist.record(5);       // bit_width 3 -> bucket [4, 7]
    hist.record(1000000); // bit_width 20 -> bucket [524288, 1048575]

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    bool found = false;
    for (const obs::HistogramSnapshot& h : snapshot.histograms) {
        if (h.name != "test.buckets") continue;
        found = true;
        EXPECT_EQ(h.count, 4u);
        EXPECT_EQ(h.sum, 1000006u);
        EXPECT_EQ(h.max, 1000000u);
        ASSERT_EQ(h.buckets.size(), 4u);
        EXPECT_EQ(h.buckets[0].upper_bound, 0u);
        EXPECT_EQ(h.buckets[1].upper_bound, 1u);
        EXPECT_EQ(h.buckets[2].upper_bound, 7u);
        EXPECT_EQ(h.buckets[3].upper_bound, (1u << 20) - 1);
        for (const auto& bucket : h.buckets) EXPECT_EQ(bucket.count, 1u);
    }
    EXPECT_TRUE(found);
}

TEST(Metrics, SnapshotJsonRoundTripsThroughTheParser) {
    ObsFlagsGuard guard;
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::MetricsRegistry::instance().counter("test.json.counter").add(11);
    obs::MetricsRegistry::instance().gauge("test.json.gauge").set(4);
    obs::MetricsRegistry::instance().histogram("test.json.hist").record(100);

    std::ostringstream os;
    JsonWriter w(os);
    obs::write_metrics_json(w, obs::MetricsRegistry::instance().snapshot());
    const JsonValue doc = parse_json(os.str());
    EXPECT_TRUE(doc.find("enabled")->bool_value);
    EXPECT_EQ(doc.find("counters")->uint_member("test.json.counter"), 11u);
    EXPECT_EQ(doc.find("gauges")->uint_member("test.json.gauge"), 4u);
    const JsonValue* hist = doc.find("histograms")->find("test.json.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->uint_member("count"), 1u);
    EXPECT_EQ(hist->uint_member("sum"), 100u);
    EXPECT_EQ(hist->uint_member("max"), 100u);
}

// -------------------------------------------------------------------- trace

TEST(Trace, SpansOutsideASessionAreDropped) {
    ObsFlagsGuard guard;
    EXPECT_FALSE(obs::trace_enabled());
    { const obs::TraceSpan span("orphan", "test"); }
    obs::TraceSession::start();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

TEST(Trace, SpanStraddlingStopIsDropped) {
    // A span constructed in one session and destroyed in the next must not
    // record against the wrong epoch (its timestamps are meaningless there).
    ObsFlagsGuard guard;
    obs::TraceSession::start();
    auto straddler = std::make_unique<obs::TraceSpan>("straddler", "test");
    obs::TraceSession::stop();
    obs::TraceSession::start();
    straddler.reset();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

TEST(Trace, EmitsChromeTraceEventJson) {
    ObsFlagsGuard guard;
    obs::TraceSession::start();
    {
        const obs::TraceSpan outer("superstep", "core",
                                   {{"replicate", 2}, {"superstep", 7}});
        const obs::TraceSpan inner("lease.wait", "parallel", {{"width", 3}});
    }
    EXPECT_EQ(obs::TraceSession::event_count(), 2u);
    const std::string json = obs::TraceSession::stop_to_string();

    const JsonValue doc = parse_json(json);
    EXPECT_EQ(doc.string_member("displayTimeUnit"), "ms");
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_TRUE(events != nullptr && events->is_array());
    ASSERT_EQ(events->array_items.size(), 2u);
    bool saw_superstep = false, saw_wait = false;
    for (const JsonValue& event : events->array_items) {
        EXPECT_EQ(event.string_member("ph"), "X");
        EXPECT_GE(event.find("ts")->number_value, 0.0);
        EXPECT_GE(event.find("dur")->number_value, 0.0);
        EXPECT_EQ(event.uint_member("pid"), 1u);
        if (event.string_member("name") == "superstep") {
            saw_superstep = true;
            EXPECT_EQ(event.string_member("cat"), "core");
            EXPECT_EQ(event.find("args")->uint_member("replicate"), 2u);
            EXPECT_EQ(event.find("args")->uint_member("superstep"), 7u);
        } else if (event.string_member("name") == "lease.wait") {
            saw_wait = true;
            EXPECT_EQ(event.find("args")->uint_member("width"), 3u);
        }
    }
    EXPECT_TRUE(saw_superstep);
    EXPECT_TRUE(saw_wait);

    // The session ended: a fresh one starts empty.
    obs::TraceSession::start();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

TEST(Trace, ConcurrentSpansDuringStartStopAreRaceFree) {
    // Regression for a data race the lock-audit surfaced: TraceSpan
    // timestamps read the session epoch without the trace mutex while
    // start() rewrote it under the mutex.  The epoch is an atomic now;
    // spans racing session restarts must neither tear nor trip TSan
    // (this test runs in the TSan CI job).
    ObsFlagsGuard guard;
    std::atomic<bool> stop{false};
    std::vector<std::thread> spanners;
    spanners.reserve(4);
    for (int t = 0; t < 4; ++t) {
        spanners.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                const obs::TraceSpan span("racer", "test", {{"arg", 1}});
            }
        });
    }
    for (int cycle = 0; cycle < 50; ++cycle) {
        obs::TraceSession::start();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        obs::TraceSession::stop();
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : spanners) t.join();
    // Sessions stopped with spans in flight: nothing may leak into a new one.
    obs::TraceSession::start();
    EXPECT_EQ(obs::TraceSession::event_count(), 0u);
    obs::TraceSession::stop();
}

// ----------------------------------------------- instrumented-run identity

TEST(Obs, InstrumentationNeverChangesSampledBytes) {
    // The headline contract (and the reason every record path is gated on
    // one flag): a fully instrumented run — metrics AND tracing on — emits
    // replicate graphs byte-identical to a bare run of the same config.
    ObsFlagsGuard guard;
    const fs::path base_dir =
        fs::path(testing::TempDir()) / "gesmc_obs_identity";
    fs::remove_all(base_dir);
    const auto config_for = [&](const char* tag) {
        PipelineConfig c;
        c.input_kind = InputKind::kGenerator;
        c.generator = "powerlaw";
        c.gen_n = 400;
        c.gen_gamma = 2.2;
        c.algorithm = "par-global-es";
        c.supersteps = 5;
        c.replicates = 3;
        c.seed = 99;
        c.threads = 2;
        c.checkpoint_every = 2; // exercise the checkpoint + superstep spans
        c.metrics = false;
        c.output_dir = (base_dir / tag).string();
        c.output_format = OutputFormat::kBinary;
        return c;
    };

    obs::set_metrics_enabled(false);
    const RunReport bare = run_pipeline(config_for("bare"));
    ASSERT_TRUE(all_succeeded(bare));

    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::TraceSession::start();
    const RunReport instrumented = run_pipeline(config_for("instrumented"));
    const std::string trace_json = obs::TraceSession::stop_to_string();
    obs::set_metrics_enabled(false);
    ASSERT_TRUE(all_succeeded(instrumented));

    ASSERT_EQ(bare.replicates.size(), instrumented.replicates.size());
    for (std::size_t r = 0; r < bare.replicates.size(); ++r) {
        EXPECT_EQ(slurp(bare.replicates[r].output_path),
                  slurp(instrumented.replicates[r].output_path))
            << "replicate " << r;
    }

    // The instrumented run actually measured: chain counters moved and the
    // trace holds replicate + superstep spans Perfetto can render.
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_GT(counter_value(snapshot, "chain.switches.attempted"), 0u);
    const JsonValue trace = parse_json(trace_json);
    bool saw_replicate = false, saw_superstep = false;
    for (const JsonValue& event : trace.find("traceEvents")->array_items) {
        if (event.string_member("name") == "replicate") saw_replicate = true;
        if (event.string_member("name") == "superstep") saw_superstep = true;
    }
    EXPECT_TRUE(saw_replicate);
    EXPECT_TRUE(saw_superstep);
}

} // namespace
} // namespace gesmc
