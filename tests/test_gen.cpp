// Tests for the generators: G(n,p), power-law degrees, Havel–Hakimi,
// configuration model, alias table, and the NetRep-like corpus.
#include "gen/configuration_model.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "gen/havel_hakimi.hpp"
#include "gen/powerlaw.hpp"
#include "graph/metrics.hpp"
#include "rng/alias_table.hpp"
#include "rng/mt19937_64.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gesmc {
namespace {

// ---------------------------------------------------------------- alias

TEST(AliasTable, MatchesWeights) {
    const std::vector<double> w{1, 2, 3, 4};
    AliasTable table(w);
    Mt19937_64 gen(1);
    std::vector<int> counts(4, 0);
    constexpr int draws = 400000;
    for (int i = 0; i < draws; ++i) ++counts[table.sample(gen)];
    for (int i = 0; i < 4; ++i) {
        const double expect = draws * w[i] / 10.0;
        EXPECT_NEAR(counts[i], expect, 5 * std::sqrt(expect)) << i;
    }
}

TEST(AliasTable, SingleOutcome) {
    AliasTable table(std::vector<double>{5.0});
    Mt19937_64 gen(2);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(gen), 0u);
}

TEST(AliasTable, ZeroWeightNeverDrawn) {
    AliasTable table(std::vector<double>{0.0, 1.0, 0.0, 1.0});
    Mt19937_64 gen(3);
    for (int i = 0; i < 10000; ++i) {
        const auto s = table.sample(gen);
        EXPECT_TRUE(s == 1 || s == 3);
    }
}

TEST(AliasTable, RejectsInvalidInput) {
    EXPECT_THROW(AliasTable(std::vector<double>{}), Error);
    EXPECT_THROW(AliasTable(std::vector<double>{0, 0}), Error);
    EXPECT_THROW(AliasTable(std::vector<double>{-1, 2}), Error);
}

// ------------------------------------------------------------------ gnp

TEST(Gnp, EdgeCountConcentrates) {
    const node_t n = 2000;
    const double p = 0.01;
    const EdgeList g = generate_gnp(n, p, 42);
    const double expect = p * n * (n - 1) / 2.0;
    const double sd = std::sqrt(expect * (1 - p));
    EXPECT_NEAR(static_cast<double>(g.num_edges()), expect, 6 * sd);
    EXPECT_TRUE(g.is_simple());
}

TEST(Gnp, ExtremeProbabilities) {
    EXPECT_EQ(generate_gnp(100, 0.0, 1).num_edges(), 0u);
    EXPECT_EQ(generate_gnp(100, 1.0, 1).num_edges(), 100u * 99 / 2);
    EXPECT_EQ(generate_gnp(1, 0.5, 1).num_edges(), 0u);
}

TEST(Gnp, DeterministicAcrossThreadCounts) {
    const node_t n = 5000;
    const double p = 0.002;
    const EdgeList ref = generate_gnp(n, p, 7);
    for (unsigned threads : {2u, 3u, 4u}) {
        ThreadPool pool(threads);
        const EdgeList g = generate_gnp(n, p, 7, pool);
        EXPECT_EQ(g.keys(), ref.keys()) << "threads=" << threads;
    }
}

TEST(Gnp, SeedChangesGraph) {
    const EdgeList a = generate_gnp(1000, 0.01, 1);
    const EdgeList b = generate_gnp(1000, 0.01, 2);
    EXPECT_FALSE(a.same_graph(b));
}

TEST(Gnp, PerEdgeInclusionIsUniform) {
    // Each fixed pair must appear with probability ~p across seeds.
    const double p = 0.3;
    int hits = 0;
    constexpr int trials = 2000;
    for (int s = 0; s < trials; ++s) {
        const EdgeList g = generate_gnp(30, p, 1000 + s);
        const auto keys = g.sorted_keys();
        hits += std::binary_search(keys.begin(), keys.end(), edge_key(3, 17)) ? 1 : 0;
    }
    EXPECT_NEAR(hits, trials * p, 5 * std::sqrt(trials * p * (1 - p)));
}

TEST(Gnp, ProbabilityForTargetEdges) {
    const double p = gnp_probability_for_edges(1000, 5000);
    EXPECT_NEAR(p * 1000 * 999 / 2, 5000, 1e-6);
    EXPECT_EQ(gnp_probability_for_edges(10, 1000000), 1.0);
}

// ------------------------------------------------------------- power law

TEST(Powerlaw, MaxDegreeBound) {
    EXPECT_EQ(powerlaw_max_degree(1024, 3.0), 32u);          // n^(1/2)
    EXPECT_EQ(powerlaw_max_degree(1 << 12, 2.0), (1u << 12) - 1); // capped at n-1
}

TEST(Powerlaw, SampleRespectsBounds) {
    PowerlawDistribution dist(2, 50, 2.5);
    Mt19937_64 gen(4);
    for (int i = 0; i < 10000; ++i) {
        const auto d = dist.sample(gen);
        EXPECT_GE(d, 2u);
        EXPECT_LE(d, 50u);
    }
}

TEST(Powerlaw, TailFollowsExponent) {
    // Empirical ratio P[X=1]/P[X=2] must be ~2^gamma.
    const double gamma = 2.5;
    PowerlawDistribution dist(1, 100, gamma);
    Mt19937_64 gen(5);
    int ones = 0, twos = 0;
    constexpr int draws = 500000;
    for (int i = 0; i < draws; ++i) {
        const auto d = dist.sample(gen);
        ones += (d == 1);
        twos += (d == 2);
    }
    const double ratio = static_cast<double>(ones) / twos;
    EXPECT_NEAR(ratio, std::pow(2.0, gamma), 0.25);
}

TEST(Powerlaw, DegreesAreGraphicalAndEvenSum) {
    for (const double gamma : {2.01, 2.2, 2.9}) {
        const DegreeSequence seq = sample_powerlaw_degrees(3000, gamma, 6);
        EXPECT_TRUE(seq.is_graphical()) << gamma;
        EXPECT_EQ(seq.degree_sum() % 2, 0u);
        EXPECT_LE(seq.max_degree(), powerlaw_max_degree(3000, gamma));
    }
}

TEST(Powerlaw, Deterministic) {
    const DegreeSequence a = sample_powerlaw_degrees(500, 2.3, 9);
    const DegreeSequence b = sample_powerlaw_degrees(500, 2.3, 9);
    EXPECT_EQ(a.degrees(), b.degrees());
}

// ------------------------------------------------------------ havel-hakimi

TEST(HavelHakimi, RealizesExactDegrees) {
    const std::vector<std::uint32_t> want{3, 2, 2, 2, 1, 4, 1, 1};
    const EdgeList g = havel_hakimi(DegreeSequence{want});
    EXPECT_TRUE(g.is_simple());
    EXPECT_EQ(g.degrees(), want);
}

TEST(HavelHakimi, ThrowsOnNonGraphical) {
    EXPECT_THROW(havel_hakimi(DegreeSequence{{3, 1}}), Error);
    EXPECT_THROW(havel_hakimi(DegreeSequence{{1}}), Error);
}

TEST(HavelHakimi, HandlesZeroDegrees) {
    const EdgeList g = havel_hakimi(DegreeSequence{{0, 2, 0, 1, 1}});
    EXPECT_EQ(g.degrees(), (std::vector<std::uint32_t>{0, 2, 0, 1, 1}));
}

TEST(HavelHakimi, PowerlawSequencesUpTo20k) {
    const DegreeSequence seq = sample_powerlaw_degrees(20000, 2.1, 11);
    const EdgeList g = havel_hakimi(seq);
    EXPECT_TRUE(g.is_simple());
    EXPECT_EQ(g.degrees(), seq.degrees());
}

// ---------------------------------------------------- configuration model

TEST(ConfigurationModel, PairingPreservesStubCounts) {
    const DegreeSequence seq({2, 3, 1, 2});
    const auto pairs = configuration_model_pairing(seq, 12);
    EXPECT_EQ(pairs.size(), 4u);
    std::vector<std::uint32_t> deg(4, 0);
    for (const Edge e : pairs) {
        ++deg[e.u];
        ++deg[e.v];
    }
    EXPECT_EQ(deg, seq.degrees());
}

TEST(ConfigurationModel, ErasedIsSimpleSubsetOfDegrees) {
    const DegreeSequence seq = sample_powerlaw_degrees(1000, 2.2, 13);
    const EdgeList g = configuration_model_erased(seq, 13);
    EXPECT_TRUE(g.is_simple());
    const auto got = g.degrees();
    for (std::size_t v = 0; v < got.size(); ++v) EXPECT_LE(got[v], seq.degrees()[v]);
}

TEST(ConfigurationModel, RejectionProducesExactSimpleGraph) {
    const DegreeSequence seq({2, 2, 2, 2}); // 4-cycle family
    const EdgeList g = configuration_model_rejection(seq, 14);
    EXPECT_TRUE(g.is_simple());
    EXPECT_EQ(g.degrees(), seq.degrees());
}

// ------------------------------------------------------------------ corpus

TEST(Corpus, GridDegreesAndSize) {
    const EdgeList g = generate_grid(3, 4);
    EXPECT_EQ(g.num_nodes(), 12u);
    EXPECT_EQ(g.num_edges(), 3u * 3 + 2 * 4); // 17
    const auto deg = g.degrees();
    EXPECT_EQ(*std::max_element(deg.begin(), deg.end()), 4u);
    EXPECT_EQ(*std::min_element(deg.begin(), deg.end()), 2u);
    EXPECT_EQ(connected_components(Adjacency(g)), 1u);
}

TEST(Corpus, RegularGraph) {
    const EdgeList g = generate_regular(100, 6);
    const auto deg = g.degrees();
    for (const auto d : deg) EXPECT_EQ(d, 6u);
    EXPECT_TRUE(g.is_simple());
    EXPECT_THROW(generate_regular(5, 3), Error); // odd n*d
}

TEST(Corpus, TestCorpusIsWellFormed) {
    const auto corpus = corpus_test();
    EXPECT_GE(corpus.size(), 5u);
    for (const auto& entry : corpus) {
        EXPECT_FALSE(entry.name.empty());
        EXPECT_TRUE(entry.graph.is_simple()) << entry.name;
        EXPECT_GE(entry.graph.num_edges(), 100u) << entry.name;
    }
}

TEST(Corpus, Deterministic) {
    const auto a = corpus_test();
    const auto b = corpus_test();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].graph.keys(), b[i].graph.keys()) << a[i].name;
    }
}

} // namespace
} // namespace gesmc
