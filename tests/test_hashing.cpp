// Tests for the hashing substrate: hash functions, sequential robin-hood
// set, concurrent edge set (incl. ticket semantics), dependency table.
#include "hashing/concurrent_edge_set.hpp"
#include "hashing/dependency_table.hpp"
#include "hashing/edge_set_backend.hpp"
#include "hashing/hash.hpp"
#include "hashing/lockfree_edge_set.hpp"
#include "hashing/robin_set.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/bounded.hpp"
#include "rng/mt19937_64.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace gesmc {
namespace {

// ------------------------------------------------------------------ hash

TEST(Hash, HardwareAndSoftwareCrcAgree) {
#if defined(__SSE4_2__)
    Mt19937_64 gen(1);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t key = gen();
        const auto hw = static_cast<std::uint32_t>(_mm_crc32_u64(0xB2D05E13u, key));
        EXPECT_EQ(hw, detail::crc32c_sw(0xB2D05E13u, key)) << key;
    }
#else
    GTEST_SKIP() << "no SSE4.2 on this target";
#endif
}

TEST(Hash, NoObviousCollisionsOnSequentialKeys) {
    std::set<std::uint64_t> crc, mix;
    for (std::uint64_t i = 1; i <= 50000; ++i) {
        crc.insert(crc_hash(i));
        mix.insert(mix_hash(i));
    }
    EXPECT_EQ(crc.size(), 50000u);
    EXPECT_EQ(mix.size(), 50000u);
}

TEST(Hash, HighBitsAreSpread) {
    // Tables index with the top bits; sequential keys must not cluster.
    constexpr unsigned kBuckets = 64;
    std::vector<int> hist(kBuckets, 0);
    constexpr int n = 64000;
    for (std::uint64_t i = 1; i <= n; ++i) ++hist[edge_hash(i) >> 58];
    const double expect = static_cast<double>(n) / kBuckets;
    for (int c : hist) {
        EXPECT_GT(c, expect * 0.7);
        EXPECT_LT(c, expect * 1.3);
    }
}

// ------------------------------------------------------------- robin set

TEST(RobinSet, BasicInsertContainsErase) {
    RobinSet set;
    EXPECT_EQ(set.size(), 0u);
    EXPECT_FALSE(set.contains(42));
    EXPECT_TRUE(set.insert(42));
    EXPECT_FALSE(set.insert(42));
    EXPECT_TRUE(set.contains(42));
    EXPECT_EQ(set.size(), 1u);
    EXPECT_TRUE(set.erase(42));
    EXPECT_FALSE(set.erase(42));
    EXPECT_FALSE(set.contains(42));
    EXPECT_EQ(set.size(), 0u);
}

TEST(RobinSet, RejectsReservedKey) { EXPECT_THROW(RobinSet{}.insert(0), Error); }

TEST(RobinSet, GrowsBeyondInitialCapacity) {
    RobinSet set(4);
    for (std::uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(set.insert(i));
    EXPECT_EQ(set.size(), 10000u);
    EXPECT_LE(set.load_factor(), 0.5);
    for (std::uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(set.contains(i));
    EXPECT_FALSE(set.contains(10001));
}

TEST(RobinSet, FuzzAgainstStdUnorderedSet) {
    // Mixed workload mirroring edge switching: ~equal parts insert, erase,
    // and lookup on a small key universe to force collisions and shifts.
    Mt19937_64 gen(7);
    RobinSet set;
    std::unordered_set<std::uint64_t> ref;
    for (int op = 0; op < 200000; ++op) {
        const std::uint64_t key = 1 + uniform_below(gen, 512);
        switch (uniform_below(gen, 3)) {
        case 0:
            ASSERT_EQ(set.insert(key), ref.insert(key).second) << "op " << op;
            break;
        case 1:
            ASSERT_EQ(set.erase(key), ref.erase(key) > 0) << "op " << op;
            break;
        default:
            ASSERT_EQ(set.contains(key), ref.count(key) > 0) << "op " << op;
        }
        ASSERT_EQ(set.size(), ref.size());
    }
    std::size_t enumerated = 0;
    set.for_each([&](std::uint64_t k) {
        ++enumerated;
        EXPECT_TRUE(ref.count(k));
    });
    EXPECT_EQ(enumerated, ref.size());
}

TEST(RobinSet, PreparedContainsMatchesPlain) {
    Mt19937_64 gen(8);
    RobinSet set(4096);
    set.reserve(4096);
    for (int i = 0; i < 2000; ++i) set.insert(1 + uniform_below(gen, 8192));
    EXPECT_FALSE(set.would_rehash_on_insert());
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = 1 + uniform_below(gen, 8192);
        const auto prepared = set.prepare(key);
        EXPECT_EQ(set.contains_prepared(prepared), set.contains(key));
    }
}

TEST(RobinSet, DuplicateInsertNeverRehashes) {
    // Fill the set right up to the growth threshold, then re-insert present
    // keys: the table must not grow (a rehash would invalidate outstanding
    // Prepared prefetch handles even though nothing was added).
    RobinSet set;
    std::uint64_t key = 0;
    while (!set.would_rehash_on_insert()) set.insert(++key);
    const std::uint64_t buckets = set.bucket_count();
    const std::uint64_t size = set.size();
    for (std::uint64_t k = 1; k <= key; ++k) {
        const auto prepared = set.prepare(k);
        EXPECT_FALSE(set.insert(k));
        // The handle prepared before the duplicate insert must stay valid.
        EXPECT_TRUE(set.contains_prepared(prepared));
    }
    EXPECT_EQ(set.bucket_count(), buckets);
    EXPECT_EQ(set.size(), size);
    // The next *novel* insert is what grows the table.
    EXPECT_TRUE(set.insert(key + 1));
    EXPECT_GT(set.bucket_count(), buckets);
}

TEST(RobinSet, ClearEmptiesTheSet) {
    RobinSet set;
    for (std::uint64_t i = 1; i <= 100; ++i) set.insert(i);
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    for (std::uint64_t i = 1; i <= 100; ++i) EXPECT_FALSE(set.contains(i));
}

// --------------------------------------------------- concurrent edge set
//
// Every behavioral test runs against BOTH backends (locked striped-CAS and
// lock-free bounded-PSL): the backend is a pure performance knob, so any
// observable divergence is a bug.  Backend-specific mechanics (PSL bound,
// epoch reclamation) have their own tests below the fixture.

class ConcurrentEdgeSetBackends
    : public ::testing::TestWithParam<EdgeSetBackend> {
protected:
    [[nodiscard]] ConcurrentEdgeSet make_set(std::uint64_t max_live) const {
        return ConcurrentEdgeSet(max_live, GetParam());
    }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, ConcurrentEdgeSetBackends,
    ::testing::Values(EdgeSetBackend::kLocked, EdgeSetBackend::kLockFree),
    [](const ::testing::TestParamInfo<EdgeSetBackend>& info) {
        return to_string(info.param);
    });

TEST_P(ConcurrentEdgeSetBackends, SequentialSemantics) {
    auto set = make_set(1024);
    EXPECT_EQ(set.backend(), GetParam());
    EXPECT_TRUE(set.insert(5));
    EXPECT_FALSE(set.insert(5));
    EXPECT_TRUE(set.contains(5));
    EXPECT_FALSE(set.contains(6));
    EXPECT_TRUE(set.erase(5));
    EXPECT_FALSE(set.erase(5));
    EXPECT_EQ(set.size(), 0u);
}

TEST_P(ConcurrentEdgeSetBackends, RejectsOutOfDomainKeys) {
    auto set = make_set(16);
    EXPECT_THROW(set.insert(0), Error);
    EXPECT_THROW(set.insert(ConcurrentEdgeSet::kTomb), Error);
    EXPECT_THROW(set.insert(1ULL << 60), Error);
}

TEST_P(ConcurrentEdgeSetBackends, TombstoneChurnKeepsProbesBounded) {
    auto set = make_set(256);
    Mt19937_64 gen(9);
    std::unordered_set<std::uint64_t> ref;
    // Long insert/erase churn at constant live size; without tombstone
    // reclamation via rebuild this would exhaust the table.
    for (int round = 0; round < 30000; ++round) {
        const std::uint64_t key = 1 + uniform_below(gen, 1024);
        if (ref.count(key)) {
            EXPECT_TRUE(set.erase(key));
            ref.erase(key);
        } else if (ref.size() < 256) {
            EXPECT_TRUE(set.insert(key));
            ref.insert(key);
        }
        set.maybe_rebuild();
        ASSERT_EQ(set.size(), ref.size());
    }
    for (const auto key : ref) EXPECT_TRUE(set.contains(key));
}

TEST_P(ConcurrentEdgeSetBackends, ForEachEnumeratesExactlyLiveKeys) {
    auto set = make_set(64);
    std::set<std::uint64_t> expect;
    for (std::uint64_t k = 10; k < 50; ++k) {
        set.insert(k);
        if (k % 3 == 0) {
            set.erase(k);
        } else {
            expect.insert(k);
        }
    }
    std::set<std::uint64_t> got;
    set.for_each([&](std::uint64_t k) { got.insert(k); });
    EXPECT_EQ(got, expect);
}

TEST_P(ConcurrentEdgeSetBackends, SampleUniformChiSquare) {
    auto set = make_set(64);
    for (std::uint64_t k = 1; k <= 10; ++k) set.insert(k);
    Mt19937_64 gen(10);
    std::vector<int> counts(11, 0);
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i) ++counts[set.sample_uniform(gen)];
    const double expect = draws / 10.0;
    double chi2 = 0;
    for (std::uint64_t k = 1; k <= 10; ++k)
        chi2 += (counts[k] - expect) * (counts[k] - expect) / expect;
    EXPECT_LT(chi2, 27.9); // 9 dof, 99.9%
}

/// URBG wrapper counting invocations — the regression instrument for the
/// sample_uniform probe cap.
struct CountingGen {
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    Mt19937_64 inner{123};
    std::uint64_t calls = 0;
    result_type operator()() {
        ++calls;
        return inner();
    }
};

TEST_P(ConcurrentEdgeSetBackends, SampleUniformBoundedWorkUnderTombstoneFlood) {
    // 255 of 256 keys erased with rebuild deliberately deferred: random
    // bucket draws hit the one live key with p = 1/1024.  The unbounded
    // rejection sampler needed ~2000 RNG calls per draw here; the capped
    // sampler must stay under kMaxSampleDraws + the fallback's one index
    // draw (with a small rejection-sampling allowance).
    auto set = make_set(256);
    for (std::uint64_t k = 1; k <= 256; ++k) ASSERT_TRUE(set.insert(k));
    for (std::uint64_t k = 1; k <= 255; ++k) ASSERT_TRUE(set.erase(k));
    ASSERT_EQ(set.size(), 1u);
    CountingGen gen;
    constexpr int kSamples = 50;
    for (int i = 0; i < kSamples; ++i) {
        EXPECT_EQ(set.sample_uniform(gen), 256u);
    }
    EXPECT_LT(gen.calls, kSamples * 200u);
}

TEST_P(ConcurrentEdgeSetBackends, ConcurrentDistinctKeyInsertsAllLand) {
    constexpr unsigned p = 4;
    constexpr std::uint64_t per_thread = 20000;
    auto set = make_set(p * per_thread);
    ThreadPool pool(p);
    pool.run([&](unsigned tid) {
        for (std::uint64_t i = 0; i < per_thread; ++i) {
            EXPECT_TRUE(set.insert_unique(1 + tid * per_thread + i));
        }
    });
    EXPECT_EQ(set.size(), p * per_thread);
    for (std::uint64_t k = 1; k <= p * per_thread; ++k) ASSERT_TRUE(set.contains(k));
}

TEST_P(ConcurrentEdgeSetBackends, ConcurrentSameKeyInsertsNeverDuplicate) {
    // All threads hammer the same small key set with contended inserts;
    // exactly one insert per key must win per round.
    constexpr unsigned p = 4;
    auto set = make_set(512);
    ThreadPool pool(p);
    for (int round = 0; round < 200; ++round) {
        std::atomic<int> winners{0};
        pool.run([&](unsigned) {
            for (std::uint64_t key = 1; key <= 64; ++key) {
                if (set.insert(key)) winners.fetch_add(1);
            }
        });
        EXPECT_EQ(winners.load(), 64);
        EXPECT_EQ(set.size(), 64u);
        std::atomic<int> erasers{0};
        pool.run([&](unsigned) {
            for (std::uint64_t key = 1; key <= 64; ++key) {
                if (set.erase(key)) erasers.fetch_add(1);
            }
        });
        EXPECT_EQ(erasers.load(), 64);
        EXPECT_EQ(set.size(), 0u);
        set.maybe_rebuild();
    }
}

TEST_P(ConcurrentEdgeSetBackends, TicketLockingProtocol) {
    auto set = make_set(64);
    set.insert(100);
    auto slot = set.try_lock(100, /*tid=*/0);
    ASSERT_TRUE(slot.has_value());
    // A second locker must fail while the ticket is held.
    EXPECT_FALSE(set.try_lock(100, 1).has_value());
    // The key is still visible to lock-free readers.
    EXPECT_TRUE(set.contains(100));
    set.unlock(*slot);
    auto slot2 = set.try_lock(100, 1);
    ASSERT_TRUE(slot2.has_value());
    set.erase_locked(*slot2);
    EXPECT_FALSE(set.contains(100));
    EXPECT_EQ(set.size(), 0u);
}

TEST_P(ConcurrentEdgeSetBackends, TryLockAbsentKeyFails) {
    auto set = make_set(64);
    EXPECT_FALSE(set.try_lock(7, 0).has_value());
}

TEST_P(ConcurrentEdgeSetBackends, InsertAndLockSemantics) {
    auto set = make_set(64);
    std::uint64_t slot = 0;
    EXPECT_EQ(set.try_insert_and_lock(9, 0, slot), ConcurrentEdgeSet::InsertLock::kInserted);
    // Inserted-and-locked: visible, but not lockable by others.
    EXPECT_TRUE(set.contains(9));
    std::uint64_t other = 0;
    EXPECT_EQ(set.try_insert_and_lock(9, 1, other),
              ConcurrentEdgeSet::InsertLock::kExistsLocked);
    EXPECT_FALSE(set.try_lock(9, 1).has_value());
    set.unlock(slot);
    EXPECT_EQ(set.try_insert_and_lock(9, 1, other), ConcurrentEdgeSet::InsertLock::kExists);
}

TEST_P(ConcurrentEdgeSetBackends, ConcurrentTicketContention) {
    // p threads repeatedly try to grab the ticket for one key, mutate a
    // guarded counter, and release. The counter must never tear.
    constexpr unsigned p = 4;
    auto set = make_set(64);
    set.insert(5);
    ThreadPool pool(p);
    std::uint64_t guarded = 0; // protected by the key-5 ticket
    std::atomic<std::uint64_t> acquisitions{0};
    pool.run([&](unsigned tid) {
        for (int i = 0; i < 20000;) {
            auto slot = set.try_lock(5, tid);
            if (!slot) {
                std::this_thread::yield();
                continue;
            }
            guarded += 1;
            acquisitions.fetch_add(1);
            set.unlock(*slot);
            ++i;
        }
    });
    EXPECT_EQ(guarded, acquisitions.load());
    EXPECT_EQ(guarded, 4 * 20000u);
}

TEST_P(ConcurrentEdgeSetBackends, ParallelInsertEraseChurnDistinctRanges) {
    // Each thread owns a disjoint key range and churns inserts/erases with
    // the unique API; sizes must reconcile at the end.  Rounds mirror chain
    // supersteps: the lock-free backend reclaims tombstones only through a
    // quiescent rebuild, so unbounded churn without maybe_rebuild() is
    // outside both backends' contract.
    constexpr unsigned p = 4;
    auto set = make_set(4 * 4096);
    ThreadPool pool(p);
    std::vector<std::vector<bool>> present(p, std::vector<bool>(4096, false));
    std::vector<Mt19937_64> gens;
    for (unsigned tid = 0; tid < p; ++tid) gens.emplace_back(tid);
    for (int round = 0; round < 40; ++round) {
        pool.run([&](unsigned tid) {
            auto& mine = present[tid];
            auto& gen = gens[tid];
            const std::uint64_t base = 1 + tid * 4096;
            for (int op = 0; op < 2500; ++op) {
                const std::uint64_t off = uniform_below(gen, 4096);
                if (mine[off]) {
                    ASSERT_TRUE(set.erase_unique(base + off));
                    mine[off] = false;
                } else {
                    ASSERT_TRUE(set.insert_unique(base + off));
                    mine[off] = true;
                }
            }
        });
        set.maybe_rebuild();
    }
    for (unsigned tid = 0; tid < p; ++tid) {
        const std::uint64_t base = 1 + tid * 4096;
        for (std::uint64_t off = 0; off < 4096; ++off) {
            ASSERT_EQ(set.contains(base + off), present[tid][off]);
        }
    }
}

TEST_P(ConcurrentEdgeSetBackends, MultiWriterHammer) {
    // TSan workhorse: p threads mix contended inserts, erases, lookups and
    // ticket ops over one small key universe.  The only invariant a racy
    // history must preserve: size() equals successful inserts minus
    // successful erases.  Rounds are separated by pool.run barriers so the
    // main thread can rebuild at quiescent points, like a chain superstep.
    constexpr unsigned p = 4;
    auto set = make_set(512);
    ThreadPool pool(p);
    std::atomic<std::int64_t> net{0};
    for (int round = 0; round < 40; ++round) {
        pool.run([&](unsigned tid) {
            Mt19937_64 gen(round * p + tid);
            for (int op = 0; op < 300; ++op) {
                const std::uint64_t key = 1 + uniform_below(gen, 512);
                switch (uniform_below(gen, 4)) {
                case 0:
                    if (set.insert(key)) net.fetch_add(1);
                    break;
                case 1:
                    if (set.erase(key)) net.fetch_sub(1);
                    break;
                case 2: {
                    auto slot = set.try_lock(key, tid);
                    if (slot) {
                        if (op % 2 == 0) {
                            set.erase_locked(*slot);
                            net.fetch_sub(1);
                        } else {
                            set.unlock(*slot);
                        }
                    }
                    break;
                }
                default: {
                    const bool hit = set.contains(key);
                    (void)hit;
                }
                }
            }
        });
        ASSERT_EQ(set.size(), static_cast<std::uint64_t>(net.load()))
            << "round " << round;
        set.maybe_rebuild();
    }
}

// ------------------------------------------ lock-free backend mechanics

TEST(LockFreeEdgeSet, PslBoundEnforcedAndRestoredByRebuild) {
    // 80 keys whose home buckets all land in [0, 8) of a 256-bucket table:
    // placements pile past home + kMaxPsl, which must raise the probe
    // limit (keeping every key findable) and flip needs_rebuild(), and the
    // rebuild must restore the bound.
    ConcurrentEdgeSet set(64, EdgeSetBackend::kLockFree);
    ASSERT_EQ(set.bucket_count(), 256u);
    const unsigned shift = 56; // 64 - log2(256): the table's home shift
    std::vector<std::uint64_t> clustered;
    for (std::uint64_t k = 1; clustered.size() < 80; ++k) {
        if ((edge_hash(k) >> shift) < 8) clustered.push_back(k);
    }
    for (const auto k : clustered) ASSERT_TRUE(set.insert(k));

    auto* lockfree = set.lockfree_backend();
    ASSERT_NE(lockfree, nullptr);
    EXPECT_TRUE(lockfree->psl_overflowed());
    EXPECT_TRUE(set.needs_rebuild());
    EXPECT_GE(set.max_psl(), LockFreeEdgeSet::kMaxPsl);
    // Overflow mode is slow, not wrong: every key stays reachable.
    for (const auto k : clustered) ASSERT_TRUE(set.contains(k));

    set.rebuild();
    EXPECT_FALSE(lockfree->psl_overflowed());
    EXPECT_FALSE(set.needs_rebuild());
    EXPECT_EQ(set.size(), clustered.size());
    for (const auto k : clustered) ASSERT_TRUE(set.contains(k));
    // Post-rebuild placements honor the bound again (psl_max restarts at
    // the rebuild and only tracks new placements).
    ASSERT_TRUE(set.insert(1ULL << 40));
    EXPECT_LT(set.max_psl(), LockFreeEdgeSet::kMaxPsl);
}

TEST(LockFreeEdgeSet, EpochReclamationLetsGuardedReadersOutliveRebuilds) {
    // Readers hold ReadGuards across continuous table churn + rebuilds.
    // Keys 1..512 are immortal — a reader observing one missing means it
    // raced a table swap wrongly; ASan/TSan additionally catch any
    // use-after-free of a retired table.  After the readers leave, a
    // collect() must be able to free every retired table.
    ConcurrentEdgeSet set(1024, EdgeSetBackend::kLockFree);
    for (std::uint64_t k = 1; k <= 1024; ++k) ASSERT_TRUE(set.insert(k));
    auto* lockfree = set.lockfree_backend();
    ASSERT_NE(lockfree, nullptr);

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&, r] {
            Mt19937_64 gen(77 + r);
            while (!stop.load(std::memory_order_relaxed)) {
                ConcurrentEdgeSet::ReadGuard guard(set);
                for (int i = 0; i < 64; ++i) {
                    const std::uint64_t key = 1 + uniform_below(gen, 512);
                    EXPECT_TRUE(set.contains(key)) << key;
                }
            }
        });
    }

    // Churn the mortal half and force a rebuild every round.
    for (int round = 0; round < 50; ++round) {
        for (std::uint64_t k = 513; k <= 1024; ++k) {
            ASSERT_TRUE(set.erase(k));
        }
        for (std::uint64_t k = 513; k <= 1024; ++k) {
            ASSERT_TRUE(set.insert(k));
        }
        set.rebuild();
    }

    stop.store(true);
    for (auto& t : readers) t.join();
    lockfree->epochs().collect();
    EXPECT_EQ(lockfree->retired_tables(), 0u);
    for (std::uint64_t k = 1; k <= 1024; ++k) ASSERT_TRUE(set.contains(k));
}

// ------------------------------------------------------ dependency table

TEST(DependencyTable, EraseRegistrationAndLookup) {
    DependencyTable table(64);
    ThreadPool pool(1);
    table.begin_superstep(64, pool);
    EXPECT_EQ(table.lookup_erase(42), DependencyTable::kNone);
    table.register_erase(42, 7, 0);
    EXPECT_EQ(table.lookup_erase(42), 7u);
    EXPECT_EQ(table.lookup_erase(43), DependencyTable::kNone);
}

TEST(DependencyTable, InsertMinSkipsIllegal) {
    DependencyTable table(64);
    ThreadPool pool(1);
    table.begin_superstep(64, pool);
    std::vector<std::atomic<SwitchStatus>> status(64);
    for (auto& s : status) s.store(SwitchStatus::kUndecided);

    // Status changes take effect at the next round id (cache granularity).
    std::uint32_t round = 1;
    table.register_insert(99, 5, 0, 0);
    table.register_insert(99, 3, 1, 0);
    table.register_insert(99, 9, 0, 0);
    EXPECT_EQ(table.lookup_insert_min(99, status, round), 3u);
    status[3].store(SwitchStatus::kIllegal);
    EXPECT_EQ(table.lookup_insert_min(99, status, ++round), 5u);
    status[5].store(SwitchStatus::kIllegal);
    EXPECT_EQ(table.lookup_insert_min(99, status, ++round), 9u);
    status[9].store(SwitchStatus::kIllegal);
    EXPECT_EQ(table.lookup_insert_min(99, status, ++round), DependencyTable::kNone);
    EXPECT_EQ(table.lookup_insert_min(100, status, round), DependencyTable::kNone);
}

TEST(DependencyTable, InsertMinCachePerRound) {
    DependencyTable table(64);
    ThreadPool pool(1);
    table.begin_superstep(64, pool);
    std::vector<std::atomic<SwitchStatus>> status(64);
    for (auto& s : status) s.store(SwitchStatus::kUndecided);

    table.register_insert(42, 2, 0, 0);
    table.register_insert(42, 7, 0, 0);
    EXPECT_EQ(table.lookup_insert_min(42, status, 1), 2u);
    // Same round: the memoized value is served even after a transition —
    // callers re-read status[q] and treat stale minima as "wait".
    status[2].store(SwitchStatus::kIllegal);
    EXPECT_EQ(table.lookup_insert_min(42, status, 1), 2u);
    // Next round: recomputed.
    EXPECT_EQ(table.lookup_insert_min(42, status, 2), 7u);
}

TEST(DependencyTable, ResetClearsPreviousSuperstep) {
    DependencyTable table(64);
    ThreadPool pool(2);
    std::vector<std::atomic<SwitchStatus>> status(64);
    for (auto& s : status) s.store(SwitchStatus::kUndecided);

    table.begin_superstep(64, pool);
    table.register_erase(10, 1, 0);
    table.register_insert(11, 2, 0, 0);
    table.begin_superstep(64, pool);
    EXPECT_EQ(table.lookup_erase(10), DependencyTable::kNone);
    EXPECT_EQ(table.lookup_insert_min(11, status, 1), DependencyTable::kNone);
}

TEST(DependencyTable, SameKeyBothRoles) {
    // An edge can be erased by one switch and (re)inserted by others.
    DependencyTable table(64);
    ThreadPool pool(1);
    table.begin_superstep(64, pool);
    std::vector<std::atomic<SwitchStatus>> status(64);
    for (auto& s : status) s.store(SwitchStatus::kUndecided);
    table.register_erase(77, 2, 0);
    table.register_insert(77, 4, 1, 0);
    EXPECT_EQ(table.lookup_erase(77), 2u);
    EXPECT_EQ(table.lookup_insert_min(77, status, 1), 4u);
}

TEST(DependencyTable, ConcurrentRegistrationIsComplete) {
    // Many threads register inserts for overlapping keys; every tuple must
    // be reachable through the per-key list.
    constexpr unsigned p = 4;
    constexpr std::uint32_t switches = 20000;
    DependencyTable table(switches);
    ThreadPool pool(p);
    table.begin_superstep(switches, pool);
    std::vector<std::atomic<SwitchStatus>> status(switches);
    for (auto& s : status) s.store(SwitchStatus::kUndecided);

    // Key layout: key = 1 + (k % 97) — about 206 switches share each key.
    pool.for_chunks(0, switches, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t k = lo; k < hi; ++k) {
            table.register_insert(1 + (k % 97), static_cast<std::uint32_t>(k), 0, tid);
        }
    });
    // Minimum per key must be the smallest switch index with that residue,
    // i.e. the residue itself.
    for (std::uint64_t key = 1; key <= 97; ++key) {
        EXPECT_EQ(table.lookup_insert_min(key, status, 1), key - 1);
    }
    // Marking the minimum illegal exposes the next one (residue + 97).
    status[13].store(SwitchStatus::kIllegal);
    EXPECT_EQ(table.lookup_insert_min(14, status, 2), 13u + 97u);
}

TEST(DependencyTable, ConcurrentMixedRolesStress) {
    constexpr unsigned p = 4;
    constexpr std::uint32_t switches = 50000;
    DependencyTable table(switches);
    ThreadPool pool(p);
    table.begin_superstep(switches, pool);

    // Every switch k erases key 2k+1 (unique) and inserts key 1+(k%1009).
    pool.for_chunks(0, switches, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t k = lo; k < hi; ++k) {
            table.register_erase(2 * k + 1, static_cast<std::uint32_t>(k), tid);
            table.register_insert(1 + (k % 1009), static_cast<std::uint32_t>(k), 1, tid);
        }
    });
    for (std::uint64_t k = 0; k < switches; k += 997) {
        ASSERT_EQ(table.lookup_erase(2 * k + 1), k);
    }
}

} // namespace
} // namespace gesmc
