// Core chain tests: tau/decide semantics (Definition 1, Figure 1), the
// exactness of ParallelSuperstep / ParES / ParGlobalES vs their sequential
// counterparts, invariants of every chain, and chi-square uniformity of the
// stationary distribution on fully enumerated state spaces (Theorem 1).
#include "core/adj_list_es.hpp"
#include "core/chain.hpp"
#include "core/edge_switch.hpp"
#include "core/parallel_superstep.hpp"
#include "core/par_es.hpp"
#include "core/par_global_es.hpp"
#include "core/seq_es.hpp"
#include "core/seq_global_es.hpp"
#include "core/sequential_apply.hpp"
#include "core/switch_stream.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "rng/mt19937_64.hpp"
#include "rng/shuffle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

namespace gesmc {
namespace {

// ------------------------------------------------------------------- tau

TEST(EdgeSwitch, TauBothDirections) {
    // e1 = (u,v) = (0,1); e2 = (x,y) = (2,3).
    const auto [a0, b0] = switch_targets(Edge{0, 1}, Edge{2, 3}, false);
    EXPECT_EQ(a0, (Edge{0, 2})); // (u,x)
    EXPECT_EQ(b0, (Edge{1, 3})); // (v,y)
    const auto [a1, b1] = switch_targets(Edge{0, 1}, Edge{2, 3}, true);
    EXPECT_EQ(a1, (Edge{0, 3})); // (u,y)
    EXPECT_EQ(b1, (Edge{1, 2})); // (v,x)
}

TEST(EdgeSwitch, Figure1LoopRejection) {
    // Figure 1 of the paper: switching adjacent edges can propose a loop.
    // e1 = (a, x), e2 = (x, b): g = 1 gives (a, b) and (x, x) — a loop.
    const auto [t3, t4] = switch_targets(Edge{0, 2}, Edge{2, 5}, true);
    EXPECT_TRUE(t3.is_loop() || t4.is_loop());
    const auto outcome = decide_switch(edge_key(0, 2), edge_key(2, 5), t3, t4,
                                       [](edge_key_t) { return false; });
    EXPECT_EQ(outcome, SwitchOutcome::kRejectedLoop);
}

TEST(EdgeSwitch, Figure1MultiEdgeRejection) {
    // A target that already exists in E must be rejected.
    const auto [t3, t4] = switch_targets(Edge{0, 1}, Edge{2, 3}, false);
    const edge_key_t existing = edge_key(t3);
    const auto outcome = decide_switch(edge_key(0, 1), edge_key(2, 3), t3, t4,
                                       [existing](edge_key_t k) { return k == existing; });
    EXPECT_EQ(outcome, SwitchOutcome::kRejectedEdge);
}

TEST(EdgeSwitch, AcceptedWhenTargetsFresh) {
    const auto [t3, t4] = switch_targets(Edge{0, 1}, Edge{2, 3}, false);
    const auto outcome =
        decide_switch(edge_key(0, 1), edge_key(2, 3), t3, t4, [](edge_key_t) { return false; });
    EXPECT_EQ(outcome, SwitchOutcome::kAccepted);
}

TEST(EdgeSwitch, IdentityCaseAcceptedWithoutOracle) {
    // e1 = (0,1), e2 = (1,2), g = 0: targets (0,1), (1,2) == sources.
    const auto [t3, t4] = switch_targets(Edge{0, 1}, Edge{1, 2}, false);
    EXPECT_EQ(edge_key(t3), edge_key(0, 1));
    EXPECT_EQ(edge_key(t4), edge_key(1, 2));
    int oracle_calls = 0;
    const auto outcome = decide_switch(edge_key(0, 1), edge_key(1, 2), t3, t4,
                                       [&](edge_key_t) {
                                           ++oracle_calls;
                                           return true; // would reject if consulted
                                       });
    EXPECT_EQ(outcome, SwitchOutcome::kAccepted);
    EXPECT_EQ(oracle_calls, 0);
}

TEST(EdgeSwitch, TargetsNeverEqualEachOther) {
    // For distinct simple source edges, t3 != t4 as undirected edges.
    Mt19937_64 gen(1);
    for (int trial = 0; trial < 10000; ++trial) {
        const node_t a = static_cast<node_t>(uniform_below(gen, 50));
        node_t b = static_cast<node_t>(uniform_below(gen, 50));
        if (a == b) continue;
        const node_t c = static_cast<node_t>(uniform_below(gen, 50));
        node_t d = static_cast<node_t>(uniform_below(gen, 50));
        if (c == d) continue;
        const Edge e1 = Edge{a, b}.canonical();
        const Edge e2 = Edge{c, d}.canonical();
        if (edge_key(e1) == edge_key(e2)) continue;
        for (const bool g : {false, true}) {
            const auto [t3, t4] = switch_targets(e1, e2, g);
            EXPECT_NE(edge_key(t3), edge_key(t4));
        }
    }
}

// --------------------------------------------------------- switch stream

TEST(SwitchStream, DeterministicAndDistinctIndices) {
    SwitchStream s(7, 1000);
    for (std::uint64_t k = 0; k < 5000; ++k) {
        const Switch a = s.get(k);
        const Switch b = s.get(k);
        EXPECT_EQ(a.i, b.i);
        EXPECT_EQ(a.j, b.j);
        EXPECT_EQ(a.g, b.g);
        EXPECT_NE(a.i, a.j);
        EXPECT_LT(a.i, 1000u);
        EXPECT_LT(a.j, 1000u);
    }
}

TEST(SwitchStream, IndicesRoughlyUniform) {
    SwitchStream s(8, 10);
    std::vector<int> counts(10, 0);
    constexpr int draws = 50000;
    for (int k = 0; k < draws; ++k) {
        const Switch sw = s.get(k);
        ++counts[sw.i];
        ++counts[sw.j];
    }
    const double expect = 2.0 * draws / 10;
    for (int c : counts) EXPECT_NEAR(c, expect, 5 * std::sqrt(expect));
}

// ----------------------------------------------- parallel superstep exact

/// Reference: executes the batch sequentially in index order.
void run_batch_sequential(std::vector<edge_key_t>& keys, const std::vector<Switch>& batch,
                          ChainStats& stats) {
    RobinSet set(keys.size());
    set.reserve(keys.size());
    for (const edge_key_t k : keys) set.insert(k);
    for (const Switch& sw : batch) apply_switch_sequential(keys, set, sw, stats);
}

/// Builds a random source-dependency-free batch: a prefix of a random
/// pairing of the edge indices (exactly a global switch's structure).
std::vector<Switch> random_batch(std::uint64_t m, std::uint64_t len, std::uint64_t seed) {
    std::vector<std::uint32_t> perm;
    sample_permutation(perm, m, seed);
    std::vector<Switch> batch;
    Mt19937_64 gen(seed);
    for (std::uint64_t k = 0; 2 * k + 1 < m && batch.size() < len; ++k) {
        batch.push_back(Switch{perm[2 * k], perm[2 * k + 1],
                               static_cast<std::uint8_t>(uniform_bit(gen) ? 1 : 0)});
    }
    return batch;
}

TEST(ParallelSuperstep, MatchesSequentialExecutionProperty) {
    // The paper's exactness claim for Algorithm 1, swept over graph shapes,
    // batch sizes, seeds, and thread counts.
    const auto corpus = corpus_test();
    int checked = 0;
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            for (const auto& entry : corpus) {
                const std::uint64_t m = entry.graph.num_edges();
                const auto batch = random_batch(m, m / 2, seed * 31 + threads);

                // Parallel execution.
                std::vector<edge_key_t> par_keys = entry.graph.keys();
                ConcurrentEdgeSet set(m);
                for (const edge_key_t k : par_keys) set.insert_unique(k);
                SuperstepRunner runner(batch.size());
                const auto result = runner.run(pool, par_keys, set, batch);

                // Sequential reference.
                std::vector<edge_key_t> seq_keys = entry.graph.keys();
                ChainStats seq_stats;
                run_batch_sequential(seq_keys, batch, seq_stats);

                ASSERT_EQ(par_keys, seq_keys)
                    << entry.name << " seed=" << seed << " threads=" << threads;
                EXPECT_EQ(result.accepted, seq_stats.accepted);
                EXPECT_EQ(result.rejected_loop, seq_stats.rejected_loop);
                EXPECT_EQ(result.rejected_edge, seq_stats.rejected_edge);

                // The concurrent set must mirror the final edge list.
                EXPECT_EQ(set.size(), m);
                for (const edge_key_t k : par_keys) ASSERT_TRUE(set.contains(k));
                ++checked;
            }
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(ParallelSuperstep, EmptyBatchIsNoop) {
    ThreadPool pool(2);
    EdgeList g = generate_gnp(100, 0.05, 3);
    std::vector<edge_key_t> keys = g.keys();
    const auto before = keys;
    ConcurrentEdgeSet set(keys.size());
    for (const edge_key_t k : keys) set.insert_unique(k);
    SuperstepRunner runner(16);
    const auto result = runner.run(pool, keys, set, {});
    EXPECT_EQ(result.rounds, 0u);
    EXPECT_EQ(keys, before);
}

TEST(ParallelSuperstep, RunnerReusableAcrossManySupersteps) {
    // Reuse (dependency-table reset paths) must not leak state between
    // supersteps: compare against a fresh runner each time.
    ThreadPool pool(4);
    const EdgeList g = generate_gnp(500, 0.02, 9);
    const std::uint64_t m = g.num_edges();

    std::vector<edge_key_t> reused_keys = g.keys();
    ConcurrentEdgeSet reused_set(m);
    for (const edge_key_t k : reused_keys) reused_set.insert_unique(k);
    SuperstepRunner reused(m / 2);

    std::vector<edge_key_t> fresh_keys = g.keys();
    for (int step = 0; step < 10; ++step) {
        const auto batch = random_batch(m, m / 2, 1000 + step);
        reused.run(pool, reused_keys, reused_set, batch);

        ConcurrentEdgeSet fresh_set(m);
        for (const edge_key_t k : fresh_keys) fresh_set.insert_unique(k);
        SuperstepRunner fresh(m / 2);
        fresh.run(pool, fresh_keys, fresh_set, batch);

        ASSERT_EQ(reused_keys, fresh_keys) << "step " << step;
    }
}

// ------------------------------------------------------ chain invariants

void expect_chain_invariants(ChainAlgorithm algo, const EdgeList& initial, unsigned threads,
                             std::uint64_t supersteps) {
    ChainConfig config;
    config.seed = 42;
    config.threads = threads;
    const auto chain = make_chain(algo, initial, config);
    const auto deg_before = initial.degrees();
    chain->run_supersteps(supersteps);
    const EdgeList& after = chain->graph();
    EXPECT_TRUE(after.is_simple()) << chain->name();
    EXPECT_EQ(after.degrees(), deg_before) << chain->name();
    EXPECT_EQ(after.num_edges(), initial.num_edges());
    const auto& st = chain->stats();
    EXPECT_EQ(st.supersteps, supersteps);
    EXPECT_EQ(st.attempted, st.accepted + st.rejected_loop + st.rejected_edge)
        << chain->name();
    // has_edge must agree with the materialized graph.
    for (std::uint64_t i = 0; i < after.num_edges(); i += 7) {
        EXPECT_TRUE(chain->has_edge(after.key(i)));
    }
}

TEST(ChainInvariants, AllAlgorithmsPreserveDegreesAndSimplicity) {
    const EdgeList pl = generate_powerlaw_graph(800, 2.2, 5);
    const EdgeList gnp = generate_gnp(600, 0.02, 6);
    for (const auto algo :
         {ChainAlgorithm::kSeqES, ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kParES,
          ChainAlgorithm::kParGlobalES, ChainAlgorithm::kNaiveParES,
          ChainAlgorithm::kAdjListES}) {
        expect_chain_invariants(algo, pl, 2, 3);
        expect_chain_invariants(algo, gnp, 4, 3);
    }
}

TEST(ChainInvariants, AttemptedCountMatchesSuperstepAccounting) {
    // ES-type chains: attempted == supersteps * (m/2).
    const EdgeList g = generate_gnp(400, 0.03, 7);
    const std::uint64_t m = g.num_edges();
    for (const auto algo : {ChainAlgorithm::kSeqES, ChainAlgorithm::kParES,
                            ChainAlgorithm::kNaiveParES, ChainAlgorithm::kAdjListES}) {
        ChainConfig config;
        config.threads = 2;
        const auto chain = make_chain(algo, g, config);
        chain->run_supersteps(4);
        EXPECT_EQ(chain->stats().attempted, 4 * (m / 2)) << chain->name();
    }
    // G-ES-type: attempted == sum of l ~ Binom(m/2, 1-P_L), close to m/2.
    ChainConfig config;
    const auto chain = make_chain(ChainAlgorithm::kSeqGlobalES, g, config);
    chain->run_supersteps(4);
    EXPECT_NEAR(static_cast<double>(chain->stats().attempted), 4.0 * (m / 2),
                0.05 * 4 * (m / 2));
}

// --------------------------------------------------------- exactness: par == seq

TEST(Exactness, ParESEqualsSeqESAcrossThreadCounts) {
    const auto corpus = corpus_test();
    for (std::uint64_t seed : {1ULL, 99ULL}) {
        for (const auto& entry : corpus) {
            ChainConfig seq_config;
            seq_config.seed = seed;
            SeqES seq(entry.graph, seq_config);
            seq.run_supersteps(2);
            for (unsigned threads : {1u, 2u, 4u}) {
                ChainConfig par_config;
                par_config.seed = seed;
                par_config.threads = threads;
                ParES par(entry.graph, par_config);
                par.run_supersteps(2);
                ASSERT_TRUE(par.graph().same_graph(seq.graph()))
                    << entry.name << " seed=" << seed << " threads=" << threads;
                EXPECT_EQ(par.stats().accepted, seq.stats().accepted);
                EXPECT_EQ(par.stats().rejected_loop, seq.stats().rejected_loop);
                EXPECT_EQ(par.stats().rejected_edge, seq.stats().rejected_edge);
            }
        }
    }
}

TEST(Exactness, ParGlobalESEqualsSeqGlobalESAcrossThreadCounts) {
    const auto corpus = corpus_test();
    for (std::uint64_t seed : {2ULL, 77ULL}) {
        for (const auto& entry : corpus) {
            ChainConfig seq_config;
            seq_config.seed = seed;
            SeqGlobalES seq(entry.graph, seq_config);
            seq.run_supersteps(3);
            for (unsigned threads : {1u, 2u, 4u}) {
                ChainConfig par_config;
                par_config.seed = seed;
                par_config.threads = threads;
                ParGlobalES par(entry.graph, par_config);
                par.run_supersteps(3);
                ASSERT_TRUE(par.graph().same_graph(seq.graph()))
                    << entry.name << " seed=" << seed << " threads=" << threads;
                EXPECT_EQ(par.stats().accepted, seq.stats().accepted);
                EXPECT_EQ(par.stats().attempted, seq.stats().attempted);
            }
        }
    }
}

TEST(Exactness, SeqESPipelinedEqualsPlain) {
    // The prefetch pipeline (§5.4) must not change results.
    const auto corpus = corpus_test();
    for (const auto& entry : corpus) {
        ChainConfig plain;
        plain.seed = 11;
        plain.prefetch = false;
        SeqES a(entry.graph, plain);
        a.run_supersteps(3);
        ChainConfig piped;
        piped.seed = 11;
        piped.prefetch = true;
        SeqES b(entry.graph, piped);
        b.run_supersteps(3);
        ASSERT_TRUE(a.graph().same_graph(b.graph())) << entry.name;
        EXPECT_EQ(a.stats().accepted, b.stats().accepted) << entry.name;
        EXPECT_EQ(a.stats().rejected_loop, b.stats().rejected_loop) << entry.name;
        EXPECT_EQ(a.stats().rejected_edge, b.stats().rejected_edge) << entry.name;
    }
}

TEST(Exactness, AdjListESEqualsSeqES) {
    // Same stream, same decision semantics, different data structures.
    const EdgeList g = generate_powerlaw_graph(500, 2.3, 21);
    ChainConfig config;
    config.seed = 5;
    SeqES seq(g, config);
    AdjListES adj(g, config);
    seq.run_supersteps(3);
    adj.run_supersteps(3);
    EXPECT_TRUE(seq.graph().same_graph(adj.graph()));
    EXPECT_EQ(seq.stats().accepted, adj.stats().accepted);
}

TEST(Exactness, DifferentSeedsDiverge) {
    const EdgeList g = generate_gnp(300, 0.05, 1);
    ChainConfig a, b;
    a.seed = 1;
    b.seed = 2;
    SeqES ca(g, a), cb(g, b);
    ca.run_supersteps(2);
    cb.run_supersteps(2);
    EXPECT_FALSE(ca.graph().same_graph(cb.graph()));
}

// --------------------------------------------------- uniformity (Thm. 1)

/// All simple graphs realizing `deg` via brute-force edge subsets (tiny n).
std::vector<std::vector<edge_key_t>> enumerate_realizations(
    const std::vector<std::uint32_t>& deg) {
    const node_t n = static_cast<node_t>(deg.size());
    std::vector<Edge> all;
    for (node_t u = 0; u < n; ++u)
        for (node_t v = u + 1; v < n; ++v) all.push_back(Edge{u, v});
    const std::uint64_t m =
        std::accumulate(deg.begin(), deg.end(), std::uint64_t{0}) / 2;
    std::vector<std::vector<edge_key_t>> states;
    std::vector<int> choose(all.size(), 0);
    std::fill(choose.end() - static_cast<std::ptrdiff_t>(m), choose.end(), 1);
    do {
        std::vector<std::uint32_t> d(n, 0);
        std::vector<edge_key_t> keys;
        for (std::size_t i = 0; i < all.size(); ++i) {
            if (choose[i]) {
                ++d[all[i].u];
                ++d[all[i].v];
                keys.push_back(edge_key(all[i]));
            }
        }
        if (d == deg) {
            std::sort(keys.begin(), keys.end());
            states.push_back(std::move(keys));
        }
    } while (std::next_permutation(choose.begin(), choose.end()));
    return states;
}

void check_uniform_stationary(ChainAlgorithm algo, const std::vector<std::uint32_t>& deg,
                              std::uint64_t supersteps, int runs) {
    const auto states = enumerate_realizations(deg);
    ASSERT_GE(states.size(), 2u);
    // Fixed start: the first enumerated realization.
    const EdgeList start = EdgeList::from_keys(static_cast<node_t>(deg.size()),
                                               std::vector<edge_key_t>(states[0]));
    std::map<std::vector<edge_key_t>, int> counts;
    for (int run = 0; run < runs; ++run) {
        ChainConfig config;
        config.seed = 10000 + static_cast<std::uint64_t>(run);
        config.pl = 0.1; // large P_L exercises the binomial path on tiny m
        const auto chain = make_chain(algo, start, config);
        chain->run_supersteps(supersteps);
        ++counts[chain->graph().sorted_keys()];
    }
    // Chi-square against the uniform distribution over all realizations.
    const double expect = static_cast<double>(runs) / static_cast<double>(states.size());
    double chi2 = 0;
    for (const auto& state : states) {
        const auto it = counts.find(state);
        const double c = it == counts.end() ? 0.0 : it->second;
        chi2 += (c - expect) * (c - expect) / expect;
    }
    // dof = states-1; bound at ~99.9% quantile for the sizes used here.
    const double dof = static_cast<double>(states.size() - 1);
    const double bound = dof + 4.0 * std::sqrt(2.0 * dof) + 12.0;
    EXPECT_LT(chi2, bound) << to_string(algo) << " states=" << states.size();
    // Every state must be reachable (irreducibility).
    EXPECT_EQ(counts.size(), states.size()) << to_string(algo);
}

TEST(Uniformity, SeqESOnTwoEdgeMatchings) {
    // d = (1,1,1,1): 3 perfect matchings on 4 nodes.
    check_uniform_stationary(ChainAlgorithm::kSeqES, {1, 1, 1, 1}, 20, 3000);
}

TEST(Uniformity, SeqGlobalESOnTwoEdgeMatchings) {
    check_uniform_stationary(ChainAlgorithm::kSeqGlobalES, {1, 1, 1, 1}, 20, 3000);
}

TEST(Uniformity, SeqESOnCycles) {
    // d = (2,2,2,2): the 3 labeled 4-cycles.
    check_uniform_stationary(ChainAlgorithm::kSeqES, {2, 2, 2, 2}, 20, 3000);
}

TEST(Uniformity, SeqGlobalESOnCycles) {
    check_uniform_stationary(ChainAlgorithm::kSeqGlobalES, {2, 2, 2, 2}, 20, 3000);
}

TEST(Uniformity, SeqGlobalESOnPathFamily) {
    // d = (1,1,2,2): paths and path+edge configurations; larger state space.
    check_uniform_stationary(ChainAlgorithm::kSeqGlobalES, {1, 1, 2, 2}, 25, 4000);
}

// -------------------------------------------------------------- ParES details

TEST(ParES, MeanSuperstepLengthIsOrderSqrtM) {
    const EdgeList g = generate_gnp(3000, gnp_probability_for_edges(3000, 40000), 13);
    const double m = static_cast<double>(g.num_edges());
    ChainConfig config;
    config.threads = 2;
    ParES par(g, config);
    par.run_supersteps(4);
    const double mean_len = par.mean_superstep_length();
    // Expected dependency-free prefix is Theta(sqrt(m)) (paper §3).
    EXPECT_GT(mean_len, 0.1 * std::sqrt(m));
    EXPECT_LT(mean_len, 10.0 * std::sqrt(m));
}

TEST(ParGlobalES, RoundsStaySmallOnRegularGraph) {
    // Corollary 2: for regular graphs expected rounds <= 4.
    const EdgeList g = generate_regular(5000, 8);
    ChainConfig config;
    config.threads = 4;
    ParGlobalES par(g, config);
    par.run_supersteps(10);
    const double mean_rounds =
        static_cast<double>(par.stats().rounds_total) / static_cast<double>(par.stats().supersteps);
    EXPECT_LE(mean_rounds, 8.0);
    EXPECT_GE(mean_rounds, 1.0);
    EXPECT_LE(par.stats().rounds_max, 16u);
}

TEST(ParGlobalES, InvalidPLRejected) {
    const EdgeList g = generate_gnp(100, 0.1, 1);
    ChainConfig config;
    config.pl = 0.0;
    EXPECT_THROW(ParGlobalES(g, config).run_supersteps(1), Error);
}

// -------------------------------------------------------- acceptance rates

TEST(AcceptanceRates, SparseGraphMostlyAccepts) {
    // On a sparse G(n,p) graph nearly all switches are legal.
    const EdgeList g = generate_gnp(5000, gnp_probability_for_edges(5000, 20000), 17);
    ChainConfig config;
    SeqES chain(g, config);
    chain.run_supersteps(2);
    const auto& st = chain.stats();
    EXPECT_GT(static_cast<double>(st.accepted) / static_cast<double>(st.attempted), 0.9);
}

TEST(AcceptanceRates, DenseGraphRejectsOften) {
    // On a near-complete graph most targets already exist.
    const EdgeList g = generate_gnp(60, 0.9, 18);
    ChainConfig config;
    SeqES chain(g, config);
    chain.run_supersteps(4);
    const auto& st = chain.stats();
    EXPECT_GT(static_cast<double>(st.rejected_edge) / static_cast<double>(st.attempted), 0.5);
}

} // namespace
} // namespace gesmc
