// Tests for the batch sampling pipeline: extended graph IO (binary format,
// degree-sequence files), config parsing, seed derivation, the replicate
// scheduler, and end-to-end determinism of pipeline runs across schedule
// policies and thread counts.
#include "core/chain.hpp"
#include "gen/configuration_model.hpp"
#include "gen/corpus.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/io.hpp"
#include "parallel/pool_lease.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/config.hpp"
#include "pipeline/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/seeds.hpp"
#include "service/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/// Fresh per-test scratch directory under the gtest temp dir.
fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / ("gesmc_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

// ------------------------------------------------------------- binary IO

TEST(BinaryIo, RoundTripsATypicalGraph) {
    const EdgeList g = generate_powerlaw_graph(500, 2.2, 3);
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    const EdgeList back = read_edge_list_binary(ss);
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
    EXPECT_TRUE(back.same_graph(g));
}

TEST(BinaryIo, RoundTripsTheEmptyGraph) {
    const EdgeList empty;
    std::stringstream ss;
    write_edge_list_binary(ss, empty);
    const EdgeList back = read_edge_list_binary(ss);
    EXPECT_EQ(back.num_nodes(), 0u);
    EXPECT_EQ(back.num_edges(), 0u);
}

TEST(BinaryIo, RoundTripsMaxNodeIdEdges) {
    const EdgeList g = EdgeList::from_pairs(
        kMaxNode + 1, {Edge{0, kMaxNode}, Edge{kMaxNode - 1, kMaxNode}});
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    const EdgeList back = read_edge_list_binary(ss);
    EXPECT_EQ(back.num_nodes(), kMaxNode + 1);
    EXPECT_TRUE(back.same_graph(g));
}

TEST(BinaryIo, EncodingIsCanonical) {
    // Two edge lists describing the same graph in different order must
    // produce identical bytes (sorted delta encoding).
    const EdgeList a = EdgeList::from_pairs(4, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}});
    const EdgeList b = EdgeList::from_pairs(4, {Edge{2, 3}, Edge{0, 1}, Edge{1, 2}});
    std::stringstream sa, sb;
    write_edge_list_binary(sa, a);
    write_edge_list_binary(sb, b);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(BinaryIo, IsCompactForSortedKeys) {
    // Delta-varint coding: a sparse graph should cost only a few bytes per
    // edge, far below the 8-byte raw keys.
    const EdgeList g = generate_grid(40, 40);
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    EXPECT_LT(ss.str().size(), g.num_edges() * 6);
}

TEST(BinaryIo, RejectsBadMagicAndTruncation) {
    std::stringstream bad("not a binary edge list");
    EXPECT_THROW(read_edge_list_binary(bad), Error);

    const EdgeList g = generate_grid(4, 4);
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    const std::string full = ss.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(read_edge_list_binary(truncated), Error);
}

TEST(BinaryIo, FileSniffingPicksTheRightReader) {
    const fs::path dir = scratch_dir("sniff");
    const EdgeList g = generate_grid(6, 7);
    const std::string text_path = (dir / "g.txt").string();
    const std::string bin_path = (dir / "g.gesb").string();
    write_edge_list_file(text_path, g);
    write_edge_list_binary_file(bin_path, g);
    EXPECT_TRUE(read_any_edge_list_file(text_path).same_graph(g));
    EXPECT_TRUE(read_any_edge_list_file(bin_path).same_graph(g));
}

TEST(TextIo, RoundTripsThroughAFile) {
    const fs::path dir = scratch_dir("text_roundtrip");
    const EdgeList g = generate_powerlaw_graph(300, 2.5, 9);
    const std::string path = (dir / "g.txt").string();
    write_edge_list_file(path, g);
    const EdgeList back = read_edge_list_file(path);
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
    EXPECT_TRUE(back.same_graph(g));
}

TEST(TextIo, RoundTripsTheEmptyGraph) {
    std::stringstream ss;
    write_edge_list(ss, EdgeList{});
    const EdgeList back = read_edge_list(ss);
    EXPECT_EQ(back.num_nodes(), 0u);
    EXPECT_EQ(back.num_edges(), 0u);
}

// ------------------------------------------------------- degree sequences

TEST(DegreeSequenceIo, RoundTrips) {
    const DegreeSequence seq({3, 3, 2, 2, 2, 1, 1});
    std::stringstream ss;
    write_degree_sequence(ss, seq);
    const DegreeSequence back = read_degree_sequence(ss);
    EXPECT_EQ(back.degrees(), seq.degrees());
}

TEST(DegreeSequenceIo, AcceptsCommentsAndMultiplePerLine) {
    std::stringstream ss("# a comment\n3 3 2\n% another\n2 2\n1 1\n");
    const DegreeSequence seq = read_degree_sequence(ss);
    EXPECT_EQ(seq.degrees(), (std::vector<std::uint32_t>{3, 3, 2, 2, 2, 1, 1}));
}

TEST(DegreeSequenceIo, RejectsMalformedLines) {
    std::stringstream ss("3 two 1\n");
    EXPECT_THROW(read_degree_sequence(ss), Error);
}

// -------------------------------------------------- configuration repair

TEST(ConfigurationModelRepaired, RealizesTheExactDegreeSequence) {
    // Skewed sequence: the raw pairing virtually always needs repair.
    const DegreeSequence seq = degree_sequence_of(generate_powerlaw_graph(400, 2.0, 5));
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const EdgeList g = configuration_model_repaired(seq, seed);
        EXPECT_TRUE(g.is_simple());
        EXPECT_EQ(g.degrees(), seq.degrees());
    }
}

// ----------------------------------------------------------------- config

TEST(PipelineConfig, ParsesAFullFile) {
    std::stringstream ss(R"(# comment
input       = graphs/a.txt
input-kind  = edges
algorithm   = seq-global-es
supersteps  = 7
replicates  = 3
seed        = 99
threads     = 2
policy      = intra-chain
output-dir  = out
output-format = binary
report      = out/r.json
metrics     = false
)");
    const PipelineConfig c = read_pipeline_config(ss);
    EXPECT_EQ(c.input_path, "graphs/a.txt");
    EXPECT_EQ(c.algorithm, "seq-global-es");
    EXPECT_EQ(c.supersteps, 7u);
    EXPECT_EQ(c.replicates, 3u);
    EXPECT_EQ(c.seed, 99u);
    EXPECT_EQ(c.threads, 2u);
    EXPECT_EQ(c.policy, SchedulePolicy::kIntraChain);
    EXPECT_EQ(c.output_dir, "out");
    EXPECT_EQ(c.output_format, OutputFormat::kBinary);
    EXPECT_EQ(c.report_path, "out/r.json");
    EXPECT_FALSE(c.metrics);
}

TEST(PipelineConfig, RejectsUnknownKeysAndBadValues) {
    PipelineConfig c;
    EXPECT_THROW(apply_config_entry(c, "no-such-key", "1"), Error);
    EXPECT_THROW(apply_config_entry(c, "replicates", "many"), Error);
    EXPECT_THROW(apply_config_entry(c, "policy", "sideways"), Error);
    EXPECT_THROW(apply_config_entry(c, "prefetch", "maybe"), Error);
    EXPECT_THROW(apply_config_entry(c, "edge-set-backend", "waitfree"), Error);
}

TEST(PipelineConfig, EdgeSetBackendParsesAndRoundTrips) {
    PipelineConfig c;
    EXPECT_EQ(c.edge_set_backend, EdgeSetBackend::kLocked); // default
    apply_config_entry(c, "edge-set-backend", "lockfree");
    EXPECT_EQ(c.edge_set_backend, EdgeSetBackend::kLockFree);
    const PipelineConfig back =
        read_pipeline_config_string(pipeline_config_to_string(c));
    EXPECT_EQ(back.edge_set_backend, EdgeSetBackend::kLockFree);
    apply_config_entry(c, "edge-set-backend", "locked");
    EXPECT_EQ(c.edge_set_backend, EdgeSetBackend::kLocked);
}

TEST(PipelineConfig, ValidateCatchesContradictions) {
    PipelineConfig c; // no input at all
    EXPECT_THROW(validate(c), Error);
    c.input_kind = InputKind::kGenerator;
    EXPECT_THROW(validate(c), Error); // generator kind without generator name
    c.generator = "powerlaw";
    EXPECT_NO_THROW(validate(c));
    // replicates means T = 1; a wider chain-threads pin is a contradiction
    // (hybrid/auto are the spellings that honor it).
    c.policy = SchedulePolicy::kReplicates;
    c.chain_threads = 4;
    EXPECT_THROW(validate(c), Error);
    c.policy = SchedulePolicy::kHybrid;
    EXPECT_NO_THROW(validate(c));
    // ... and intra-chain means K = 1: a wider max-concurrent contradicts.
    c.chain_threads = 0;
    c.policy = SchedulePolicy::kIntraChain;
    c.max_concurrent = 4;
    EXPECT_THROW(validate(c), Error);
    c.policy = SchedulePolicy::kHybrid;
    EXPECT_NO_THROW(validate(c));
    c.max_concurrent = 0;
    c.replicates = 0;
    EXPECT_THROW(validate(c), Error);
}

TEST(PipelineConfig, ParseErrorsCarryTheLineNumberAndKey) {
    std::stringstream bad("replicates = 4\n\nsupersteps = nope\n");
    try {
        read_pipeline_config(bad);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("config line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("supersteps"), std::string::npos) << what;
    }
    // The string entry point (service submissions) reports the same way.
    try {
        read_pipeline_config_string("seed = 1\nno-such-key = 2\n");
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("config line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("no-such-key"), std::string::npos) << what;
    }
}

TEST(PipelineConfig, RendersToParseableText) {
    PipelineConfig c;
    c.input_path = "graphs/a.txt";
    c.algorithm = "seq-global-es";
    c.supersteps = 7;
    c.replicates = 3;
    c.seed = 99;
    c.threads = 2;
    c.policy = SchedulePolicy::kHybrid;
    c.chain_threads = 2;
    c.max_concurrent = 1;
    c.pl = 0.25;
    c.prefetch = false;
    c.checkpoint_every = 5;
    c.keep_checkpoints = true;
    c.resume_from = "prev";
    c.output_dir = "out";
    c.output_prefix = "sample";
    c.output_format = OutputFormat::kBinary;
    c.report_path = "out/r.json";
    c.metrics = false;

    const std::string text = pipeline_config_to_string(c);
    const PipelineConfig back = read_pipeline_config_string(text);
    // Rendering is a fixed point through a parse round-trip...
    EXPECT_EQ(pipeline_config_to_string(back), text);
    // ... and the round-tripped config is field-equal.
    EXPECT_EQ(back.input_path, c.input_path);
    EXPECT_EQ(back.algorithm, c.algorithm);
    EXPECT_EQ(back.supersteps, c.supersteps);
    EXPECT_EQ(back.replicates, c.replicates);
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.threads, c.threads);
    EXPECT_EQ(back.policy, c.policy);
    EXPECT_EQ(back.chain_threads, c.chain_threads);
    EXPECT_EQ(back.max_concurrent, c.max_concurrent);
    EXPECT_EQ(back.pl, c.pl);
    EXPECT_EQ(back.prefetch, c.prefetch);
    EXPECT_EQ(back.checkpoint_every, c.checkpoint_every);
    EXPECT_EQ(back.keep_checkpoints, c.keep_checkpoints);
    EXPECT_EQ(back.resume_from, c.resume_from);
    EXPECT_EQ(back.output_dir, c.output_dir);
    EXPECT_EQ(back.output_prefix, c.output_prefix);
    EXPECT_EQ(back.output_format, c.output_format);
    EXPECT_EQ(back.report_path, c.report_path);
    EXPECT_EQ(back.metrics, c.metrics);
    // A default config renders to nothing at all.
    EXPECT_EQ(pipeline_config_to_string(PipelineConfig{}), "");
}

// ------------------------------------------------------------------ seeds

TEST(ReplicateSeeds, DeterministicAndDistinct) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < 1000; ++r) {
        const std::uint64_t s = replicate_seed(42, r);
        EXPECT_EQ(s, replicate_seed(42, r));
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);                      // no collisions
    EXPECT_NE(replicate_seed(42, 0), replicate_seed(43, 0)); // master matters
}

// -------------------------------------------------------------- scheduler

TEST(Scheduler, ResolvesAutoByReplicateCount) {
    EXPECT_EQ(resolve_policy(SchedulePolicy::kAuto, 8, 4), SchedulePolicy::kReplicates);
    EXPECT_EQ(resolve_policy(SchedulePolicy::kAuto, 2, 4), SchedulePolicy::kIntraChain);
    EXPECT_EQ(resolve_policy(SchedulePolicy::kReplicates, 2, 4),
              SchedulePolicy::kReplicates);
    EXPECT_EQ(resolve_policy(SchedulePolicy::kIntraChain, 100, 4),
              SchedulePolicy::kIntraChain);
}

TEST(Scheduler, ResolvesHybridPoints) {
    // Explicit hybrid with a pinned T: K = ⌊P/T⌋.
    ScheduleRequest request;
    request.policy = SchedulePolicy::kHybrid;
    request.chain_threads = 2;
    ResolvedSchedule s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kHybrid);
    EXPECT_EQ(s.chain_threads, 2u);
    EXPECT_EQ(s.max_concurrent, 4u);

    // max-concurrent caps K below ⌊P/T⌋.
    request.max_concurrent = 3;
    s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.max_concurrent, 3u);

    // K never exceeds the replicate count.
    request.max_concurrent = 0;
    s = resolve_schedule(request, 2, 8);
    EXPECT_EQ(s.max_concurrent, 2u);

    // Unpinned hybrid spreads the budget: R = 2 on P = 8 → 2 x 4.
    request.chain_threads = 0;
    s = resolve_schedule(request, 2, 8);
    EXPECT_EQ(s.chain_threads, 4u);
    EXPECT_EQ(s.max_concurrent, 2u);

    // Non-dividing case: R = 3 on P = 8 must run all three concurrently
    // (3 x 2, two threads idle), not serialize one behind a wider pair.
    s = resolve_schedule(request, 3, 8);
    EXPECT_EQ(s.chain_threads, 2u);
    EXPECT_EQ(s.max_concurrent, 3u);

    // T is clamped to the budget.
    request.chain_threads = 99;
    s = resolve_schedule(request, 4, 8);
    EXPECT_EQ(s.chain_threads, 8u);
    EXPECT_EQ(s.max_concurrent, 1u);
}

TEST(Scheduler, AutoIsBudgetAwareWhenChainThreadsIsPinned) {
    // The pre-budget bug: kAuto compared R against the full pool width even
    // when chain-threads was pinned.  Now the pin selects the realizing
    // policy: T = 2 on P = 8 must give hybrid with K = 4 even for R >= P.
    ScheduleRequest request;
    request.policy = SchedulePolicy::kAuto;
    request.chain_threads = 2;
    ResolvedSchedule s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kHybrid);
    EXPECT_EQ(s.chain_threads, 2u);
    EXPECT_EQ(s.max_concurrent, 4u);

    request.chain_threads = 1;
    EXPECT_EQ(resolve_schedule(request, 2, 8).policy, SchedulePolicy::kReplicates);
    request.chain_threads = 8;
    s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kIntraChain);
    EXPECT_EQ(s.max_concurrent, 1u);

    // Unpinned auto keeps the classic binary choice, with K·T <= P.
    request.chain_threads = 0;
    s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kReplicates);
    EXPECT_EQ(s.chain_threads, 1u);
    EXPECT_EQ(s.max_concurrent, 8u);
    s = resolve_schedule(request, 2, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kIntraChain);
    EXPECT_EQ(s.chain_threads, 8u);
    EXPECT_EQ(s.max_concurrent, 1u);
}

TEST(Scheduler, PoolExecutorRunsEveryReplicateOnceUnderEveryPolicy) {
    struct Point {
        ScheduleRequest request;
        unsigned expect_threads;
        bool expect_pool;
    };
    const Point points[] = {
        {{SchedulePolicy::kReplicates, 0, 0}, 1, false},
        {{SchedulePolicy::kIntraChain, 0, 0}, 4, true},
        {{SchedulePolicy::kHybrid, 2, 0}, 2, true},
        {{SchedulePolicy::kHybrid, 2, 1}, 2, true}, // K capped to 1
    };
    for (const Point& point : points) {
        ThreadBudget budget(4);
        PoolExecutor executor(budget);
        constexpr std::uint64_t kReplicates = 37;
        std::vector<std::atomic<int>> hits(kReplicates);
        executor.run(kReplicates, point.request, [&](const ReplicateSlot& slot) {
            hits[slot.index].fetch_add(1);
            EXPECT_EQ(slot.chain_threads, point.expect_threads);
            if (point.expect_pool) {
                ASSERT_NE(slot.shared_pool, nullptr);
                EXPECT_EQ(slot.shared_pool->num_threads(), point.expect_threads);
            } else {
                EXPECT_EQ(slot.shared_pool, nullptr);
            }
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
        EXPECT_EQ(budget.leased(), 0u); // every lease returned
    }
}

// ----------------------------------------------------------- shared pools

TEST(SharedPool, ChainsProduceIdenticalGraphsOnBorrowedPools) {
    const EdgeList initial = generate_powerlaw_graph(600, 2.2, 11);
    for (const ChainAlgorithm algo :
         {ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kParGlobalES,
          ChainAlgorithm::kParES}) {
        ChainConfig own;
        own.seed = 5;
        own.threads = 2;
        auto owned = make_chain(algo, initial, own);
        owned->run_supersteps(3);

        ThreadPool pool(2);
        ChainConfig borrowed = own;
        borrowed.shared_pool = &pool;
        auto borrowing = make_chain(algo, initial, borrowed);
        borrowing->run_supersteps(3);

        EXPECT_TRUE(owned->graph().same_graph(borrowing->graph()))
            << to_string(algo);
    }
}

// ---------------------------------------------------------- chain factory

TEST(ChainFactory, NamesRoundTrip) {
    for (const auto& [name, algo] : chain_algorithm_names()) {
        EXPECT_EQ(chain_algorithm_from_string(name), algo);
        EXPECT_EQ(chain_algorithm_name(algo), name);
    }
    EXPECT_THROW((void)chain_algorithm_from_string("quantum-es"), Error);
}

// ------------------------------------------------------------ end to end

PipelineConfig small_run_config(const std::string& algo, const fs::path& out_dir) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = "powerlaw";
    c.gen_n = 400;
    c.gen_gamma = 2.2;
    c.algorithm = algo;
    c.supersteps = 3;
    c.replicates = 8;
    c.seed = 1234;
    c.metrics = false;
    c.output_dir = out_dir.string();
    return c;
}

TEST(Pipeline, SameConfigAndSeedGiveByteIdenticalOutputs) {
    // The determinism contract: outputs depend only on (config, seed) — not
    // on the schedule policy, the thread budget, or the (K, T) point the
    // run resolves to.  Every exact chain is compared across kReplicates,
    // kIntraChain, and two distinct hybrid (K, T) configurations.
    struct Variant {
        const char* tag;
        SchedulePolicy policy;
        unsigned threads;
        unsigned chain_threads;
        unsigned max_concurrent;
    };
    const Variant variants[] = {
        {"repl", SchedulePolicy::kReplicates, 4, 0, 0},  // 4 x 1
        {"intra", SchedulePolicy::kIntraChain, 2, 0, 0}, // 1 x 2
        {"hyb22", SchedulePolicy::kHybrid, 4, 2, 0},     // 2 x 2
        {"hyb23", SchedulePolicy::kHybrid, 6, 3, 2},     // 2 x 3
    };
    for (const std::string algo : {"seq-es", "par-es", "seq-global-es", "par-global-es"}) {
        std::vector<RunReport> reports;
        for (const Variant& v : variants) {
            const fs::path dir = scratch_dir("det_" + std::string(v.tag) + "_" + algo);
            PipelineConfig c = small_run_config(algo, dir);
            c.policy = v.policy;
            c.threads = v.threads;
            c.chain_threads = v.chain_threads;
            c.max_concurrent = v.max_concurrent;
            reports.push_back(run_pipeline(c));
            ASSERT_TRUE(all_succeeded(reports.back())) << algo << " " << v.tag;
            ASSERT_EQ(reports.back().replicates.size(), 8u);
        }
        // The hybrid variants really resolved to hybrid (K, T) points.
        EXPECT_EQ(reports[2].resolved_policy, SchedulePolicy::kHybrid);
        EXPECT_EQ(reports[2].chain_threads, 2u);
        EXPECT_EQ(reports[2].max_concurrent, 2u);
        EXPECT_EQ(reports[3].chain_threads, 3u);
        EXPECT_EQ(reports[3].max_concurrent, 2u);

        const RunReport& ra = reports.front();
        for (std::size_t v = 1; v < reports.size(); ++v) {
            for (std::uint64_t r = 0; r < 8; ++r) {
                EXPECT_FALSE(ra.replicates[r].output_path.empty());
                EXPECT_EQ(slurp(ra.replicates[r].output_path),
                          slurp(reports[v].replicates[r].output_path))
                    << algo << " variant " << variants[v].tag << " replicate " << r;
            }
        }
        // Replicates must be distinct samples, not copies of each other.
        EXPECT_NE(slurp(ra.replicates[0].output_path),
                  slurp(ra.replicates[1].output_path))
            << algo;
    }
}

TEST(Pipeline, EdgeSetBackendsGiveByteIdenticalOutputs) {
    // The ConcurrentEdgeSet backend is a pure performance knob: for every
    // parallel chain, the locked and lock-free implementations must emit
    // identical bytes under both schedule shapes.  naive-par-es is only
    // deterministic at T = 1 (its outputs depend on chain-threads, see
    // pipeline.cpp's warning), so it is compared under the replicates
    // policy alone.
    struct Cell {
        const char* algo;
        SchedulePolicy policy;
        unsigned threads;
        unsigned chain_threads;
        const char* tag;
    };
    const Cell cells[] = {
        {"par-es", SchedulePolicy::kReplicates, 4, 0, "repl"},
        {"par-es", SchedulePolicy::kHybrid, 4, 2, "hyb"},
        {"par-global-es", SchedulePolicy::kReplicates, 4, 0, "repl"},
        {"par-global-es", SchedulePolicy::kHybrid, 4, 2, "hyb"},
        {"naive-par-es", SchedulePolicy::kReplicates, 4, 0, "repl"},
    };
    for (const Cell& cell : cells) {
        std::vector<RunReport> reports;
        for (const EdgeSetBackend backend :
             {EdgeSetBackend::kLocked, EdgeSetBackend::kLockFree}) {
            const fs::path dir = scratch_dir(std::string("esb_") + cell.algo +
                                             "_" + cell.tag + "_" +
                                             to_string(backend));
            PipelineConfig c = small_run_config(cell.algo, dir);
            c.replicates = 4;
            c.policy = cell.policy;
            c.threads = cell.threads;
            c.chain_threads = cell.chain_threads;
            c.edge_set_backend = backend;
            reports.push_back(run_pipeline(c));
            ASSERT_TRUE(all_succeeded(reports.back()))
                << cell.algo << " " << cell.tag << " " << to_string(backend);
            EXPECT_EQ(reports.back().resolved_edge_set_backend, backend);
        }
        for (std::uint64_t r = 0; r < 4; ++r) {
            ASSERT_FALSE(reports[0].replicates[r].output_path.empty());
            EXPECT_EQ(slurp(reports[0].replicates[r].output_path),
                      slurp(reports[1].replicates[r].output_path))
                << cell.algo << " " << cell.tag << " replicate " << r;
        }
    }
}

TEST(Pipeline, BinaryOutputsRoundTripAndPreserveDegrees) {
    const fs::path dir = scratch_dir("binary_outputs");
    PipelineConfig c = small_run_config("par-global-es", dir);
    c.output_format = OutputFormat::kBinary;
    c.replicates = 4;
    const RunReport report = run_pipeline(c);
    ASSERT_TRUE(all_succeeded(report));

    const EdgeList input = materialize_input(c);
    for (const ReplicateReport& r : report.replicates) {
        const EdgeList g = read_any_edge_list_file(r.output_path);
        EXPECT_TRUE(g.is_simple());
        EXPECT_EQ(g.degrees(), input.degrees());
        EXPECT_FALSE(g.same_graph(input)); // it actually randomized
    }
}

TEST(Pipeline, DegreeSequenceInputsWorkWithBothInitMethods) {
    const fs::path dir = scratch_dir("degree_input");
    const DegreeSequence seq = degree_sequence_of(generate_powerlaw_graph(300, 2.2, 17));
    const std::string deg_path = (dir / "degs.txt").string();
    write_degree_sequence_file(deg_path, seq);

    for (const InitMethod init :
         {InitMethod::kHavelHakimi, InitMethod::kConfigurationModel}) {
        PipelineConfig c;
        c.input_path = deg_path;
        c.input_kind = InputKind::kDegreeSequence;
        c.init = init;
        c.algorithm = "seq-global-es";
        c.supersteps = 3;
        c.replicates = 3;
        c.seed = 5;
        c.metrics = false;
        const RunReport report = run_pipeline(c);
        ASSERT_TRUE(all_succeeded(report)) << to_string(init);
        EXPECT_EQ(report.input_edges, seq.num_edges());
    }
}

TEST(Pipeline, ReportIsWrittenAndContainsPerReplicateStats) {
    const fs::path dir = scratch_dir("report");
    PipelineConfig c = small_run_config("par-global-es", dir);
    c.replicates = 3;
    c.metrics = true;
    c.report_path = (dir / "report.json").string();
    const RunReport report = run_pipeline(c);
    ASSERT_TRUE(all_succeeded(report));

    const std::string json = slurp(c.report_path);
    EXPECT_NE(json.find("\"resolved_policy\""), std::string::npos);
    EXPECT_NE(json.find("\"resolved_chain_threads\""), std::string::npos);
    EXPECT_NE(json.find("\"resolved_max_concurrent\""), std::string::npos);
    EXPECT_NE(json.find("\"switches_per_second\""), std::string::npos);
    EXPECT_NE(json.find("\"replicates\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));

    // Every replicate ran the requested number of supersteps.
    for (const ReplicateReport& r : report.replicates) {
        EXPECT_EQ(r.stats.supersteps, c.supersteps);
        EXPECT_GT(r.stats.attempted, 0u);
        EXPECT_TRUE(r.has_metrics);
    }
}

TEST(Pipeline, RejectsInputsTooSmallToSwitch) {
    const fs::path dir = scratch_dir("failure");
    const std::string path = (dir / "tiny.txt").string();
    write_edge_list_file(path, EdgeList::from_pairs(2, {Edge{0, 1}}));
    PipelineConfig c;
    c.input_path = path;
    c.replicates = 2;
    EXPECT_THROW(run_pipeline(c), Error); // rejected up front, before replicates
}

// ------------------------------------------- concurrent observer delivery

TEST(RunObserverConcurrency, ReplicateParallelDeliveryIsOrderedPerReplicate) {
    // Stress the RunObserver contract under the replicate-parallel policy:
    // callbacks fire concurrently from pool threads, but *per replicate*
    // the stream must still read like a single chain's life — superstep
    // counters strictly increasing, checkpoints at their boundaries, and
    // exactly one on_replicate_done as the final event.  Run under ASan in
    // CI, this also shakes out data races in the delivery path.
    struct Event {
        enum Kind { kSuperstep, kCheckpoint, kDone } kind;
        std::uint64_t superstep;
    };

    class Recorder final : public RunObserver {
    public:
        void on_superstep(std::uint64_t replicate, const Chain& chain) override {
            const std::lock_guard<std::mutex> lock(mutex_);
            events_[replicate].push_back({Event::kSuperstep, chain.stats().supersteps});
            threads_.insert(std::this_thread::get_id());
        }
        void on_checkpoint(std::uint64_t replicate, const ChainState& state,
                           const std::string&) override {
            const std::lock_guard<std::mutex> lock(mutex_);
            events_[replicate].push_back({Event::kCheckpoint, state.stats.supersteps});
        }
        void on_replicate_done(const ReplicateReport& r) override {
            const std::lock_guard<std::mutex> lock(mutex_);
            events_[r.index].push_back({Event::kDone, 0});
        }

        std::mutex mutex_;
        std::map<std::uint64_t, std::vector<Event>> events_;
        std::set<std::thread::id> threads_;
    };

    const fs::path dir = scratch_dir("observer_stress");
    PipelineConfig c = small_run_config("par-global-es", dir);
    c.replicates = 16;
    c.supersteps = 6;
    c.threads = 4;
    c.policy = SchedulePolicy::kReplicates;
    c.checkpoint_every = 2;

    Recorder recorder;
    const RunReport report = run_pipeline(c, nullptr, &recorder);
    ASSERT_TRUE(all_succeeded(report));

    ASSERT_EQ(recorder.events_.size(), c.replicates);
    for (const auto& [replicate, events] : recorder.events_) {
        // 6 supersteps + 3 checkpoints (the last the finished marker) + done.
        ASSERT_EQ(events.size(), c.supersteps + 3 + 1) << "replicate " << replicate;

        std::uint64_t last_superstep = 0;
        std::uint64_t supersteps = 0, checkpoints = 0, done = 0;
        for (std::size_t i = 0; i < events.size(); ++i) {
            const Event& e = events[i];
            switch (e.kind) {
            case Event::kSuperstep:
                ++supersteps;
                EXPECT_EQ(e.superstep, last_superstep + 1)
                    << "superstep monotonicity, replicate " << replicate;
                last_superstep = e.superstep;
                break;
            case Event::kCheckpoint:
                ++checkpoints;
                // A checkpoint snapshots the state *at* the last superstep.
                EXPECT_EQ(e.superstep, last_superstep)
                    << "checkpoint boundary, replicate " << replicate;
                EXPECT_EQ(e.superstep % c.checkpoint_every, 0u);
                break;
            case Event::kDone:
                ++done;
                EXPECT_EQ(i, events.size() - 1)
                    << "on_replicate_done must be last, replicate " << replicate;
                break;
            }
        }
        EXPECT_EQ(supersteps, c.supersteps);
        EXPECT_EQ(checkpoints, 3u);
        EXPECT_EQ(done, 1u);
        EXPECT_EQ(last_superstep, c.supersteps);
    }
}

// ------------------------------------------------------------ corpus runs

TEST(CorpusConfig, DetectsCorpusConfigs) {
    PipelineConfig c;
    c.input_path = "one.gesb";
    EXPECT_FALSE(is_corpus_config(c));
    c.input_path = "a.gesb b.gesb";
    EXPECT_TRUE(is_corpus_config(c));
    c.input_path.clear();
    EXPECT_FALSE(is_corpus_config(c));
    c.input_glob = "data/*.gesb";
    EXPECT_TRUE(is_corpus_config(c));
    c.input_glob.clear();
    c.corpus_manifest = "corpus.txt";
    EXPECT_TRUE(is_corpus_config(c));
    c.corpus_manifest.clear();
    c.corpus_spec = "test";
    EXPECT_TRUE(is_corpus_config(c));
}

TEST(CorpusConfig, RejectsContradictorySourcesAtValidation) {
    // `input` together with `corpus-manifest` must die at validation, not
    // at run time, and the message must name both sources.
    PipelineConfig c;
    c.input_path = "a.gesb";
    c.corpus_manifest = "corpus.txt";
    try {
        validate(c);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("a.gesb"), std::string::npos) << what;
        EXPECT_NE(what.find("corpus.txt"), std::string::npos) << what;
    }
    EXPECT_THROW(validate_input_sources(c), Error);
    EXPECT_THROW((void)plan_corpus(c), Error); // the corpus path rejects it too

    c.corpus_manifest.clear();
    c.input_glob = "x/*.gesb";
    EXPECT_THROW(validate(c), Error); // input + input-glob
    c.input_path.clear();
    c.corpus_spec = "test";
    EXPECT_THROW(validate(c), Error); // input-glob + corpus
    c.input_glob.clear();
    c.input_kind = InputKind::kGenerator;
    c.generator = "powerlaw";
    EXPECT_THROW(validate(c), Error); // corpus + generator input

    // A lone corpus source passes the source check but is not runnable as
    // a single-graph config: validate points at the corpus entry points.
    c.input_kind = InputKind::kEdgeList;
    c.generator.clear();
    EXPECT_NO_THROW(validate_input_sources(c));
    try {
        validate(c);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("plan_corpus"), std::string::npos)
            << e.what();
    }
}

/// Writes three small, distinct binary input graphs and returns their paths.
std::vector<std::string> write_corpus_inputs(const fs::path& dir) {
    std::vector<std::string> paths;
    const char* names[] = {"alpha", "beta", "gamma"};
    for (std::uint64_t i = 0; i < 3; ++i) {
        const EdgeList g = generate_powerlaw_graph(300 + 40 * i, 2.2, 900 + i);
        const std::string path = (dir / (std::string(names[i]) + ".gesb")).string();
        write_edge_list_binary_file(path, g);
        paths.push_back(path);
    }
    return paths;
}

TEST(CorpusPlan, ExpandsListsGlobsAndManifests) {
    const fs::path dir = scratch_dir("corpus_expand");
    const std::vector<std::string> paths = write_corpus_inputs(dir);

    // Explicit list: plan order is the listed order.
    PipelineConfig list;
    list.input_path = paths[1] + " " + paths[0];
    CorpusPlan plan = plan_corpus(list);
    ASSERT_EQ(plan.graphs.size(), 2u);
    EXPECT_EQ(plan.graphs[0].name, "beta");
    EXPECT_EQ(plan.graphs[1].name, "alpha");

    // Glob: matches sorted by path, wildcards in the filename only.
    PipelineConfig glob;
    glob.input_glob = (dir / "*.gesb").string();
    plan = plan_corpus(glob);
    ASSERT_EQ(plan.graphs.size(), 3u);
    EXPECT_EQ(plan.graphs[0].name, "alpha");
    EXPECT_EQ(plan.graphs[1].name, "beta");
    EXPECT_EQ(plan.graphs[2].name, "gamma");
    glob.input_glob = (dir / "nothing-*.gesb").string();
    EXPECT_THROW((void)plan_corpus(glob), Error); // no matches
    glob.input_glob = (dir / "*" / "x.gesb").string();
    EXPECT_THROW((void)plan_corpus(glob), Error); // wildcard in the directory part

    // Manifest: comments, manifest-relative paths, explicit "::" names.
    const std::string manifest_path = (dir / "corpus.txt").string();
    {
        std::ofstream os(manifest_path);
        os << "# the corpus\n"
           << "alpha.gesb          # inline comment after whitespace\n"
           << "beta.gesb :: renamed   % ... with either marker\n";
    }
    PipelineConfig manifest;
    manifest.corpus_manifest = manifest_path;
    plan = plan_corpus(manifest);
    ASSERT_EQ(plan.graphs.size(), 2u);
    EXPECT_EQ(plan.graphs[0].name, "alpha");
    EXPECT_EQ(plan.graphs[0].path, (dir / "alpha.gesb").string());
    EXPECT_EQ(plan.graphs[1].name, "renamed");
}

TEST(CorpusConfig, QuotedInputEntriesKeepSpacedPathsSingle) {
    // `input` is a whitespace-separated list; a double-quoted entry keeps a
    // spaced path as ONE input, end to end.
    EXPECT_EQ(split_input_list("a.gesb b.gesb"),
              (std::vector<std::string>{"a.gesb", "b.gesb"}));
    EXPECT_EQ(split_input_list("\"my graph.txt\" b.gesb"),
              (std::vector<std::string>{"my graph.txt", "b.gesb"}));
    EXPECT_EQ(split_input_list(""), std::vector<std::string>{});
    EXPECT_THROW((void)split_input_list("\"unterminated"), Error);

    PipelineConfig c;
    c.input_path = "\"my graph.txt\"";
    EXPECT_FALSE(is_corpus_config(c));
    EXPECT_EQ(single_input_path(c), "my graph.txt");
    EXPECT_NO_THROW(validate(c));

    // End to end: a spaced input file runs as a single graph when quoted —
    // and a spaced path reached through a manifest works the same way (the
    // shard carries it quoted).
    const fs::path dir = scratch_dir("spaced input"); // note the space
    const EdgeList g = generate_powerlaw_graph(300, 2.2, 4);
    const std::string spaced = (dir / "my graph.gesb").string();
    write_edge_list_binary_file(spaced, g);

    PipelineConfig single;
    single.input_path = "\"" + spaced + "\"";
    single.algorithm = "seq-global-es";
    single.supersteps = 2;
    single.replicates = 2;
    single.metrics = false;
    ASSERT_TRUE(all_succeeded(run_pipeline(single)));

    const std::string manifest_path = (dir / "m.txt").string();
    {
        std::ofstream os(manifest_path);
        os << "my graph.gesb :: spaced\n";
    }
    PipelineConfig corpus;
    corpus.corpus_manifest = manifest_path;
    corpus.algorithm = "seq-global-es";
    corpus.supersteps = 2;
    corpus.replicates = 2;
    corpus.metrics = false;
    const CorpusPlan plan = plan_corpus(corpus);
    ASSERT_EQ(plan.graphs.size(), 1u);
    EXPECT_EQ(corpus_shard(plan, 0).input_path, "\"" + spaced + "\"");
    ASSERT_TRUE(all_succeeded(run_corpus(plan)));

    // The classic slip — one unquoted spaced path — errors with a quoting
    // hint instead of two cryptic open failures.
    PipelineConfig slip;
    slip.input_path = spaced;
    try {
        (void)plan_corpus(slip);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("double-quote"), std::string::npos)
            << e.what();
    }
}

TEST(CorpusPlan, RejectsDuplicateOutputNamesNamingBothPaths) {
    const fs::path dir = scratch_dir("corpus_dup");
    const fs::path a = dir / "a";
    const fs::path b = dir / "b";
    fs::create_directories(a);
    fs::create_directories(b);
    const EdgeList g = generate_grid(5, 5);
    write_edge_list_binary_file((a / "g.gesb").string(), g);
    write_edge_list_binary_file((b / "g.gesb").string(), g);

    PipelineConfig c;
    c.input_path = (a / "g.gesb").string() + " " + (b / "g.gesb").string();
    try {
        (void)plan_corpus(c);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find((a / "g.gesb").string()), std::string::npos) << what;
        EXPECT_NE(what.find((b / "g.gesb").string()), std::string::npos) << what;
    }
}

TEST(CorpusPlan, MaterializesSyntheticCorporaDeterministically) {
    const fs::path dir = scratch_dir("corpus_synth");
    PipelineConfig c;
    c.corpus_spec = "powerlaw n=200 gamma=2.3 count=3";
    c.output_dir = dir.string();
    const CorpusPlan plan = plan_corpus(c);
    ASSERT_EQ(plan.graphs.size(), 3u);
    EXPECT_EQ(plan.graphs[0].name, "powerlaw-0");
    std::vector<std::string> bytes;
    for (const CorpusInput& graph : plan.graphs) {
        ASSERT_TRUE(fs::exists(graph.path)) << graph.path;
        bytes.push_back(slurp(graph.path));
    }
    EXPECT_NE(bytes[0], bytes[1]); // distinct generation seeds
    // Re-planning (as a resume does) rewrites identical bytes.
    const CorpusPlan again = plan_corpus(c);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(slurp(again.graphs[i].path), bytes[i]);
    }

    PipelineConfig bad = c;
    bad.corpus_spec = "frobnicate n=10";
    EXPECT_THROW((void)plan_corpus(bad), Error);
    bad.corpus_spec = "powerlaw n=10 m=3"; // gnp-only parameter
    EXPECT_THROW((void)plan_corpus(bad), Error);
    bad.corpus_spec = "powerlaw n=200 count=2";
    bad.output_dir.clear(); // nowhere to materialize
    EXPECT_THROW((void)plan_corpus(bad), Error);
}

/// The standalone config the corpus determinism contract is stated
/// against: built by hand from the documented seed-derivation rule, NOT
/// via corpus_shard.
PipelineConfig standalone_shard(const std::string& input, std::uint64_t master,
                                std::uint64_t graph_index, const fs::path& out_dir) {
    PipelineConfig c;
    c.input_path = input;
    c.algorithm = "par-global-es";
    c.supersteps = 3;
    c.replicates = 4;
    c.seed = corpus_graph_seed(master, graph_index);
    c.metrics = false;
    c.output_format = OutputFormat::kBinary;
    c.output_dir = out_dir.string();
    return c;
}

TEST(Corpus, RunMatchesStandaloneShardsByteForByte) {
    const fs::path inputs = scratch_dir("corpus_det_inputs");
    const std::vector<std::string> paths = write_corpus_inputs(inputs);
    constexpr std::uint64_t kMaster = 77;

    // Standalone reference runs with the documented derived seeds.
    std::vector<RunReport> refs;
    for (std::uint64_t i = 0; i < paths.size(); ++i) {
        const fs::path dir = scratch_dir("corpus_det_ref_" + std::to_string(i));
        refs.push_back(run_pipeline(standalone_shard(paths[i], kMaster, i, dir)));
        ASSERT_TRUE(all_succeeded(refs.back()));
    }

    struct Variant {
        const char* tag;
        SchedulePolicy policy;
        unsigned threads;
        unsigned chain_threads;
    };
    const Variant variants[] = {
        {"repl", SchedulePolicy::kReplicates, 4, 0},
        {"hyb", SchedulePolicy::kHybrid, 4, 2},
    };
    for (const Variant& v : variants) {
        const fs::path out = scratch_dir(std::string("corpus_det_") + v.tag);
        PipelineConfig base;
        base.input_path = paths[0] + " " + paths[1] + " " + paths[2];
        base.algorithm = "par-global-es";
        base.supersteps = 3;
        base.replicates = 4;
        base.seed = kMaster;
        base.metrics = false;
        base.output_format = OutputFormat::kBinary;
        base.output_dir = out.string();
        base.policy = v.policy;
        base.threads = v.threads;
        base.chain_threads = v.chain_threads;

        const CorpusPlan plan = plan_corpus(base);
        const CorpusReport report = run_corpus(plan);
        ASSERT_TRUE(all_succeeded(report)) << v.tag;
        ASSERT_EQ(report.rows.size(), 3u);

        for (std::uint64_t g = 0; g < 3; ++g) {
            EXPECT_EQ(report.rows[g].seed, corpus_graph_seed(kMaster, g));
            for (const ReplicateReport& r : refs[g].replicates) {
                const fs::path corpus_file = out / plan.graphs[g].name /
                                             fs::path(r.output_path).filename();
                EXPECT_EQ(slurp(r.output_path), slurp(corpus_file.string()))
                    << v.tag << " graph " << g << " " << corpus_file;
            }
            // The shard also wrote its own per-graph report.
            EXPECT_TRUE(fs::exists(out / plan.graphs[g].name / "report.json"));
        }
    }
}

TEST(Corpus, ReplicatesOfDifferentGraphsInterleaveOverOneBudget) {
    // The tentpole scheduling claim: (graph x replicate) cells of all
    // members share one budget round-robin — the completion sequence mixes
    // graphs instead of finishing them serially.
    const fs::path inputs = scratch_dir("corpus_interleave_inputs");
    const std::vector<std::string> paths = write_corpus_inputs(inputs);

    PipelineConfig base;
    base.input_path = paths[0] + " " + paths[1] + " " + paths[2];
    base.algorithm = "seq-global-es";
    base.supersteps = 2;
    base.replicates = 8;
    base.seed = 5;
    base.metrics = false;
    base.threads = 2;
    base.policy = SchedulePolicy::kReplicates;

    std::mutex mutex;
    std::vector<std::size_t> completion_graphs;
    CorpusHooks hooks;
    hooks.on_replicate_done = [&](std::size_t graph, const ReplicateReport&) {
        const std::lock_guard<std::mutex> lock(mutex);
        completion_graphs.push_back(graph);
    };
    const CorpusReport report = run_corpus(plan_corpus(base), nullptr, nullptr, hooks);
    ASSERT_TRUE(all_succeeded(report));
    ASSERT_EQ(completion_graphs.size(), 24u);

    std::size_t switches = 0;
    for (std::size_t i = 1; i < completion_graphs.size(); ++i) {
        if (completion_graphs[i] != completion_graphs[i - 1]) ++switches;
    }
    // Round-robin popping alternates graphs nearly every task (~22 of 23
    // transitions); serial graph execution would give exactly 2.  A low
    // bar keeps the assertion robust to scheduling jitter while still
    // ruling out any serial ordering.
    EXPECT_GE(switches, 6u) << "completion order looks serial per graph";
}

TEST(Corpus, ResumesOnlyUnfinishedCellsByteIdentically) {
    const fs::path inputs = scratch_dir("corpus_resume_inputs");
    const std::vector<std::string> paths = write_corpus_inputs(inputs);

    const auto corpus_config = [&](const fs::path& out) {
        PipelineConfig base;
        base.input_path = paths[0] + " " + paths[1] + " " + paths[2];
        base.algorithm = "par-global-es";
        base.supersteps = 6;
        base.replicates = 3;
        base.seed = 31;
        base.metrics = false;
        base.threads = 2;
        base.output_format = OutputFormat::kBinary;
        base.checkpoint_every = 2;
        base.output_dir = out.string();
        return base;
    };

    // Uninterrupted reference corpus.
    const fs::path ref_dir = scratch_dir("corpus_resume_ref");
    const CorpusReport ref = run_corpus(plan_corpus(corpus_config(ref_dir)));
    ASSERT_TRUE(all_succeeded(ref));

    // Interrupted run: trip the flag once a few cells have completed — the
    // remaining cells stop at checkpoint boundaries or never start.
    const fs::path int_dir = scratch_dir("corpus_resume_int");
    std::atomic<bool> stop{false};
    std::atomic<int> cells{0};
    CorpusHooks hooks;
    hooks.on_replicate_done = [&](std::size_t, const ReplicateReport&) {
        if (cells.fetch_add(1) + 1 >= 2) stop.store(true);
    };
    const CorpusPlan interrupted_plan = plan_corpus(corpus_config(int_dir));
    const CorpusReport interrupted = run_corpus(interrupted_plan, nullptr, &stop, hooks);
    // Tiny graphs can win the race and finish; the resume below then
    // degenerates to a skip-everything pass — the comparison must hold
    // either way.
    if (was_interrupted(interrupted)) {
        // The interruption left resumable state behind: interrupted cells
        // checkpointed (a later successful resume cleans these up again).
        bool any_checkpoint_dir = false;
        for (const CorpusInput& graph : interrupted_plan.graphs) {
            any_checkpoint_dir =
                any_checkpoint_dir || fs::exists(int_dir / graph.name / "checkpoints");
        }
        EXPECT_TRUE(any_checkpoint_dir);
    }

    // Resume into the same directory: only unfinished (graph, replicate)
    // cells run again.
    PipelineConfig resume_config = corpus_config(int_dir);
    resume_config.resume_from = int_dir.string();
    const CorpusReport resumed = run_corpus(plan_corpus(resume_config));
    ASSERT_TRUE(all_succeeded(resumed));

    for (std::size_t g = 0; g < ref.rows.size(); ++g) {
        const fs::path ref_graph_dir = ref_dir / ref.rows[g].name;
        for (const fs::directory_entry& entry : fs::directory_iterator(ref_graph_dir)) {
            if (!entry.is_regular_file() ||
                entry.path().extension() != ".gesb") {
                continue;
            }
            const fs::path resumed_file =
                int_dir / ref.rows[g].name / entry.path().filename();
            EXPECT_EQ(slurp(entry.path().string()), slurp(resumed_file.string()))
                << resumed_file;
        }
    }
}

TEST(Corpus, MergedSummaryJsonIsWellFormedAndAggregated) {
    const fs::path inputs = scratch_dir("corpus_json_inputs");
    const std::vector<std::string> paths = write_corpus_inputs(inputs);
    const fs::path out = scratch_dir("corpus_json_out");

    PipelineConfig base;
    base.input_path = paths[0] + " " + paths[1] + " " + paths[2];
    base.algorithm = "seq-global-es";
    base.supersteps = 2;
    base.replicates = 2;
    base.seed = 9;
    base.metrics = true;
    base.output_dir = out.string();
    base.report_path = (out / "corpus.json").string();

    const CorpusReport report = run_corpus(plan_corpus(base));
    ASSERT_TRUE(all_succeeded(report));

    // The merged summary landed at the configured path and parses with the
    // strict service JSON reader.
    const JsonValue doc = parse_json(slurp(base.report_path));
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.find("corpus")->uint_member("graphs"), 3u);
    const JsonValue* rows = doc.find("graphs");
    ASSERT_TRUE(rows != nullptr && rows->is_array());
    ASSERT_EQ(rows->array_items.size(), 3u);
    for (std::uint64_t g = 0; g < 3; ++g) {
        const JsonValue& row = rows->array_items[g];
        EXPECT_EQ(row.uint_member("seed"), corpus_graph_seed(base.seed, g));
        EXPECT_EQ(row.uint_member("replicates"), 2u);
        EXPECT_EQ(row.uint_member("failed"), 0u);
        EXPECT_TRUE(row.find("metrics") != nullptr);
        EXPECT_GT(row.find("acceptance_rate")->number_value, 0.0);
    }
    const JsonValue* aggregates = doc.find("aggregates");
    ASSERT_TRUE(aggregates != nullptr && aggregates->is_object());
    for (const char* key :
         {"seconds", "switches_per_second", "acceptance_rate", "mean_triangles"}) {
        const JsonValue* agg = aggregates->find(key);
        ASSERT_TRUE(agg != nullptr) << key;
        const double min = agg->find("min")->number_value;
        const double median = agg->find("median")->number_value;
        const double max = agg->find("max")->number_value;
        EXPECT_LE(min, median) << key;
        EXPECT_LE(median, max) << key;
    }
}

} // namespace
} // namespace gesmc
