// Tests for the batch sampling pipeline: extended graph IO (binary format,
// degree-sequence files), config parsing, seed derivation, the replicate
// scheduler, and end-to-end determinism of pipeline runs across schedule
// policies and thread counts.
#include "core/chain.hpp"
#include "gen/configuration_model.hpp"
#include "gen/corpus.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/io.hpp"
#include "parallel/pool_lease.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/seeds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/// Fresh per-test scratch directory under the gtest temp dir.
fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / ("gesmc_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

// ------------------------------------------------------------- binary IO

TEST(BinaryIo, RoundTripsATypicalGraph) {
    const EdgeList g = generate_powerlaw_graph(500, 2.2, 3);
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    const EdgeList back = read_edge_list_binary(ss);
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
    EXPECT_TRUE(back.same_graph(g));
}

TEST(BinaryIo, RoundTripsTheEmptyGraph) {
    const EdgeList empty;
    std::stringstream ss;
    write_edge_list_binary(ss, empty);
    const EdgeList back = read_edge_list_binary(ss);
    EXPECT_EQ(back.num_nodes(), 0u);
    EXPECT_EQ(back.num_edges(), 0u);
}

TEST(BinaryIo, RoundTripsMaxNodeIdEdges) {
    const EdgeList g = EdgeList::from_pairs(
        kMaxNode + 1, {Edge{0, kMaxNode}, Edge{kMaxNode - 1, kMaxNode}});
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    const EdgeList back = read_edge_list_binary(ss);
    EXPECT_EQ(back.num_nodes(), kMaxNode + 1);
    EXPECT_TRUE(back.same_graph(g));
}

TEST(BinaryIo, EncodingIsCanonical) {
    // Two edge lists describing the same graph in different order must
    // produce identical bytes (sorted delta encoding).
    const EdgeList a = EdgeList::from_pairs(4, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}});
    const EdgeList b = EdgeList::from_pairs(4, {Edge{2, 3}, Edge{0, 1}, Edge{1, 2}});
    std::stringstream sa, sb;
    write_edge_list_binary(sa, a);
    write_edge_list_binary(sb, b);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(BinaryIo, IsCompactForSortedKeys) {
    // Delta-varint coding: a sparse graph should cost only a few bytes per
    // edge, far below the 8-byte raw keys.
    const EdgeList g = generate_grid(40, 40);
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    EXPECT_LT(ss.str().size(), g.num_edges() * 6);
}

TEST(BinaryIo, RejectsBadMagicAndTruncation) {
    std::stringstream bad("not a binary edge list");
    EXPECT_THROW(read_edge_list_binary(bad), Error);

    const EdgeList g = generate_grid(4, 4);
    std::stringstream ss;
    write_edge_list_binary(ss, g);
    const std::string full = ss.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(read_edge_list_binary(truncated), Error);
}

TEST(BinaryIo, FileSniffingPicksTheRightReader) {
    const fs::path dir = scratch_dir("sniff");
    const EdgeList g = generate_grid(6, 7);
    const std::string text_path = (dir / "g.txt").string();
    const std::string bin_path = (dir / "g.gesb").string();
    write_edge_list_file(text_path, g);
    write_edge_list_binary_file(bin_path, g);
    EXPECT_TRUE(read_any_edge_list_file(text_path).same_graph(g));
    EXPECT_TRUE(read_any_edge_list_file(bin_path).same_graph(g));
}

TEST(TextIo, RoundTripsThroughAFile) {
    const fs::path dir = scratch_dir("text_roundtrip");
    const EdgeList g = generate_powerlaw_graph(300, 2.5, 9);
    const std::string path = (dir / "g.txt").string();
    write_edge_list_file(path, g);
    const EdgeList back = read_edge_list_file(path);
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
    EXPECT_TRUE(back.same_graph(g));
}

TEST(TextIo, RoundTripsTheEmptyGraph) {
    std::stringstream ss;
    write_edge_list(ss, EdgeList{});
    const EdgeList back = read_edge_list(ss);
    EXPECT_EQ(back.num_nodes(), 0u);
    EXPECT_EQ(back.num_edges(), 0u);
}

// ------------------------------------------------------- degree sequences

TEST(DegreeSequenceIo, RoundTrips) {
    const DegreeSequence seq({3, 3, 2, 2, 2, 1, 1});
    std::stringstream ss;
    write_degree_sequence(ss, seq);
    const DegreeSequence back = read_degree_sequence(ss);
    EXPECT_EQ(back.degrees(), seq.degrees());
}

TEST(DegreeSequenceIo, AcceptsCommentsAndMultiplePerLine) {
    std::stringstream ss("# a comment\n3 3 2\n% another\n2 2\n1 1\n");
    const DegreeSequence seq = read_degree_sequence(ss);
    EXPECT_EQ(seq.degrees(), (std::vector<std::uint32_t>{3, 3, 2, 2, 2, 1, 1}));
}

TEST(DegreeSequenceIo, RejectsMalformedLines) {
    std::stringstream ss("3 two 1\n");
    EXPECT_THROW(read_degree_sequence(ss), Error);
}

// -------------------------------------------------- configuration repair

TEST(ConfigurationModelRepaired, RealizesTheExactDegreeSequence) {
    // Skewed sequence: the raw pairing virtually always needs repair.
    const DegreeSequence seq = degree_sequence_of(generate_powerlaw_graph(400, 2.0, 5));
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const EdgeList g = configuration_model_repaired(seq, seed);
        EXPECT_TRUE(g.is_simple());
        EXPECT_EQ(g.degrees(), seq.degrees());
    }
}

// ----------------------------------------------------------------- config

TEST(PipelineConfig, ParsesAFullFile) {
    std::stringstream ss(R"(# comment
input       = graphs/a.txt
input-kind  = edges
algorithm   = seq-global-es
supersteps  = 7
replicates  = 3
seed        = 99
threads     = 2
policy      = intra-chain
output-dir  = out
output-format = binary
report      = out/r.json
metrics     = false
)");
    const PipelineConfig c = read_pipeline_config(ss);
    EXPECT_EQ(c.input_path, "graphs/a.txt");
    EXPECT_EQ(c.algorithm, "seq-global-es");
    EXPECT_EQ(c.supersteps, 7u);
    EXPECT_EQ(c.replicates, 3u);
    EXPECT_EQ(c.seed, 99u);
    EXPECT_EQ(c.threads, 2u);
    EXPECT_EQ(c.policy, SchedulePolicy::kIntraChain);
    EXPECT_EQ(c.output_dir, "out");
    EXPECT_EQ(c.output_format, OutputFormat::kBinary);
    EXPECT_EQ(c.report_path, "out/r.json");
    EXPECT_FALSE(c.metrics);
}

TEST(PipelineConfig, RejectsUnknownKeysAndBadValues) {
    PipelineConfig c;
    EXPECT_THROW(apply_config_entry(c, "no-such-key", "1"), Error);
    EXPECT_THROW(apply_config_entry(c, "replicates", "many"), Error);
    EXPECT_THROW(apply_config_entry(c, "policy", "sideways"), Error);
    EXPECT_THROW(apply_config_entry(c, "prefetch", "maybe"), Error);
}

TEST(PipelineConfig, ValidateCatchesContradictions) {
    PipelineConfig c; // no input at all
    EXPECT_THROW(validate(c), Error);
    c.input_kind = InputKind::kGenerator;
    EXPECT_THROW(validate(c), Error); // generator kind without generator name
    c.generator = "powerlaw";
    EXPECT_NO_THROW(validate(c));
    // replicates means T = 1; a wider chain-threads pin is a contradiction
    // (hybrid/auto are the spellings that honor it).
    c.policy = SchedulePolicy::kReplicates;
    c.chain_threads = 4;
    EXPECT_THROW(validate(c), Error);
    c.policy = SchedulePolicy::kHybrid;
    EXPECT_NO_THROW(validate(c));
    // ... and intra-chain means K = 1: a wider max-concurrent contradicts.
    c.chain_threads = 0;
    c.policy = SchedulePolicy::kIntraChain;
    c.max_concurrent = 4;
    EXPECT_THROW(validate(c), Error);
    c.policy = SchedulePolicy::kHybrid;
    EXPECT_NO_THROW(validate(c));
    c.max_concurrent = 0;
    c.replicates = 0;
    EXPECT_THROW(validate(c), Error);
}

// ------------------------------------------------------------------ seeds

TEST(ReplicateSeeds, DeterministicAndDistinct) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < 1000; ++r) {
        const std::uint64_t s = replicate_seed(42, r);
        EXPECT_EQ(s, replicate_seed(42, r));
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);                      // no collisions
    EXPECT_NE(replicate_seed(42, 0), replicate_seed(43, 0)); // master matters
}

// -------------------------------------------------------------- scheduler

TEST(Scheduler, ResolvesAutoByReplicateCount) {
    EXPECT_EQ(resolve_policy(SchedulePolicy::kAuto, 8, 4), SchedulePolicy::kReplicates);
    EXPECT_EQ(resolve_policy(SchedulePolicy::kAuto, 2, 4), SchedulePolicy::kIntraChain);
    EXPECT_EQ(resolve_policy(SchedulePolicy::kReplicates, 2, 4),
              SchedulePolicy::kReplicates);
    EXPECT_EQ(resolve_policy(SchedulePolicy::kIntraChain, 100, 4),
              SchedulePolicy::kIntraChain);
}

TEST(Scheduler, ResolvesHybridPoints) {
    // Explicit hybrid with a pinned T: K = ⌊P/T⌋.
    ScheduleRequest request;
    request.policy = SchedulePolicy::kHybrid;
    request.chain_threads = 2;
    ResolvedSchedule s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kHybrid);
    EXPECT_EQ(s.chain_threads, 2u);
    EXPECT_EQ(s.max_concurrent, 4u);

    // max-concurrent caps K below ⌊P/T⌋.
    request.max_concurrent = 3;
    s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.max_concurrent, 3u);

    // K never exceeds the replicate count.
    request.max_concurrent = 0;
    s = resolve_schedule(request, 2, 8);
    EXPECT_EQ(s.max_concurrent, 2u);

    // Unpinned hybrid spreads the budget: R = 2 on P = 8 → 2 x 4.
    request.chain_threads = 0;
    s = resolve_schedule(request, 2, 8);
    EXPECT_EQ(s.chain_threads, 4u);
    EXPECT_EQ(s.max_concurrent, 2u);

    // Non-dividing case: R = 3 on P = 8 must run all three concurrently
    // (3 x 2, two threads idle), not serialize one behind a wider pair.
    s = resolve_schedule(request, 3, 8);
    EXPECT_EQ(s.chain_threads, 2u);
    EXPECT_EQ(s.max_concurrent, 3u);

    // T is clamped to the budget.
    request.chain_threads = 99;
    s = resolve_schedule(request, 4, 8);
    EXPECT_EQ(s.chain_threads, 8u);
    EXPECT_EQ(s.max_concurrent, 1u);
}

TEST(Scheduler, AutoIsBudgetAwareWhenChainThreadsIsPinned) {
    // The pre-budget bug: kAuto compared R against the full pool width even
    // when chain-threads was pinned.  Now the pin selects the realizing
    // policy: T = 2 on P = 8 must give hybrid with K = 4 even for R >= P.
    ScheduleRequest request;
    request.policy = SchedulePolicy::kAuto;
    request.chain_threads = 2;
    ResolvedSchedule s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kHybrid);
    EXPECT_EQ(s.chain_threads, 2u);
    EXPECT_EQ(s.max_concurrent, 4u);

    request.chain_threads = 1;
    EXPECT_EQ(resolve_schedule(request, 2, 8).policy, SchedulePolicy::kReplicates);
    request.chain_threads = 8;
    s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kIntraChain);
    EXPECT_EQ(s.max_concurrent, 1u);

    // Unpinned auto keeps the classic binary choice, with K·T <= P.
    request.chain_threads = 0;
    s = resolve_schedule(request, 16, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kReplicates);
    EXPECT_EQ(s.chain_threads, 1u);
    EXPECT_EQ(s.max_concurrent, 8u);
    s = resolve_schedule(request, 2, 8);
    EXPECT_EQ(s.policy, SchedulePolicy::kIntraChain);
    EXPECT_EQ(s.chain_threads, 8u);
    EXPECT_EQ(s.max_concurrent, 1u);
}

TEST(Scheduler, PoolExecutorRunsEveryReplicateOnceUnderEveryPolicy) {
    struct Point {
        ScheduleRequest request;
        unsigned expect_threads;
        bool expect_pool;
    };
    const Point points[] = {
        {{SchedulePolicy::kReplicates, 0, 0}, 1, false},
        {{SchedulePolicy::kIntraChain, 0, 0}, 4, true},
        {{SchedulePolicy::kHybrid, 2, 0}, 2, true},
        {{SchedulePolicy::kHybrid, 2, 1}, 2, true}, // K capped to 1
    };
    for (const Point& point : points) {
        ThreadBudget budget(4);
        PoolExecutor executor(budget);
        constexpr std::uint64_t kReplicates = 37;
        std::vector<std::atomic<int>> hits(kReplicates);
        executor.run(kReplicates, point.request, [&](const ReplicateSlot& slot) {
            hits[slot.index].fetch_add(1);
            EXPECT_EQ(slot.chain_threads, point.expect_threads);
            if (point.expect_pool) {
                ASSERT_NE(slot.shared_pool, nullptr);
                EXPECT_EQ(slot.shared_pool->num_threads(), point.expect_threads);
            } else {
                EXPECT_EQ(slot.shared_pool, nullptr);
            }
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
        EXPECT_EQ(budget.leased(), 0u); // every lease returned
    }
}

// ----------------------------------------------------------- shared pools

TEST(SharedPool, ChainsProduceIdenticalGraphsOnBorrowedPools) {
    const EdgeList initial = generate_powerlaw_graph(600, 2.2, 11);
    for (const ChainAlgorithm algo :
         {ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kParGlobalES,
          ChainAlgorithm::kParES}) {
        ChainConfig own;
        own.seed = 5;
        own.threads = 2;
        auto owned = make_chain(algo, initial, own);
        owned->run_supersteps(3);

        ThreadPool pool(2);
        ChainConfig borrowed = own;
        borrowed.shared_pool = &pool;
        auto borrowing = make_chain(algo, initial, borrowed);
        borrowing->run_supersteps(3);

        EXPECT_TRUE(owned->graph().same_graph(borrowing->graph()))
            << to_string(algo);
    }
}

// ---------------------------------------------------------- chain factory

TEST(ChainFactory, NamesRoundTrip) {
    for (const auto& [name, algo] : chain_algorithm_names()) {
        EXPECT_EQ(chain_algorithm_from_string(name), algo);
        EXPECT_EQ(chain_algorithm_name(algo), name);
    }
    EXPECT_THROW(chain_algorithm_from_string("quantum-es"), Error);
}

// ------------------------------------------------------------ end to end

PipelineConfig small_run_config(const std::string& algo, const fs::path& out_dir) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = "powerlaw";
    c.gen_n = 400;
    c.gen_gamma = 2.2;
    c.algorithm = algo;
    c.supersteps = 3;
    c.replicates = 8;
    c.seed = 1234;
    c.metrics = false;
    c.output_dir = out_dir.string();
    return c;
}

TEST(Pipeline, SameConfigAndSeedGiveByteIdenticalOutputs) {
    // The determinism contract: outputs depend only on (config, seed) — not
    // on the schedule policy, the thread budget, or the (K, T) point the
    // run resolves to.  Every exact chain is compared across kReplicates,
    // kIntraChain, and two distinct hybrid (K, T) configurations.
    struct Variant {
        const char* tag;
        SchedulePolicy policy;
        unsigned threads;
        unsigned chain_threads;
        unsigned max_concurrent;
    };
    const Variant variants[] = {
        {"repl", SchedulePolicy::kReplicates, 4, 0, 0},  // 4 x 1
        {"intra", SchedulePolicy::kIntraChain, 2, 0, 0}, // 1 x 2
        {"hyb22", SchedulePolicy::kHybrid, 4, 2, 0},     // 2 x 2
        {"hyb23", SchedulePolicy::kHybrid, 6, 3, 2},     // 2 x 3
    };
    for (const std::string algo : {"seq-es", "par-es", "seq-global-es", "par-global-es"}) {
        std::vector<RunReport> reports;
        for (const Variant& v : variants) {
            const fs::path dir = scratch_dir("det_" + std::string(v.tag) + "_" + algo);
            PipelineConfig c = small_run_config(algo, dir);
            c.policy = v.policy;
            c.threads = v.threads;
            c.chain_threads = v.chain_threads;
            c.max_concurrent = v.max_concurrent;
            reports.push_back(run_pipeline(c));
            ASSERT_TRUE(all_succeeded(reports.back())) << algo << " " << v.tag;
            ASSERT_EQ(reports.back().replicates.size(), 8u);
        }
        // The hybrid variants really resolved to hybrid (K, T) points.
        EXPECT_EQ(reports[2].resolved_policy, SchedulePolicy::kHybrid);
        EXPECT_EQ(reports[2].chain_threads, 2u);
        EXPECT_EQ(reports[2].max_concurrent, 2u);
        EXPECT_EQ(reports[3].chain_threads, 3u);
        EXPECT_EQ(reports[3].max_concurrent, 2u);

        const RunReport& ra = reports.front();
        for (std::size_t v = 1; v < reports.size(); ++v) {
            for (std::uint64_t r = 0; r < 8; ++r) {
                EXPECT_FALSE(ra.replicates[r].output_path.empty());
                EXPECT_EQ(slurp(ra.replicates[r].output_path),
                          slurp(reports[v].replicates[r].output_path))
                    << algo << " variant " << variants[v].tag << " replicate " << r;
            }
        }
        // Replicates must be distinct samples, not copies of each other.
        EXPECT_NE(slurp(ra.replicates[0].output_path),
                  slurp(ra.replicates[1].output_path))
            << algo;
    }
}

TEST(Pipeline, BinaryOutputsRoundTripAndPreserveDegrees) {
    const fs::path dir = scratch_dir("binary_outputs");
    PipelineConfig c = small_run_config("par-global-es", dir);
    c.output_format = OutputFormat::kBinary;
    c.replicates = 4;
    const RunReport report = run_pipeline(c);
    ASSERT_TRUE(all_succeeded(report));

    const EdgeList input = materialize_input(c);
    for (const ReplicateReport& r : report.replicates) {
        const EdgeList g = read_any_edge_list_file(r.output_path);
        EXPECT_TRUE(g.is_simple());
        EXPECT_EQ(g.degrees(), input.degrees());
        EXPECT_FALSE(g.same_graph(input)); // it actually randomized
    }
}

TEST(Pipeline, DegreeSequenceInputsWorkWithBothInitMethods) {
    const fs::path dir = scratch_dir("degree_input");
    const DegreeSequence seq = degree_sequence_of(generate_powerlaw_graph(300, 2.2, 17));
    const std::string deg_path = (dir / "degs.txt").string();
    write_degree_sequence_file(deg_path, seq);

    for (const InitMethod init :
         {InitMethod::kHavelHakimi, InitMethod::kConfigurationModel}) {
        PipelineConfig c;
        c.input_path = deg_path;
        c.input_kind = InputKind::kDegreeSequence;
        c.init = init;
        c.algorithm = "seq-global-es";
        c.supersteps = 3;
        c.replicates = 3;
        c.seed = 5;
        c.metrics = false;
        const RunReport report = run_pipeline(c);
        ASSERT_TRUE(all_succeeded(report)) << to_string(init);
        EXPECT_EQ(report.input_edges, seq.num_edges());
    }
}

TEST(Pipeline, ReportIsWrittenAndContainsPerReplicateStats) {
    const fs::path dir = scratch_dir("report");
    PipelineConfig c = small_run_config("par-global-es", dir);
    c.replicates = 3;
    c.metrics = true;
    c.report_path = (dir / "report.json").string();
    const RunReport report = run_pipeline(c);
    ASSERT_TRUE(all_succeeded(report));

    const std::string json = slurp(c.report_path);
    EXPECT_NE(json.find("\"resolved_policy\""), std::string::npos);
    EXPECT_NE(json.find("\"resolved_chain_threads\""), std::string::npos);
    EXPECT_NE(json.find("\"resolved_max_concurrent\""), std::string::npos);
    EXPECT_NE(json.find("\"switches_per_second\""), std::string::npos);
    EXPECT_NE(json.find("\"replicates\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));

    // Every replicate ran the requested number of supersteps.
    for (const ReplicateReport& r : report.replicates) {
        EXPECT_EQ(r.stats.supersteps, c.supersteps);
        EXPECT_GT(r.stats.attempted, 0u);
        EXPECT_TRUE(r.has_metrics);
    }
}

TEST(Pipeline, RejectsInputsTooSmallToSwitch) {
    const fs::path dir = scratch_dir("failure");
    const std::string path = (dir / "tiny.txt").string();
    write_edge_list_file(path, EdgeList::from_pairs(2, {Edge{0, 1}}));
    PipelineConfig c;
    c.input_path = path;
    c.replicates = 2;
    EXPECT_THROW(run_pipeline(c), Error); // rejected up front, before replicates
}

// ------------------------------------------- concurrent observer delivery

TEST(RunObserverConcurrency, ReplicateParallelDeliveryIsOrderedPerReplicate) {
    // Stress the RunObserver contract under the replicate-parallel policy:
    // callbacks fire concurrently from pool threads, but *per replicate*
    // the stream must still read like a single chain's life — superstep
    // counters strictly increasing, checkpoints at their boundaries, and
    // exactly one on_replicate_done as the final event.  Run under ASan in
    // CI, this also shakes out data races in the delivery path.
    struct Event {
        enum Kind { kSuperstep, kCheckpoint, kDone } kind;
        std::uint64_t superstep;
    };

    class Recorder final : public RunObserver {
    public:
        void on_superstep(std::uint64_t replicate, const Chain& chain) override {
            const std::lock_guard<std::mutex> lock(mutex_);
            events_[replicate].push_back({Event::kSuperstep, chain.stats().supersteps});
            threads_.insert(std::this_thread::get_id());
        }
        void on_checkpoint(std::uint64_t replicate, const ChainState& state,
                           const std::string&) override {
            const std::lock_guard<std::mutex> lock(mutex_);
            events_[replicate].push_back({Event::kCheckpoint, state.stats.supersteps});
        }
        void on_replicate_done(const ReplicateReport& r) override {
            const std::lock_guard<std::mutex> lock(mutex_);
            events_[r.index].push_back({Event::kDone, 0});
        }

        std::mutex mutex_;
        std::map<std::uint64_t, std::vector<Event>> events_;
        std::set<std::thread::id> threads_;
    };

    const fs::path dir = scratch_dir("observer_stress");
    PipelineConfig c = small_run_config("par-global-es", dir);
    c.replicates = 16;
    c.supersteps = 6;
    c.threads = 4;
    c.policy = SchedulePolicy::kReplicates;
    c.checkpoint_every = 2;

    Recorder recorder;
    const RunReport report = run_pipeline(c, nullptr, &recorder);
    ASSERT_TRUE(all_succeeded(report));

    ASSERT_EQ(recorder.events_.size(), c.replicates);
    for (const auto& [replicate, events] : recorder.events_) {
        // 6 supersteps + 3 checkpoints (the last the finished marker) + done.
        ASSERT_EQ(events.size(), c.supersteps + 3 + 1) << "replicate " << replicate;

        std::uint64_t last_superstep = 0;
        std::uint64_t supersteps = 0, checkpoints = 0, done = 0;
        for (std::size_t i = 0; i < events.size(); ++i) {
            const Event& e = events[i];
            switch (e.kind) {
            case Event::kSuperstep:
                ++supersteps;
                EXPECT_EQ(e.superstep, last_superstep + 1)
                    << "superstep monotonicity, replicate " << replicate;
                last_superstep = e.superstep;
                break;
            case Event::kCheckpoint:
                ++checkpoints;
                // A checkpoint snapshots the state *at* the last superstep.
                EXPECT_EQ(e.superstep, last_superstep)
                    << "checkpoint boundary, replicate " << replicate;
                EXPECT_EQ(e.superstep % c.checkpoint_every, 0u);
                break;
            case Event::kDone:
                ++done;
                EXPECT_EQ(i, events.size() - 1)
                    << "on_replicate_done must be last, replicate " << replicate;
                break;
            }
        }
        EXPECT_EQ(supersteps, c.supersteps);
        EXPECT_EQ(checkpoints, 3u);
        EXPECT_EQ(done, 1u);
        EXPECT_EQ(last_superstep, c.supersteps);
    }
}

} // namespace
} // namespace gesmc
