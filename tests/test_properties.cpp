// Parameterized property suites (TEST_P sweeps) across the full
// (algorithm x graph family x thread count x seed) grid:
//  * conservation laws every chain must satisfy,
//  * exactness of the parallel chains against their sequential twins,
//  * determinism in the seed and independence from the thread count,
//  * ParallelSuperstep equivalence on adversarial batch shapes.
#include "core/chain.hpp"
#include "core/seq_global_es.hpp"
#include "core/parallel_superstep.hpp"
#include "core/sequential_apply.hpp"
#include "core/switch_stream.hpp"
#include "gen/configuration_model.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "gen/powerlaw.hpp"
#include "graph/degree_sequence.hpp"
#include "hashing/robin_set.hpp"
#include "rng/mt19937_64.hpp"
#include "rng/shuffle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

namespace gesmc {
namespace {

// ------------------------------------------------------------ test graphs

struct GraphCase {
    const char* name;
    EdgeList (*make)();
};

EdgeList make_powerlaw_small() { return generate_powerlaw_graph(400, 2.1, 11); }
EdgeList make_powerlaw_skewed() { return generate_powerlaw_graph(600, 2.01, 12); }
EdgeList make_gnp_sparse() { return generate_gnp(500, gnp_probability_for_edges(500, 1500), 13); }
EdgeList make_gnp_dense() { return generate_gnp(80, 0.6, 14); }
EdgeList make_grid() { return generate_grid(20, 25); }
EdgeList make_regular() { return generate_regular(300, 6); }
EdgeList make_star_forest() {
    // Extreme disassortative case: stars force loop rejections.
    std::vector<Edge> pairs;
    for (node_t s = 0; s < 5; ++s) {
        for (node_t leaf = 0; leaf < 30; ++leaf) {
            pairs.push_back(Edge{s, static_cast<node_t>(5 + s * 30 + leaf)});
        }
    }
    return EdgeList::from_pairs(5 + 150, pairs);
}
EdgeList make_config_model() {
    const DegreeSequence seq = sample_powerlaw_degrees(300, 2.4, 15);
    return configuration_model_erased(seq, 16);
}

const GraphCase kGraphCases[] = {
    {"powerlaw", make_powerlaw_small},   {"powerlaw-skewed", make_powerlaw_skewed},
    {"gnp-sparse", make_gnp_sparse},     {"gnp-dense", make_gnp_dense},
    {"grid", make_grid},                 {"regular", make_regular},
    {"star-forest", make_star_forest},   {"config-model", make_config_model},
};

std::string graph_case_name(const testing::TestParamInfo<GraphCase>& info) {
    std::string s = info.param.name;
    for (auto& c : s)
        if (c == '-') c = '_';
    return s;
}

// --------------------------------------------------- conservation sweeps

struct ConservationParam {
    GraphCase graph;
    ChainAlgorithm algo;
    unsigned threads;
};

class ChainConservation : public testing::TestWithParam<ConservationParam> {};

TEST_P(ChainConservation, DegreesSimplicityAndCounters) {
    const auto& p = GetParam();
    const EdgeList initial = p.graph.make();
    ChainConfig config;
    config.seed = 77;
    config.threads = p.threads;
    const auto chain = make_chain(p.algo, initial, config);
    const auto deg = initial.degrees();

    for (int batch = 0; batch < 3; ++batch) {
        chain->run_supersteps(1);
        const EdgeList& g = chain->graph();
        ASSERT_TRUE(g.is_simple());
        ASSERT_EQ(g.degrees(), deg);
        const auto& st = chain->stats();
        ASSERT_EQ(st.attempted, st.accepted + st.rejected_loop + st.rejected_edge);
    }
}

std::vector<ConservationParam> conservation_grid() {
    std::vector<ConservationParam> grid;
    for (const auto& g : kGraphCases) {
        for (const auto algo :
             {ChainAlgorithm::kSeqES, ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kAdjListES}) {
            grid.push_back({g, algo, 1});
        }
        for (const auto algo : {ChainAlgorithm::kParES, ChainAlgorithm::kParGlobalES,
                                ChainAlgorithm::kNaiveParES}) {
            grid.push_back({g, algo, 1});
            grid.push_back({g, algo, 3});
        }
    }
    return grid;
}

INSTANTIATE_TEST_SUITE_P(AllChainsAllGraphs, ChainConservation,
                         testing::ValuesIn(conservation_grid()),
                         [](const testing::TestParamInfo<ConservationParam>& info) {
                             std::string s = std::string(info.param.graph.name) + "_" +
                                             to_string(info.param.algo) + "_P" +
                                             std::to_string(info.param.threads);
                             for (auto& c : s)
                                 if (c == '-') c = '_';
                             return s;
                         });

// ------------------------------------------------------- exactness sweeps

class ParVsSeqExactness : public testing::TestWithParam<GraphCase> {};

TEST_P(ParVsSeqExactness, GlobalChainsIdenticalForAllThreadCounts) {
    const EdgeList initial = GetParam().make();
    ChainConfig config;
    config.seed = 3;
    SeqGlobalES seq_ref(initial, config);
    seq_ref.run_supersteps(2);
    for (unsigned threads : {1u, 2u, 3u}) {
        ChainConfig par_config;
        par_config.seed = 3;
        par_config.threads = threads;
        const auto par = make_chain(ChainAlgorithm::kParGlobalES, initial, par_config);
        par->run_supersteps(2);
        ASSERT_TRUE(par->graph().same_graph(seq_ref.graph())) << "threads=" << threads;
    }
}

TEST_P(ParVsSeqExactness, EsChainsIdenticalForAllThreadCounts) {
    const EdgeList initial = GetParam().make();
    ChainConfig config;
    config.seed = 4;
    const auto seq = make_chain(ChainAlgorithm::kSeqES, initial, config);
    seq->run_supersteps(2);
    for (unsigned threads : {1u, 3u}) {
        ChainConfig par_config;
        par_config.seed = 4;
        par_config.threads = threads;
        const auto par = make_chain(ChainAlgorithm::kParES, initial, par_config);
        par->run_supersteps(2);
        ASSERT_TRUE(par->graph().same_graph(seq->graph())) << "threads=" << threads;
    }
}

TEST_P(ParVsSeqExactness, SeedDeterminism) {
    const EdgeList initial = GetParam().make();
    for (const auto algo : {ChainAlgorithm::kSeqES, ChainAlgorithm::kSeqGlobalES,
                            ChainAlgorithm::kParGlobalES}) {
        ChainConfig config;
        config.seed = 5;
        config.threads = 2;
        const auto a = make_chain(algo, initial, config);
        const auto b = make_chain(algo, initial, config);
        a->run_supersteps(2);
        b->run_supersteps(2);
        ASSERT_EQ(a->graph().keys(), b->graph().keys()) << to_string(algo);
    }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, ParVsSeqExactness, testing::ValuesIn(kGraphCases),
                         graph_case_name);

// ------------------------------------------- superstep batch-shape sweeps

struct BatchShapeParam {
    const char* name;
    /// Builds a source-dependency-free batch for a graph with m edges.
    std::vector<Switch> (*make)(std::uint64_t m, std::uint64_t seed);
};

std::vector<Switch> batch_full_pairing(std::uint64_t m, std::uint64_t seed) {
    std::vector<std::uint32_t> perm;
    sample_permutation(perm, m, seed);
    std::vector<Switch> batch;
    for (std::uint64_t k = 0; 2 * k + 1 < m; ++k) {
        batch.push_back(Switch{perm[2 * k], perm[2 * k + 1],
                               static_cast<std::uint8_t>(perm[2 * k] < perm[2 * k + 1])});
    }
    return batch;
}

std::vector<Switch> batch_single(std::uint64_t m, std::uint64_t seed) {
    return {Switch{static_cast<std::uint32_t>(seed % m),
                   static_cast<std::uint32_t>((seed + 1) % m), 1}};
}

std::vector<Switch> batch_adjacent_indices(std::uint64_t m, std::uint64_t) {
    // Consecutive index pairs (0,1), (2,3), ...: high chance of shared
    // nodes -> loops/identity cases when edges are sorted by construction.
    std::vector<Switch> batch;
    for (std::uint64_t k = 0; 2 * k + 1 < m; ++k) {
        batch.push_back(Switch{static_cast<std::uint32_t>(2 * k),
                               static_cast<std::uint32_t>(2 * k + 1),
                               static_cast<std::uint8_t>(k % 2)});
    }
    return batch;
}

std::vector<Switch> batch_reversed(std::uint64_t m, std::uint64_t seed) {
    auto batch = batch_full_pairing(m, seed);
    // Reversing the order changes which switch wins each dependency; the
    // parallel executor must follow suit exactly.
    std::reverse(batch.begin(), batch.end());
    return batch;
}

std::vector<Switch> batch_all_g0(std::uint64_t m, std::uint64_t seed) {
    auto batch = batch_full_pairing(m, seed);
    for (auto& sw : batch) sw.g = 0;
    return batch;
}

const BatchShapeParam kBatchShapes[] = {
    {"full-pairing", batch_full_pairing}, {"single", batch_single},
    {"adjacent", batch_adjacent_indices}, {"reversed", batch_reversed},
    {"all-g0", batch_all_g0},
};

class SuperstepBatchShapes : public testing::TestWithParam<BatchShapeParam> {};

TEST_P(SuperstepBatchShapes, ParallelEqualsSequentialOnAllGraphs) {
    for (const auto& gc : kGraphCases) {
        const EdgeList graph = gc.make();
        const std::uint64_t m = graph.num_edges();
        const auto batch = GetParam().make(m, 99);

        ThreadPool pool(3);
        std::vector<edge_key_t> par_keys = graph.keys();
        ConcurrentEdgeSet set(m);
        for (const edge_key_t k : par_keys) set.insert_unique(k);
        SuperstepRunner runner(batch.size());
        runner.run(pool, par_keys, set, batch);

        std::vector<edge_key_t> seq_keys = graph.keys();
        RobinSet ref_set(m);
        for (const edge_key_t k : seq_keys) ref_set.insert(k);
        ChainStats stats;
        for (const Switch& sw : batch) apply_switch_sequential(seq_keys, ref_set, sw, stats);

        ASSERT_EQ(par_keys, seq_keys) << gc.name << " / " << GetParam().name;
        // Set and edge list must agree afterwards.
        ASSERT_EQ(set.size(), m) << gc.name;
        for (const edge_key_t k : par_keys) ASSERT_TRUE(set.contains(k));
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SuperstepBatchShapes, testing::ValuesIn(kBatchShapes),
                         [](const testing::TestParamInfo<BatchShapeParam>& info) {
                             std::string s = info.param.name;
                             for (auto& c : s)
                                 if (c == '-') c = '_';
                             return s;
                         });

// ----------------------------------------------- switch-stream uniformity

class SwitchStreamSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchStreamSeeds, PairDistributionIsSymmetric) {
    // P(i < j) must be exactly 1/2 on ordered distinct pairs.
    SwitchStream stream(GetParam(), 64);
    int less = 0;
    constexpr int draws = 20000;
    for (int k = 0; k < draws; ++k) {
        const Switch sw = stream.get(static_cast<std::uint64_t>(k));
        less += sw.i < sw.j;
    }
    EXPECT_NEAR(less, draws / 2.0, 5 * std::sqrt(draws * 0.25));
}

TEST_P(SwitchStreamSeeds, DirectionBitIsFair) {
    SwitchStream stream(GetParam(), 64);
    int ones = 0;
    constexpr int draws = 20000;
    for (int k = 0; k < draws; ++k) ones += stream.get(static_cast<std::uint64_t>(k)).g;
    EXPECT_NEAR(ones, draws / 2.0, 5 * std::sqrt(draws * 0.25));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchStreamSeeds, testing::Values(1, 42, 0xdeadbeef, 7777777));

// --------------------------------------------- permutation sampler sweeps

class PermutationSizes : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationSizes, ValidAndThreadCountInvariant) {
    const std::uint64_t n = GetParam();
    std::vector<std::uint32_t> ref;
    sample_permutation(ref, n, 4711);
    ASSERT_EQ(ref.size(), n);
    std::vector<bool> seen(n, false);
    for (const auto x : ref) {
        ASSERT_LT(x, n);
        ASSERT_FALSE(seen[x]);
        seen[x] = true;
    }
    ThreadPool pool(3);
    std::vector<std::uint32_t> par;
    sample_permutation(par, n, 4711, pool);
    ASSERT_EQ(par, ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSizes,
                         testing::Values(0, 1, 2, 3, 100, 2047, 2048, 2049, 10000, 65536));

} // namespace
} // namespace gesmc
