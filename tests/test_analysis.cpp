// Tests for the analysis module: G2/BIC independence test, thinning
// tracker, mixing-curve driver, and proxy metrics.
#include "analysis/autocorrelation.hpp"
#include "analysis/convergence.hpp"
#include "analysis/proxy_metrics.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "rng/bounded.hpp"
#include "rng/mt19937_64.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gesmc {
namespace {

// -------------------------------------------------------------- G2 / BIC

TEST(G2, ZeroForEmptyAndDegenerate) {
    const std::uint32_t empty[2][2] = {{0, 0}, {0, 0}};
    EXPECT_EQ(g2_statistic(empty), 0.0);
    const std::uint32_t constant[2][2] = {{100, 0}, {0, 0}}; // never flips
    EXPECT_EQ(g2_statistic(constant), 0.0);
}

TEST(G2, ZeroWhenTransitionsMatchMarginals) {
    // Perfectly independent counts: n_ij = row_i * col_j / N exactly.
    const std::uint32_t indep[2][2] = {{40, 40}, {10, 10}};
    EXPECT_NEAR(g2_statistic(indep), 0.0, 1e-9);
    EXPECT_TRUE(bic_prefers_independent(indep));
}

TEST(G2, LargeForStickySeries) {
    // A series that almost never flips is strongly Markov.
    const std::uint32_t sticky[2][2] = {{50, 2}, {2, 50}};
    EXPECT_GT(g2_statistic(sticky), 50.0);
    EXPECT_FALSE(bic_prefers_independent(sticky));
}

TEST(G2, MatchesHandComputedValue) {
    // G2 = 2 * sum n_ij ln(n_ij N / (row_i col_j)).
    const std::uint32_t c[2][2] = {{30, 10}, {10, 30}};
    const double n = 80, r0 = 40, r1 = 40, c0 = 40, c1 = 40;
    const double expect = 2 * (30 * std::log(30 * n / (r0 * c0)) +
                               10 * std::log(10 * n / (r0 * c1)) +
                               10 * std::log(10 * n / (r1 * c0)) +
                               30 * std::log(30 * n / (r1 * c1)));
    EXPECT_NEAR(g2_statistic(c), expect, 1e-9);
}

TEST(Bic, InsufficientDataIsNotIndependent) {
    const std::uint32_t one[2][2] = {{1, 0}, {0, 0}};
    EXPECT_FALSE(bic_prefers_independent(one));
}

// ----------------------------------------------------------- thinning set

TEST(Thinning, DefaultLadder) {
    const auto t = default_thinning_values(32);
    EXPECT_EQ(t.front(), 1u);
    EXPECT_EQ(t.back(), 32u);
    for (std::size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i - 1], t[i]);
    const auto t48 = default_thinning_values(48);
    EXPECT_EQ(t48.back(), 48u);
}

// ------------------------------------------------------- tracker on chains

/// A fake chain whose edges flip deterministically or stay constant —
/// lets us validate the tracker without Markov-chain noise.
class ScriptedChain final : public Chain {
public:
    explicit ScriptedChain(int period) : period_(period) {
        graph_ = EdgeList::from_pairs(4, {Edge{0, 1}, Edge{2, 3}});
    }
    using Chain::run_supersteps;
    void run_supersteps(std::uint64_t count, RunObserver*, std::uint64_t) override {
        step_ += count;
    }
    [[nodiscard]] ChainState snapshot() const override { return {}; }
    [[nodiscard]] const EdgeList& graph() const override { return graph_; }
    [[nodiscard]] bool has_edge(edge_key_t key) const override {
        if (key == edge_key(0, 1)) return true; // constant edge
        // The other edge alternates presence with the given period.
        return (step_ / period_) % 2 == 0;
    }
    [[nodiscard]] const ChainStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "Scripted"; }

private:
    EdgeList graph_;
    ChainStats stats_;
    int period_;
    std::uint64_t step_ = 0;
};

TEST(Tracker, PeriodicEdgeIsMarkovAtFineThinning) {
    // Period-8 square wave: at thinning 1 the series is sticky (Markov);
    // thinning 8 flips every sample (also Markov!); the G2 detects both.
    ScriptedChain chain(8);
    ThinningAutocorrelation tracker(chain, {1}, ThinningAutocorrelation::Track::kInitialEdges);
    for (int step = 0; step < 400; ++step) {
        chain.run_supersteps(1);
        tracker.observe(chain);
    }
    // One constant edge (independent by G2 convention) + one sticky edge.
    EXPECT_NEAR(tracker.non_independent_fraction(0), 0.5, 1e-9);
}

TEST(Tracker, IidEdgesAreIndependent) {
    // A chain whose tracked edge states are freshly random each superstep.
    class IidChain final : public Chain {
    public:
        IidChain() : gen_(7) { graph_ = EdgeList::from_pairs(4, {Edge{0, 1}, Edge{2, 3}}); }
        using Chain::run_supersteps;
        void run_supersteps(std::uint64_t, RunObserver*, std::uint64_t) override {
            state0_ = uniform_bit(gen_);
            state1_ = uniform_bit(gen_);
        }
        [[nodiscard]] ChainState snapshot() const override { return {}; }
        [[nodiscard]] const EdgeList& graph() const override { return graph_; }
        [[nodiscard]] bool has_edge(edge_key_t key) const override {
            return key == edge_key(0, 1) ? state0_ : state1_;
        }
        [[nodiscard]] const ChainStats& stats() const override { return stats_; }
        [[nodiscard]] std::string name() const override { return "Iid"; }

    private:
        EdgeList graph_;
        ChainStats stats_;
        mutable Mt19937_64 gen_;
        bool state0_ = true, state1_ = false;
    };
    IidChain chain;
    ThinningAutocorrelation tracker(chain, {1, 2}, ThinningAutocorrelation::Track::kInitialEdges);
    for (int step = 0; step < 600; ++step) {
        chain.run_supersteps(1);
        tracker.observe(chain);
    }
    EXPECT_EQ(tracker.non_independent_fraction(0), 0.0);
    EXPECT_EQ(tracker.non_independent_fraction(1), 0.0);
}

TEST(Tracker, AllPairsModeTracksNonEdgesToo) {
    const EdgeList g = EdgeList::from_pairs(4, {Edge{0, 1}, Edge{2, 3}});
    ChainConfig config;
    auto chain = make_chain(ChainAlgorithm::kSeqES, g, config);
    ThinningAutocorrelation tracker(*chain, {1}, ThinningAutocorrelation::Track::kAllPairs);
    chain->run_supersteps(1);
    tracker.observe(*chain);
    SUCCEED(); // 6 pairs tracked without issue
}

// --------------------------------------------------------- mixing curves

TEST(MixingCurve, DecreasesWithThinningOnRealChain) {
    // On a small power-law graph the fraction of dependent edges must fall
    // (weakly) as the thinning grows, and be high at thinning 1.
    const EdgeList g = generate_powerlaw_graph(128, 2.2, 3);
    MixingExperimentConfig config;
    config.max_thinning = 16;
    config.samples_at_max = 25;
    config.runs = 2;
    const MixingCurve curve = mixing_curve(ChainAlgorithm::kSeqGlobalES, g, config);
    ASSERT_EQ(curve.mean.size(), curve.thinning.size());
    EXPECT_GT(curve.mean.front(), curve.mean.back());
    // Check rough monotone trend: last value should be among the smallest.
    for (const double v : curve.mean) EXPECT_GE(v + 0.15, curve.mean.back());
}

TEST(MixingCurve, FirstThinningBelowThreshold) {
    MixingCurve curve;
    curve.thinning = {1, 2, 4, 8};
    curve.mean = {0.9, 0.4, 0.05, 0.01};
    EXPECT_EQ(first_thinning_below(curve, 0.5), 2u);
    EXPECT_EQ(first_thinning_below(curve, 0.02), 8u);
    EXPECT_FALSE(first_thinning_below(curve, 0.001).has_value());
}

// ---------------------------------------------------------------- proxies

TEST(Proxies, SeriesHasExpectedShape) {
    const EdgeList g = generate_powerlaw_graph(300, 2.2, 4);
    ChainConfig config;
    auto chain = make_chain(ChainAlgorithm::kSeqES, g, config);
    const auto series = proxy_series(*chain, 5);
    ASSERT_EQ(series.size(), 6u);
    EXPECT_EQ(series.front().superstep, 0u);
    EXPECT_EQ(series.back().superstep, 5u);
    // Havel–Hakimi graphs are highly clustered; switching should reduce the
    // triangle count noticeably.
    EXPECT_LT(series.back().triangles, series.front().triangles);
}

} // namespace
} // namespace gesmc
