// Unit and statistical tests for the randomness substrate: MT19937-64
// reference equivalence, Lemire bounded draws, binomial sampling, and the
// (parallel) permutation sampler.
#include "rng/binomial.hpp"
#include "rng/bounded.hpp"
#include "rng/counter_rng.hpp"
#include "rng/mt19937_64.hpp"
#include "rng/shuffle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <random>
#include <vector>

namespace gesmc {
namespace {

TEST(Mt19937_64, MatchesStdLibraryStream) {
    // Our from-scratch Mersenne Twister must be bit-identical to
    // std::mt19937_64 (the paper uses the libstdc++ implementation).
    for (std::uint64_t seed : {5489ULL, 0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
        Mt19937_64 ours(seed);
        std::mt19937_64 ref(seed);
        for (int i = 0; i < 2000; ++i) {
            ASSERT_EQ(ours(), ref()) << "seed=" << seed << " i=" << i;
        }
    }
}

TEST(Mt19937_64, KnownFirstOutput) {
    // Well-known value: mt19937_64 with default seed 5489 starts with
    // 14514284786278117030.
    Mt19937_64 gen;
    EXPECT_EQ(gen(), 14514284786278117030ULL);
}

TEST(Mt19937_64, ReseedResetsStream) {
    Mt19937_64 a(42), b(42);
    (void)a();
    (void)a();
    a.seed(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64Rng, DistinctStreamsForDistinctKeys) {
    auto s1 = stream_for(123, 0);
    auto s2 = stream_for(123, 1);
    auto s3 = stream_for(124, 0);
    const auto a = s1(), b = s2(), c = s3();
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
}

TEST(SplitMix64Rng, Deterministic) {
    auto s1 = stream_for(7, 9);
    auto s2 = stream_for(7, 9);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(s1(), s2());
}

TEST(Bounded, StaysInRange) {
    Mt19937_64 gen(1);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40) + 7}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(uniform_below(gen, bound), bound);
        }
    }
}

TEST(Bounded, BoundOneAlwaysZero) {
    Mt19937_64 gen(2);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(gen, 1), 0u);
}

TEST(Bounded, ChiSquareUniformity) {
    // 10 buckets, 100k draws: chi-square with 9 dof; 99.9% quantile ~ 27.9.
    Mt19937_64 gen(3);
    constexpr std::uint64_t k = 10;
    constexpr int draws = 100000;
    std::vector<int> counts(k, 0);
    for (int i = 0; i < draws; ++i) ++counts[uniform_below(gen, k)];
    const double expect = static_cast<double>(draws) / k;
    double chi2 = 0;
    for (auto c : counts) chi2 += (c - expect) * (c - expect) / expect;
    EXPECT_LT(chi2, 27.9);
}

TEST(Bounded, IntervalInclusive) {
    Mt19937_64 gen(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = uniform_between(gen, 5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Bounded, RealInUnitInterval) {
    Mt19937_64 gen(5);
    double mn = 1, mx = 0, sum = 0;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i) {
        const double u = uniform_real(gen);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        mn = std::min(mn, u);
        mx = std::max(mx, u);
        sum += u;
    }
    EXPECT_LT(mn, 0.01);
    EXPECT_GT(mx, 0.99);
    EXPECT_NEAR(sum / draws, 0.5, 0.01);
    const double nz = uniform_real_nonzero(gen);
    EXPECT_GT(nz, 0.0);
    EXPECT_LE(nz, 1.0);
}

TEST(Bounded, DistinctPairNeverEqualAndUniform) {
    Mt19937_64 gen(6);
    constexpr std::uint64_t n = 5;
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> counts;
    constexpr int draws = 200000;
    for (int i = 0; i < draws; ++i) {
        std::uint64_t a, b;
        uniform_distinct_pair(gen, n, a, b);
        ASSERT_NE(a, b);
        ASSERT_LT(a, n);
        ASSERT_LT(b, n);
        ++counts[{a, b}];
    }
    // 20 ordered pairs; chi-square with 19 dof, 99.9% quantile ~ 43.8.
    EXPECT_EQ(counts.size(), n * (n - 1));
    const double expect = static_cast<double>(draws) / (n * (n - 1));
    double chi2 = 0;
    for (auto& [pair, c] : counts) chi2 += (c - expect) * (c - expect) / expect;
    EXPECT_LT(chi2, 43.8);
}

// ---------------------------------------------------------------- binomial

TEST(Binomial, DegenerateCases) {
    Mt19937_64 gen(7);
    EXPECT_EQ(sample_binomial(gen, 0, 0.5), 0u);
    EXPECT_EQ(sample_binomial(gen, 100, 0.0), 0u);
    EXPECT_EQ(sample_binomial(gen, 100, 1.0), 100u);
}

TEST(Binomial, WithinSupport) {
    Mt19937_64 gen(8);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LE(sample_binomial(gen, 50, 0.3), 50u);
    }
}

double binom_pmf(std::uint64_t n, std::uint64_t k, double p) {
    const double lp = std::lgamma(double(n) + 1) - std::lgamma(double(k) + 1) -
                      std::lgamma(double(n - k) + 1) + double(k) * std::log(p) +
                      double(n - k) * std::log1p(-p);
    return std::exp(lp);
}

void check_binomial_chi_square(std::uint64_t n, double p, int draws, std::uint64_t seed) {
    Mt19937_64 gen(seed);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < draws; ++i) ++counts[sample_binomial(gen, n, p)];
    // Pool cells with expected count < 5 into tails.
    double chi2 = 0;
    double pooled_expect = 0;
    int pooled_count = 0;
    int cells = 0;
    for (std::uint64_t k = 0; k <= n; ++k) {
        const double e = binom_pmf(n, k, p) * draws;
        const int c = counts.count(k) ? counts.at(k) : 0;
        if (e < 5) {
            pooled_expect += e;
            pooled_count += c;
            if (pooled_expect >= 5) {
                chi2 += (pooled_count - pooled_expect) * (pooled_count - pooled_expect) /
                        pooled_expect;
                ++cells;
                pooled_expect = 0;
                pooled_count = 0;
            }
        } else {
            chi2 += (c - e) * (c - e) / e;
            ++cells;
        }
    }
    if (pooled_expect > 0.5) {
        chi2 += (pooled_count - pooled_expect) * (pooled_count - pooled_expect) / pooled_expect;
        ++cells;
    }
    // Very loose bound: 99.99% quantile of chi2 with `cells` dof is below
    // cells + 4*sqrt(2*cells) + 30 for our cell counts.
    EXPECT_LT(chi2, cells + 4 * std::sqrt(2.0 * cells) + 30)
        << "n=" << n << " p=" << p << " cells=" << cells;
}

TEST(Binomial, ChiSquareSmallNp) { check_binomial_chi_square(1000, 0.002, 50000, 11); }
TEST(Binomial, ChiSquareModerate) { check_binomial_chi_square(60, 0.4, 50000, 12); }
TEST(Binomial, ChiSquareLargeN) { check_binomial_chi_square(100000, 0.001, 30000, 13); }
TEST(Binomial, ChiSquareHighP) { check_binomial_chi_square(500, 0.995, 50000, 14); }

TEST(Binomial, MeanAndVarianceLargeRegime) {
    // Exercises the mode-inversion path (np large).
    Mt19937_64 gen(15);
    constexpr std::uint64_t n = 1 << 20;
    constexpr double p = 0.999; // like l ~ Binom(m/2, 1-P_L)
    constexpr int draws = 2000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < draws; ++i) {
        const double x = static_cast<double>(sample_binomial(gen, n, p));
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / draws;
    const double var = sum2 / draws - mean * mean;
    const double expect_mean = n * p;
    const double expect_var = n * p * (1 - p);
    EXPECT_NEAR(mean, expect_mean, 5 * std::sqrt(expect_var / draws));
    EXPECT_GT(var, expect_var * 0.8);
    EXPECT_LT(var, expect_var * 1.25);
}

// ---------------------------------------------------------------- shuffle

TEST(Shuffle, FisherYatesIsPermutation) {
    Mt19937_64 gen(20);
    std::vector<int> v(1000);
    std::iota(v.begin(), v.end(), 0);
    fisher_yates(v, gen);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, FisherYatesUniformOnSmallN) {
    // All 24 permutations of 4 elements should be roughly equally likely.
    Mt19937_64 gen(21);
    std::map<std::vector<int>, int> counts;
    constexpr int draws = 120000;
    for (int i = 0; i < draws; ++i) {
        std::vector<int> v{0, 1, 2, 3};
        fisher_yates(v, gen);
        ++counts[v];
    }
    EXPECT_EQ(counts.size(), 24u);
    const double expect = draws / 24.0;
    double chi2 = 0;
    for (auto& [perm, c] : counts) chi2 += (c - expect) * (c - expect) / expect;
    EXPECT_LT(chi2, 52.0); // 23 dof, 99.9% quantile ~ 49.7 (small slack)
}

void expect_is_permutation(const std::vector<std::uint32_t>& p, std::uint64_t n) {
    ASSERT_EQ(p.size(), n);
    std::vector<bool> seen(n, false);
    for (auto x : p) {
        ASSERT_LT(x, n);
        ASSERT_FALSE(seen[x]);
        seen[x] = true;
    }
}

TEST(Shuffle, SamplePermutationValidSmallAndLarge) {
    for (std::uint64_t n : {0ULL, 1ULL, 2ULL, 100ULL, 5000ULL, 100000ULL}) {
        std::vector<std::uint32_t> p;
        sample_permutation(p, n, 99);
        expect_is_permutation(p, n);
    }
}

TEST(Shuffle, SamplePermutationDeterministicAcrossThreadCounts) {
    // The core determinism property: the permutation depends only on
    // (seed, n), never on the pool size.
    constexpr std::uint64_t n = 50000;
    std::vector<std::uint32_t> ref;
    sample_permutation(ref, n, 1234);
    for (unsigned threads : {1u, 2u, 3u, 4u, 7u}) {
        ThreadPool pool(threads);
        std::vector<std::uint32_t> p;
        sample_permutation(p, n, 1234, pool);
        EXPECT_EQ(p, ref) << "threads=" << threads;
    }
}

TEST(Shuffle, SamplePermutationDiffersAcrossSeeds) {
    std::vector<std::uint32_t> a, b;
    sample_permutation(a, 10000, 1);
    sample_permutation(b, 10000, 2);
    EXPECT_NE(a, b);
}

TEST(Shuffle, SamplePermutationPositionUniformity) {
    // Item 0 should land in every quartile of the output equally often.
    constexpr std::uint64_t n = 4096; // above the sequential cutoff
    constexpr int draws = 2000;
    std::vector<int> quartile(4, 0);
    for (int s = 0; s < draws; ++s) {
        std::vector<std::uint32_t> p;
        sample_permutation(p, n, 10000 + s);
        for (std::uint64_t pos = 0; pos < n; ++pos) {
            if (p[pos] == 0) {
                ++quartile[pos * 4 / n];
                break;
            }
        }
    }
    const double expect = draws / 4.0;
    double chi2 = 0;
    for (int c : quartile) chi2 += (c - expect) * (c - expect) / expect;
    EXPECT_LT(chi2, 16.3); // 3 dof, 99.9% quantile
}

TEST(Shuffle, SamplePermutationPairwiseOrderUniformity) {
    // For a uniform permutation P(item a before item b) == 1/2.
    constexpr std::uint64_t n = 8192;
    constexpr int draws = 600;
    int before = 0;
    for (int s = 0; s < draws; ++s) {
        std::vector<std::uint32_t> p;
        sample_permutation(p, n, 777 + s);
        for (auto x : p) {
            if (x == 17) {
                ++before;
                break;
            }
            if (x == 4711) break;
        }
    }
    // Binomial(600, 1/2): mean 300, sd ~ 12.2; allow 5 sigma.
    EXPECT_NEAR(before, draws / 2.0, 5 * std::sqrt(draws * 0.25));
}

} // namespace
} // namespace gesmc
