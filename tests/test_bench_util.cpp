// Tests for the measurement harness the figure benches rely on: timing
// protocol (init + N supersteps), timeout/DNF semantics, cell formatting,
// and the calibration kernel.
#include "bench_util/harness.hpp"
#include "gen/gnp.hpp"

#include <gtest/gtest.h>

namespace gesmc {
namespace {

TEST(Harness, TimesInitPlusSupersteps) {
    const EdgeList g = generate_gnp(500, 0.02, 1);
    ChainConfig config;
    config.seed = 1;
    const auto m = time_chain(ChainAlgorithm::kSeqES, g, config, 3);
    EXPECT_TRUE(m.finished);
    EXPECT_EQ(m.supersteps_done, 3u);
    EXPECT_GT(m.seconds, 0.0);
    EXPECT_EQ(m.stats.supersteps, 3u);
    EXPECT_EQ(m.stats.attempted, 3 * (g.num_edges() / 2));
}

TEST(Harness, TimeoutMarksDnf) {
    const EdgeList g = generate_gnp(2000, 0.05, 2);
    ChainConfig config;
    // Timeout of 0: the first between-superstep check already fires.
    const auto m = time_chain(ChainAlgorithm::kSeqES, g, config, 1000, /*timeout_s=*/0.0);
    EXPECT_FALSE(m.finished);
    EXPECT_LT(m.supersteps_done, 1000u);
    EXPECT_EQ(format_cell(m), "—");
}

TEST(Harness, FormatCellPrecision) {
    BenchMeasurement fast;
    fast.finished = true;
    fast.seconds = 0.01234;
    EXPECT_EQ(format_cell(fast), "0.0123");
    BenchMeasurement slow;
    slow.finished = true;
    slow.seconds = 12.3456;
    EXPECT_EQ(format_cell(slow), "12.35");
}

TEST(Harness, MaxThreadsPositive) { EXPECT_GE(bench_max_threads(), 1u); }

TEST(Harness, CalibrationCeilingSane) {
    // P=1 against itself must be ~1x; any P must report a positive ratio.
    const double self_ratio = measure_parallel_ceiling(1);
    EXPECT_GT(self_ratio, 0.5);
    EXPECT_LT(self_ratio, 2.0);
}

TEST(Harness, DeterministicMeasurementGraphs) {
    // Two measurements with the same config must agree on the statistics
    // (times differ, stats must not — they derive from the seed only).
    const EdgeList g = generate_gnp(400, 0.03, 3);
    ChainConfig config;
    config.seed = 9;
    const auto a = time_chain(ChainAlgorithm::kSeqGlobalES, g, config, 2);
    const auto b = time_chain(ChainAlgorithm::kSeqGlobalES, g, config, 2);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
    EXPECT_EQ(a.stats.attempted, b.stats.attempted);
}

} // namespace
} // namespace gesmc
