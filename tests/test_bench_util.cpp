// Tests for the measurement harness the figure benches rely on: timing
// protocol (init + N supersteps), timeout/DNF semantics, cell formatting,
// the calibration kernel, and the gesmc-bench-v1 JSON aggregates the CI
// regression gate consumes.
#include "bench_util/harness.hpp"
#include "gen/gnp.hpp"
#include "service/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gesmc {
namespace {

TEST(Harness, TimesInitPlusSupersteps) {
    const EdgeList g = generate_gnp(500, 0.02, 1);
    ChainConfig config;
    config.seed = 1;
    const auto m = time_chain(ChainAlgorithm::kSeqES, g, config, 3);
    EXPECT_TRUE(m.finished);
    EXPECT_EQ(m.supersteps_done, 3u);
    EXPECT_GT(m.seconds, 0.0);
    EXPECT_EQ(m.stats.supersteps, 3u);
    EXPECT_EQ(m.stats.attempted, 3 * (g.num_edges() / 2));
}

TEST(Harness, TimeoutMarksDnf) {
    const EdgeList g = generate_gnp(2000, 0.05, 2);
    ChainConfig config;
    // Timeout of 0: the first between-superstep check already fires.
    const auto m = time_chain(ChainAlgorithm::kSeqES, g, config, 1000, /*timeout_s=*/0.0);
    EXPECT_FALSE(m.finished);
    EXPECT_LT(m.supersteps_done, 1000u);
    EXPECT_EQ(format_cell(m), "—");
}

TEST(Harness, FormatCellPrecision) {
    BenchMeasurement fast;
    fast.finished = true;
    fast.seconds = 0.01234;
    EXPECT_EQ(format_cell(fast), "0.0123");
    BenchMeasurement slow;
    slow.finished = true;
    slow.seconds = 12.3456;
    EXPECT_EQ(format_cell(slow), "12.35");
}

TEST(Harness, MaxThreadsPositive) { EXPECT_GE(bench_max_threads(), 1u); }

TEST(Harness, CalibrationCeilingSane) {
    // P=1 against itself must be ~1x; any P must report a positive ratio.
    const double self_ratio = measure_parallel_ceiling(1);
    EXPECT_GT(self_ratio, 0.5);
    EXPECT_LT(self_ratio, 2.0);
}

TEST(BenchJson, MedianOfHandlesOddEvenAndEmpty) {
    EXPECT_EQ(median_of({}), 0.0);
    EXPECT_EQ(median_of({3.0}), 3.0);
    EXPECT_EQ(median_of({5.0, 1.0, 3.0}), 3.0);       // odd: middle value
    EXPECT_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);  // even: midpoint
}

TEST(BenchJson, HostInfoCarriesAFingerprint) {
    const BenchHost host = bench_host_info();
    EXPECT_GE(host.hardware_threads, 1u);
    EXPECT_FALSE(host.fingerprint.empty());
    // The fingerprint embeds the thread count — different container shapes
    // on the same kernel must not compare as the same host class.
    EXPECT_NE(host.fingerprint.find("/ht"), std::string::npos);
}

TEST(BenchJson, WriteBenchJsonRoundTripsThroughTheParser) {
    BenchSuite suite;
    suite.bench = "switching";
    suite.host = bench_host_info();
    suite.host.parallel_ceiling = 3.5;
    BenchResult r;
    r.name = "BM_SeqES_Prefetch";
    r.median_seconds = 1.25e-3;
    r.items_per_second = 4.0e7;
    r.repetitions = 3;
    suite.results.push_back(r);
    r.name = "BM_NoCounter";
    r.items_per_second = 0; // omitted from the document
    suite.results.push_back(r);

    std::ostringstream os;
    write_bench_json(os, suite);
    const JsonValue doc = parse_json(os.str());
    EXPECT_EQ(doc.string_member("schema"), "gesmc-bench-v1");
    EXPECT_EQ(doc.string_member("bench"), "switching");
    const JsonValue* host = doc.find("host");
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(host->string_member("fingerprint"), suite.host.fingerprint);
    EXPECT_EQ(host->uint_member("hardware_threads"), suite.host.hardware_threads);
    EXPECT_DOUBLE_EQ(host->find("parallel_ceiling")->number_value, 3.5);
    const JsonValue* results = doc.find("results");
    ASSERT_TRUE(results != nullptr && results->is_array());
    ASSERT_EQ(results->array_items.size(), 2u);
    EXPECT_EQ(results->array_items[0].string_member("name"), "BM_SeqES_Prefetch");
    EXPECT_DOUBLE_EQ(results->array_items[0].find("median_seconds")->number_value,
                     1.25e-3);
    EXPECT_DOUBLE_EQ(results->array_items[0].find("items_per_second")->number_value,
                     4.0e7);
    EXPECT_EQ(results->array_items[0].uint_member("repetitions"), 3u);
    EXPECT_EQ(results->array_items[1].find("items_per_second"), nullptr);
}

TEST(Harness, DeterministicMeasurementGraphs) {
    // Two measurements with the same config must agree on the statistics
    // (times differ, stats must not — they derive from the seed only).
    const EdgeList g = generate_gnp(400, 0.03, 3);
    ChainConfig config;
    config.seed = 9;
    const auto a = time_chain(ChainAlgorithm::kSeqGlobalES, g, config, 2);
    const auto b = time_chain(ChainAlgorithm::kSeqGlobalES, g, config, 2);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
    EXPECT_EQ(a.stats.attempted, b.stats.attempted);
}

} // namespace
} // namespace gesmc
