// Tests for the adaptive superstep budget (docs/adaptive.md): the streaming
// ESS estimator against closed-form AR(1) series, the confirmation-window
// stopping rule, bit-exact estimator serialization, and the pipeline-level
// determinism contracts — adaptive-with-unreachable-target equals the fixed
// budget byte for byte, adaptive runs reproduce across schedule policies,
// and kill/resume lands on the identical trajectory.
#include "analysis/autocorrelation.hpp"
#include "analysis/ess.hpp"
#include "core/chain.hpp"
#include "gen/gnp.hpp"
#include "pipeline/config.hpp"
#include "pipeline/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

namespace gesmc {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / ("gesmc_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

// ------------------------------------------------- scalar autocorrelation

TEST(ScalarAutocorrelation, Ar1SeriesMatchesClosedForm) {
    // x_{t+1} = phi x_t + e_t has lag-1 autocorrelation phi, integrated
    // autocorrelation time (1+phi)/(1-phi) and ESS = n (1-phi)/(1+phi).
    const double phi = 0.6;
    const std::uint64_t n = 20000;
    std::mt19937_64 rng(12345);
    std::normal_distribution<double> noise(0.0, 1.0);
    ScalarAutocorrelation acf;
    double x = 0.0;
    for (std::uint64_t t = 0; t < n; ++t) {
        x = phi * x + noise(rng);
        acf.add(x);
    }
    EXPECT_EQ(acf.count(), n);
    EXPECT_NEAR(acf.rho(), phi, 0.05);
    const double expected_tau = (1 + phi) / (1 - phi);
    EXPECT_NEAR(acf.tau(), expected_tau, 0.25 * expected_tau);
    const double expected_ess = static_cast<double>(n) / expected_tau;
    EXPECT_NEAR(acf.ess(), expected_ess, 0.25 * expected_ess);
}

TEST(ScalarAutocorrelation, IndependentSeriesReportsNearFullEss) {
    std::mt19937_64 rng(7);
    std::normal_distribution<double> noise(0.0, 1.0);
    ScalarAutocorrelation acf;
    for (int t = 0; t < 10000; ++t) acf.add(noise(rng));
    EXPECT_NEAR(acf.rho(), 0.0, 0.05);
    EXPECT_GT(acf.ess(), 8000.0);
}

TEST(ScalarAutocorrelation, ConstantSeriesReportsOneEffectiveSample) {
    ScalarAutocorrelation acf;
    for (int t = 0; t < 100; ++t) acf.add(42.0);
    EXPECT_EQ(acf.rho(), 0.0);
    EXPECT_EQ(acf.ess(), 1.0);
}

TEST(ScalarAutocorrelation, TooFewSamplesReportZero) {
    ScalarAutocorrelation acf;
    acf.add(1.0);
    acf.add(2.0);
    EXPECT_EQ(acf.rho(), 0.0);
    EXPECT_EQ(acf.ess(), 0.0);
}

TEST(ScalarAutocorrelation, SaveRestoreRoundTripsBitExactly) {
    std::mt19937_64 rng(99);
    std::normal_distribution<double> noise(0.0, 1.0);
    ScalarAutocorrelation acf;
    for (int t = 0; t < 500; ++t) acf.add(noise(rng));

    std::stringstream ss;
    acf.save(ss);
    ScalarAutocorrelation back = ScalarAutocorrelation::restore(ss);

    // Continue both with the identical suffix: every statistic must stay
    // bit-equal, or a resumed run could stop at a different superstep.
    for (int t = 0; t < 500; ++t) {
        const double x = noise(rng);
        acf.add(x);
        back.add(x);
    }
    EXPECT_EQ(acf.count(), back.count());
    EXPECT_EQ(acf.rho(), back.rho());
    EXPECT_EQ(acf.tau(), back.tau());
    EXPECT_EQ(acf.ess(), back.ess());
}

// ------------------------------------------------------------ EssEstimator

EdgeList test_graph(node_t n, std::uint64_t m, std::uint64_t seed) {
    return generate_gnp(n, gnp_probability_for_edges(n, m), seed);
}

AdaptiveStopConfig quick_stop_config() {
    AdaptiveStopConfig c;
    c.ess_target = 8.0;
    c.mixing_tau = 0.5;
    c.min_supersteps = 4;
    c.max_supersteps = 400;
    c.check_every = 2;
    c.confirm_window = 1;
    return c;
}

/// Drives a fresh SeqES chain with an estimator until the verdict fires or
/// `budget` supersteps elapse; returns the estimator.
EssEstimator drive(const EdgeList& initial, const AdaptiveStopConfig& config,
                   std::uint64_t budget, std::uint64_t seed) {
    ChainConfig cc;
    cc.seed = seed;
    auto chain = make_chain(ChainAlgorithm::kSeqES, initial, cc);
    EssEstimator est(*chain, config, adaptive_max_thinning(config.max_supersteps));
    for (std::uint64_t s = 0; s < budget && !est.stopped(); ++s) {
        chain->run_supersteps(1);
        est.observe(*chain);
    }
    return est;
}

TEST(EssEstimator, StopsOnAFastMixingGraphAndRespectsTheCheckGrid) {
    const EdgeList g = test_graph(300, 1200, 5);
    const AdaptiveStopConfig config = quick_stop_config();
    const EssEstimator est = drive(g, config, config.max_supersteps, 17);
    ASSERT_TRUE(est.stopped());
    const std::uint64_t stop = *est.stop_superstep();
    EXPECT_GE(stop, config.min_supersteps);
    EXPECT_EQ(stop % config.check_every, 0u);
    EXPECT_GE(est.ess(), config.ess_target);
    EXPECT_LE(est.non_independent_fraction(), config.mixing_tau);
}

TEST(EssEstimator, ConfirmationWindowDelaysTheVerdict) {
    // Same stream, larger window: the verdict must fire at least
    // (window - 1) checks later — the hysteresis that keeps one lucky check
    // from stopping a chain.
    const EdgeList g = test_graph(300, 1200, 5);
    AdaptiveStopConfig one = quick_stop_config();
    AdaptiveStopConfig three = quick_stop_config();
    three.confirm_window = 3;
    const EssEstimator est1 = drive(g, one, one.max_supersteps, 17);
    const EssEstimator est3 = drive(g, three, three.max_supersteps, 17);
    ASSERT_TRUE(est1.stopped());
    ASSERT_TRUE(est3.stopped());
    EXPECT_GE(*est3.stop_superstep(),
              *est1.stop_superstep() + 2 * three.check_every);
}

TEST(EssEstimator, UnreachableTargetNeverStops) {
    const EdgeList g = test_graph(200, 800, 5);
    AdaptiveStopConfig config = quick_stop_config();
    config.ess_target = 1e12; // unreachable
    const EssEstimator est = drive(g, config, 40, 17);
    EXPECT_FALSE(est.stopped());
    EXPECT_EQ(est.supersteps(), 40u);
}

TEST(EssEstimator, SaveRestoreContinuesTheIdenticalTrajectory) {
    const EdgeList g = test_graph(300, 1200, 5);
    AdaptiveStopConfig config = quick_stop_config();
    config.confirm_window = 3;
    ChainConfig cc;
    cc.seed = 23;
    auto chain = make_chain(ChainAlgorithm::kSeqES, g, cc);
    EssEstimator est(*chain, config, adaptive_max_thinning(config.max_supersteps));
    for (int s = 0; s < 5; ++s) {
        chain->run_supersteps(1);
        est.observe(*chain);
    }

    std::stringstream ss;
    est.save(ss);
    EssEstimator back = EssEstimator::restore(ss, config);
    EXPECT_EQ(back.supersteps(), est.supersteps());

    // A second chain restored from the snapshot replays the same graphs, so
    // both estimators see the same stream — every statistic and the final
    // verdict must agree exactly.
    auto chain2 = make_chain(chain->snapshot(), cc);
    for (int s = 0; s < 40; ++s) {
        chain->run_supersteps(1);
        est.observe(*chain);
        chain2->run_supersteps(1);
        back.observe(*chain2);
    }
    EXPECT_EQ(est.ess(), back.ess());
    EXPECT_EQ(est.act_tau(), back.act_tau());
    EXPECT_EQ(est.non_independent_fraction(), back.non_independent_fraction());
    EXPECT_EQ(est.stopped(), back.stopped());
    EXPECT_EQ(est.stop_superstep(), back.stop_superstep());
}

TEST(EssEstimator, RestoreRejectsAMismatchedConfig) {
    const EdgeList g = test_graph(100, 400, 5);
    const AdaptiveStopConfig config = quick_stop_config();
    ChainConfig cc;
    cc.seed = 1;
    auto chain = make_chain(ChainAlgorithm::kSeqES, g, cc);
    EssEstimator est(*chain, config, 8);
    std::stringstream ss;
    est.save(ss);

    AdaptiveStopConfig other = config;
    other.ess_target = 99.0;
    EXPECT_THROW(EssEstimator::restore(ss, other), Error);
}

TEST(EssEstimator, AdaptiveMaxThinningTracksTheBudget) {
    EXPECT_EQ(adaptive_max_thinning(1), 1u);
    EXPECT_EQ(adaptive_max_thinning(4), 1u);
    EXPECT_EQ(adaptive_max_thinning(40), 10u);
    EXPECT_EQ(adaptive_max_thinning(100000), 64u); // capped
}

TEST(ThinningAutocorrelation, SaveRestoreRoundTrips) {
    const EdgeList g = test_graph(200, 800, 5);
    ChainConfig cc;
    cc.seed = 3;
    auto chain = make_chain(ChainAlgorithm::kSeqES, g, cc);
    ThinningAutocorrelation acf(*chain, {1, 2, 4},
                                ThinningAutocorrelation::Track::kInitialEdges);
    for (int s = 0; s < 12; ++s) {
        chain->run_supersteps(1);
        acf.observe(*chain);
    }
    EXPECT_GT(acf.memory_bytes(), 0u);

    std::stringstream ss;
    acf.save(ss);
    ThinningAutocorrelation back = ThinningAutocorrelation::restore(ss);
    EXPECT_EQ(back.supersteps(), acf.supersteps());
    EXPECT_EQ(back.tracked(), acf.tracked());
    for (std::size_t ki = 0; ki < 3; ++ki) {
        EXPECT_EQ(back.non_independent_fraction(ki), acf.non_independent_fraction(ki))
            << "ladder rung " << ki;
    }
}

// --------------------------------------------------------- pipeline level

PipelineConfig adaptive_test_config(const fs::path& out_dir) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = "gnp";
    c.gen_n = 500;
    c.gen_m = 2000;
    c.algorithm = "par-global-es";
    c.adaptive = true;
    c.ess_target = 8.0;
    c.mixing_tau = 0.5;
    c.min_supersteps = 4;
    c.max_supersteps = 60;
    c.check_every = 2;
    c.replicates = 3;
    c.seed = 616;
    c.output_dir = out_dir.string();
    return c;
}

TEST(AdaptivePipeline, StopsEarlyAndReportsTheVerdict) {
    const fs::path dir = scratch_dir("adaptive_stop");
    const RunReport report = run_pipeline(adaptive_test_config(dir));
    ASSERT_TRUE(all_succeeded(report));
    for (const ReplicateReport& r : report.replicates) {
        EXPECT_TRUE(r.has_adaptive);
        EXPECT_EQ(r.stop_reason, "ess-target");
        EXPECT_EQ(r.realized_supersteps, r.stats.supersteps);
        EXPECT_LT(r.realized_supersteps, 60u);
        EXPECT_GE(r.realized_supersteps, 4u);
        EXPECT_GE(r.ess, 8.0);
        EXPECT_TRUE(fs::exists(r.output_path));
    }
}

TEST(AdaptivePipeline, UnreachableTargetFallsBackToTheCapAndMatchesFixedBytes) {
    const fs::path dir_fixed = scratch_dir("adaptive_fixed");
    const fs::path dir_adaptive = scratch_dir("adaptive_capped");

    PipelineConfig fixed = adaptive_test_config(dir_fixed);
    fixed.adaptive = false;
    fixed.supersteps = 20;
    const RunReport ref = run_pipeline(fixed);
    ASSERT_TRUE(all_succeeded(ref));

    PipelineConfig capped = adaptive_test_config(dir_adaptive);
    capped.ess_target = 1e12; // unreachable: every replicate runs to the cap
    capped.max_supersteps = 20;
    const RunReport report = run_pipeline(capped);
    ASSERT_TRUE(all_succeeded(report));

    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(report.replicates[r].stop_reason, "max-supersteps");
        EXPECT_EQ(report.replicates[r].realized_supersteps, 20u);
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(report.replicates[r].output_path))
            << "replicate " << r;
    }
    // Fixed-budget replicate JSON must not grow adaptive fields.
    for (const ReplicateReport& r : ref.replicates) EXPECT_FALSE(r.has_adaptive);
}

TEST(AdaptivePipeline, ByteReproducibleAcrossRepeatsAndPolicies) {
    const fs::path dir_a = scratch_dir("adaptive_rep_a");
    const fs::path dir_b = scratch_dir("adaptive_rep_b");
    PipelineConfig a = adaptive_test_config(dir_a);
    a.threads = 1;
    PipelineConfig b = adaptive_test_config(dir_b);
    b.threads = 3;
    b.policy = SchedulePolicy::kIntraChain;
    const RunReport ra = run_pipeline(a);
    const RunReport rb = run_pipeline(b);
    ASSERT_TRUE(all_succeeded(ra));
    ASSERT_TRUE(all_succeeded(rb));
    for (std::uint64_t r = 0; r < ra.replicates.size(); ++r) {
        EXPECT_EQ(ra.replicates[r].realized_supersteps,
                  rb.replicates[r].realized_supersteps);
        EXPECT_EQ(slurp(ra.replicates[r].output_path),
                  slurp(rb.replicates[r].output_path))
            << "replicate " << r;
    }
}

TEST(AdaptiveResume, InterruptedAdaptiveRunResumesByteIdentically) {
    const fs::path dir_ref = scratch_dir("adaptive_int_ref");
    const fs::path dir_int = scratch_dir("adaptive_int");

    PipelineConfig ref_config = adaptive_test_config(dir_ref);
    ref_config.checkpoint_every = 4;
    ref_config.keep_checkpoints = true;
    const RunReport ref = run_pipeline(ref_config);
    ASSERT_TRUE(all_succeeded(ref));

    class InterruptAtFirstCheckpoint final : public RunObserver {
    public:
        explicit InterruptAtFirstCheckpoint(std::atomic<bool>& flag) : flag_(&flag) {}
        void on_checkpoint(std::uint64_t, const ChainState&,
                           const std::string&) override {
            flag_->store(true, std::memory_order_relaxed);
        }

    private:
        std::atomic<bool>* flag_;
    };

    std::atomic<bool> interrupt{false};
    InterruptAtFirstCheckpoint observer(interrupt);
    PipelineExec exec;
    exec.interrupt = &interrupt;
    PipelineConfig c = adaptive_test_config(dir_int);
    c.checkpoint_every = 4;
    const RunReport stopped = run_pipeline(c, nullptr, &observer, exec);
    EXPECT_TRUE(was_interrupted(stopped));
    // Interrupted replicates leave both the chain state and the estimator
    // sidecar behind.
    bool any_sidecar = false;
    for (const auto& entry : fs::directory_iterator(dir_int / "checkpoints")) {
        if (entry.path().extension() == ".gesa") any_sidecar = true;
    }
    EXPECT_TRUE(any_sidecar);

    PipelineConfig resume = adaptive_test_config(dir_int);
    resume.checkpoint_every = 4;
    resume.resume_from = dir_int.string();
    const RunReport resumed = run_pipeline(resume);
    ASSERT_TRUE(all_succeeded(resumed));
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(resumed.replicates[r].realized_supersteps,
                  ref.replicates[r].realized_supersteps);
        EXPECT_EQ(resumed.replicates[r].stop_reason, ref.replicates[r].stop_reason);
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(resumed.replicates[r].output_path))
            << "replicate " << r;
    }
}

TEST(AdaptiveResume, MissingSidecarRerunsTheReplicateFreshByteIdentically) {
    const fs::path dir = scratch_dir("adaptive_no_sidecar");
    PipelineConfig c = adaptive_test_config(dir);
    c.checkpoint_every = 4;
    c.keep_checkpoints = true;
    const RunReport ref = run_pipeline(c);
    ASSERT_TRUE(all_succeeded(ref));

    // Drop every estimator sidecar: the chain states alone cannot continue
    // an adaptive verdict, so a resume must rerun from superstep 0 — and
    // still land on the identical outputs.
    for (const auto& entry : fs::directory_iterator(dir / "checkpoints")) {
        if (entry.path().extension() == ".gesa") fs::remove(entry.path());
    }
    const fs::path dir2 = scratch_dir("adaptive_no_sidecar_resume");
    PipelineConfig resume = adaptive_test_config(dir2);
    resume.checkpoint_every = 4;
    resume.resume_from = dir.string();
    const RunReport again = run_pipeline(resume);
    ASSERT_TRUE(all_succeeded(again));
    for (std::uint64_t r = 0; r < ref.replicates.size(); ++r) {
        EXPECT_EQ(again.replicates[r].resumed_supersteps, 0u);
        EXPECT_EQ(slurp(ref.replicates[r].output_path),
                  slurp(again.replicates[r].output_path))
            << "replicate " << r;
    }
}

TEST(AdaptiveConfig, ParsesValidatesAndRoundTrips) {
    PipelineConfig c;
    apply_config_entry(c, "supersteps", "adaptive");
    EXPECT_TRUE(c.adaptive);
    apply_config_entry(c, "ess-target", "16");
    apply_config_entry(c, "mixing-tau", "0.1");
    apply_config_entry(c, "min-supersteps", "2");
    apply_config_entry(c, "max-supersteps", "50");
    apply_config_entry(c, "check-every", "5");
    EXPECT_EQ(c.ess_target, 16.0);
    EXPECT_EQ(c.max_supersteps, 50u);

    // Round trip through the canonical string form.
    const std::string text = pipeline_config_to_string(c);
    const PipelineConfig back = read_pipeline_config_string(text);
    EXPECT_TRUE(back.adaptive);
    EXPECT_EQ(back.ess_target, 16.0);
    EXPECT_EQ(back.mixing_tau, 0.1);
    EXPECT_EQ(back.min_supersteps, 2u);
    EXPECT_EQ(back.max_supersteps, 50u);
    EXPECT_EQ(back.check_every, 5u);

    // A numeric value turns adaptive back off.
    apply_config_entry(c, "supersteps", "25");
    EXPECT_FALSE(c.adaptive);
    EXPECT_EQ(c.supersteps, 25u);

    // Validation: max below min, zero cadence, bad tau.
    PipelineConfig bad = adaptive_test_config("unused");
    bad.output_dir.clear();
    bad.max_supersteps = bad.min_supersteps - 1;
    EXPECT_THROW(validate(bad), Error);
    bad = adaptive_test_config("unused");
    bad.output_dir.clear();
    bad.check_every = 0;
    EXPECT_THROW(validate(bad), Error);
    bad = adaptive_test_config("unused");
    bad.output_dir.clear();
    bad.mixing_tau = 1.5;
    EXPECT_THROW(validate(bad), Error);
}

// ---------------------------------------------------- corpus early-stop

TEST(AdaptiveCorpus, TwoPhaseEarlyStopKeepsRowInvariants) {
    const fs::path dir = scratch_dir("adaptive_corpus");
    PipelineConfig base;
    base.corpus_spec = "gnp n=300 m=1200 count=2";
    base.algorithm = "par-global-es";
    base.adaptive = true;
    base.ess_target = 8.0;
    base.mixing_tau = 0.5;
    base.min_supersteps = 4;
    base.max_supersteps = 60;
    base.check_every = 2;
    base.replicates = 6;
    base.metrics = true;
    base.seed = 99;
    base.threads = 2;
    base.output_dir = dir.string();
    base.report_path = (dir / "corpus.json").string();

    const CorpusPlan plan = plan_corpus(base);
    const CorpusReport report = run_corpus(plan);
    ASSERT_TRUE(all_succeeded(report));
    for (const CorpusGraphRow& row : report.rows) {
        EXPECT_TRUE(row.has_adaptive) << row.name;
        EXPECT_EQ(row.configured_supersteps, 60u) << row.name;
        EXPECT_GT(row.mean_realized_supersteps, 0.0) << row.name;
        EXPECT_LT(row.mean_realized_supersteps, 60.0) << row.name;
        if (row.stopped_early) {
            // First wave only: max(3, ceil(6/2)) = 3 replicates ran.
            EXPECT_EQ(row.replicates, 3u) << row.name;
        } else {
            EXPECT_EQ(row.replicates, 6u) << row.name;
        }
        // The per-graph report.json the coordinator assembled must exist
        // either way (partial-range runs skip it; the coordinator owns it).
        EXPECT_TRUE(fs::exists(dir / row.name / "report.json")) << row.name;
    }

    // Summary and NDJSON carry the realized-vs-configured columns.
    const std::string summary = slurp((dir / "corpus.json").string());
    EXPECT_NE(summary.find("\"configured_supersteps\""), std::string::npos);
    EXPECT_NE(summary.find("\"mean_realized_supersteps\""), std::string::npos);
    EXPECT_NE(summary.find("\"stopped_early\""), std::string::npos);
    const std::string rows = slurp((dir / "corpus_rows.ndjson").string());
    EXPECT_NE(rows.find("\"stopped_early\""), std::string::npos);
}

} // namespace
} // namespace gesmc
