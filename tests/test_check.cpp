/// \file test_check.cpp
/// \brief CheckedMutex / lock-rank detector unit tests.
///
/// The runtime assertions only exist under GESMC_CHECKED_LOCKS (the
/// Debug/TSan CI legs); in Release builds this suite still compiles and
/// covers the wrapper's plain mutex behaviour.

#include "check/checked_mutex.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace {

using gesmc::CheckedCondVar;
using gesmc::CheckedLockGuard;
using gesmc::CheckedMutex;
using gesmc::CheckedUniqueLock;
using gesmc::LockRank;

TEST(CheckedMutex, GuardsLikeAPlainMutex) {
    CheckedMutex mutex(LockRank::kThreadBudget, "test.counter");
    int counter = 0;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                CheckedLockGuard lock(mutex);
                ++counter;
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(counter, 4000);
}

TEST(CheckedMutex, TryLockReportsContention) {
    CheckedMutex mutex(LockRank::kThreadBudget, "test.trylock");
    ASSERT_TRUE(mutex.try_lock());
    std::thread other([&] { EXPECT_FALSE(mutex.try_lock()); });
    other.join();
    mutex.unlock();
    ASSERT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(CheckedMutex, CondVarWaitRoundTrips) {
    CheckedMutex mutex(LockRank::kThreadBudget, "test.cv");
    CheckedCondVar cv;
    bool ready = false;
    std::thread producer([&] {
        CheckedLockGuard lock(mutex);
        ready = true;
        cv.notify_one();
    });
    {
        CheckedUniqueLock lock(mutex);
        cv.wait(lock, [&] {
            mutex.assert_held();
            return ready;
        });
        EXPECT_TRUE(ready);
    }
    producer.join();
}

TEST(CheckedMutex, InRankAcquisitionOrderIsAccepted) {
    // outer (higher rank) then inner (lower rank) — the documented order.
    CheckedMutex outer(LockRank::kJobManager, "test.outer");
    CheckedMutex inner(LockRank::kMetricsRegistry, "test.inner");
    CheckedLockGuard outer_lock(outer);
    CheckedLockGuard inner_lock(inner);
}

#if defined(GESMC_CHECKED_LOCKS)

/// Captures violation reports instead of aborting, for same-process tests.
class ViolationCapture {
public:
    ViolationCapture() { previous_ = gesmc::set_lock_violation_handler(&record); }
    ~ViolationCapture() {
        gesmc::set_lock_violation_handler(previous_);
        report().clear();
    }

    static std::string& report() {
        static std::string r;
        return r;
    }

private:
    static void record(const char* text) { report() = text; }
    gesmc::LockViolationHandler previous_;
};

TEST(LockRankDetector, SeededInversionIsCaught) {
    ViolationCapture capture;
    CheckedMutex inner(LockRank::kThreadBudget, "test.budget");
    CheckedMutex outer(LockRank::kServerConnections, "test.server");
    {
        CheckedLockGuard inner_lock(inner);
        // Inversion: the server lock ranks *above* the budget lock, so
        // taking it while the budget lock is held is the deadlock pattern
        // the rank order forbids.
        CheckedLockGuard outer_lock(outer);
    }
    const std::string& report = ViolationCapture::report();
    ASSERT_FALSE(report.empty()) << "inversion not reported";
    EXPECT_NE(report.find("lock-rank violation"), std::string::npos) << report;
    EXPECT_NE(report.find("test.server"), std::string::npos) << report;
    EXPECT_NE(report.find("test.budget"), std::string::npos) << report;
}

TEST(LockRankDetector, EqualRankAcquisitionIsCaught) {
    ViolationCapture capture;
    CheckedMutex a(LockRank::kCorpusLog, "test.log_a");
    CheckedMutex b(LockRank::kCorpusLog, "test.log_b");
    {
        CheckedLockGuard lock_a(a);
        CheckedLockGuard lock_b(b);  // same rank: ordering is undefined
    }
    EXPECT_NE(ViolationCapture::report().find("lock-rank violation"),
              std::string::npos);
}

TEST(LockRankDetector, RecursiveAcquisitionIsCaught) {
    ViolationCapture capture;
    CheckedMutex mutex(LockRank::kToolProgress, "test.recursive");
    mutex.lock();
    // The check runs before the underlying mutex is touched, so a recursive
    // try_lock is refused (never UB) and reported.
    EXPECT_FALSE(mutex.try_lock());
    EXPECT_NE(ViolationCapture::report().find("recursive"), std::string::npos);
    mutex.unlock();
}

TEST(LockRankDetector, AssertHeldFiresWhenUnheld) {
    ViolationCapture capture;
    CheckedMutex mutex(LockRank::kToolProgress, "test.unheld");
    mutex.assert_held();
    EXPECT_NE(ViolationCapture::report().find("assert_held"), std::string::npos);
}

TEST(LockRankDetector, RanksAreThreadLocal) {
    ViolationCapture capture;
    CheckedMutex low(LockRank::kMetricsRegistry, "test.low");
    CheckedMutex high(LockRank::kJobManager, "test.high");
    CheckedLockGuard low_lock(low);
    // Another thread holds nothing, so it may take the higher-ranked lock
    // even while this thread holds the lower-ranked one.
    std::thread other([&] { CheckedLockGuard high_lock(high); });
    other.join();
    EXPECT_TRUE(ViolationCapture::report().empty())
        << ViolationCapture::report();
}

#if GTEST_HAS_DEATH_TEST && !defined(__SANITIZE_THREAD__)
TEST(LockRankDetectorDeathTest, DefaultHandlerAbortsWithBothStacks) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    CheckedMutex inner(LockRank::kMetricsRegistry, "test.death_inner");
    CheckedMutex outer(LockRank::kToolProgress, "test.death_outer");
    EXPECT_DEATH(
        {
            CheckedLockGuard inner_lock(inner);
            CheckedLockGuard outer_lock(outer);
        },
        "lock-rank violation");
}
#endif

#endif  // GESMC_CHECKED_LOCKS

}  // namespace
