// Unit tests for src/util: bit helpers, checks, formatting, timers.
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/format.hpp"
#include "util/prefetch.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <thread>

namespace gesmc {
namespace {

TEST(Bits, IsPow2) {
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(1ULL << 63));
    EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Bits, NextPow2) {
    EXPECT_EQ(next_pow2(0), 1u);
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(4), 4u);
    EXPECT_EQ(next_pow2(5), 8u);
    EXPECT_EQ(next_pow2(1023), 1024u);
    EXPECT_EQ(next_pow2(1025), 2048u);
    EXPECT_EQ(next_pow2((1ULL << 40) + 1), 1ULL << 41);
}

TEST(Bits, Log2Floor) {
    EXPECT_EQ(log2_floor(1), 0u);
    EXPECT_EQ(log2_floor(2), 1u);
    EXPECT_EQ(log2_floor(3), 1u);
    EXPECT_EQ(log2_floor(4), 2u);
    EXPECT_EQ(log2_floor(1ULL << 50), 50u);
}

TEST(Bits, CeilDiv) {
    EXPECT_EQ(ceil_div(0, 4), 0);
    EXPECT_EQ(ceil_div(1, 4), 1);
    EXPECT_EQ(ceil_div(4, 4), 1);
    EXPECT_EQ(ceil_div(5, 4), 2);
    EXPECT_EQ(ceil_div<std::uint64_t>(1ULL << 40, 3), ((1ULL << 40) + 2) / 3);
}

TEST(Bits, Mix64IsInjectiveOnSample) {
    // mix64 is a bijection on 64 bits; sample-check no collisions.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
    }
}

TEST(Bits, Mix64TwoArgOrderSensitive) {
    EXPECT_NE(mix64(1, 2), mix64(2, 1));
    EXPECT_NE(mix64(0, 0), 0u);
    EXPECT_NE(mix64(1, 2, 3), mix64(1, 3, 2));
}

TEST(Check, ThrowsWithMessage) {
    EXPECT_NO_THROW(GESMC_CHECK(true));
    try {
        GESMC_CHECK(1 == 2, "custom context");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("custom context"), std::string::npos);
    }
}

TEST(Format, TableAlignsAndCounts) {
    TextTable t({"graph", "n", "time"});
    t.add_row({"demo", "100", "1.5"});
    t.add_row({"bigger-name", "100000", "12.25"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("graph"), std::string::npos);
    EXPECT_NE(s.find("bigger-name"), std::string::npos);
    // All rendered lines share the same width.
    std::istringstream is(s);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0) width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Format, TableArityChecked) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Format, Csv) {
    TextTable t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os, "tag");
    EXPECT_EQ(os.str(), "CSV,tag,a,b\nCSV,tag,1,2\n");
}

TEST(Format, Doubles) {
    EXPECT_EQ(fmt_double(1.5), "1.5");
    EXPECT_EQ(fmt_double(2.0), "2");
    EXPECT_EQ(fmt_double(0.125, 3), "0.125");
    EXPECT_EQ(fmt_double(0.1239, 3), "0.124");
}

TEST(Format, Si) {
    EXPECT_EQ(fmt_si(12), "12");
    EXPECT_EQ(fmt_si(1200), "1.2K");
    EXPECT_EQ(fmt_si(2500000), "2.5M");
    EXPECT_EQ(fmt_si(1.2e9), "1.2B");
}

TEST(Format, Seconds) {
    EXPECT_EQ(fmt_seconds(2.0), "2 s");
    EXPECT_EQ(fmt_seconds(0.012), "12 ms");
    EXPECT_EQ(fmt_seconds(12e-6), "12 us");
}

TEST(Timer, MeasuresSleep) {
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double s = t.elapsed_s();
    EXPECT_GE(s, 0.015);
    EXPECT_LT(s, 5.0);
}

TEST(Timer, AccumulatesAcrossSections) {
    AccumTimer a;
    a.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    a.stop();
    const double first = a.total_s();
    EXPECT_GT(first, 0.0);
    a.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    a.stop();
    EXPECT_GT(a.total_s(), first);
    a.reset();
    EXPECT_EQ(a.total_s(), 0.0);
}

TEST(Prefetch, NoCrashOnArbitraryAddresses) {
    alignas(kCacheLineSize) char buf[2 * kCacheLineSize] = {};
    prefetch_read(buf);
    prefetch_write(buf);
    prefetch_read_2lines(buf);
    prefetch_write_2lines(buf);
    prefetch_read(nullptr); // prefetch of invalid addresses is architecturally a no-op
    SUCCEED();
}

} // namespace
} // namespace gesmc
