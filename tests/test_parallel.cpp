// Unit tests for the thread pool and spin barrier.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace gesmc {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1u);
    const auto caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.run([&](unsigned tid) {
        EXPECT_EQ(tid, 0u);
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, AllThreadIdsAppearExactlyOnce) {
    for (unsigned p : {2u, 3u, 4u, 8u}) {
        ThreadPool pool(p);
        std::vector<std::atomic<int>> hits(p);
        pool.run([&](unsigned tid) { hits[tid].fetch_add(1); });
        for (unsigned t = 0; t < p; ++t) EXPECT_EQ(hits[t].load(), 1) << "p=" << p << " t=" << t;
    }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 200; ++round) {
        pool.run([&](unsigned tid) { sum.fetch_add(tid + 1); });
    }
    EXPECT_EQ(sum.load(), 200ull * (1 + 2 + 3 + 4));
}

TEST(ThreadPool, ForChunksCoversRangeDisjointly) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> cover(1000);
    pool.for_chunks(0, 1000, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) cover[i].fetch_add(1);
    });
    for (auto& c : cover) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ForChunksEmptyRange) {
    ThreadPool pool(2);
    bool called = false;
    pool.for_chunks(5, 5, [&](unsigned, std::uint64_t, std::uint64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ForChunksMoreThreadsThanItems) {
    ThreadPool pool(8);
    std::atomic<std::uint64_t> total{0};
    pool.for_chunks(0, 3, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        total.fetch_add(hi - lo);
    });
    EXPECT_EQ(total.load(), 3u);
}

TEST(ThreadPool, DynamicChunksCoverRange) {
    ThreadPool pool(4);
    constexpr std::uint64_t n = 12345;
    std::vector<std::atomic<int>> cover(n);
    pool.for_chunks_dynamic(0, n, 17, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) cover[i].fetch_add(1);
    });
    for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(cover[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
    ThreadPool pool(4);
    constexpr std::uint64_t n = 1 << 20;
    std::vector<std::uint64_t> partial(pool.num_threads(), 0);
    pool.for_chunks(1, n + 1, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t s = 0;
        for (std::uint64_t i = lo; i < hi; ++i) s += i;
        partial[tid] = s;
    });
    const std::uint64_t total = std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
    EXPECT_EQ(total, n * (n + 1) / 2);
}

TEST(SpinBarrier, SynchronizesPhases) {
    constexpr unsigned p = 4;
    constexpr int phases = 50;
    ThreadPool pool(p);
    SpinBarrier barrier(p);
    // Every thread increments the phase counter; after the barrier all
    // threads must observe the full increment of the previous phase.
    std::vector<std::atomic<int>> counter(phases);
    pool.run([&](unsigned) {
        for (int ph = 0; ph < phases; ++ph) {
            counter[ph].fetch_add(1);
            barrier.arrive_and_wait();
            EXPECT_EQ(counter[ph].load(), static_cast<int>(p));
        }
    });
}

TEST(SpinBarrier, SingleParty) {
    SpinBarrier barrier(1);
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
    SUCCEED();
}

} // namespace
} // namespace gesmc
