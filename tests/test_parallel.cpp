// Unit tests for the thread pool, spin barrier, and the thread budget /
// pool lease primitive behind hybrid K x T scheduling.
#include "parallel/pool_lease.hpp"
#include "parallel/thread_pool.hpp"

#include "util/check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace gesmc {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1u);
    const auto caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.run([&](unsigned tid) {
        EXPECT_EQ(tid, 0u);
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, AllThreadIdsAppearExactlyOnce) {
    for (unsigned p : {2u, 3u, 4u, 8u}) {
        ThreadPool pool(p);
        std::vector<std::atomic<int>> hits(p);
        pool.run([&](unsigned tid) { hits[tid].fetch_add(1); });
        for (unsigned t = 0; t < p; ++t) EXPECT_EQ(hits[t].load(), 1) << "p=" << p << " t=" << t;
    }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 200; ++round) {
        pool.run([&](unsigned tid) { sum.fetch_add(tid + 1); });
    }
    EXPECT_EQ(sum.load(), 200ull * (1 + 2 + 3 + 4));
}

TEST(ThreadPool, ForChunksCoversRangeDisjointly) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> cover(1000);
    pool.for_chunks(0, 1000, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) cover[i].fetch_add(1);
    });
    for (auto& c : cover) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ForChunksEmptyRange) {
    ThreadPool pool(2);
    bool called = false;
    pool.for_chunks(5, 5, [&](unsigned, std::uint64_t, std::uint64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ForChunksMoreThreadsThanItems) {
    ThreadPool pool(8);
    std::atomic<std::uint64_t> total{0};
    pool.for_chunks(0, 3, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        total.fetch_add(hi - lo);
    });
    EXPECT_EQ(total.load(), 3u);
}

TEST(ThreadPool, DynamicChunksCoverRange) {
    ThreadPool pool(4);
    constexpr std::uint64_t n = 12345;
    std::vector<std::atomic<int>> cover(n);
    pool.for_chunks_dynamic(0, n, 17, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) cover[i].fetch_add(1);
    });
    for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(cover[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
    ThreadPool pool(4);
    constexpr std::uint64_t n = 1 << 20;
    std::vector<std::uint64_t> partial(pool.num_threads(), 0);
    pool.for_chunks(1, n + 1, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t s = 0;
        for (std::uint64_t i = lo; i < hi; ++i) s += i;
        partial[tid] = s;
    });
    const std::uint64_t total = std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
    EXPECT_EQ(total, n * (n + 1) / 2);
}

TEST(SpinBarrier, SynchronizesPhases) {
    constexpr unsigned p = 4;
    constexpr int phases = 50;
    ThreadPool pool(p);
    SpinBarrier barrier(p);
    // Every thread increments the phase counter; after the barrier all
    // threads must observe the full increment of the previous phase.
    std::vector<std::atomic<int>> counter(phases);
    pool.run([&](unsigned) {
        for (int ph = 0; ph < phases; ++ph) {
            counter[ph].fetch_add(1);
            barrier.arrive_and_wait();
            EXPECT_EQ(counter[ph].load(), static_cast<int>(p));
        }
    });
}

TEST(SpinBarrier, SingleParty) {
    SpinBarrier barrier(1);
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
    SUCCEED();
}

// ------------------------------------------------------------ ThreadBudget

TEST(ThreadBudget, LeasesCarryPoolsOfTheirWidth) {
    ThreadBudget budget(4);
    EXPECT_EQ(budget.total(), 4u);
    EXPECT_EQ(budget.leased(), 0u);

    PoolLease narrow = budget.acquire(1);
    EXPECT_EQ(narrow.width(), 1u);
    EXPECT_EQ(narrow.pool(), nullptr); // width-1 leases need no pool
    EXPECT_EQ(budget.leased(), 1u);

    PoolLease wide = budget.acquire(3);
    ASSERT_NE(wide.pool(), nullptr);
    EXPECT_EQ(wide.pool()->num_threads(), 3u);
    EXPECT_EQ(budget.leased(), 4u);

    // The leased pool is a working fork-join team.
    std::atomic<unsigned> hits{0};
    wide.pool()->run([&](unsigned) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 3u);

    narrow.release();
    wide.release();
    EXPECT_EQ(budget.leased(), 0u);
}

TEST(ThreadBudget, ReleasedPoolsAreReusedByWidth) {
    ThreadBudget budget(4);
    ThreadPool* first = nullptr;
    {
        PoolLease lease = budget.acquire(2);
        first = lease.pool();
        ASSERT_NE(first, nullptr);
    }
    PoolLease again = budget.acquire(2);
    EXPECT_EQ(again.pool(), first); // cached, not respawned
}

TEST(ThreadBudget, TryAcquireRefusesBeyondBudget) {
    ThreadBudget budget(3);
    std::optional<PoolLease> a = budget.try_acquire(2);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(budget.try_acquire(2).has_value()); // 2 + 2 > 3
    std::optional<PoolLease> b = budget.try_acquire(1);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(budget.leased(), 3u);
    a->release();
    EXPECT_TRUE(budget.try_acquire(2).has_value());
}

TEST(ThreadBudget, RejectsImpossibleWidths) {
    ThreadBudget budget(2);
    EXPECT_THROW((void)budget.acquire(0), Error);
    EXPECT_THROW((void)budget.acquire(3), Error);
    EXPECT_THROW((void)budget.try_acquire(3), Error);
}

TEST(ThreadBudget, FifoUnblocksAWideRequestAgainstNarrowTraffic) {
    // A whole-budget acquire queued behind running narrow leases must be
    // granted once they drain, even while later narrow requests keep
    // arriving: FIFO admission means the late arrivals queue *behind* the
    // wide request instead of barging past it forever.
    ThreadBudget budget(4);
    std::optional<PoolLease> narrow = budget.try_acquire(1);
    ASSERT_TRUE(narrow.has_value());

    std::atomic<bool> wide_granted{false};
    std::thread wide([&] {
        PoolLease lease = budget.acquire(4);
        wide_granted.store(true);
    });
    // Wait until the wide request is queued; it cannot be granted while the
    // narrow lease is out (1 + 4 > 4).
    while (budget.waiting() != 1u) std::this_thread::yield();
    EXPECT_FALSE(wide_granted.load());
    // A later try_acquire must refuse — capacity exists, but the wide
    // request is older.
    EXPECT_FALSE(budget.try_acquire(1).has_value());

    narrow->release();
    wide.join();
    EXPECT_TRUE(wide_granted.load());
    EXPECT_EQ(budget.leased(), 0u);
}

TEST(ThreadBudget, MixedWidthStressNeverOversubscribes) {
    // Hammer the budget from 8 threads with random-ish widths and assert
    // the oversubscription invariant from inside the leases: the summed
    // width of concurrently held leases never exceeds the budget.  Run
    // under TSan/ASan in CI this also shakes out gate races.
    constexpr unsigned kBudget = 4;
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIterations = 200;
    ThreadBudget budget(kBudget);
    std::atomic<unsigned> active_width{0};
    std::atomic<unsigned> max_width{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned i = 0; i < kIterations; ++i) {
                const unsigned width = 1 + (t + i) % kBudget;
                PoolLease lease = budget.acquire(width);
                const unsigned now =
                    active_width.fetch_add(width, std::memory_order_relaxed) + width;
                unsigned seen = max_width.load(std::memory_order_relaxed);
                while (seen < now &&
                       !max_width.compare_exchange_weak(seen, now,
                                                        std::memory_order_relaxed)) {
                }
                if (lease.pool() != nullptr) {
                    std::atomic<unsigned> hits{0};
                    lease.pool()->run([&](unsigned) { hits.fetch_add(1); });
                    EXPECT_EQ(hits.load(), width);
                }
                active_width.fetch_sub(width, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_LE(max_width.load(), kBudget);
    EXPECT_GE(max_width.load(), 1u);
    EXPECT_EQ(budget.leased(), 0u);
}

} // namespace
} // namespace gesmc
