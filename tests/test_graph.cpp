// Tests for the graph substrate: edge encoding, edge lists, degree
// sequences (Erdos–Gallai, P2), adjacency, metrics, IO.
#include "graph/adjacency.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/edge.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace gesmc {
namespace {

// ------------------------------------------------------------------ edge

TEST(Edge, CanonicalOrientation) {
    EXPECT_EQ((Edge{3, 7}.canonical()), (Edge{3, 7}));
    EXPECT_EQ((Edge{7, 3}.canonical()), (Edge{3, 7}));
    EXPECT_EQ((Edge{5, 5}.canonical()), (Edge{5, 5}));
}

TEST(Edge, KeyRoundTrip) {
    for (const Edge e : {Edge{0, 1}, Edge{1, 0}, Edge{123, 456}, Edge{kMaxNode - 1, kMaxNode}}) {
        const Edge back = edge_from_key(edge_key(e));
        EXPECT_EQ(back, e.canonical());
    }
}

TEST(Edge, KeyIsOrderInvariant) {
    EXPECT_EQ(edge_key(3, 9), edge_key(9, 3));
    EXPECT_NE(edge_key(3, 9), edge_key(3, 8));
}

TEST(Edge, LoopZeroIsSentinel) {
    EXPECT_EQ(edge_key(0, 0), 0u);
    EXPECT_TRUE(key_is_loop(edge_key(4, 4)));
    EXPECT_FALSE(key_is_loop(edge_key(4, 5)));
}

TEST(Edge, KeysFitIn56Bits) {
    EXPECT_LT(edge_key(kMaxNode - 1, kMaxNode), 1ULL << 56);
}

// ------------------------------------------------------------- edge list

EdgeList triangle_plus_pendant() {
    // 0-1, 1-2, 0-2, 2-3
    return EdgeList::from_pairs(4, {Edge{0, 1}, Edge{1, 2}, Edge{0, 2}, Edge{2, 3}});
}

TEST(EdgeList, BasicProperties) {
    const EdgeList g = triangle_plus_pendant();
    EXPECT_EQ(g.num_nodes(), 4u);
    EXPECT_EQ(g.num_edges(), 4u);
    EXPECT_TRUE(g.is_simple());
    const auto deg = g.degrees();
    EXPECT_EQ(deg, (std::vector<std::uint32_t>{2, 2, 3, 1}));
    EXPECT_NEAR(g.density(), 4.0 / 6.0, 1e-12);
}

TEST(EdgeList, RejectsLoopsAndBadIds) {
    EXPECT_THROW(EdgeList::from_pairs(3, {Edge{1, 1}}), Error);
    EXPECT_THROW(EdgeList::from_pairs(3, {Edge{0, 3}}), Error);
    EXPECT_THROW(EdgeList::from_keys(3, {edge_key(2, 1) + 1}), Error); // non-canonical bits
}

TEST(EdgeList, DetectsMultiEdge) {
    EdgeList g = EdgeList::from_pairs(3, {Edge{0, 1}, Edge{1, 0}});
    EXPECT_FALSE(g.is_simple());
}

TEST(EdgeList, SameGraphIgnoresOrder) {
    const EdgeList a = EdgeList::from_pairs(3, {Edge{0, 1}, Edge{1, 2}});
    const EdgeList b = EdgeList::from_pairs(3, {Edge{2, 1}, Edge{1, 0}});
    const EdgeList c = EdgeList::from_pairs(3, {Edge{0, 1}, Edge{0, 2}});
    EXPECT_TRUE(a.same_graph(b));
    EXPECT_FALSE(a.same_graph(c));
}

// ------------------------------------------------------- degree sequence

TEST(DegreeSequence, GraphicalKnownCases) {
    EXPECT_TRUE(DegreeSequence(std::vector<std::uint32_t>{}).is_graphical());
    EXPECT_TRUE(DegreeSequence({0, 0}).is_graphical());
    EXPECT_TRUE(DegreeSequence({1, 1}).is_graphical());
    EXPECT_FALSE(DegreeSequence({1}).is_graphical());        // odd sum
    EXPECT_FALSE(DegreeSequence({3, 1}).is_graphical());     // d >= n
    EXPECT_TRUE(DegreeSequence({2, 2, 2}).is_graphical());   // triangle
    EXPECT_TRUE(DegreeSequence({3, 3, 3, 3}).is_graphical());// K4
    EXPECT_FALSE(DegreeSequence({4, 4, 4, 4}).is_graphical());
    EXPECT_TRUE(DegreeSequence({3, 2, 2, 2, 1}).is_graphical());
    // Classic Erdos–Gallai failure despite even sum and d < n:
    EXPECT_FALSE(DegreeSequence({4, 4, 4, 1, 1, 2}).is_graphical());
}

TEST(DegreeSequence, GraphicalMatchesBruteForceSmall) {
    // Exhaustive cross-check on all sequences of length 5 with entries 0..4:
    // brute force = recursive Havel–Hakimi reduction.
    auto brute_graphical = [](std::vector<std::uint32_t> d) {
        for (;;) {
            std::sort(d.begin(), d.end(), std::greater<>());
            if (d[0] == 0) return true;
            const std::uint32_t k = d[0];
            if (k >= d.size()) return false;
            d.erase(d.begin());
            for (std::uint32_t i = 0; i < k; ++i) {
                if (d[i] == 0) return false;
                --d[i];
            }
        }
    };
    std::vector<std::uint32_t> d(5);
    for (d[0] = 0; d[0] < 5; ++d[0])
        for (d[1] = 0; d[1] < 5; ++d[1])
            for (d[2] = 0; d[2] < 5; ++d[2])
                for (d[3] = 0; d[3] < 5; ++d[3])
                    for (d[4] = 0; d[4] < 5; ++d[4]) {
                        std::uint64_t sum = d[0] + d[1] + d[2] + d[3] + d[4];
                        const bool expect = (sum % 2 == 0) && brute_graphical(d);
                        EXPECT_EQ(DegreeSequence(d).is_graphical(), expect)
                            << d[0] << d[1] << d[2] << d[3] << d[4];
                    }
}

TEST(DegreeSequence, P2ClosedFormMatchesDirectSum) {
    // Direct O(n^2) evaluation of Theorem 3's definition vs closed form.
    const std::vector<std::uint32_t> deg{3, 2, 2, 2, 1, 4, 1, 1};
    const DegreeSequence seq(deg);
    const double m = static_cast<double>(seq.num_edges());
    double direct = 0;
    for (std::size_t u = 0; u < deg.size(); ++u) {
        for (std::size_t v = u + 1; v < deg.size(); ++v) {
            const double t = deg[u] * deg[v] / (m * (m - 1));
            direct += t * t;
        }
    }
    EXPECT_NEAR(seq.p2(), direct, 1e-12);
}

TEST(DegreeSequence, Theorem2Bound) {
    DegreeSequence seq({4, 4, 4, 4, 4, 4}); // 4-regular on 6 nodes, m=12
    EXPECT_NEAR(seq.theorem2_round_bound(), 4.0 * 16 / 12, 1e-12);
    EXPECT_EQ(seq.max_degree(), 4u);
    EXPECT_EQ(seq.num_edges(), 12u);
}

// -------------------------------------------------------------- adjacency

TEST(Adjacency, NeighborsAndHasEdge) {
    const Adjacency adj(triangle_plus_pendant());
    EXPECT_EQ(adj.num_nodes(), 4u);
    EXPECT_EQ(adj.num_edges(), 4u);
    EXPECT_EQ(adj.degree(2), 3u);
    const auto n2 = adj.neighbors(2);
    EXPECT_EQ((std::vector<node_t>{n2.begin(), n2.end()}), (std::vector<node_t>{0, 1, 3}));
    EXPECT_TRUE(adj.has_edge(0, 1));
    EXPECT_TRUE(adj.has_edge(1, 0));
    EXPECT_FALSE(adj.has_edge(0, 3));
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, TriangleAndClustering) {
    const Adjacency adj(triangle_plus_pendant());
    EXPECT_EQ(triangle_count(adj), 1u);
    // wedges: d=2:1 + d=2:1 + d=3:3 + d=1:0 = 5; global C = 3*1/5.
    EXPECT_NEAR(global_clustering(adj), 0.6, 1e-12);
    // local: node0: 1/1, node1: 1/1, node2: 1/3, node3: 0 -> mean = 7/12.
    EXPECT_NEAR(mean_local_clustering(adj), 7.0 / 12.0, 1e-12);
}

TEST(Metrics, TriangleCountCompleteGraph) {
    std::vector<Edge> pairs;
    constexpr node_t n = 8;
    for (node_t u = 0; u < n; ++u)
        for (node_t v = u + 1; v < n; ++v) pairs.push_back(Edge{u, v});
    const Adjacency adj(EdgeList::from_pairs(n, pairs));
    EXPECT_EQ(triangle_count(adj), 56u); // C(8,3)
    EXPECT_NEAR(global_clustering(adj), 1.0, 1e-12);
}

TEST(Metrics, AssortativityStarIsNegative) {
    // A star is maximally disassortative.
    std::vector<Edge> pairs;
    for (node_t v = 1; v <= 10; ++v) pairs.push_back(Edge{0, v});
    const EdgeList star = EdgeList::from_pairs(11, pairs);
    EXPECT_LT(degree_assortativity(star), -0.99);
}

TEST(Metrics, AssortativityRegularDegenerate) {
    // Constant degrees -> zero variance -> defined as 0.
    std::vector<Edge> cycle;
    for (node_t v = 0; v < 6; ++v) cycle.push_back(Edge{v, static_cast<node_t>((v + 1) % 6)});
    EXPECT_EQ(degree_assortativity(EdgeList::from_pairs(6, cycle)), 0.0);
}

TEST(Metrics, ComponentsCountsIsolatedNodes) {
    const EdgeList g = EdgeList::from_pairs(6, {Edge{0, 1}, Edge{2, 3}});
    const Adjacency adj(g);
    EXPECT_EQ(connected_components(adj), 4u); // {0,1},{2,3},{4},{5}
    EXPECT_EQ(largest_component(adj), 2u);
}

// --------------------------------------------------------------------- io

TEST(Io, RoundTrip) {
    const EdgeList g = triangle_plus_pendant();
    std::stringstream ss;
    write_edge_list(ss, g);
    const EdgeList back = read_edge_list(ss);
    EXPECT_TRUE(g.same_graph(back));
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
}

TEST(Io, CleansLoopsAndMultiEdges) {
    std::stringstream ss("% comment\n0 1\n1 0\n2 2\n1 2\n");
    const EdgeList g = read_edge_list(ss);
    EXPECT_EQ(g.num_edges(), 2u); // {0,1} collapsed, loop dropped
    EXPECT_TRUE(g.is_simple());
    EXPECT_EQ(g.num_nodes(), 3u);
}

TEST(Io, HeaderDeclaresIsolatedNodes) {
    std::stringstream ss("# nodes 10 edges 1\n0 1\n");
    EXPECT_EQ(read_edge_list(ss).num_nodes(), 10u);
}

TEST(Io, MalformedLineThrows) {
    std::stringstream ss("0 not-a-number\n");
    EXPECT_THROW(read_edge_list(ss), Error);
}

} // namespace
} // namespace gesmc
