// Cross-module integration tests: generator -> chain -> analysis pipelines,
// IO round trips through randomization, corpus-wide sanity, and edge cases
// at the boundaries between modules.
#include "analysis/autocorrelation.hpp"
#include "analysis/convergence.hpp"
#include "analysis/proxy_metrics.hpp"
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "gen/havel_hakimi.hpp"
#include "gen/powerlaw.hpp"
#include "graph/adjacency.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

namespace gesmc {
namespace {

TEST(Pipeline, GenerateRandomizeAnalyze) {
    // The full quickstart pipeline with assertions at every joint.
    const DegreeSequence seq = sample_powerlaw_degrees(2000, 2.3, 1);
    ASSERT_TRUE(seq.is_graphical());
    const EdgeList initial = havel_hakimi(seq);
    ASSERT_EQ(degree_sequence_of(initial).degrees(), seq.degrees());

    ChainConfig config;
    config.seed = 9;
    config.threads = 2;
    auto chain = make_chain(ChainAlgorithm::kParGlobalES, initial, config);

    ThinningAutocorrelation tracker(*chain, {1, 2, 4},
                                    ThinningAutocorrelation::Track::kInitialEdges);
    const std::uint64_t before_triangles = triangle_count(Adjacency(initial));
    for (int step = 0; step < 12; ++step) {
        chain->run_supersteps(1);
        tracker.observe(*chain);
    }
    // Randomization must destroy the Havel-Hakimi clustering.
    const std::uint64_t after_triangles = triangle_count(Adjacency(chain->graph()));
    EXPECT_LT(after_triangles * 2, before_triangles);
    // And the autocorrelation tracker must have seen real movement.
    EXPECT_LT(tracker.non_independent_fraction(2), 1.0);
    EXPECT_EQ(tracker.supersteps(), 12u);
}

TEST(Pipeline, IoRoundTripThroughRandomization) {
    const EdgeList initial = generate_gnp(400, 0.02, 3);
    ChainConfig config;
    config.seed = 5;
    auto chain = make_chain(ChainAlgorithm::kSeqGlobalES, initial, config);
    chain->run_supersteps(3);

    std::stringstream buffer;
    write_edge_list(buffer, chain->graph());
    const EdgeList loaded = read_edge_list(buffer);
    EXPECT_TRUE(loaded.same_graph(chain->graph()));
    EXPECT_EQ(loaded.degrees(), initial.degrees());

    // A chain restarted from the file continues to work.
    auto chain2 = make_chain(ChainAlgorithm::kSeqES, loaded, config);
    chain2->run_supersteps(1);
    EXPECT_EQ(chain2->graph().degrees(), initial.degrees());
}

TEST(Pipeline, MixingCurveOrderingGESvsES) {
    // The paper's central empirical claim (Fig. 2) at test scale: at
    // thinning 1 the G-ES-MC non-independence is not substantially above
    // the ES-MC one on a power-law graph.
    const EdgeList graph = generate_powerlaw_graph(256, 2.3, 21);
    MixingExperimentConfig mc;
    mc.max_thinning = 8;
    mc.samples_at_max = 25;
    mc.runs = 3;
    mc.base_seed = 77;
    const MixingCurve ges = mixing_curve(ChainAlgorithm::kSeqGlobalES, graph, mc);
    const MixingCurve es = mixing_curve(ChainAlgorithm::kSeqES, graph, mc);
    EXPECT_LE(ges.mean.front(), es.mean.front() + 0.1);
}

TEST(Pipeline, NullModelZScoreIsLargeForClusteredGraph) {
    // Miniature of examples/null_model_motifs.cpp with assertions.
    const EdgeList observed = generate_powerlaw_graph(600, 2.3, 31);
    const auto observed_tri = static_cast<double>(triangle_count(Adjacency(observed)));
    double sum = 0, sum2 = 0;
    constexpr int samples = 8;
    for (int s = 0; s < samples; ++s) {
        ChainConfig config;
        config.seed = 100 + static_cast<std::uint64_t>(s);
        auto chain = make_chain(ChainAlgorithm::kSeqGlobalES, observed, config);
        chain->run_supersteps(10);
        const auto t = static_cast<double>(triangle_count(Adjacency(chain->graph())));
        sum += t;
        sum2 += t * t;
    }
    const double mean = sum / samples;
    const double var = std::max(1e-9, sum2 / samples - mean * mean);
    const double z = (observed_tri - mean) / std::sqrt(var);
    EXPECT_GT(z, 5.0); // HH clustering is far outside the null model
}

TEST(Pipeline, CorpusEntriesSurviveEveryChain) {
    for (const auto& entry : corpus_test()) {
        for (const auto algo : {ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kParGlobalES}) {
            ChainConfig config;
            config.seed = 1;
            config.threads = 2;
            auto chain = make_chain(algo, entry.graph, config);
            chain->run_supersteps(2);
            EXPECT_TRUE(chain->graph().is_simple()) << entry.name;
            EXPECT_EQ(chain->graph().degrees(), entry.graph.degrees()) << entry.name;
        }
    }
}

TEST(Pipeline, FileRoundTripOnDisk) {
    const std::string path = testing::TempDir() + "/gesmc_io_test.txt";
    const EdgeList g = generate_powerlaw_graph(300, 2.4, 8);
    write_edge_list_file(path, g);
    const EdgeList back = read_edge_list_file(path);
    EXPECT_TRUE(back.same_graph(g));
    std::remove(path.c_str());
}

TEST(Pipeline, ChainsComposeSequentially) {
    // Randomize with one chain, continue with another — a realistic
    // workflow (fast parallel burn-in, then exact sequential sampling).
    const EdgeList initial = generate_gnp(300, 0.03, 4);
    ChainConfig config;
    config.seed = 6;
    config.threads = 2;
    auto par = make_chain(ChainAlgorithm::kParGlobalES, initial, config);
    par->run_supersteps(5);
    auto seq = make_chain(ChainAlgorithm::kSeqES, par->graph(), config);
    seq->run_supersteps(5);
    EXPECT_TRUE(seq->graph().is_simple());
    EXPECT_EQ(seq->graph().degrees(), initial.degrees());
}

TEST(Pipeline, HasEdgeConsistentAcrossAllChains) {
    const EdgeList initial = generate_powerlaw_graph(200, 2.5, 5);
    for (const auto algo :
         {ChainAlgorithm::kSeqES, ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kParES,
          ChainAlgorithm::kParGlobalES, ChainAlgorithm::kNaiveParES,
          ChainAlgorithm::kAdjListES}) {
        ChainConfig config;
        config.seed = 2;
        config.threads = 2;
        auto chain = make_chain(algo, initial, config);
        chain->run_supersteps(1);
        const EdgeList& g = chain->graph();
        // Every listed edge must be reported present; sampled non-edges absent.
        for (std::uint64_t i = 0; i < g.num_edges(); ++i) {
            ASSERT_TRUE(chain->has_edge(g.key(i))) << to_string(algo);
        }
        std::uint64_t misses = 0;
        for (node_t u = 0; u < 20; ++u) {
            for (node_t v = u + 1; v < 20; ++v) {
                const auto sorted = g.sorted_keys();
                const bool in_list =
                    std::binary_search(sorted.begin(), sorted.end(), edge_key(u, v));
                if (chain->has_edge(edge_key(u, v)) != in_list) ++misses;
            }
        }
        EXPECT_EQ(misses, 0u) << to_string(algo);
    }
}

TEST(Pipeline, StatsAccumulateAcrossRunCalls) {
    const EdgeList initial = generate_gnp(200, 0.05, 6);
    ChainConfig config;
    auto chain = make_chain(ChainAlgorithm::kSeqES, initial, config);
    chain->run_supersteps(1);
    const auto first = chain->stats().attempted;
    chain->run_supersteps(2);
    EXPECT_EQ(chain->stats().attempted, 3 * first);
    EXPECT_EQ(chain->stats().supersteps, 3u);
}

} // namespace
} // namespace gesmc
