// Boundary and failure-injection tests: minimum-size graphs, degenerate
// topologies where every switch is rejected, invalid configurations, and
// stress shapes that historically break switching implementations.
#include "core/chain.hpp"
#include "core/seq_es.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "graph/degree_sequence.hpp"

#include <gtest/gtest.h>

namespace gesmc {
namespace {

EdgeList two_disjoint_edges() {
    return EdgeList::from_pairs(4, {Edge{0, 1}, Edge{2, 3}});
}

EdgeList path_of_three() { // 0-1-2: m = 2, switches always degenerate
    return EdgeList::from_pairs(3, {Edge{0, 1}, Edge{1, 2}});
}

EdgeList triangle() { return EdgeList::from_pairs(3, {Edge{0, 1}, Edge{1, 2}, Edge{0, 2}}); }

EdgeList complete_graph(node_t n) {
    std::vector<Edge> pairs;
    for (node_t u = 0; u < n; ++u)
        for (node_t v = u + 1; v < n; ++v) pairs.push_back(Edge{u, v});
    return EdgeList::from_pairs(n, pairs);
}

const ChainAlgorithm kAllAlgos[] = {
    ChainAlgorithm::kSeqES,      ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kParES,
    ChainAlgorithm::kParGlobalES, ChainAlgorithm::kNaiveParES,  ChainAlgorithm::kAdjListES,
};

TEST(EdgeCases, MinimumTwoEdgeGraphRuns) {
    // m = 2: the smallest legal input; both matchings are reachable.
    const EdgeList g = two_disjoint_edges();
    for (const auto algo : kAllAlgos) {
        ChainConfig config;
        config.seed = 1;
        config.threads = 2;
        auto chain = make_chain(algo, g, config);
        chain->run_supersteps(5);
        EXPECT_TRUE(chain->graph().is_simple()) << to_string(algo);
        EXPECT_EQ(chain->graph().degrees(), g.degrees()) << to_string(algo);
    }
}

TEST(EdgeCases, PathOfThreeIsFrozen) {
    // Adjacent edges: every switch is a loop proposal or the identity, so
    // the graph can never change (the only realization of d=(1,2,1)).
    const EdgeList g = path_of_three();
    for (const auto algo : kAllAlgos) {
        ChainConfig config;
        config.seed = 2;
        config.threads = 2;
        auto chain = make_chain(algo, g, config);
        chain->run_supersteps(10);
        EXPECT_TRUE(chain->graph().same_graph(g)) << to_string(algo);
    }
}

TEST(EdgeCases, TriangleIsFrozen) {
    // d = (2,2,2) on 3 nodes has exactly one realization.
    const EdgeList g = triangle();
    for (const auto algo : kAllAlgos) {
        ChainConfig config;
        config.seed = 3;
        config.threads = 2;
        auto chain = make_chain(algo, g, config);
        chain->run_supersteps(10);
        EXPECT_TRUE(chain->graph().same_graph(g)) << to_string(algo);
    }
}

TEST(EdgeCases, CompleteGraphIsFrozenAndAllRejections) {
    // K_6: every non-degenerate target edge already exists.
    const EdgeList g = complete_graph(6);
    for (const auto algo : kAllAlgos) {
        ChainConfig config;
        config.seed = 4;
        config.threads = 2;
        auto chain = make_chain(algo, g, config);
        chain->run_supersteps(10);
        EXPECT_TRUE(chain->graph().same_graph(g)) << to_string(algo);
    }
}

TEST(EdgeCases, SingleEdgeGraphRejected) {
    const EdgeList g = EdgeList::from_pairs(2, {Edge{0, 1}});
    for (const auto algo : kAllAlgos) {
        EXPECT_THROW(make_chain(algo, g, ChainConfig{}), Error) << to_string(algo);
    }
}

TEST(EdgeCases, NonSimpleInitialGraphRejected) {
    const EdgeList multi = EdgeList::from_keys(3, {edge_key(0, 1), edge_key(0, 1)});
    for (const auto algo : kAllAlgos) {
        EXPECT_THROW(make_chain(algo, multi, ChainConfig{}), Error) << to_string(algo);
    }
}

TEST(EdgeCases, ZeroSuperstepsIsNoop) {
    const EdgeList g = generate_gnp(100, 0.1, 5);
    for (const auto algo : kAllAlgos) {
        ChainConfig config;
        config.threads = 2;
        auto chain = make_chain(algo, g, config);
        chain->run_supersteps(0);
        EXPECT_TRUE(chain->graph().same_graph(g)) << to_string(algo);
        EXPECT_EQ(chain->stats().attempted, 0u);
    }
}

TEST(EdgeCases, OddEdgeCountGlobalSwitch) {
    // m odd: a global switch pairs floor(m/2) switches and leaves one edge
    // unpaired every superstep.
    const EdgeList g = generate_gnp(60, 0.1, 6);
    ASSERT_GE(g.num_edges(), 3u);
    ChainConfig config;
    config.seed = 7;
    auto seq = make_chain(ChainAlgorithm::kSeqGlobalES, g, config);
    seq->run_supersteps(5);
    EXPECT_EQ(seq->graph().degrees(), g.degrees());
    config.threads = 2;
    auto par = make_chain(ChainAlgorithm::kParGlobalES, g, config);
    par->run_supersteps(5);
    EXPECT_TRUE(par->graph().same_graph(seq->graph()));
}

TEST(EdgeCases, ExtremePLValues) {
    const EdgeList g = generate_gnp(100, 0.1, 8);
    // P_L close to 1: almost all switches rejected, graph nearly frozen.
    ChainConfig lazy;
    lazy.pl = 0.999;
    auto chain = make_chain(ChainAlgorithm::kSeqGlobalES, g, lazy);
    chain->run_supersteps(3);
    EXPECT_LT(chain->stats().attempted, g.num_edges());
    EXPECT_EQ(chain->graph().degrees(), g.degrees());
    // P_L at the boundaries is rejected per Definition 3 — at make_chain
    // time, before any work happens.
    for (const double bad : {0.0, 1.0, -0.1, 1.5}) {
        ChainConfig config;
        config.pl = bad;
        EXPECT_THROW(make_chain(ChainAlgorithm::kSeqGlobalES, g, config), Error) << bad;
    }
}

TEST(EdgeCases, ManyThreadsOnTinyGraph) {
    // More threads than switches per superstep: chunking must not break.
    const EdgeList g = two_disjoint_edges();
    ChainConfig config;
    config.seed = 9;
    config.threads = 8;
    auto chain = make_chain(ChainAlgorithm::kParGlobalES, g, config);
    chain->run_supersteps(20);
    EXPECT_EQ(chain->graph().degrees(), g.degrees());
}

TEST(EdgeCases, HubGraphHeavyTargetDependencies) {
    // Two hubs sharing most of the graph's stubs: a large fraction of all
    // switches propose the same hub-hub edge (the Theorem 3 worst case and
    // the trigger for the dependency-table min-cache).
    std::vector<Edge> pairs;
    constexpr node_t kLeaves = 400;
    for (node_t leaf = 0; leaf < kLeaves; ++leaf) {
        pairs.push_back(Edge{0, static_cast<node_t>(2 + leaf)});
        pairs.push_back(Edge{1, static_cast<node_t>(2 + kLeaves + leaf)});
    }
    const EdgeList g = EdgeList::from_pairs(2 + 2 * kLeaves, pairs);

    ChainConfig seq_config;
    seq_config.seed = 10;
    auto seq = make_chain(ChainAlgorithm::kSeqGlobalES, g, seq_config);
    seq->run_supersteps(3);

    ChainConfig par_config;
    par_config.seed = 10;
    par_config.threads = 3;
    auto par = make_chain(ChainAlgorithm::kParGlobalES, g, par_config);
    par->run_supersteps(3);

    EXPECT_TRUE(par->graph().same_graph(seq->graph()));
    EXPECT_EQ(par->graph().degrees(), g.degrees());
}

TEST(EdgeCases, SmallGraphBaseCaseIdenticalOutcome) {
    // The §7 small-graph base case must not change results — only skip the
    // superstep machinery.
    const EdgeList g = generate_gnp(200, 0.05, 14);
    ChainConfig plain;
    plain.seed = 15;
    plain.threads = 2;
    auto reference = make_chain(ChainAlgorithm::kParGlobalES, g, plain);
    reference->run_supersteps(4);

    ChainConfig with_base = plain;
    with_base.small_graph_cutoff = 1 << 20; // always take the base case
    auto base = make_chain(ChainAlgorithm::kParGlobalES, g, with_base);
    base->run_supersteps(4);

    EXPECT_EQ(base->graph().keys(), reference->graph().keys());
    EXPECT_EQ(base->stats().accepted, reference->stats().accepted);
    EXPECT_EQ(base->stats().attempted, reference->stats().attempted);
    EXPECT_EQ(base->stats().rounds_total, 0u); // no superstep rounds ran
}

TEST(EdgeCases, SeqESRunSwitchesPartialSuperstep) {
    // The fine-grained switch API must agree with superstep accounting.
    const EdgeList g = generate_gnp(100, 0.1, 11);
    ChainConfig config;
    config.seed = 12;
    SeqES a(g, config);
    a.run_switches(7); // not a multiple of the pipeline block
    EXPECT_EQ(a.stats().attempted, 7u);
    SeqES b(g, config);
    b.run_switches(3);
    b.run_switches(4);
    EXPECT_EQ(a.graph().keys(), b.graph().keys());
}

TEST(EdgeCases, IsolatedNodesDoNotDisturbChains) {
    // Nodes of degree 0 simply never participate.
    std::vector<Edge> pairs{Edge{3, 7}, Edge{8, 12}, Edge{1, 9}, Edge{2, 14}};
    const EdgeList g = EdgeList::from_pairs(20, pairs);
    ChainConfig config;
    config.seed = 13;
    auto chain = make_chain(ChainAlgorithm::kSeqGlobalES, g, config);
    chain->run_supersteps(10);
    const auto deg = chain->graph().degrees();
    EXPECT_EQ(deg[0], 0u);
    EXPECT_EQ(deg[19], 0u);
    EXPECT_EQ(chain->graph().degrees(), g.degrees());
}

} // namespace
} // namespace gesmc
