/// \file bench_fig4_runtime_table.cpp
/// \brief Figure 4 (the paper's runtime table): absolute runtimes of all
/// implementations for 20 supersteps on a corpus sample.
///
/// Paper columns: NetworKit, Gengraph, SeqES, SeqGlobalES, NaiveParES,
/// ParGlobalES at P=1, plus NaiveParES/ParGlobalES at P=32, with a 1000 s
/// timeout.  Substitutions (DESIGN.md §4): AdjListES stands in for the
/// NetworKit/Gengraph class of adjacency-list implementations; P=max uses
/// this machine's hardware concurrency; timeout scaled to 120 s.
/// Expected shape: AdjListES slowest by a large factor; SeqES /
/// SeqGlobalES fastest sequential; parallel versions fastest at P=max with
/// ParGlobalES within ~2x of the (inexact) NaiveParES.
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <iostream>

using namespace gesmc;

int main() {
    print_bench_header("Figure 4 — runtime table (20 supersteps)", "paper §6.2.1, Fig. 4");
    Timer total;
    constexpr std::uint64_t kSupersteps = 20;
    constexpr double kTimeout = 120.0;
    const unsigned pmax = bench_max_threads();

    auto corpus = corpus_bench();
    // Mirror the paper's table: sorted by size, largest first.
    std::sort(corpus.begin(), corpus.end(), [](const auto& a, const auto& b) {
        return a.graph.num_edges() > b.graph.num_edges();
    });

    TextTable table({"graph", "n", "m", "dmax", "AdjListES", "SeqES", "SeqGlobalES",
                     "NaiveParES P=1", "ParES P=1", "ParGlobalES P=1",
                     "NaiveParES P=" + std::to_string(pmax),
                     "ParGlobalES P=" + std::to_string(pmax)});

    for (const auto& entry : corpus) {
        const auto deg = entry.graph.degrees();
        const auto dmax = *std::max_element(deg.begin(), deg.end());

        auto measure = [&](ChainAlgorithm algo, unsigned threads) {
            ChainConfig config;
            config.seed = 4242;
            config.threads = threads;
            return format_cell(time_chain(algo, entry.graph, config, kSupersteps, kTimeout));
        };

        table.add_row({entry.name, fmt_si(double(entry.graph.num_nodes())),
                       fmt_si(double(entry.graph.num_edges())), fmt_si(double(dmax)),
                       measure(ChainAlgorithm::kAdjListES, 1),
                       measure(ChainAlgorithm::kSeqES, 1),
                       measure(ChainAlgorithm::kSeqGlobalES, 1),
                       measure(ChainAlgorithm::kNaiveParES, 1),
                       measure(ChainAlgorithm::kParES, 1),
                       measure(ChainAlgorithm::kParGlobalES, 1),
                       measure(ChainAlgorithm::kNaiveParES, pmax),
                       measure(ChainAlgorithm::kParGlobalES, pmax)});
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig4");
    std::cout << "\nAll cells: seconds for init + " << kSupersteps
              << " supersteps; — marks the " << kTimeout << " s timeout.\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
