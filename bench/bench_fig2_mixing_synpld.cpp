/// \file bench_fig2_mixing_synpld.cpp
/// \brief Figure 2: fraction of non-independent edges vs thinning value,
/// G-ES-MC vs ES-MC, on SynPld power-law graphs.
///
/// Paper setup: (n, gamma) in {2^7, 2^10, 2^13} x {2.01, 2.1, 2.2, 2.5},
/// 40 graphs each, thinning up to ~100 supersteps.  Scaled-down here:
/// n in {2^7, 2^10}, 3 runs, thinning up to 32 (see DESIGN.md §4; the
/// G-ES-MC <= ES-MC ordering is already visible at these sizes in the
/// paper's own figure).  Expected shape: both curves decay with k;
/// G-ES-MC at or below ES-MC, with a growing advantage for larger gamma.
#include "analysis/convergence.hpp"
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <cmath>
#include <iostream>

using namespace gesmc;

int main() {
    print_bench_header("Figure 2 — mixing on SynPld (fraction of non-independent edges)",
                       "paper §6.1, Figure 2");
    Timer total;

    const std::vector<std::uint64_t> node_counts{1u << 7, 1u << 10};
    const std::vector<double> gammas{2.01, 2.1, 2.2, 2.5};

    MixingExperimentConfig config;
    config.max_thinning = 32;
    config.samples_at_max = 25;
    config.runs = 3;
    config.track = ThinningAutocorrelation::Track::kInitialEdges;

    TextTable table({"n", "gamma", "chain", "k=1", "k=2", "k=4", "k=8", "k=16", "k=32"});
    const auto thinning = default_thinning_values(config.max_thinning);
    auto value_at = [&](const MixingCurve& curve, std::uint32_t k) {
        for (std::size_t i = 0; i < curve.thinning.size(); ++i) {
            if (curve.thinning[i] == k) return fmt_double(curve.mean[i], 3);
        }
        return std::string("-");
    };

    for (const auto n : node_counts) {
        for (const double gamma : gammas) {
            const EdgeList graph = generate_powerlaw_graph(static_cast<node_t>(n), gamma,
                                                           900 + static_cast<int>(gamma * 100));
            config.base_seed = n * 131 + static_cast<std::uint64_t>(gamma * 1000);
            for (const auto algo :
                 {ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kSeqES}) {
                const MixingCurve curve = mixing_curve(algo, graph, config);
                table.add_row({"2^" + fmt_double(std::log2(double(n)), 0), fmt_double(gamma, 2),
                               algo == ChainAlgorithm::kSeqGlobalES ? "G-ES-MC" : "ES-MC",
                               value_at(curve, 1), value_at(curve, 2), value_at(curve, 4),
                               value_at(curve, 8), value_at(curve, 16), value_at(curve, 32)});
            }
        }
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig2");
    std::cout << "\nShape check (paper): both chains decay with k; G-ES-MC at or below\n"
                 "ES-MC, advantage growing with gamma.\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
