/// \file bench_fig9_rounds.cpp
/// \brief Figure 9: rounds per global switch and the runtime share of the
/// rounds after the first.
///
/// Paper setup: 20 global switches per NetRep graph at P=32; average
/// rounds 2.2, max 8; for m > 4e6 the first round accounts for > 99% of
/// the runtime.  Ours: the NetRep-like corpus at P = hardware concurrency.
/// Expected shape: mean rounds in the low single digits, higher for
/// skewed degree sequences; the later-rounds runtime fraction shrinks with
/// graph size.
#include "bench_util/harness.hpp"
#include "core/par_global_es.hpp"
#include "gen/corpus.hpp"
#include "graph/degree_sequence.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <iostream>

using namespace gesmc;

int main() {
    print_bench_header("Figure 9 — rounds per global switch", "paper §6.2.3, Fig. 9");
    Timer total;
    constexpr std::uint64_t kGlobalSwitches = 20;
    const unsigned pmax = bench_max_threads();

    auto corpus = corpus_bench();
    std::sort(corpus.begin(), corpus.end(), [](const auto& a, const auto& b) {
        return a.graph.num_edges() < b.graph.num_edges();
    });

    TextTable table({"graph", "m", "mean rounds", "max rounds", "later-rounds time frac",
                     "Thm2 bound 4*D^2/m"});
    double rounds_sum = 0;
    std::uint64_t rounds_max = 0;
    int graphs = 0;

    for (const auto& entry : corpus) {
        ChainConfig config;
        config.seed = 2023;
        config.threads = pmax;
        ParGlobalES chain(entry.graph, config);
        chain.run_supersteps(kGlobalSwitches);
        const auto& st = chain.stats();
        const double mean_rounds =
            static_cast<double>(st.rounds_total) / static_cast<double>(st.supersteps);
        const double frac =
            st.later_rounds_seconds / (st.first_round_seconds + st.later_rounds_seconds);
        const DegreeSequence seq = degree_sequence_of(entry.graph);
        table.add_row({entry.name, fmt_si(double(entry.graph.num_edges())),
                       fmt_double(mean_rounds, 2), std::to_string(st.rounds_max),
                       fmt_double(frac, 4), fmt_double(seq.theorem2_round_bound(), 1)});
        rounds_sum += mean_rounds;
        rounds_max = std::max(rounds_max, st.rounds_max);
        ++graphs;
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig9");
    std::cout << "\nCorpus mean of mean-rounds: " << fmt_double(rounds_sum / graphs, 2)
              << " (paper: 2.2), max observed: " << rounds_max << " (paper: 8).\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
