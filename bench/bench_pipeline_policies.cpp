/// \file bench_pipeline_policies.cpp
/// \brief Replicate-parallel vs intra-chain scheduling of a batch run.
///
/// The pipeline's acceptance bar: scheduling R replicates across the shared
/// pool (policy = replicates) must beat running the same R replicates one
/// after another (the sequential baseline: intra-chain with a single-thread
/// pool) once the machine has >= 4 threads.  This bench prints both, plus
/// the intra-chain policy at full width, for each chain kind — the
/// Bhuiyan-style tradeoff the policy knob exists for.
///
/// Self-speedup ceiling: speedups are judged against
/// measure_parallel_ceiling(P) — the machine's *attainable* speedup on an
/// embarrassingly parallel kernel — not against the advertised thread
/// count.  Container/VM boxes routinely deliver a ceiling far below P; a
/// "1.1x at P=8" row is a scheduling bug on bare metal and business as
/// usual on a throttled 1-core CI runner.  The bench prints each policy's
/// ceiling fraction (speedup / ceiling) so the two cases are separable.
///
/// Reference numbers (Fix5): the kReference table below records the last
/// measured run for regression eyeballing.  Re-record on a >= 8-core box
/// by running the bench there and pasting the CSV rows back in — the
/// in-repo record currently comes from the 1-hw-thread CI container
/// (ceiling 1.0x, so replicate- and intra-chain land within noise of the
/// sequential baseline; the interesting >= 8-core spread is still to be
/// captured on real hardware).
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace gesmc;

namespace {

double time_run(const PipelineConfig& base, SchedulePolicy policy, unsigned threads) {
    PipelineConfig config = base;
    config.policy = policy;
    config.threads = threads;
    Timer timer;
    const RunReport report = run_pipeline(config, nullptr);
    if (!all_succeeded(report)) {
        std::cerr << "bench run failed\n";
        std::exit(1);
    }
    return timer.elapsed_s();
}

/// Last recorded run of this bench (see the header comment for the
/// re-recording protocol).  Seconds, measured with the config below.
struct ReferenceRow {
    const char* algorithm;
    unsigned threads;       ///< P of the recording box
    double ceiling;         ///< measured self-speedup ceiling at that P
    double sequential_s;
    double replicates_s;
    double intra_chain_s;
};

constexpr ReferenceRow kReference[] = {
    // Recorded 2026-07: 1-hw-thread CI container, ceiling 1.0x.
    {"seq-es", 1, 1.0, 0.438, 0.390, 0.392},
    {"par-es", 1, 1.0, 0.867, 0.897, 1.052},
    {"seq-global-es", 1, 1.0, 0.458, 0.453, 0.478},
    {"par-global-es", 1, 1.0, 0.879, 0.863, 0.989},
};

} // namespace

int main() {
    print_bench_header("pipeline scheduling policies",
                       "batch sampling; replicate- vs intra-chain parallelism");
    const unsigned threads = bench_max_threads();
    const double ceiling = measure_parallel_ceiling(threads);
    std::cout << "Self-speedup ceiling at P = " << threads << ": "
              << fmt_double(ceiling, 2)
              << "x (embarrassingly parallel kernel; chain speedups cannot "
                 "exceed this)\n\n";

    PipelineConfig base;
    base.input_kind = InputKind::kGenerator;
    base.generator = "powerlaw";
    base.gen_n = 20000;
    base.gen_gamma = 2.2;
    base.supersteps = 10;
    base.replicates = 8;
    base.seed = 1;
    base.metrics = false; // time the sampling, not the analysis

    TextTable table({"algorithm", "R", "P", "sequential", "replicates", "intra-chain",
                     "speedup(repl)", "speedup(intra)", "ceiling-frac(repl)",
                     "ceiling-frac(intra)"});
    std::vector<std::string> reference_rows;
    for (const char* algo : {"seq-es", "par-es", "seq-global-es", "par-global-es"}) {
        base.algorithm = algo;
        const double sequential = time_run(base, SchedulePolicy::kIntraChain, 1);
        const double repl = time_run(base, SchedulePolicy::kReplicates, threads);
        const double intra = time_run(base, SchedulePolicy::kIntraChain, threads);
        table.add_row({algo, std::to_string(base.replicates), std::to_string(threads),
                       fmt_seconds(sequential), fmt_seconds(repl), fmt_seconds(intra),
                       fmt_double(sequential / repl, 2) + "x",
                       fmt_double(sequential / intra, 2) + "x",
                       fmt_double(sequential / repl / ceiling, 2),
                       fmt_double(sequential / intra / ceiling, 2)});
        char row[160];
        std::snprintf(row, sizeof(row), "{\"%s\", %u, %.2f, %.3f, %.3f, %.3f},", algo,
                      threads, ceiling, sequential, repl, intra);
        reference_rows.emplace_back(row);
    }
    table.print(std::cout);
    table.print_csv(std::cout, "pipeline_policies");

    // Paste-ready kReference rows for the re-recording protocol (see the
    // header comment); scripts/record_policy_reference.sh extracts these.
    std::cout << "\n";
    for (const std::string& row : reference_rows) {
        std::cout << "kReference-row: " << row << "\n";
    }

    std::cout << "\nReference record (P = " << kReference[0].threads
              << ", ceiling " << fmt_double(kReference[0].ceiling, 2)
              << "x — see header for the re-recording protocol):\n";
    TextTable ref({"algorithm", "sequential", "replicates", "intra-chain",
                   "speedup(repl)"});
    for (const ReferenceRow& row : kReference) {
        ref.add_row({row.algorithm, fmt_seconds(row.sequential_s),
                     fmt_seconds(row.replicates_s), fmt_seconds(row.intra_chain_s),
                     fmt_double(row.sequential_s / row.replicates_s, 2) + "x"});
    }
    ref.print(std::cout);
    return 0;
}
