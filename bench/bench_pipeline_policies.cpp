/// \file bench_pipeline_policies.cpp
/// \brief Replicate-parallel vs intra-chain vs hybrid scheduling of a batch
/// run.
///
/// The pipeline's acceptance bar: scheduling R replicates across the thread
/// budget (policy = replicates) must beat running the same R replicates one
/// after another (the sequential baseline: intra-chain with a single-thread
/// budget) once the machine has >= 4 threads.  This bench prints both, the
/// intra-chain policy at full width, and a hybrid (K, T) grid — K
/// concurrent replicates x T threads each under one budget of P, the
/// Bhuiyan-style tradeoff the policy knob exists for.  The paper's scaling
/// results (Fig. 5/6) predict the sweet spot moves from T = 1 (many small
/// graphs) toward T = P (few huge ones); the grid makes that visible per
/// machine.
///
/// Self-speedup ceiling: speedups are judged against
/// measure_parallel_ceiling(P) — the machine's *attainable* speedup on an
/// embarrassingly parallel kernel — not against the advertised thread
/// count.  Container/VM boxes routinely deliver a ceiling far below P; a
/// "1.1x at P=8" row is a scheduling bug on bare metal and business as
/// usual on a throttled 1-core CI runner.  The bench prints each policy's
/// ceiling fraction (speedup / ceiling) so the two cases are separable.
///
/// Reference numbers (Fix5): the kReference table below records the last
/// measured run for regression eyeballing.  Re-record on a >= 8-core box
/// with scripts/record_policy_reference.sh (one command, prints paste-ready
/// rows) — the in-repo record currently comes from the 1-hw-thread CI
/// container (ceiling 1.0x, so all policies land within noise of the
/// sequential baseline; the interesting >= 8-core spread is still to be
/// captured on real hardware).
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/scheduler.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace gesmc;

namespace {

double time_run(const PipelineConfig& base, SchedulePolicy policy, unsigned threads,
                unsigned chain_threads = 0) {
    PipelineConfig config = base;
    config.policy = policy;
    config.threads = threads;
    config.chain_threads = chain_threads;
    Timer timer;
    const RunReport report = run_pipeline(config, nullptr);
    if (!all_succeeded(report)) {
        std::cerr << "bench run failed\n";
        std::exit(1);
    }
    return timer.elapsed_s();
}

/// Last recorded run of this bench (see the header comment for the
/// re-recording protocol).  Seconds, measured with the config below;
/// `hybrid_s` is the balanced point T = max(2, P/2) (== 2 on the 1-thread
/// recording box, where the budget clamps it back to 1).
struct ReferenceRow {
    const char* algorithm;
    unsigned threads;       ///< P of the recording box
    double ceiling;         ///< measured self-speedup ceiling at that P
    double sequential_s;
    double replicates_s;
    double intra_chain_s;
    double hybrid_s;
};

constexpr ReferenceRow kReference[] = {
    // Recorded 2026-07-30: 1-hw-thread CI container, ceiling 0.98x.
    {"seq-es", 1, 0.98, 0.364, 0.355, 0.382, 0.366},
    {"par-es", 1, 0.98, 0.999, 0.894, 0.924, 0.850},
    {"seq-global-es", 1, 0.98, 0.454, 0.467, 0.437, 0.443},
    {"par-global-es", 1, 0.98, 0.796, 0.798, 0.780, 0.825},
};

/// The hybrid widths worth timing on a P-thread box: powers of two from 2
/// to P (deduped); empty when P == 1 (hybrid degenerates to T = 1 there).
std::vector<unsigned> hybrid_widths(unsigned threads) {
    std::vector<unsigned> widths;
    for (unsigned t = 2; t < threads; t *= 2) widths.push_back(t);
    if (threads >= 2) widths.push_back(threads);
    return widths;
}

} // namespace

int main() {
    print_bench_header("pipeline scheduling policies",
                       "batch sampling; replicate- vs intra-chain vs hybrid K x T");
    const unsigned threads = bench_max_threads();
    const double ceiling = measure_parallel_ceiling(threads);
    std::cout << "Self-speedup ceiling at P = " << threads << ": "
              << fmt_double(ceiling, 2)
              << "x (embarrassingly parallel kernel; chain speedups cannot "
                 "exceed this)\n\n";

    PipelineConfig base;
    base.input_kind = InputKind::kGenerator;
    base.generator = "powerlaw";
    base.gen_n = 20000;
    base.gen_gamma = 2.2;
    base.supersteps = 10;
    base.replicates = 8;
    base.seed = 1;
    base.metrics = false; // time the sampling, not the analysis

    const unsigned balanced_t = std::max(2u, threads / 2);
    TextTable table({"algorithm", "R", "P", "sequential", "replicates", "intra-chain",
                     "hybrid", "speedup(repl)", "speedup(intra)", "speedup(hyb)",
                     "ceiling-frac(repl)", "ceiling-frac(intra)", "ceiling-frac(hyb)"});
    std::vector<std::string> reference_rows;
    for (const char* algo : {"seq-es", "par-es", "seq-global-es", "par-global-es"}) {
        base.algorithm = algo;
        const double sequential = time_run(base, SchedulePolicy::kIntraChain, 1);
        const double repl = time_run(base, SchedulePolicy::kReplicates, threads);
        const double intra = time_run(base, SchedulePolicy::kIntraChain, threads);
        const double hybrid =
            time_run(base, SchedulePolicy::kHybrid, threads, balanced_t);
        table.add_row({algo, std::to_string(base.replicates), std::to_string(threads),
                       fmt_seconds(sequential), fmt_seconds(repl), fmt_seconds(intra),
                       fmt_seconds(hybrid), fmt_double(sequential / repl, 2) + "x",
                       fmt_double(sequential / intra, 2) + "x",
                       fmt_double(sequential / hybrid, 2) + "x",
                       fmt_double(sequential / repl / ceiling, 2),
                       fmt_double(sequential / intra / ceiling, 2),
                       fmt_double(sequential / hybrid / ceiling, 2)});
        char row[200];
        std::snprintf(row, sizeof(row), "{\"%s\", %u, %.2f, %.3f, %.3f, %.3f, %.3f},",
                      algo, threads, ceiling, sequential, repl, intra, hybrid);
        reference_rows.emplace_back(row);
    }
    table.print(std::cout);
    table.print_csv(std::cout, "pipeline_policies");

    // The (K, T) grid: where between all-replicates (T = 1) and all-intra
    // (T = P) does this machine peak?  K = ⌊P/T⌋ replicates at a time.
    const std::vector<unsigned> widths = hybrid_widths(threads);
    if (!widths.empty()) {
        std::cout << "\n";
        TextTable grid({"algorithm", "K", "T", "seconds", "speedup", "ceiling-frac"});
        for (const char* algo : {"par-es", "par-global-es"}) {
            base.algorithm = algo;
            const double sequential = time_run(base, SchedulePolicy::kIntraChain, 1);
            for (const unsigned t : widths) {
                // Label the row with the K the scheduler actually executes
                // (⌊P/T⌋ additionally clamped to R), not the raw quotient.
                ScheduleRequest request;
                request.policy = SchedulePolicy::kHybrid;
                request.chain_threads = t;
                const ResolvedSchedule resolved =
                    resolve_schedule(request, base.replicates, threads);
                const double s = time_run(base, SchedulePolicy::kHybrid, threads, t);
                grid.add_row({algo, std::to_string(resolved.max_concurrent),
                              std::to_string(resolved.chain_threads), fmt_seconds(s),
                              fmt_double(sequential / s, 2) + "x",
                              fmt_double(sequential / s / ceiling, 2)});
            }
        }
        grid.print(std::cout);
        grid.print_csv(std::cout, "pipeline_hybrid_grid");
    }

    // Paste-ready kReference rows for the re-recording protocol (see the
    // header comment); scripts/record_policy_reference.sh extracts these.
    std::cout << "\n";
    for (const std::string& row : reference_rows) {
        std::cout << "kReference-row: " << row << "\n";
    }

    std::cout << "\nReference record (P = " << kReference[0].threads
              << ", ceiling " << fmt_double(kReference[0].ceiling, 2)
              << "x — see header for the re-recording protocol):\n";
    TextTable ref({"algorithm", "sequential", "replicates", "intra-chain", "hybrid",
                   "speedup(repl)"});
    for (const ReferenceRow& row : kReference) {
        ref.add_row({row.algorithm, fmt_seconds(row.sequential_s),
                     fmt_seconds(row.replicates_s), fmt_seconds(row.intra_chain_s),
                     fmt_seconds(row.hybrid_s),
                     fmt_double(row.sequential_s / row.replicates_s, 2) + "x"});
    }
    ref.print(std::cout);
    return 0;
}
