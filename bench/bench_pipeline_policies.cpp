/// \file bench_pipeline_policies.cpp
/// \brief Replicate-parallel vs intra-chain scheduling of a batch run.
///
/// The pipeline's acceptance bar: scheduling R replicates across the shared
/// pool (policy = replicates) must beat running the same R replicates one
/// after another (the sequential baseline: intra-chain with a single-thread
/// pool) once the machine has >= 4 threads.  This bench prints both, plus
/// the intra-chain policy at full width, for each chain kind — the
/// Bhuiyan-style tradeoff the policy knob exists for.
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <iostream>

using namespace gesmc;

namespace {

double time_run(const PipelineConfig& base, SchedulePolicy policy, unsigned threads) {
    PipelineConfig config = base;
    config.policy = policy;
    config.threads = threads;
    Timer timer;
    const RunReport report = run_pipeline(config, nullptr);
    if (!all_succeeded(report)) {
        std::cerr << "bench run failed\n";
        std::exit(1);
    }
    return timer.elapsed_s();
}

} // namespace

int main() {
    print_bench_header("pipeline scheduling policies",
                       "batch sampling; replicate- vs intra-chain parallelism");
    const unsigned threads = bench_max_threads();

    PipelineConfig base;
    base.input_kind = InputKind::kGenerator;
    base.generator = "powerlaw";
    base.gen_n = 20000;
    base.gen_gamma = 2.2;
    base.supersteps = 10;
    base.replicates = 8;
    base.seed = 1;
    base.metrics = false; // time the sampling, not the analysis

    TextTable table({"algorithm", "R", "P", "sequential", "replicates", "intra-chain",
                     "speedup(repl)", "speedup(intra)"});
    for (const char* algo : {"seq-es", "par-es", "seq-global-es", "par-global-es"}) {
        base.algorithm = algo;
        const double sequential = time_run(base, SchedulePolicy::kIntraChain, 1);
        const double repl = time_run(base, SchedulePolicy::kReplicates, threads);
        const double intra = time_run(base, SchedulePolicy::kIntraChain, threads);
        table.add_row({algo, std::to_string(base.replicates), std::to_string(threads),
                       fmt_seconds(sequential), fmt_seconds(repl), fmt_seconds(intra),
                       fmt_double(sequential / repl, 2) + "x",
                       fmt_double(sequential / intra, 2) + "x"});
    }
    table.print(std::cout);
    table.print_csv(std::cout, "pipeline_policies");
    return 0;
}
