/// \file bench_micro_switching.cpp
/// \brief Per-switch cost of every chain implementation, plus the §5.4
/// prefetch-pipeline ablation for SeqES and the ParallelSuperstep
/// prefetch ablation.  Items/sec = attempted switches per second.
///
/// `--bench-json=FILE` additionally writes the gesmc-bench-v1 aggregate
/// the CI regression gate diffs against bench/baselines/BENCH_switching.json.
#include "bench_util/gbench_json.hpp"
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace gesmc;

const EdgeList& bench_graph() {
    static const EdgeList g =
        generate_gnp(30000, gnp_probability_for_edges(30000, 120000), 555);
    return g;
}

const EdgeList& bench_graph_skewed() {
    static const EdgeList g = generate_powerlaw_graph(30000, 2.1, 556);
    return g;
}

void run_chain_bench(benchmark::State& state, ChainAlgorithm algo, unsigned threads,
                     bool prefetch, const EdgeList& graph) {
    ChainConfig config;
    config.seed = 1;
    config.threads = threads;
    config.prefetch = prefetch;
    const auto chain = make_chain(algo, graph, config);
    for (auto _ : state) {
        chain->run_supersteps(1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(chain->stats().attempted));
}

void BM_SeqES_NoPrefetch(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kSeqES, 1, false, bench_graph());
}
BENCHMARK(BM_SeqES_NoPrefetch);

void BM_SeqES_Prefetch(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kSeqES, 1, true, bench_graph());
}
BENCHMARK(BM_SeqES_Prefetch);

void BM_SeqGlobalES(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kSeqGlobalES, 1, true, bench_graph());
}
BENCHMARK(BM_SeqGlobalES);

void BM_AdjListES(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kAdjListES, 1, true, bench_graph());
}
BENCHMARK(BM_AdjListES);

void BM_ParES(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kParES, static_cast<unsigned>(state.range(0)),
                    true, bench_graph());
}
BENCHMARK(BM_ParES)->Arg(1)->Arg(2);

void BM_ParGlobalES_NoPrefetch(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kParGlobalES,
                    static_cast<unsigned>(state.range(0)), false, bench_graph());
}
BENCHMARK(BM_ParGlobalES_NoPrefetch)->Arg(1)->Arg(2);

void BM_ParGlobalES_Prefetch(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kParGlobalES,
                    static_cast<unsigned>(state.range(0)), true, bench_graph());
}
BENCHMARK(BM_ParGlobalES_Prefetch)->Arg(1)->Arg(2);

void BM_ParGlobalES_SkewedDegrees(benchmark::State& state) {
    // Skewed degree sequences concentrate target dependencies (Theorem 3).
    run_chain_bench(state, ChainAlgorithm::kParGlobalES,
                    static_cast<unsigned>(state.range(0)), true, bench_graph_skewed());
}
BENCHMARK(BM_ParGlobalES_SkewedDegrees)->Arg(1)->Arg(2);

void BM_NaiveParES(benchmark::State& state) {
    run_chain_bench(state, ChainAlgorithm::kNaiveParES,
                    static_cast<unsigned>(state.range(0)), true, bench_graph());
}
BENCHMARK(BM_NaiveParES)->Arg(1)->Arg(2);

const EdgeList& bench_graph_small() {
    static const EdgeList g = generate_gnp(2000, gnp_probability_for_edges(2000, 6000), 557);
    return g;
}

/// §7 ablation: the small-graph base case vs the full superstep machinery
/// on a graph where synchronization overhead dominates.
void BM_ParGlobalES_SmallGraph(benchmark::State& state) {
    ChainConfig config;
    config.seed = 1;
    config.threads = 2;
    config.small_graph_cutoff = state.range(0) ? (1u << 20) : 0;
    const auto chain = make_chain(ChainAlgorithm::kParGlobalES, bench_graph_small(), config);
    for (auto _ : state) chain->run_supersteps(1);
    state.SetItemsProcessed(static_cast<std::int64_t>(chain->stats().attempted));
}
BENCHMARK(BM_ParGlobalES_SmallGraph)
    ->Arg(0)  // plain Algorithm 3
    ->Arg(1); // with the sequential base case

} // namespace

int main(int argc, char** argv) {
    return gesmc::run_micro_bench("switching", argc, argv);
}
