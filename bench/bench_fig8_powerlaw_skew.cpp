/// \file bench_fig8_powerlaw_skew.cpp
/// \brief Figure 8: ParGlobalES runtime per edge on SynPld vs the degree
/// exponent gamma.
///
/// Paper setup: n in {2^24, 2^26, 2^28}, gamma from 2.01 to 3, P in
/// {32, 64}; runtime normalized per edge.  Ours: n in {2^15, 2^16},
/// P = hardware concurrency.  Expected shape: runtime per edge increases
/// as gamma approaches 2 (skewed degrees concentrate target dependencies,
/// Theorem 3) and flattens for larger gamma; mean rounds mirror that.
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "graph/degree_sequence.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <iostream>

using namespace gesmc;

int main() {
    print_bench_header("Figure 8 — ParGlobalES runtime per edge on SynPld vs gamma",
                       "paper §6.2.2, Fig. 8");
    Timer total;
    constexpr std::uint64_t kSupersteps = 10;
    const unsigned pmax = bench_max_threads();

    TextTable table({"n", "gamma", "m", "dmax", "runtime", "runtime/edge (ns)",
                     "mean rounds", "P2*m"});

    for (const std::uint64_t n : {std::uint64_t{1} << 15, std::uint64_t{1} << 16}) {
        for (const double gamma : {2.01, 2.1, 2.3, 2.5, 2.8, 3.0}) {
            const EdgeList graph = generate_powerlaw_graph(
                static_cast<node_t>(n), gamma, 60000 + static_cast<std::uint64_t>(gamma * 100));
            const DegreeSequence seq = degree_sequence_of(graph);

            ChainConfig config;
            config.seed = 13;
            config.threads = pmax;
            const auto r = time_chain(ChainAlgorithm::kParGlobalES, graph, config, kSupersteps);
            const double per_edge_ns =
                r.seconds / static_cast<double>(kSupersteps * graph.num_edges()) * 1e9;
            const double mean_rounds = static_cast<double>(r.stats.rounds_total) /
                                       static_cast<double>(r.stats.supersteps);
            table.add_row({fmt_si(double(n)), fmt_double(gamma, 2),
                           fmt_si(double(graph.num_edges())),
                           fmt_si(double(seq.max_degree())), fmt_seconds(r.seconds),
                           fmt_double(per_edge_ns, 2), fmt_double(mean_rounds, 2),
                           fmt_double(seq.p2() * double(graph.num_edges()), 4)});
        }
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig8");
    std::cout << "\nShape check (paper): runtime/edge and rounds rise as gamma -> 2\n"
                 "(more target dependencies, Theorem 3 — P2*m is the predictor).\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
