/// \file bench_fig6_strong_scaling.cpp
/// \brief Figure 6: strong scaling (self speed-up) of ParGlobalES.
///
/// Paper setup: 1 <= P <= 64 on the NetRep sample; max speed-up 20-30 for
/// large graphs, poor scaling for the smallest ones.  Ours: P in
/// {1, 2, ..., 2*hardware} (oversubscription included to show the
/// saturation point) on a size ladder from the corpus.  Expected shape:
/// speed-up grows with P up to the physical core count and improves with
/// graph size.
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <iostream>

using namespace gesmc;

int main() {
    print_bench_header("Figure 6 — strong scaling of ParGlobalES", "paper §6.2.2, Fig. 6");
    Timer total;
    constexpr std::uint64_t kSupersteps = 10;
    const unsigned pmax = bench_max_threads();

    std::vector<unsigned> threads{1};
    for (unsigned p = 2; p <= 2 * pmax; p *= 2) threads.push_back(p);

    std::vector<std::string> header{"graph", "m"};
    for (const unsigned p : threads) header.push_back("P=" + std::to_string(p));
    header.emplace_back("best speed-up");
    TextTable table(header);

    auto corpus = corpus_bench();
    std::sort(corpus.begin(), corpus.end(), [](const auto& a, const auto& b) {
        return a.graph.num_edges() < b.graph.num_edges();
    });

    for (std::size_t idx = 0; idx < corpus.size(); idx += 3) { // size ladder sample
        const auto& entry = corpus[idx];
        std::vector<std::string> row{entry.name, fmt_si(double(entry.graph.num_edges()))};
        double t1 = 0, best = 0;
        for (const unsigned p : threads) {
            ChainConfig config;
            config.seed = 7;
            config.threads = p;
            const double secs =
                time_chain(ChainAlgorithm::kParGlobalES, entry.graph, config, kSupersteps)
                    .seconds;
            if (p == 1) t1 = secs;
            best = std::max(best, t1 / secs);
            row.push_back(fmt_seconds(secs));
        }
        row.push_back(fmt_double(best, 2));
        table.add_row(std::move(row));
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig6");
    const double ceiling = measure_parallel_ceiling(pmax);
    std::cout << "\nSelf speed-up = time(P=1) / time(P); the paper reaches 20-30x at\n"
                 "P=32-64 on 64 dedicated cores. Measured compute-kernel ceiling of\n"
                 "this environment at P=" << pmax << ": " << fmt_double(ceiling, 2)
              << "x — chain speed-ups are bounded by it (see EXPERIMENTS.md).\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
