/// \file bench_micro_rng_shuffle.cpp
/// \brief Micro bench for the §5.3 randomness substrate: generator
/// throughput, bounded draws, binomial sampling, and sequential vs
/// parallel permutation sampling (the per-global-switch cost of G-ES-MC).
///
/// `--bench-json=FILE` writes the gesmc-bench-v1 aggregate (no committed
/// baseline for this suite yet; docs/observability.md).
#include "bench_util/gbench_json.hpp"
#include "rng/binomial.hpp"
#include "rng/bounded.hpp"
#include "rng/counter_rng.hpp"
#include "rng/mt19937_64.hpp"
#include "rng/shuffle.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace gesmc;

void BM_Mt19937_64(benchmark::State& state) {
    Mt19937_64 gen(1);
    for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Mt19937_64);

void BM_SplitMix64(benchmark::State& state) {
    SplitMix64 gen(1);
    for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_SplitMix64);

void BM_UniformBelow(benchmark::State& state) {
    Mt19937_64 gen(2);
    for (auto _ : state) benchmark::DoNotOptimize(uniform_below(gen, 1000003));
}
BENCHMARK(BM_UniformBelow);

void BM_BinomialGlobalSwitchLength(benchmark::State& state) {
    // l ~ Binom(m/2, 1 - P_L): the per-global-switch draw of G-ES-MC.
    Mt19937_64 gen(3);
    const auto half_m = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) benchmark::DoNotOptimize(sample_binomial(gen, half_m, 1.0 - 1e-3));
}
BENCHMARK(BM_BinomialGlobalSwitchLength)->Arg(1 << 15)->Arg(1 << 19);

void BM_FisherYates(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    Mt19937_64 gen(4);
    std::vector<std::uint32_t> perm(n);
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
        fisher_yates(perm, gen);
        benchmark::DoNotOptimize(perm.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FisherYates)->Arg(1 << 16)->Arg(1 << 19);

void BM_SamplePermutation(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    const auto threads = static_cast<unsigned>(state.range(1));
    ThreadPool pool(threads);
    std::vector<std::uint32_t> perm;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        sample_permutation(perm, n, ++seed, pool);
        benchmark::DoNotOptimize(perm.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SamplePermutation)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 2})
    ->Args({1 << 19, 1})
    ->Args({1 << 19, 2});

} // namespace

int main(int argc, char** argv) {
    return gesmc::run_micro_bench("rng_shuffle", argc, argv);
}
