/// \file bench_adaptive.cpp
/// \brief Adaptive superstep budget vs the fixed budget it replaces.
///
/// The adaptive mode's whole pitch (docs/adaptive.md) is "stop paying for
/// supersteps a mixed chain does not need".  This bench quantifies that on
/// two generator classes — a fast-mixing G(n,p) where the ESS target is hit
/// long before the cap, and a skewed power-law graph where mixing is slower
/// — by running the same replicate batch twice: once with a fixed budget of
/// `max` supersteps, once adaptively under the identical cap.  Per cell it
/// prints wall seconds, the supersteps actually executed, and the realized
/// saving; the adaptive cell also prints the final ESS / stop reason so a
/// "saving" from a misfiring verdict would be visible immediately.
///
/// `--bench-json=FILE` writes the gesmc-bench-v1 aggregate (suite
/// "adaptive") the CI regression gate diffs against
/// bench/baselines/BENCH_adaptive.json: one result per (mode, class) cell,
/// median wall seconds over `--repetitions` runs, with the executed
/// superstep count and saved-vs-cap fraction carried as counters.
#include "bench_util/harness.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

using namespace gesmc;

namespace {

namespace fs = std::filesystem;

struct GraphClass {
    const char* name;
    const char* generator;
    std::uint64_t gen_n;
    std::uint64_t gen_m;     ///< gnp only
    double gen_gamma;        ///< powerlaw only
};

constexpr GraphClass kClasses[] = {
    {"gnp", "gnp", 2000, 8000, 0.0},
    {"powerlaw", "powerlaw", 2000, 0, 2.2},
};

constexpr std::uint64_t kMaxSupersteps = 200;
constexpr std::uint64_t kReplicates = 4;

PipelineConfig cell_config(const GraphClass& cls, bool adaptive,
                           const fs::path& out_dir) {
    PipelineConfig c;
    c.input_kind = InputKind::kGenerator;
    c.generator = cls.generator;
    c.gen_n = cls.gen_n;
    c.gen_m = cls.gen_m;
    c.gen_gamma = cls.gen_gamma;
    c.algorithm = "par-global-es";
    c.replicates = kReplicates;
    c.seed = 7;
    c.metrics = false; // time the sampling, not the analysis metrics
    c.output_dir = out_dir.string();
    if (adaptive) {
        c.adaptive = true;
        c.max_supersteps = kMaxSupersteps;
        // The defaults of docs/adaptive.md: ess-target 32, mixing-tau 0.2,
        // min 8, check-every 2 — what a user gets from `supersteps = adaptive`.
    } else {
        c.supersteps = kMaxSupersteps;
    }
    return c;
}

struct CellResult {
    double seconds = 0;
    std::uint64_t supersteps = 0; ///< executed across all replicates
    double ess = 0;               ///< last replicate's final estimate (adaptive)
    std::string stop_reason;      ///< adaptive only
};

CellResult run_cell(const GraphClass& cls, bool adaptive, const fs::path& scratch) {
    const fs::path out = scratch / (std::string(cls.name) + (adaptive ? "_a" : "_f"));
    fs::remove_all(out);
    fs::create_directories(out);
    const PipelineConfig config = cell_config(cls, adaptive, out);
    Timer timer;
    const RunReport report = run_pipeline(config, nullptr);
    CellResult cell;
    cell.seconds = timer.elapsed_s();
    if (!all_succeeded(report)) {
        std::cerr << "bench run failed (" << cls.name << ")\n";
        std::exit(1);
    }
    for (const ReplicateReport& r : report.replicates) {
        cell.supersteps += r.stats.supersteps;
        if (r.has_adaptive) {
            cell.ess = r.ess;
            cell.stop_reason = r.stop_reason;
        }
    }
    fs::remove_all(out);
    return cell;
}

} // namespace

int main(int argc, char** argv) {
    std::string json_path;
    std::uint64_t repetitions = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--bench-json=", 0) == 0) {
            json_path = arg.substr(13);
        } else if (arg.rfind("--repetitions=", 0) == 0) {
            repetitions = std::strtoull(arg.c_str() + 14, nullptr, 10);
        } else {
            std::cerr << "usage: bench_adaptive [--bench-json=FILE]"
                         " [--repetitions=N]\n";
            return 2;
        }
    }
    if (repetitions == 0) repetitions = 1;

    print_bench_header("adaptive vs fixed superstep budget",
                       "convergence-aware stopping (docs/adaptive.md)");
    const fs::path scratch = fs::temp_directory_path() / "gesmc_bench_adaptive";
    fs::create_directories(scratch);

    BenchSuite suite;
    suite.bench = "adaptive";
    suite.host = bench_host_info();

    const std::uint64_t cap_total = kMaxSupersteps * kReplicates;
    TextTable table({"class", "mode", "seconds", "supersteps", "saved", "verdict"});
    for (const GraphClass& cls : kClasses) {
        for (const bool adaptive : {false, true}) {
            std::vector<double> seconds;
            CellResult last;
            for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
                last = run_cell(cls, adaptive, scratch);
                seconds.push_back(last.seconds);
            }
            const double saved_frac =
                1.0 - static_cast<double>(last.supersteps) /
                          static_cast<double>(cap_total);
            table.add_row(
                {cls.name, adaptive ? "adaptive" : "fixed",
                 fmt_double(median_of(seconds), 3), std::to_string(last.supersteps),
                 adaptive ? fmt_double(100 * saved_frac, 1) + "%" : "-",
                 adaptive ? last.stop_reason + " ess=" + fmt_double(last.ess, 1)
                          : "fixed budget"});

            BenchResult result;
            result.name = std::string("BM_Pipeline_") +
                          (adaptive ? "Adaptive/" : "Fixed/") + cls.name;
            result.median_seconds = median_of(seconds);
            result.repetitions = repetitions;
            result.counters.emplace_back("supersteps",
                                         static_cast<double>(last.supersteps));
            result.counters.emplace_back("saved_frac", adaptive ? saved_frac : 0.0);
            suite.results.push_back(result);
        }
    }
    table.print(std::cout);
    fs::remove_all(scratch);

    if (!json_path.empty()) {
        write_bench_json_file(json_path, suite);
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
