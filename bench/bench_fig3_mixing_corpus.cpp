/// \file bench_fig3_mixing_corpus.cpp
/// \brief Figure 3: first superstep (thinning value) at which the mean
/// non-independence rate drops below tau, per corpus graph.
///
/// Paper setup: NetRep graphs with 1000 <= m <= 800k, tau in {1e-2, 1e-3},
/// >= 15 runs, tracking restricted to the edges of the initial graph.
/// Scaled-down substitute: the NetRep-like corpus members with m <= 60k,
/// 2 runs (DESIGN.md §4).  Expected shape: G-ES-MC reaches the threshold
/// at a thinning value no larger than ES-MC on most graphs; dense graphs
/// converge slower for both chains.
#include "analysis/convergence.hpp"
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <iostream>

using namespace gesmc;

namespace {

std::string fmt_first(const std::optional<std::uint32_t>& k) {
    return k ? std::to_string(*k) : ">max";
}

} // namespace

int main() {
    print_bench_header("Figure 3 — first thinning below tau on the NetRep-like corpus",
                       "paper §6.1, Figure 3");
    Timer total;

    MixingExperimentConfig config;
    config.max_thinning = 24;
    config.samples_at_max = 20;
    config.runs = 2;
    config.track = ThinningAutocorrelation::Track::kInitialEdges;

    constexpr double kTauLoose = 1e-2;
    constexpr double kTauTight = 1e-3;

    TextTable table({"graph", "m", "density", "chain", "k(tau=1e-2)", "k(tau=1e-3)"});
    int ges_not_worse_loose = 0, comparisons = 0;

    for (const auto& entry : corpus_bench()) {
        if (entry.graph.num_edges() > 60000) continue; // runtime budget
        config.base_seed = 555 + entry.graph.num_edges();
        std::optional<std::uint32_t> ges_loose;
        for (const auto algo : {ChainAlgorithm::kSeqGlobalES, ChainAlgorithm::kSeqES}) {
            const MixingCurve curve = mixing_curve(algo, entry.graph, config);
            const auto loose = first_thinning_below(curve, kTauLoose);
            const auto tight = first_thinning_below(curve, kTauTight);
            table.add_row({entry.name, fmt_si(double(entry.graph.num_edges())),
                           fmt_double(entry.graph.density(), 6),
                           algo == ChainAlgorithm::kSeqGlobalES ? "G-ES-MC" : "ES-MC",
                           fmt_first(loose), fmt_first(tight)});
            if (algo == ChainAlgorithm::kSeqGlobalES) {
                ges_loose = loose;
            } else if (ges_loose || loose) {
                ++comparisons;
                const std::uint32_t g = ges_loose ? *ges_loose : config.max_thinning * 2;
                const std::uint32_t e = loose ? *loose : config.max_thinning * 2;
                if (g <= e) ++ges_not_worse_loose;
            }
        }
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig3");
    std::cout << "\nG-ES-MC reaches tau=1e-2 at a thinning <= ES-MC on " << ges_not_worse_loose
              << "/" << comparisons << " graphs (paper: consistently, except very dense).\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
