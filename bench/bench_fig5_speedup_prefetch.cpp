/// \file bench_fig5_speedup_prefetch.cpp
/// \brief Figure 5: runtimes and ParGlobalES-over-SeqGlobalES speed-ups
/// across graph sizes, without and with prefetching.
///
/// Paper setup: all NetRep graphs with m >= 1e4; left column without, right
/// column with prefetching; P=32 for the parallel algorithm.  Ours: the
/// NetRep-like corpus, P = hardware concurrency.  Expected shape: speed-up
/// grows with m and crosses 1 around m ~ 1e5; prefetching reduces runtimes
/// of both the sequential and the parallel implementation.
#include "bench_util/harness.hpp"
#include "gen/corpus.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <iostream>

using namespace gesmc;

int main() {
    print_bench_header("Figure 5 — runtimes and speed-ups, without/with prefetching",
                       "paper §6.2.1, Fig. 5");
    Timer total;
    constexpr std::uint64_t kSupersteps = 10;
    const unsigned pmax = bench_max_threads();

    auto corpus = corpus_bench();
    std::sort(corpus.begin(), corpus.end(), [](const auto& a, const auto& b) {
        return a.graph.num_edges() < b.graph.num_edges();
    });

    TextTable table({"graph", "m", "SeqES", "SeqGlobalES", "ParGlobalES", "speed-up",
                     "SeqES+pf", "SeqGlobalES+pf", "ParGlobalES+pf", "speed-up+pf"});

    for (const auto& entry : corpus) {
        if (entry.graph.num_edges() < 10000) continue; // paper: m >= 1e4

        auto run = [&](ChainAlgorithm algo, unsigned threads, bool prefetch) {
            ChainConfig config;
            config.seed = 99;
            config.threads = threads;
            config.prefetch = prefetch;
            return time_chain(algo, entry.graph, config, kSupersteps).seconds;
        };

        const double seq_es_np = run(ChainAlgorithm::kSeqES, 1, false);
        const double seq_ges_np = run(ChainAlgorithm::kSeqGlobalES, 1, false);
        const double par_np = run(ChainAlgorithm::kParGlobalES, pmax, false);
        const double seq_es_pf = run(ChainAlgorithm::kSeqES, 1, true);
        const double seq_ges_pf = run(ChainAlgorithm::kSeqGlobalES, 1, true);
        const double par_pf = run(ChainAlgorithm::kParGlobalES, pmax, true);

        table.add_row({entry.name, fmt_si(double(entry.graph.num_edges())),
                       fmt_seconds(seq_es_np), fmt_seconds(seq_ges_np), fmt_seconds(par_np),
                       fmt_double(seq_ges_np / par_np, 2), fmt_seconds(seq_es_pf),
                       fmt_seconds(seq_ges_pf), fmt_seconds(par_pf),
                       fmt_double(seq_ges_pf / par_pf, 2)});
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig5");
    std::cout << "\nspeed-up = SeqGlobalES / ParGlobalES (P=" << pmax
              << "); +pf columns enable the §5.4 prefetch pipelines.\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
