/// \file bench_fig7_gnp_density.cpp
/// \brief Figure 7: ParGlobalES runtime on SynGnp vs average degree.
///
/// Paper setup: m in {2^18..2^28}, average degree swept by varying n, P in
/// {32, 64}.  Ours: m in {2^16, 2^18}, P = hardware concurrency.  Expected
/// shape: at fixed m the runtime is essentially flat in the average degree
/// (G(n,p) is near-regular, so Theorem 2 bounds the rounds by a constant —
/// density does not matter).
#include "bench_util/harness.hpp"
#include "gen/gnp.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <iostream>

using namespace gesmc;

int main() {
    print_bench_header("Figure 7 — ParGlobalES on SynGnp vs average degree",
                       "paper §6.2.2, Fig. 7");
    Timer total;
    constexpr std::uint64_t kSupersteps = 10;
    const unsigned pmax = bench_max_threads();

    TextTable table({"m", "n", "avg deg", "p", "runtime", "runtime/edge (ns)",
                     "mean rounds"});

    for (const std::uint64_t m : {std::uint64_t{1} << 16, std::uint64_t{1} << 18}) {
        for (const std::uint64_t avg_deg : {8ULL, 32ULL, 128ULL, 512ULL}) {
            const auto n = static_cast<node_t>(std::max<std::uint64_t>(2 * m / avg_deg, 64));
            const double p = gnp_probability_for_edges(n, m);
            ThreadPool pool(pmax);
            const EdgeList graph = generate_gnp(n, p, 31337 + avg_deg, pool);
            if (graph.num_edges() < 2) continue;

            ChainConfig config;
            config.seed = 11;
            config.threads = pmax;
            const auto r = time_chain(ChainAlgorithm::kParGlobalES, graph, config, kSupersteps);
            const double per_edge_ns =
                r.seconds / static_cast<double>(kSupersteps * graph.num_edges()) * 1e9;
            const double mean_rounds = static_cast<double>(r.stats.rounds_total) /
                                       static_cast<double>(r.stats.supersteps);
            table.add_row({fmt_si(double(m)), fmt_si(double(n)),
                           fmt_double(2.0 * double(graph.num_edges()) / double(n), 1),
                           fmt_double(p, 6), fmt_seconds(r.seconds),
                           fmt_double(per_edge_ns, 2), fmt_double(mean_rounds, 2)});
        }
    }

    table.print(std::cout);
    table.print_csv(std::cout, "fig7");
    std::cout << "\nShape check (paper): runtime at fixed m is ~flat across average\n"
                 "degree; rounds stay constant (Theorem 2 for near-regular graphs).\n"
              << "Total: " << fmt_seconds(total.elapsed_s()) << "\n";
    return 0;
}
