/// \file bench_micro_hashset.cpp
/// \brief Ablation bench for the §5.2 data-structure choices: hash
/// functions, robin-hood vs concurrent vs std::unordered_set under a
/// switch-like mixed workload, and the two edge-sampling strategies of
/// §5.3 (auxiliary array vs sampling buckets from the hash set).
///
/// `--bench-json=FILE` additionally writes the gesmc-bench-v1 aggregate
/// the CI regression gate diffs against bench/baselines/BENCH_hashset.json.
///
/// Beyond the single-threaded Google benchmarks, the binary embeds the
/// pinned-thread backend comparison: `--pinned-json=FILE` runs the
/// locked vs lock-free ConcurrentEdgeSet backends under lookup-heavy,
/// churn (erase+insert) and mixed chain-shaped workloads at each thread
/// count in `--pinned-threads=1,2,4,8` (`--pinned-ops=N` per-thread ops),
/// on pinned threads released through a barrier, and writes a second
/// gesmc-bench-v1 document (suite "hashset_lockfree") whose per-result
/// "counters" objects carry probe steps / CAS retries / max PSL per op —
/// the numbers that explain *why* one backend wins a cell.
#include "bench_util/gbench_json.hpp"
#include "bench_util/pinned_rig.hpp"
#include "graph/edge.hpp"
#include "hashing/concurrent_edge_set.hpp"
#include "hashing/edge_set_backend.hpp"
#include "hashing/hash.hpp"
#include "hashing/robin_set.hpp"
#include "rng/bounded.hpp"
#include "rng/mt19937_64.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace {

using namespace gesmc;

std::vector<std::uint64_t> make_keys(std::uint64_t count, std::uint64_t seed) {
    Mt19937_64 gen(seed);
    std::vector<std::uint64_t> keys(count);
    for (auto& k : keys) k = 1 + (gen() & ((1ULL << 55) - 1));
    return keys;
}

void BM_HashCrc(benchmark::State& state) {
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = crc_hash(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_HashCrc);

void BM_HashMix(benchmark::State& state) {
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = mix_hash(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_HashMix);

/// The workload of one accepted edge switch: 2 lookups, 2 erases, 2 inserts.
template <typename Set>
void switch_workload(Set& set, const std::vector<std::uint64_t>& keys, std::uint64_t& cursor) {
    const std::uint64_t a = keys[cursor % keys.size()];
    const std::uint64_t b = keys[(cursor + keys.size() / 2) % keys.size()];
    benchmark::DoNotOptimize(set.contains(a + 1));
    benchmark::DoNotOptimize(set.contains(b + 1));
    set.erase(a);
    set.erase(b);
    set.insert(a);
    set.insert(b);
    ++cursor;
}

void BM_RobinSetSwitchMix(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 1);
    RobinSet set(keys.size());
    for (const auto k : keys) set.insert(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) switch_workload(set, keys, cursor);
}
BENCHMARK(BM_RobinSetSwitchMix);

void concurrent_switch_mix(benchmark::State& state, EdgeSetBackend backend) {
    const auto keys = make_keys(1 << 16, 2);
    ConcurrentEdgeSet set(keys.size(), backend);
    for (const auto k : keys) set.insert_unique(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) {
        switch_workload(set, keys, cursor);
        if (set.needs_rebuild()) set.rebuild();
    }
}

void BM_ConcurrentSetSwitchMix(benchmark::State& state) {
    concurrent_switch_mix(state, EdgeSetBackend::kLocked);
}
BENCHMARK(BM_ConcurrentSetSwitchMix);

void BM_LockFreeSetSwitchMix(benchmark::State& state) {
    concurrent_switch_mix(state, EdgeSetBackend::kLockFree);
}
BENCHMARK(BM_LockFreeSetSwitchMix);

void BM_StdUnorderedSetSwitchMix(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 3);
    struct Wrapper { // adapts std::unordered_set to the workload's interface
        std::unordered_set<std::uint64_t> set;
        bool contains(std::uint64_t k) const { return set.count(k) > 0; }
        void erase(std::uint64_t k) { set.erase(k); }
        void insert(std::uint64_t k) { set.insert(k); }
    } set;
    for (const auto k : keys) set.insert(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) switch_workload(set, keys, cursor);
}
BENCHMARK(BM_StdUnorderedSetSwitchMix);

void BM_RobinSetPreparedContains(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 4);
    RobinSet set(keys.size());
    for (const auto k : keys) set.insert(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) {
        // Prefetch 4 queries ahead, then resolve (the §5.4 pattern).
        RobinSet::Prepared prepared[4];
        for (int b = 0; b < 4; ++b) prepared[b] = set.prepare(keys[(cursor + b) % keys.size()]);
        for (const auto& p : prepared) benchmark::DoNotOptimize(set.contains_prepared(p));
        cursor += 4;
    }
}
BENCHMARK(BM_RobinSetPreparedContains);

/// §5.3 option 1: sample a uniform edge from the auxiliary array.
void BM_SampleEdgeFromArray(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 5);
    Mt19937_64 gen(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(keys[uniform_below(gen, keys.size())]);
    }
}
BENCHMARK(BM_SampleEdgeFromArray);

/// §5.3 option 2: sample by probing random hash-set buckets; favors high
/// load factors, conflicting with fast queries — the paper measured the
/// array variant up to 30% faster overall.
void BM_SampleEdgeFromHashSet(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 7);
    ConcurrentEdgeSet set(keys.size());
    for (const auto k : keys) set.insert_unique(k);
    Mt19937_64 gen(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.sample_uniform(gen));
    }
}
BENCHMARK(BM_SampleEdgeFromHashSet);

/// Worst case for bucket sampling: 7/8 of the keys erased with no rebuild,
/// so random draws mostly hit tombs and the bounded-draw fallback carries
/// part of the load.  Regression bench for the sample_uniform probe cap.
void BM_SampleEdgeTombstoneFlood(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 9);
    ConcurrentEdgeSet set(keys.size());
    for (const auto k : keys) set.insert_unique(k);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i % 8 != 0) set.erase(keys[i]);
    }
    Mt19937_64 gen(10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.sample_uniform(gen));
    }
}
BENCHMARK(BM_SampleEdgeTombstoneFlood);

// --------------------------------------------------------------------------
// Pinned-thread backend comparison (--pinned-json).

/// Sense-reversing spin barrier for the round structure inside a pinned
/// workload (bench_util's run_pinned barrier only covers the start).
class SpinBarrier {
public:
    explicit SpinBarrier(unsigned n) : n_(n) {}
    void arrive_and_wait() {
        const std::uint64_t phase = phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
            arrived_.store(0, std::memory_order_relaxed);
            phase_.fetch_add(1, std::memory_order_acq_rel);
        } else {
            while (phase_.load(std::memory_order_acquire) == phase) {
            }
        }
    }

private:
    const unsigned n_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> phase_{1};
};

enum class PinnedWorkload { kLookup, kChurn, kMixed };

const char* workload_name(PinnedWorkload w) {
    switch (w) {
    case PinnedWorkload::kLookup: return "lookup";
    case PinnedWorkload::kChurn: return "churn";
    case PinnedWorkload::kMixed: return "mixed";
    }
    return "?";
}

/// Table ops one workload op performs (for the per-op counter scaling).
std::uint64_t table_ops_per_op(PinnedWorkload w) {
    switch (w) {
    case PinnedWorkload::kLookup: return 1;
    case PinnedWorkload::kChurn: return 2;  // erase + insert
    case PinnedWorkload::kMixed: return 6;  // 2 contains + 2 erase + 2 insert
    }
    return 1;
}

/// One measured cell: `threads` pinned workers, `ops` workload ops each.
/// Work proceeds in rounds mirroring chain supersteps: every thread runs a
/// slice, all meet at a barrier, thread 0 rebuilds if the backend asks for
/// it (tombstone share / PSL overflow), and the next round starts.  Writers
/// churn disjoint key partitions (chain threads rarely contend on one
/// edge); lookups roam the whole key set.
PinnedRunResult run_pinned_cell(EdgeSetBackend backend, PinnedWorkload workload,
                                unsigned threads, std::uint64_t ops) {
    const auto keys = make_keys(1 << 16, 42);
    ConcurrentEdgeSet set(keys.size(), backend);
    for (const auto k : keys) set.insert_unique(k);

    // Round slices keep tombstones bounded between rebuild points: 2048
    // erase+insert pairs per writer per round stays well under the
    // capacity/4 rebuild threshold even at 8 writers.
    constexpr std::uint64_t kRoundOps = 2048;
    const std::uint64_t part = keys.size() / threads;
    SpinBarrier round_barrier(threads);

    return run_pinned(threads, [&](unsigned tid) {
        Mt19937_64 gen(1000 + tid);
        const std::uint64_t lo = tid * part;
        std::uint64_t done = 0;
        while (done < ops) {
            const std::uint64_t slice = std::min(kRoundOps, ops - done);
            for (std::uint64_t i = 0; i < slice; ++i) {
                switch (workload) {
                case PinnedWorkload::kLookup: {
                    const auto k = keys[uniform_below(gen, keys.size())];
                    benchmark::DoNotOptimize(set.contains(k));
                    break;
                }
                case PinnedWorkload::kChurn: {
                    const auto k = keys[lo + uniform_below(gen, part)];
                    set.erase(k);
                    set.insert(k);
                    break;
                }
                case PinnedWorkload::kMixed: {
                    const auto a = keys[lo + uniform_below(gen, part)];
                    const auto b = keys[lo + uniform_below(gen, part)];
                    benchmark::DoNotOptimize(set.contains(a + 1));
                    benchmark::DoNotOptimize(set.contains(b + 1));
                    set.erase(a);
                    set.erase(b);
                    set.insert(a);
                    set.insert(b);
                    break;
                }
                }
            }
            done += slice;
            if (workload != PinnedWorkload::kLookup) {
                round_barrier.arrive_and_wait();
                if (tid == 0) set.maybe_rebuild();
                round_barrier.arrive_and_wait();
            }
        }
    });
}

struct PinnedOptions {
    std::string json_path;
    std::uint64_t ops = 100000;              ///< per thread, per repetition
    std::vector<unsigned> threads = {1, 2, 4, 8};
    unsigned repetitions = 3;
};

/// Runs the full matrix (workload x backend x thread count) and writes the
/// "hashset_lockfree" gesmc-bench-v1 document.
void run_pinned_comparison(const PinnedOptions& opts) {
    BenchSuite suite;
    suite.bench = "hashset_lockfree";
    suite.host = bench_host_info();

    const PinnedWorkload workloads[] = {PinnedWorkload::kLookup,
                                        PinnedWorkload::kChurn,
                                        PinnedWorkload::kMixed};
    const EdgeSetBackend backends[] = {EdgeSetBackend::kLocked,
                                       EdgeSetBackend::kLockFree};
    for (const auto workload : workloads) {
        for (const auto backend : backends) {
            for (const unsigned threads : opts.threads) {
                std::vector<std::pair<double, PinnedRunResult>> reps;
                for (unsigned rep = 0; rep < opts.repetitions; ++rep) {
                    auto run = run_pinned_cell(backend, workload, threads, opts.ops);
                    reps.emplace_back(run.seconds, std::move(run));
                }
                std::sort(reps.begin(), reps.end(),
                          [](const auto& a, const auto& b) { return a.first < b.first; });
                const PinnedRunResult& med = reps[reps.size() / 2].second;

                const double total_ops =
                    static_cast<double>(opts.ops) * threads;
                const double table_ops =
                    total_ops * static_cast<double>(table_ops_per_op(workload));
                BenchResult r;
                r.name = std::string("pinned/") + workload_name(workload) + "/" +
                         to_string(backend) + "/t" + std::to_string(threads);
                r.median_seconds = med.seconds;
                r.items_per_second = med.seconds > 0 ? total_ops / med.seconds : 0;
                r.repetitions = opts.repetitions;
                r.counters = {
                    {"threads", static_cast<double>(threads)},
                    {"pinned", med.all_pinned ? 1.0 : 0.0},
                    {"probe_steps_per_op",
                     table_ops > 0 ? static_cast<double>(med.ops.probe_steps) / table_ops : 0},
                    {"cas_retries_per_op",
                     table_ops > 0 ? static_cast<double>(med.ops.cas_retries) / table_ops : 0},
                    {"psl_max", static_cast<double>(med.ops.psl_max)},
                };
                std::cout << r.name << ": " << r.median_seconds << " s, "
                          << static_cast<std::uint64_t>(r.items_per_second)
                          << " ops/s, probe/op "
                          << r.counters[2].second << ", cas-retry/op "
                          << r.counters[3].second << ", psl_max "
                          << med.ops.psl_max
                          << (med.all_pinned ? "" : " [unpinned]") << "\n";
                suite.results.push_back(std::move(r));
            }
        }
    }
    write_bench_json_file(opts.json_path, suite);
    std::cerr << "pinned bench JSON (" << suite.results.size()
              << " cells) -> " << opts.json_path << "\n";
}

/// Strips the --pinned-* flags (ours, not Google Benchmark's).  Returns
/// the options; `argc`/`argv` are compacted in place.
PinnedOptions strip_pinned_flags(int& argc, char** argv) {
    PinnedOptions opts;
    int out = 0;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        constexpr std::string_view kJson = "--pinned-json=";
        constexpr std::string_view kOps = "--pinned-ops=";
        constexpr std::string_view kThreads = "--pinned-threads=";
        if (arg.substr(0, kJson.size()) == kJson) {
            opts.json_path = std::string(arg.substr(kJson.size()));
        } else if (arg.substr(0, kOps.size()) == kOps) {
            opts.ops = std::stoull(std::string(arg.substr(kOps.size())));
        } else if (arg.substr(0, kThreads.size()) == kThreads) {
            opts.threads.clear();
            std::string list(arg.substr(kThreads.size()));
            std::size_t pos = 0;
            while (pos < list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string tok =
                    list.substr(pos, comma == std::string::npos ? std::string::npos
                                                                : comma - pos);
                if (!tok.empty()) opts.threads.push_back(
                    static_cast<unsigned>(std::stoul(tok)));
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

} // namespace

int main(int argc, char** argv) {
    const PinnedOptions pinned = strip_pinned_flags(argc, argv);
    const int rc = gesmc::run_micro_bench("hashset", argc, argv);
    if (rc != 0) return rc;
    if (!pinned.json_path.empty()) run_pinned_comparison(pinned);
    return 0;
}
