/// \file bench_micro_hashset.cpp
/// \brief Ablation bench for the §5.2 data-structure choices: hash
/// functions, robin-hood vs concurrent vs std::unordered_set under a
/// switch-like mixed workload, and the two edge-sampling strategies of
/// §5.3 (auxiliary array vs sampling buckets from the hash set).
///
/// `--bench-json=FILE` additionally writes the gesmc-bench-v1 aggregate
/// the CI regression gate diffs against bench/baselines/BENCH_hashset.json.
#include "bench_util/gbench_json.hpp"
#include "graph/edge.hpp"
#include "hashing/concurrent_edge_set.hpp"
#include "hashing/hash.hpp"
#include "hashing/robin_set.hpp"
#include "rng/bounded.hpp"
#include "rng/mt19937_64.hpp"

#include <benchmark/benchmark.h>

#include <unordered_set>
#include <vector>

namespace {

using namespace gesmc;

std::vector<std::uint64_t> make_keys(std::uint64_t count, std::uint64_t seed) {
    Mt19937_64 gen(seed);
    std::vector<std::uint64_t> keys(count);
    for (auto& k : keys) k = 1 + (gen() & ((1ULL << 55) - 1));
    return keys;
}

void BM_HashCrc(benchmark::State& state) {
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = crc_hash(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_HashCrc);

void BM_HashMix(benchmark::State& state) {
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = mix_hash(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_HashMix);

/// The workload of one accepted edge switch: 2 lookups, 2 erases, 2 inserts.
template <typename Set>
void switch_workload(Set& set, const std::vector<std::uint64_t>& keys, std::uint64_t& cursor) {
    const std::uint64_t a = keys[cursor % keys.size()];
    const std::uint64_t b = keys[(cursor + keys.size() / 2) % keys.size()];
    benchmark::DoNotOptimize(set.contains(a + 1));
    benchmark::DoNotOptimize(set.contains(b + 1));
    set.erase(a);
    set.erase(b);
    set.insert(a);
    set.insert(b);
    ++cursor;
}

void BM_RobinSetSwitchMix(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 1);
    RobinSet set(keys.size());
    for (const auto k : keys) set.insert(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) switch_workload(set, keys, cursor);
}
BENCHMARK(BM_RobinSetSwitchMix);

void BM_ConcurrentSetSwitchMix(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 2);
    ConcurrentEdgeSet set(keys.size());
    for (const auto k : keys) set.insert_unique(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) {
        switch_workload(set, keys, cursor);
        if (set.needs_rebuild()) set.rebuild();
    }
}
BENCHMARK(BM_ConcurrentSetSwitchMix);

void BM_StdUnorderedSetSwitchMix(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 3);
    struct Wrapper { // adapts std::unordered_set to the workload's interface
        std::unordered_set<std::uint64_t> set;
        bool contains(std::uint64_t k) const { return set.count(k) > 0; }
        void erase(std::uint64_t k) { set.erase(k); }
        void insert(std::uint64_t k) { set.insert(k); }
    } set;
    for (const auto k : keys) set.insert(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) switch_workload(set, keys, cursor);
}
BENCHMARK(BM_StdUnorderedSetSwitchMix);

void BM_RobinSetPreparedContains(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 4);
    RobinSet set(keys.size());
    for (const auto k : keys) set.insert(k);
    std::uint64_t cursor = 0;
    for (auto _ : state) {
        // Prefetch 4 queries ahead, then resolve (the §5.4 pattern).
        RobinSet::Prepared prepared[4];
        for (int b = 0; b < 4; ++b) prepared[b] = set.prepare(keys[(cursor + b) % keys.size()]);
        for (const auto& p : prepared) benchmark::DoNotOptimize(set.contains_prepared(p));
        cursor += 4;
    }
}
BENCHMARK(BM_RobinSetPreparedContains);

/// §5.3 option 1: sample a uniform edge from the auxiliary array.
void BM_SampleEdgeFromArray(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 5);
    Mt19937_64 gen(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(keys[uniform_below(gen, keys.size())]);
    }
}
BENCHMARK(BM_SampleEdgeFromArray);

/// §5.3 option 2: sample by probing random hash-set buckets; favors high
/// load factors, conflicting with fast queries — the paper measured the
/// array variant up to 30% faster overall.
void BM_SampleEdgeFromHashSet(benchmark::State& state) {
    const auto keys = make_keys(1 << 16, 7);
    ConcurrentEdgeSet set(keys.size());
    for (const auto k : keys) set.insert_unique(k);
    Mt19937_64 gen(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.sample_uniform(gen));
    }
}
BENCHMARK(BM_SampleEdgeFromHashSet);

} // namespace

int main(int argc, char** argv) {
    return gesmc::run_micro_bench("hashset", argc, argv);
}
