#include "bench_util/pinned_rig.hpp"

#include "bench_util/thread_pinner.hpp"

#include <atomic>
#include <chrono>
#include <thread>

namespace gesmc {

PinnedRunResult run_pinned(unsigned num_threads,
                           const std::function<void(unsigned tid)>& work) {
    if (num_threads == 0) num_threads = 1;

    PinnedRunResult result;
    result.threads.resize(num_threads);

    // Spin barrier: workers pin + install their stats scope first, then
    // count in and busy-wait, so the timed region excludes thread start-up
    // and begins within a cache miss of simultaneous on every core.
    std::atomic<unsigned> arrived{0};
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
        workers.emplace_back([&, tid] {
            PinnedThreadStats& mine = result.threads[tid];
            mine.tid = tid;
            mine.pinned = pin_current_thread(tid);
            EdgeSetStatsScope scope(mine.ops);

            arrived.fetch_add(1, std::memory_order_acq_rel);
            while (arrived.load(std::memory_order_acquire) < num_threads) {
                // spin: the wait is microseconds and a yield would unpin
                // the measurement start from the other workers
            }

            const auto t0 = std::chrono::steady_clock::now();
            const std::uint64_t c0 = thread_cycle_counter();
            work(tid);
            const std::uint64_t c1 = thread_cycle_counter();
            const auto t1 = std::chrono::steady_clock::now();

            mine.cycles = c1 - c0;
            mine.seconds = std::chrono::duration<double>(t1 - t0).count();
        });
    }
    for (auto& worker : workers) worker.join();

    result.all_pinned = true;
    for (const PinnedThreadStats& t : result.threads) {
        if (!t.pinned) result.all_pinned = false;
        if (t.seconds > result.seconds) result.seconds = t.seconds;
        result.ops.merge(t.ops);
    }
    return result;
}

} // namespace gesmc
