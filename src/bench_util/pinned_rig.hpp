/// \file pinned_rig.hpp
/// \brief Pinned-thread measurement rig for data-structure microbenches.
///
/// run_pinned() runs one workload closure on T worker threads, each pinned
/// to its own CPU, released together through a spin barrier so the timed
/// region starts simultaneously on every core.  While a worker runs, an
/// EdgeSetStatsScope is installed on it, so every ConcurrentEdgeSet
/// operation the closure performs feeds that thread's private
/// EdgeSetOpStats (probe steps, CAS retries, max PSL, ...) without any
/// shared-counter traffic polluting the measurement.  The result carries
/// per-thread wall time, cycle-counter deltas and counters plus the merged
/// totals — the raw material of the gesmc-bench-v1 "counters" objects the
/// hashset backend comparison emits.
#pragma once

#include "hashing/edge_set_stats.hpp"

#include <cstdint>
#include <functional>
#include <vector>

namespace gesmc {

/// One worker's share of a pinned run.
struct PinnedThreadStats {
    unsigned tid = 0;
    bool pinned = false;        ///< affinity call succeeded on this worker
    double seconds = 0;         ///< barrier release -> closure return
    std::uint64_t cycles = 0;   ///< cycle-counter delta (0 when unavailable)
    EdgeSetOpStats ops;         ///< edge-set counters this worker generated
};

/// Aggregate of one pinned run.
struct PinnedRunResult {
    double seconds = 0;         ///< slowest worker (the measurement)
    bool all_pinned = false;    ///< every worker's affinity call succeeded
    EdgeSetOpStats ops;         ///< merged over workers (psl_max = max)
    std::vector<PinnedThreadStats> threads;
};

/// Runs `work(tid)` for tid in [0, num_threads), one pinned thread each,
/// started together.  Blocks until every worker returns.
PinnedRunResult run_pinned(unsigned num_threads,
                           const std::function<void(unsigned tid)>& work);

} // namespace gesmc
