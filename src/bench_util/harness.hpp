/// \file harness.hpp
/// \brief Shared measurement harness for the figure/table benches.
///
/// Mirrors the paper's benchmark protocol (§6.2): each measurement times
/// *data-structure initialization plus N supersteps* of a chain on a given
/// initial graph.  A timeout turns runaway cells into "—" entries like the
/// paper's Fig. 4 (the run is cut off between supersteps, so the reported
/// value is only used as a lower bound / DNF marker).
#pragma once

#include "core/chain.hpp"
#include "util/format.hpp"

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gesmc {

struct BenchMeasurement {
    double seconds = 0;          ///< init + supersteps (valid iff finished)
    bool finished = false;       ///< false: timeout hit
    std::uint64_t supersteps_done = 0;
    ChainStats stats;
};

/// Times chain construction + `supersteps` supersteps; aborts between
/// supersteps once `timeout_s` is exceeded.
BenchMeasurement time_chain(ChainAlgorithm algo, const EdgeList& initial,
                            const ChainConfig& config, std::uint64_t supersteps,
                            double timeout_s = 1e30);

/// "1.23" or the DNF dash, mirroring the paper's table.
std::string format_cell(const BenchMeasurement& m);

/// Hardware threads available (the bench's stand-in for the paper's P=32).
unsigned bench_max_threads();

/// Measures the machine's *attainable* self speed-up at P threads with an
/// embarrassingly parallel compute kernel.  Container/VM environments often
/// advertise more concurrency than they deliver; scaling benches print this
/// ceiling so readers can judge the chain speed-ups against it.
double measure_parallel_ceiling(unsigned threads);

/// Prints the standard bench preamble (machine info, scaling note).
void print_bench_header(const std::string& title, const std::string& paper_ref);

// --------------------------------------------------------------------------
// Machine-readable bench output (BENCH_<name>.json; schema gesmc-bench-v1,
// docs/observability.md).  The CI regression gate diffs a fresh run against
// the committed baseline and only compares runs from the same host class.

/// One benchmark's aggregate over its repetitions.
struct BenchResult {
    std::string name;            ///< e.g. "BM_SeqES_Prefetch"
    double median_seconds = 0;   ///< median per-iteration wall time
    double items_per_second = 0; ///< median items/sec counter (0 = no counter)
    std::uint64_t repetitions = 0;

    /// Optional named counters emitted as a "counters" object (insertion
    /// order preserved) — e.g. the pinned hashset comparison's per-op probe
    /// steps, CAS retries and max PSL.  The regression gate ignores them;
    /// they exist so a reader can explain a timing delta from the JSON.
    std::vector<std::pair<std::string, double>> counters;
};

/// Identifies the machine class a bench ran on.  `fingerprint` is the
/// equality key the regression gate uses: numbers from different hardware
/// are not comparable, so a mismatch downgrades the gate to informational.
struct BenchHost {
    std::string fingerprint; ///< "<os>/<arch>/<cpu>/ht<N>"
    std::string os;          ///< uname sysname + release
    std::string arch;        ///< uname machine
    std::string cpu;         ///< /proc/cpuinfo "model name" ("" if unknown)
    unsigned hardware_threads = 0;
    double parallel_ceiling = 0; ///< measured self speed-up at ht (0 = not run)
};

/// A whole bench binary's results.
struct BenchSuite {
    std::string bench; ///< e.g. "switching" -> BENCH_switching.json
    BenchHost host;
    std::vector<BenchResult> results;
};

/// Fills every BenchHost field except parallel_ceiling.
[[nodiscard]] BenchHost bench_host_info();

/// Median of `values` (consumed by sorting); 0 for an empty vector.
[[nodiscard]] double median_of(std::vector<double> values);

/// Serializes the suite as the gesmc-bench-v1 JSON document.
void write_bench_json(std::ostream& os, const BenchSuite& suite);
void write_bench_json_file(const std::string& path, const BenchSuite& suite);

} // namespace gesmc
