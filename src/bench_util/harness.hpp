/// \file harness.hpp
/// \brief Shared measurement harness for the figure/table benches.
///
/// Mirrors the paper's benchmark protocol (§6.2): each measurement times
/// *data-structure initialization plus N supersteps* of a chain on a given
/// initial graph.  A timeout turns runaway cells into "—" entries like the
/// paper's Fig. 4 (the run is cut off between supersteps, so the reported
/// value is only used as a lower bound / DNF marker).
#pragma once

#include "core/chain.hpp"
#include "util/format.hpp"

#include <optional>
#include <string>

namespace gesmc {

struct BenchMeasurement {
    double seconds = 0;          ///< init + supersteps (valid iff finished)
    bool finished = false;       ///< false: timeout hit
    std::uint64_t supersteps_done = 0;
    ChainStats stats;
};

/// Times chain construction + `supersteps` supersteps; aborts between
/// supersteps once `timeout_s` is exceeded.
BenchMeasurement time_chain(ChainAlgorithm algo, const EdgeList& initial,
                            const ChainConfig& config, std::uint64_t supersteps,
                            double timeout_s = 1e30);

/// "1.23" or the DNF dash, mirroring the paper's table.
std::string format_cell(const BenchMeasurement& m);

/// Hardware threads available (the bench's stand-in for the paper's P=32).
unsigned bench_max_threads();

/// Measures the machine's *attainable* self speed-up at P threads with an
/// embarrassingly parallel compute kernel.  Container/VM environments often
/// advertise more concurrency than they deliver; scaling benches print this
/// ceiling so readers can judge the chain speed-ups against it.
double measure_parallel_ceiling(unsigned threads);

/// Prints the standard bench preamble (machine info, scaling note).
void print_bench_header(const std::string& title, const std::string& paper_ref);

} // namespace gesmc
