/// \file thread_pinner.hpp
/// \brief CPU affinity + cycle counter for the pinned micro-bench rig.
///
/// Scaling microbenches are meaningless when the scheduler migrates the
/// worker threads mid-measurement: per-thread counters smear across cores
/// and cache-residency effects vanish.  pin_current_thread() nails the
/// calling thread to one CPU; callers record whether it succeeded (it can
/// fail inside restrictive containers) so results can be labelled honestly
/// instead of silently degrading.
#pragma once

#include <cstdint>

namespace gesmc {

/// Pins the calling thread to `cpu` (modulo the machine's CPU count).
/// Returns false when the platform has no affinity API or the call is
/// rejected (e.g. a cpuset-restricted container); the thread then keeps
/// its inherited mask and the caller should mark the run as unpinned.
bool pin_current_thread(unsigned cpu) noexcept;

/// Monotonic per-thread cycle counter: rdtsc on x86-64, the virtual
/// counter on aarch64, 0 elsewhere.  Only deltas on the *same pinned
/// thread* are meaningful — which is exactly what the rig takes.
[[nodiscard]] std::uint64_t thread_cycle_counter() noexcept;

} // namespace gesmc
