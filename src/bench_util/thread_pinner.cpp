#include "bench_util/thread_pinner.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace gesmc {

bool pin_current_thread(unsigned cpu) noexcept {
#if defined(__linux__)
    const unsigned count = std::thread::hardware_concurrency();
    if (count == 0) return false;
    cpu_set_t mask;
    CPU_ZERO(&mask);
    CPU_SET(static_cast<int>(cpu % count), &mask);
    return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
    (void)cpu;
    return false;
#endif
}

std::uint64_t thread_cycle_counter() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return 0;
#endif
}

} // namespace gesmc
