/// \file gbench_json.hpp
/// \brief Google-Benchmark-to-JSON bridge for the bench_micro_* programs.
///
/// run_micro_bench() replaces BENCHMARK_MAIN(): it runs the registered
/// benchmarks with the normal console output intact and, when the process
/// was given `--bench-json=FILE`, additionally aggregates every
/// per-iteration run into medians and writes the gesmc-bench-v1 document
/// (docs/observability.md).  That file is what CI diffs against the
/// committed BENCH_<name>.json baselines; use --benchmark_repetitions=N to
/// make the median meaningful.
///
/// Header-only on purpose: only the bench_micro_* targets link Google
/// Benchmark, so this must not be compiled into gesmc_bench_util (which
/// test binaries link without it).
#pragma once

#include "bench_util/harness.hpp"

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gesmc {

namespace bench_detail {

/// Passes every run through to the console and keeps the raw per-iteration
/// samples (seconds per iteration, items/sec) keyed by benchmark name.
/// Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
/// skipped — the harness computes its own median from the raw runs.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
public:
    /// name -> (seconds per iteration, items/sec counter or 0) samples.
    std::map<std::string, std::vector<std::pair<double, double>>> samples;

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
            const double per_iteration =
                run.iterations > 0
                    ? run.real_accumulated_time / static_cast<double>(run.iterations)
                    : 0;
            double items_per_second = 0;
            const auto counter = run.counters.find("items_per_second");
            if (counter != run.counters.end()) {
                items_per_second = static_cast<double>(counter->second);
            }
            samples[run.benchmark_name()].emplace_back(per_iteration,
                                                       items_per_second);
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

} // namespace bench_detail

/// Drop-in main() body for a micro bench.  `bench_name` names the suite in
/// the JSON document ("switching" -> the BENCH_switching.json baseline).
inline int run_micro_bench(const std::string& bench_name, int argc, char** argv) {
    // --bench-json=FILE is ours, not Google Benchmark's: strip it before
    // Initialize, which treats unknown flags as errors.
    std::string json_path;
    std::vector<char*> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        constexpr std::string_view kFlag = "--bench-json=";
        const std::string_view arg = argv[i];
        if (arg.substr(0, kFlag.size()) == kFlag) {
            json_path = std::string(arg.substr(kFlag.size()));
            continue;
        }
        args.push_back(argv[i]);
    }
    args.push_back(nullptr); // argv contract: argv[argc] == nullptr
    int pass_argc = static_cast<int>(args.size()) - 1;
    benchmark::Initialize(&pass_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc, args.data())) return 1;

    bench_detail::JsonCollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    if (!json_path.empty()) {
        BenchSuite suite;
        suite.bench = bench_name;
        suite.host = bench_host_info();
        for (const auto& [name, rows] : reporter.samples) {
            BenchResult result;
            result.name = name;
            result.repetitions = rows.size();
            std::vector<double> seconds, items;
            seconds.reserve(rows.size());
            items.reserve(rows.size());
            for (const auto& [per_iteration, items_per_second] : rows) {
                seconds.push_back(per_iteration);
                if (items_per_second > 0) items.push_back(items_per_second);
            }
            result.median_seconds = median_of(std::move(seconds));
            result.items_per_second = median_of(std::move(items));
            suite.results.push_back(std::move(result));
        }
        write_bench_json_file(json_path, suite);
        std::cerr << "bench JSON (" << suite.results.size() << " benchmarks) -> "
                  << json_path << "\n";
    }
    benchmark::Shutdown();
    return 0;
}

} // namespace gesmc
