#include "bench_util/harness.hpp"

#include "parallel/thread_pool.hpp"
#include "pipeline/report.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

#include <sys/utsname.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

namespace gesmc {

BenchMeasurement time_chain(ChainAlgorithm algo, const EdgeList& initial,
                            const ChainConfig& config, std::uint64_t supersteps,
                            double timeout_s) {
    BenchMeasurement m;
    Timer timer;
    const auto chain = make_chain(algo, initial, config);
    for (std::uint64_t step = 0; step < supersteps; ++step) {
        if (timer.elapsed_s() > timeout_s) {
            m.seconds = timer.elapsed_s();
            m.stats = chain->stats();
            return m; // finished stays false
        }
        chain->run_supersteps(1);
        ++m.supersteps_done;
    }
    m.seconds = timer.elapsed_s();
    m.finished = true;
    m.stats = chain->stats();
    return m;
}

std::string format_cell(const BenchMeasurement& m) {
    if (!m.finished) return "—";
    return fmt_double(m.seconds, m.seconds < 0.1 ? 4 : 2);
}

unsigned bench_max_threads() {
    return std::max(1u, std::thread::hardware_concurrency());
}

namespace {

double calibration_kernel_seconds(unsigned threads) {
    ThreadPool pool(threads);
    constexpr std::uint64_t kWork = 200'000'000;
    volatile double sink = 0;
    Timer t;
    pool.for_chunks(0, kWork, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        double s = 0;
        for (std::uint64_t i = lo; i < hi; ++i) s += static_cast<double>(i & 1023) * 1e-9;
        sink = sink + s;
    });
    return t.elapsed_s();
}

} // namespace

double measure_parallel_ceiling(unsigned threads) {
    const double t1 = calibration_kernel_seconds(1);
    const double tp = calibration_kernel_seconds(threads);
    return t1 / tp;
}

namespace {

/// First /proc/cpuinfo "model name" value, or "" when unavailable (non-Linux
/// or restricted container) — the fingerprint still distinguishes hosts by
/// os/arch/thread count then.
std::string cpu_model_name() {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("model name", 0) != 0) continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) break;
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ') ++begin;
        return line.substr(begin);
    }
    return "";
}

} // namespace

BenchHost bench_host_info() {
    BenchHost host;
    struct utsname uts;
    if (uname(&uts) == 0) {
        host.os = std::string(uts.sysname) + " " + uts.release;
        host.arch = uts.machine;
    }
    host.cpu = cpu_model_name();
    host.hardware_threads = bench_max_threads();
    std::ostringstream fp;
    fp << (host.os.empty() ? "unknown" : host.os) << "/"
       << (host.arch.empty() ? "unknown" : host.arch) << "/"
       << (host.cpu.empty() ? "unknown" : host.cpu) << "/ht"
       << host.hardware_threads;
    host.fingerprint = fp.str();
    return host;
}

double median_of(std::vector<double> values) {
    if (values.empty()) return 0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1) return values[mid];
    return (values[mid - 1] + values[mid]) / 2;
}

void write_bench_json(std::ostream& os, const BenchSuite& suite) {
    JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "gesmc-bench-v1");
    w.kv("bench", suite.bench);
    w.key("host");
    w.begin_object();
    w.kv("fingerprint", suite.host.fingerprint);
    w.kv("os", suite.host.os);
    w.kv("arch", suite.host.arch);
    w.kv("cpu", suite.host.cpu);
    w.kv("hardware_threads", suite.host.hardware_threads);
    if (suite.host.parallel_ceiling > 0) {
        w.kv("parallel_ceiling", suite.host.parallel_ceiling);
    }
    w.end_object();
    w.key("results");
    w.begin_array();
    for (const BenchResult& r : suite.results) {
        w.begin_object();
        w.kv("name", r.name);
        w.kv("median_seconds", r.median_seconds);
        if (r.items_per_second > 0) w.kv("items_per_second", r.items_per_second);
        w.kv("repetitions", r.repetitions);
        if (!r.counters.empty()) {
            w.key("counters");
            w.begin_object();
            for (const auto& [name, value] : r.counters) w.kv(name, value);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
}

void write_bench_json_file(const std::string& path, const BenchSuite& suite) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    GESMC_CHECK(os.good(), "cannot open bench JSON file: " + path);
    write_bench_json(os, suite);
    GESMC_CHECK(os.good(), "cannot write bench JSON file: " + path);
}

void print_bench_header(const std::string& title, const std::string& paper_ref) {
    std::cout << "==================================================================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "Hardware threads: " << bench_max_threads()
              << " (paper: 64-core EPYC 7702P; absolute numbers are scaled\n"
              << "down — the reproduction target is the *shape*, see EXPERIMENTS.md)\n"
              << "==================================================================\n";
}

} // namespace gesmc
