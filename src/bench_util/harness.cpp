#include "bench_util/harness.hpp"

#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

#include <iostream>
#include <thread>

namespace gesmc {

BenchMeasurement time_chain(ChainAlgorithm algo, const EdgeList& initial,
                            const ChainConfig& config, std::uint64_t supersteps,
                            double timeout_s) {
    BenchMeasurement m;
    Timer timer;
    const auto chain = make_chain(algo, initial, config);
    for (std::uint64_t step = 0; step < supersteps; ++step) {
        if (timer.elapsed_s() > timeout_s) {
            m.seconds = timer.elapsed_s();
            m.stats = chain->stats();
            return m; // finished stays false
        }
        chain->run_supersteps(1);
        ++m.supersteps_done;
    }
    m.seconds = timer.elapsed_s();
    m.finished = true;
    m.stats = chain->stats();
    return m;
}

std::string format_cell(const BenchMeasurement& m) {
    if (!m.finished) return "—";
    return fmt_double(m.seconds, m.seconds < 0.1 ? 4 : 2);
}

unsigned bench_max_threads() {
    return std::max(1u, std::thread::hardware_concurrency());
}

namespace {

double calibration_kernel_seconds(unsigned threads) {
    ThreadPool pool(threads);
    constexpr std::uint64_t kWork = 200'000'000;
    volatile double sink = 0;
    Timer t;
    pool.for_chunks(0, kWork, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        double s = 0;
        for (std::uint64_t i = lo; i < hi; ++i) s += static_cast<double>(i & 1023) * 1e-9;
        sink = sink + s;
    });
    return t.elapsed_s();
}

} // namespace

double measure_parallel_ceiling(unsigned threads) {
    const double t1 = calibration_kernel_seconds(1);
    const double tp = calibration_kernel_seconds(threads);
    return t1 / tp;
}

void print_bench_header(const std::string& title, const std::string& paper_ref) {
    std::cout << "==================================================================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "Hardware threads: " << bench_max_threads()
              << " (paper: 64-core EPYC 7702P; absolute numbers are scaled\n"
              << "down — the reproduction target is the *shape*, see EXPERIMENTS.md)\n"
              << "==================================================================\n";
}

} // namespace gesmc
