/// \file timer.hpp
/// \brief Wall-clock timing utilities for benchmarks and instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace gesmc {

/// Monotonic wall-clock stopwatch with double-precision seconds readout.
class Timer {
public:
    Timer() noexcept { restart(); }

    void restart() noexcept { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last restart().
    [[nodiscard]] double elapsed_s() const noexcept {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Accumulates time over multiple measured sections.
class AccumTimer {
public:
    void start() noexcept { t_.restart(); running_ = true; }
    void stop() noexcept {
        if (running_) total_ += t_.elapsed_s();
        running_ = false;
    }
    void reset() noexcept { total_ = 0; running_ = false; }
    [[nodiscard]] double total_s() const noexcept { return total_; }

private:
    Timer t_;
    double total_ = 0;
    bool running_ = false;
};

} // namespace gesmc
