/// \file signal_interrupt.hpp
/// \brief Shared SIGINT/SIGTERM-to-flag plumbing for the checkpointing CLIs.
///
/// gesmc_sample and gesmc_randomize stop at checkpoint boundaries instead
/// of dying mid-write: the handlers installed here only set a process-wide
/// flag the run loop polls (PipelineExec::interrupt, or the tool's own
/// boundary check).  Install only when checkpointing is on — without
/// checkpoints there is no consistent state to stop at, so the default
/// die-now behavior is the honest one.
#pragma once

#include <atomic>

namespace gesmc {

/// The process-wide flag set by the handlers below; false until a signal
/// arrives.  Safe to wire into PipelineExec::interrupt.
[[nodiscard]] std::atomic<bool>& interrupt_flag() noexcept;

/// Installs SIGINT/SIGTERM handlers that set interrupt_flag().
/// SA_RESETHAND keeps a second Ctrl-C as the immediate kill; SA_RESTART
/// keeps in-flight file IO unperturbed.
void install_interrupt_handlers();

} // namespace gesmc
