/// \file format.hpp
/// \brief Aligned text tables and CSV emission shared by the bench harness.
///
/// Every figure/table bench prints (a) a human-readable aligned table
/// mirroring the paper's presentation and (b) machine-readable CSV lines
/// (prefixed with "CSV,") so results can be post-processed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gesmc {

/// Builds an aligned monospace table row by row and renders it to a stream.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Appends a data row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Renders with column alignment; numeric-looking cells right-aligned.
    void print(std::ostream& os) const;

    /// Emits one "CSV,<header...>" line followed by "CSV,<row...>" lines.
    void print_csv(std::ostream& os, const std::string& tag) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats v with the given precision, trimming trailing zeros ("1.25", "3").
std::string fmt_double(double v, int precision = 3);

/// Human-readable quantity with K/M/B suffix ("1.2M").
std::string fmt_si(double v);

/// Seconds with sub-second precision ("12.3 ms", "4.56 s").
std::string fmt_seconds(double s);

} // namespace gesmc
