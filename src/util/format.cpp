#include "util/format.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gesmc {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    GESMC_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
    GESMC_CHECK(row.size() == header_.size(), "row arity mismatch");
    rows_.push_back(std::move(row));
}

namespace {

bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    std::size_t digits = 0;
    for (char c : s) {
        if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    }
    return digits * 2 >= s.size();
}

} // namespace

void TextTable::print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row, bool is_header) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            const bool right = !is_header && looks_numeric(row[c]);
            os << ' ' << (right ? std::right : std::left)
               << std::setw(static_cast<int>(width[c])) << row[c] << " |";
        }
        os << '\n';
    };
    print_row(header_, true);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
    os << '\n';
    for (const auto& row : rows_) print_row(row, false);
}

void TextTable::print_csv(std::ostream& os, const std::string& tag) const {
    auto emit = [&](const std::vector<std::string>& row) {
        os << "CSV," << tag;
        for (const auto& cell : row) os << ',' << cell;
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    std::string s = os.str();
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0') s.pop_back();
        if (!s.empty() && s.back() == '.') s.pop_back();
    }
    return s;
}

std::string fmt_si(double v) {
    const char* suffix = "";
    if (std::abs(v) >= 1e9) {
        v /= 1e9;
        suffix = "B";
    } else if (std::abs(v) >= 1e6) {
        v /= 1e6;
        suffix = "M";
    } else if (std::abs(v) >= 1e3) {
        v /= 1e3;
        suffix = "K";
    }
    return fmt_double(v, 2) + suffix;
}

std::string fmt_seconds(double s) {
    if (s < 1e-3) return fmt_double(s * 1e6, 2) + " us";
    if (s < 1.0) return fmt_double(s * 1e3, 2) + " ms";
    return fmt_double(s, 3) + " s";
}

} // namespace gesmc
