#include "util/signal_interrupt.hpp"

#include <csignal>
#include <cstring>

namespace gesmc {

namespace {

std::atomic<bool> g_interrupt{false};

void handle_signal(int) { g_interrupt.store(true, std::memory_order_relaxed); }

} // namespace

std::atomic<bool>& interrupt_flag() noexcept { return g_interrupt; }

void install_interrupt_handlers() {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = handle_signal;
    action.sa_flags = SA_RESETHAND | SA_RESTART;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

} // namespace gesmc
