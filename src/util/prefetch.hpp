/// \file prefetch.hpp
/// \brief Portable software prefetch wrappers (paper §5.4).
///
/// Edge switching produces inherently unstructured memory accesses.  The
/// paper accelerates these by splitting each hash-set operation in two:
/// compute the bucket address and prefetch it, then carry out the operation
/// later once the line has (hopefully) arrived.  These helpers wrap the
/// compiler intrinsics so that call sites stay readable and non-GNU
/// compilers degrade to no-ops.
#pragma once

#include <cstdint>

namespace gesmc {

/// Cache line size assumed for padding decisions. 64 bytes covers all
/// mainstream x86/ARM server parts.
inline constexpr std::size_t kCacheLineSize = 64;

/// Prefetch for reading with moderate temporal locality.
inline void prefetch_read(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/1);
#else
    (void)addr;
#endif
}

/// Prefetch for writing.
inline void prefetch_write(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, /*rw=*/1, /*locality=*/1);
#else
    (void)addr;
#endif
}

/// Prefetches the cache line containing addr and its successor line.
/// Linear-probing hash sets with load factor <= 1/2 nearly always resolve a
/// query within two consecutive lines (paper §5.4: "we prefetch this bucket
/// as well as its direct successor").
inline void prefetch_read_2lines(const void* addr) noexcept {
    prefetch_read(addr);
    prefetch_read(static_cast<const char*>(addr) + kCacheLineSize);
}

inline void prefetch_write_2lines(void* addr) noexcept {
    prefetch_write(addr);
    prefetch_write(static_cast<char*>(addr) + kCacheLineSize);
}

} // namespace gesmc
