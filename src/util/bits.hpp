/// \file bits.hpp
/// \brief Small bit-manipulation and integer helpers used across the library.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace gesmc {

/// Returns true iff x is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x == 0 yields 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
    if (x <= 1) return 1;
    --x;
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    x |= x >> 32;
    return x + 1;
}

/// floor(log2(x)) for x > 0.
constexpr unsigned log2_floor(std::uint64_t x) noexcept {
    assert(x > 0);
    unsigned r = 0;
    while (x >>= 1) ++r;
    return r;
}

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) noexcept {
    static_assert(std::is_integral_v<T>);
    assert(b > 0);
    return static_cast<T>((a + b - 1) / b);
}

/// SplitMix64 finalizer: a fast, well-mixing 64-bit permutation.
/// Used as the base mixer for counter-based random streams and hashing.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Combines two 64-bit values into one (order-sensitive).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
    return mix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)) ^ mix64(b));
}

constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
    return mix64(mix64(a, b), c);
}

} // namespace gesmc
