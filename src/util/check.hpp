/// \file check.hpp
/// \brief Error handling helpers: checked preconditions that throw.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gesmc {

/// Exception thrown on violated API preconditions or invariants.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
    std::ostringstream os;
    os << "GESMC_CHECK failed: (" << expr << ") at " << file << ":" << line;
    if (!msg.empty()) os << " — " << msg;
    throw Error(os.str());
}
} // namespace detail

} // namespace gesmc

/// Precondition check that is always active (also in release builds).
/// Usage: GESMC_CHECK(n > 0, "need at least one node");
#define GESMC_CHECK(expr, ...)                                                             \
    do {                                                                                   \
        if (!(expr)) {                                                                     \
            ::gesmc::detail::throw_check_failure(#expr, __FILE__, __LINE__,               \
                                                 ::std::string{__VA_ARGS__});             \
        }                                                                                  \
    } while (0)
