/// \file binio.hpp
/// \brief Minimal binary stream primitives shared by the sidecar formats.
///
/// graph/io.cpp keeps its own (private) copies of these routines because its
/// error strings name the enclosing section; the analysis sidecars
/// (estimator state, see analysis/ess.*) need the identical wire encoding —
/// LEB128 varints and IEEE-754 little-endian doubles — without pulling the
/// graph formats into the analysis layer.  The encodings must stay
/// bit-compatible with graph/io.cpp: both feed byte-compared artifacts.
#pragma once

#include "util/check.hpp"

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

namespace gesmc::binio {

inline void write_varint(std::ostream& os, std::uint64_t v) {
    char buf[10];
    int len = 0;
    while (v >= 0x80) {
        buf[len++] = static_cast<char>((v & 0x7F) | 0x80);
        v >>= 7;
    }
    buf[len++] = static_cast<char>(v);
    os.write(buf, len);
}

/// `what` names the enclosing section in errors so a truncated sidecar is
/// reported as such, not as a generic stream failure.
inline std::uint64_t read_varint(std::istream& is, const char* what) {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int byte = is.get();
        GESMC_CHECK(byte != std::char_traits<char>::eof(),
                    std::string(what) + " truncated");
        // The 10th byte (shift 63) has room for one data bit only; higher
        // bits would be shifted out silently.
        GESMC_CHECK(shift < 63 || (byte & 0x7E) == 0,
                    std::string(what) + ": varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) return v;
    }
    throw Error(std::string(what) + ": varint longer than 64 bits");
}

/// Doubles travel as their IEEE-754 bit pattern, little-endian: restores
/// must be bit-exact (the estimator's accumulators feed deterministic stop
/// verdicts), so no text round-trip is acceptable here.
inline void write_double_le(std::ostream& os, double value) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
    os.write(buf, sizeof(buf));
}

inline double read_double_le(std::istream& is, const char* what) {
    char buf[8];
    is.read(buf, sizeof(buf));
    GESMC_CHECK(is.gcount() == sizeof(buf), std::string(what) + " truncated");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
        bits |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
                << (8 * i);
    }
    return std::bit_cast<double>(bits);
}

} // namespace gesmc::binio
