#include "gen/configuration_model.hpp"

#include "hashing/robin_set.hpp"
#include "rng/bounded.hpp"
#include "rng/mt19937_64.hpp"
#include "rng/shuffle.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

#include <algorithm>

namespace gesmc {

std::vector<Edge> configuration_model_pairing(const DegreeSequence& seq, std::uint64_t seed) {
    GESMC_CHECK(seq.degree_sum() % 2 == 0, "degree sum must be even");
    std::vector<node_t> stubs;
    stubs.reserve(seq.degree_sum());
    for (std::size_t v = 0; v < seq.num_nodes(); ++v) {
        for (std::uint32_t i = 0; i < seq.degrees()[v]; ++i) {
            stubs.push_back(static_cast<node_t>(v));
        }
    }
    Mt19937_64 gen(mix64(seed, 0xc0f1603a7d9e2b45ULL));
    fisher_yates(stubs, gen);
    std::vector<Edge> pairs;
    pairs.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        pairs.push_back(Edge{stubs[i], stubs[i + 1]});
    }
    return pairs;
}

EdgeList configuration_model_erased(const DegreeSequence& seq, std::uint64_t seed) {
    const auto pairs = configuration_model_pairing(seq, seed);
    std::vector<edge_key_t> keys;
    keys.reserve(pairs.size());
    for (const Edge e : pairs) {
        if (!e.is_loop()) keys.push_back(edge_key(e));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return EdgeList::from_keys(static_cast<node_t>(seq.num_nodes()), std::move(keys));
}

EdgeList configuration_model_repaired(const DegreeSequence& seq, std::uint64_t seed,
                                      int max_tries) {
    const auto pairs = configuration_model_pairing(seq, seed);
    RobinSet set(pairs.size());
    std::vector<edge_key_t> keys;
    keys.reserve(pairs.size());
    std::vector<node_t> residual; // stubs freed by dropped loops/multi-edges
    for (const Edge e : pairs) {
        if (!e.is_loop() && set.insert(edge_key(e))) {
            keys.push_back(edge_key(e));
        } else {
            residual.push_back(e.u);
            residual.push_back(e.v);
        }
    }
    Mt19937_64 gen(mix64(seed, 0x5e1fBA5Eull));
    fisher_yates(residual, gen);
    for (std::size_t s = 0; s + 1 < residual.size(); s += 2) {
        const node_t u = residual[s];
        const node_t v = residual[s + 1];
        // Direct placement when {u,v} is a fresh non-loop edge.
        if (u != v && !set.contains(edge_key(u, v))) {
            set.insert(edge_key(u, v));
            keys.push_back(edge_key(u, v));
            continue;
        }
        // Degree-preserving split: remove existing {x,y}, add {u,x}, {v,y}.
        bool placed = false;
        for (int attempt = 0; !keys.empty() && attempt < max_tries; ++attempt) {
            const std::uint64_t pick = uniform_below(gen, keys.size());
            const Edge xy = edge_from_key(keys[pick]);
            // Randomize the orientation so u may bind to either endpoint.
            const bool flip = uniform_bit(gen);
            const node_t x = flip ? xy.v : xy.u;
            const node_t y = flip ? xy.u : xy.v;
            if (u == x || v == y) continue;
            const edge_key_t ux = edge_key(u, x);
            const edge_key_t vy = edge_key(v, y);
            if (ux == vy || set.contains(ux) || set.contains(vy)) continue;
            set.erase(keys[pick]);
            set.insert(ux);
            set.insert(vy);
            keys[pick] = ux;
            keys.push_back(vy);
            placed = true;
            break;
        }
        GESMC_CHECK(placed, "configuration model repair stalled; sequence too dense");
    }
    return EdgeList::from_keys(static_cast<node_t>(seq.num_nodes()), std::move(keys));
}

EdgeList configuration_model_rejection(const DegreeSequence& seq, std::uint64_t seed,
                                       int max_attempts) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        const auto pairs = configuration_model_pairing(seq, mix64(seed, attempt));
        bool simple = true;
        std::vector<edge_key_t> keys;
        keys.reserve(pairs.size());
        for (const Edge e : pairs) {
            if (e.is_loop()) {
                simple = false;
                break;
            }
            keys.push_back(edge_key(e));
        }
        if (!simple) continue;
        std::sort(keys.begin(), keys.end());
        if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) continue;
        return EdgeList::from_keys(static_cast<node_t>(seq.num_nodes()), std::move(keys));
    }
    GESMC_CHECK(false, "rejection sampling exceeded max_attempts");
    return {};
}

} // namespace gesmc
