#include "gen/configuration_model.hpp"

#include "rng/mt19937_64.hpp"
#include "rng/shuffle.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

#include <algorithm>

namespace gesmc {

std::vector<Edge> configuration_model_pairing(const DegreeSequence& seq, std::uint64_t seed) {
    GESMC_CHECK(seq.degree_sum() % 2 == 0, "degree sum must be even");
    std::vector<node_t> stubs;
    stubs.reserve(seq.degree_sum());
    for (std::size_t v = 0; v < seq.num_nodes(); ++v) {
        for (std::uint32_t i = 0; i < seq.degrees()[v]; ++i) {
            stubs.push_back(static_cast<node_t>(v));
        }
    }
    Mt19937_64 gen(mix64(seed, 0xc0f1603a7d9e2b45ULL));
    fisher_yates(stubs, gen);
    std::vector<Edge> pairs;
    pairs.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        pairs.push_back(Edge{stubs[i], stubs[i + 1]});
    }
    return pairs;
}

EdgeList configuration_model_erased(const DegreeSequence& seq, std::uint64_t seed) {
    const auto pairs = configuration_model_pairing(seq, seed);
    std::vector<edge_key_t> keys;
    keys.reserve(pairs.size());
    for (const Edge e : pairs) {
        if (!e.is_loop()) keys.push_back(edge_key(e));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return EdgeList::from_keys(static_cast<node_t>(seq.num_nodes()), std::move(keys));
}

EdgeList configuration_model_rejection(const DegreeSequence& seq, std::uint64_t seed,
                                       int max_attempts) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        const auto pairs = configuration_model_pairing(seq, mix64(seed, attempt));
        bool simple = true;
        std::vector<edge_key_t> keys;
        keys.reserve(pairs.size());
        for (const Edge e : pairs) {
            if (e.is_loop()) {
                simple = false;
                break;
            }
            keys.push_back(edge_key(e));
        }
        if (!simple) continue;
        std::sort(keys.begin(), keys.end());
        if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) continue;
        return EdgeList::from_keys(static_cast<node_t>(seq.num_nodes()), std::move(keys));
    }
    GESMC_CHECK(false, "rejection sampling exceeded max_attempts");
    return {};
}

} // namespace gesmc
