/// \file havel_hakimi.hpp
/// \brief Havel–Hakimi realization of graphical degree sequences (§6).
///
/// The paper materializes SynPld degree sequences with Havel–Hakimi (via
/// NetworKit); we implement the algorithm directly: repeatedly take a node
/// of maximum residual degree d and connect it to the d nodes of next-
/// highest residual degree.  Deterministic; throws if the sequence is not
/// graphical.
#pragma once

#include "graph/degree_sequence.hpp"
#include "graph/edge_list.hpp"

namespace gesmc {

/// Builds a simple graph realizing `seq`. O(m log n).
EdgeList havel_hakimi(const DegreeSequence& seq);

} // namespace gesmc
