#include "gen/gnp.hpp"

#include "rng/bounded.hpp"
#include "rng/counter_rng.hpp"
#include "util/check.hpp"

#include <cmath>
#include <numeric>

namespace gesmc {

namespace {
constexpr std::uint64_t kGnpSalt = 0x6e70a3c1d45b2e97ULL;
} // namespace

EdgeList generate_gnp(node_t n, double p, std::uint64_t seed, ThreadPool& pool) {
    GESMC_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
    GESMC_CHECK(n <= kMaxNode + 1, "too many nodes for the 28-bit encoding");
    if (n < 2 || p == 0.0) return EdgeList::from_keys(n, {});

    const unsigned threads = pool.num_threads();
    std::vector<std::vector<edge_key_t>> local(threads);
    const double log_q = (p < 1.0) ? std::log1p(-p) : 0.0;

    pool.for_chunks(0, n, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        auto& out = local[tid];
        for (std::uint64_t u = lo; u < hi; ++u) {
            if (p >= 1.0) {
                for (std::uint64_t v = u + 1; v < n; ++v) {
                    out.push_back(edge_key(static_cast<node_t>(u), static_cast<node_t>(v)));
                }
                continue;
            }
            auto gen = stream_for(mix64(seed, kGnpSalt), u);
            // Geometric skipping along the row (v strictly increasing).
            double v = static_cast<double>(u);
            for (;;) {
                const double gap = std::floor(std::log(uniform_real_nonzero(gen)) / log_q);
                v += gap + 1;
                if (v >= static_cast<double>(n)) break;
                out.push_back(edge_key(static_cast<node_t>(u), static_cast<node_t>(v)));
            }
        }
    });

    // Concatenate in thread order == ascending row order -> deterministic.
    std::size_t total = 0;
    for (const auto& chunk : local) total += chunk.size();
    std::vector<edge_key_t> keys;
    keys.reserve(total);
    for (const auto& chunk : local) keys.insert(keys.end(), chunk.begin(), chunk.end());
    return EdgeList::from_keys(n, std::move(keys));
}

EdgeList generate_gnp(node_t n, double p, std::uint64_t seed) {
    ThreadPool pool(1);
    return generate_gnp(n, p, seed, pool);
}

double gnp_probability_for_edges(node_t n, std::uint64_t target_m) {
    GESMC_CHECK(n >= 2, "need at least two nodes");
    const double pairs = 0.5 * static_cast<double>(n) * (static_cast<double>(n) - 1.0);
    return std::min(1.0, static_cast<double>(target_m) / pairs);
}

} // namespace gesmc
