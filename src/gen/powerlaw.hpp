/// \file powerlaw.hpp
/// \brief Power-law degree sequences Pld([a..b], gamma) — SynPld (§6).
///
/// P[X = k] proportional to k^-gamma on [a..b]; the paper's SynPld dataset
/// uses b = Delta = n^{1/(gamma-1)} (the analytic bound of Gao & Wormald).
/// Sampling is O(1) per degree via an alias table.  Sampled sequences are
/// repaired to be graphical: the total is made even by redrawing a single
/// entry and, in the rare case the Erdos–Gallai condition fails, maximum
/// degrees are decremented pairwise (documented deviation, negligible for
/// gamma > 2).
#pragma once

#include "graph/degree_sequence.hpp"
#include "rng/alias_table.hpp"

#include <cstdint>

namespace gesmc {

/// Integer power-law distribution Pld([a..b], gamma).
class PowerlawDistribution {
public:
    PowerlawDistribution(std::uint32_t a, std::uint32_t b, double gamma);

    template <typename Urbg>
    [[nodiscard]] std::uint32_t sample(Urbg& gen) const {
        return a_ + table_.sample(gen);
    }

    [[nodiscard]] std::uint32_t min() const noexcept { return a_; }
    [[nodiscard]] std::uint32_t max() const noexcept {
        return a_ + static_cast<std::uint32_t>(table_.size()) - 1;
    }

private:
    std::uint32_t a_;
    AliasTable table_;
};

/// The paper's choice Delta = n^{1/(gamma-1)} for SynPld.
std::uint32_t powerlaw_max_degree(std::uint64_t n, double gamma);

/// Samples a *graphical* power-law degree sequence of length n with
/// exponent gamma on [1 .. powerlaw_max_degree(n, gamma)].
DegreeSequence sample_powerlaw_degrees(std::uint64_t n, double gamma, std::uint64_t seed);

/// As above with explicit degree bounds [a..b].
DegreeSequence sample_powerlaw_degrees(std::uint64_t n, double gamma, std::uint32_t a,
                                       std::uint32_t b, std::uint64_t seed);

} // namespace gesmc
