#include "gen/powerlaw.hpp"

#include "rng/counter_rng.hpp"
#include "rng/mt19937_64.hpp"
#include "util/check.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gesmc {

namespace {

std::vector<double> powerlaw_weights(std::uint32_t a, std::uint32_t b, double gamma) {
    GESMC_CHECK(a >= 1 && a <= b, "invalid degree interval");
    std::vector<double> w(b - a + 1);
    for (std::uint32_t k = a; k <= b; ++k) {
        w[k - a] = std::pow(static_cast<double>(k), -gamma);
    }
    return w;
}

} // namespace

PowerlawDistribution::PowerlawDistribution(std::uint32_t a, std::uint32_t b, double gamma)
    : a_(a), table_(powerlaw_weights(a, b, gamma)) {}

std::uint32_t powerlaw_max_degree(std::uint64_t n, double gamma) {
    GESMC_CHECK(gamma > 1.0, "need gamma > 1");
    const double delta = std::pow(static_cast<double>(n), 1.0 / (gamma - 1.0));
    return static_cast<std::uint32_t>(
        std::max(1.0, std::min(delta, static_cast<double>(n - 1))));
}

DegreeSequence sample_powerlaw_degrees(std::uint64_t n, double gamma, std::uint64_t seed) {
    return sample_powerlaw_degrees(n, gamma, 1, powerlaw_max_degree(n, gamma), seed);
}

DegreeSequence sample_powerlaw_degrees(std::uint64_t n, double gamma, std::uint32_t a,
                                       std::uint32_t b, std::uint64_t seed) {
    GESMC_CHECK(n >= 2, "need at least two nodes");
    b = std::min<std::uint32_t>(b, static_cast<std::uint32_t>(n - 1));
    const PowerlawDistribution dist(a, b, gamma);
    Mt19937_64 gen(mix64(seed, 0x9011d5f7a2c4e863ULL));

    std::vector<std::uint32_t> deg(n);
    for (auto& d : deg) d = dist.sample(gen);

    // Make the sum even by redrawing one entry (unbiased entry choice).
    std::uint64_t sum = std::accumulate(deg.begin(), deg.end(), std::uint64_t{0});
    while (sum % 2 != 0) {
        const std::uint64_t idx = uniform_below(gen, n);
        sum -= deg[idx];
        deg[idx] = dist.sample(gen);
        sum += deg[idx];
    }

    DegreeSequence seq(std::move(deg));
    if (seq.is_graphical()) return seq;

    // Rare repair path (only for extreme gamma close to 1 or tiny n):
    // pull the two largest degrees down by one until graphical. Keeps the
    // sum even and strictly reduces the Erdos–Gallai violation.
    std::vector<std::uint32_t> d = seq.degrees();
    for (int attempt = 0; attempt < 1 << 20; ++attempt) {
        auto it1 = std::max_element(d.begin(), d.end());
        GESMC_CHECK(*it1 > 0, "degree-sequence repair failed");
        --*it1;
        auto it2 = std::max_element(d.begin(), d.end());
        GESMC_CHECK(*it2 > 0, "degree-sequence repair failed");
        --*it2;
        DegreeSequence candidate(d);
        if (candidate.is_graphical()) return candidate;
    }
    GESMC_CHECK(false, "degree-sequence repair did not converge");
    return seq;
}

} // namespace gesmc
