/// \file corpus.hpp
/// \brief NetRep-like synthetic corpus (substitute for the paper's §6 data).
///
/// The paper evaluates on graphs from the Network Repository.  That dataset
/// is not redistributable/downloadable in this offline build, so we
/// substitute a fixed, seeded corpus of synthetic graphs that spans the
/// same (size, density, degree-skew) region:
///   * power-law graphs of several exponents/sizes (social / web / bio /
///     collaboration-like) realized with Havel–Hakimi — high skew, high
///     target-dependency rate;
///   * 2D grid graphs (road-network-like) — near-regular, very sparse;
///   * d-regular graphs — the paper's Theorem 2 best case;
///   * G(n,p) at several densities (including dense) — near-regular.
/// The switching algorithms interact with a graph only through its size and
/// degree sequence (dependency rates are driven by d_u * d_v, Theorems 2/3),
/// so this corpus exercises the same regimes as the paper's NetRep sample.
/// See DESIGN.md §4 for the substitution rationale.
#pragma once

#include "graph/edge_list.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace gesmc {

/// 2D grid graph (rows x cols), the road-like corpus member.
EdgeList generate_grid(node_t rows, node_t cols);

/// d-regular graph on n nodes via Havel–Hakimi (n*d must be even).
EdgeList generate_regular(node_t n, std::uint32_t degree);

/// Power-law graph: Pld([1..n^{1/(gamma-1)}], gamma) degrees realized by
/// Havel–Hakimi — exactly the paper's SynPld construction.
EdgeList generate_powerlaw_graph(node_t n, double gamma, std::uint64_t seed);

struct CorpusEntry {
    std::string name;     ///< stable identifier, loosely mirroring NetRep names
    std::string category; ///< social / road / regular / gnp / web / bio / ...
    EdgeList graph;
};

/// Small corpus for unit/integration tests (fast to build, m <= ~20k).
std::vector<CorpusEntry> corpus_test();

/// Bench corpus mirroring the paper's NetRep sample: ~16 graphs with
/// 1e3 <= m <= ~3e5 spanning density and skew. Deterministic.
std::vector<CorpusEntry> corpus_bench();

} // namespace gesmc
