#include "gen/havel_hakimi.hpp"

#include "util/check.hpp"

#include <queue>
#include <utility>
#include <vector>

namespace gesmc {

EdgeList havel_hakimi(const DegreeSequence& seq) {
    GESMC_CHECK(seq.is_graphical(), "sequence is not graphical");
    const std::size_t n = seq.num_nodes();
    GESMC_CHECK(n <= static_cast<std::size_t>(kMaxNode) + 1, "too many nodes");

    using Entry = std::pair<std::uint32_t, node_t>; // (residual degree, node)
    std::priority_queue<Entry> queue;
    for (std::size_t v = 0; v < n; ++v) {
        if (seq.degrees()[v] > 0) queue.emplace(seq.degrees()[v], static_cast<node_t>(v));
    }

    std::vector<edge_key_t> keys;
    keys.reserve(seq.num_edges());
    std::vector<Entry> scratch;
    while (!queue.empty()) {
        const auto [d, v] = queue.top();
        queue.pop();
        // Connect v to the d nodes of highest residual degree. Each target
        // is popped once, so no duplicate edge {v, w} can be produced.
        scratch.clear();
        GESMC_CHECK(queue.size() >= d, "sequence not graphical (exhausted targets)");
        for (std::uint32_t i = 0; i < d; ++i) {
            auto [dw, w] = queue.top();
            queue.pop();
            keys.push_back(edge_key(v, w));
            if (dw > 1) scratch.emplace_back(dw - 1, w);
        }
        for (const auto& e : scratch) queue.push(e);
    }
    return EdgeList::from_keys(static_cast<node_t>(n), std::move(keys));
}

} // namespace gesmc
