/// \file configuration_model.hpp
/// \brief Configuration model realizations (related-work baseline, §1.1).
///
/// Pairs up degree stubs uniformly at random.  Three post-processings:
///   * kMulti:    keep the raw pairing (may contain loops/multi-edges) —
///                returned as pairs, not as an EdgeList (which is simple);
///   * kErased:   drop loops and collapse multi-edges (degrees only
///                approximately preserved);
///   * kRejection:retry until the pairing is simple (exact uniform over
///                simple realizations; only sensible for small max degree).
/// The erased variant provides an alternative initial graph for the chains;
/// the rejection variant backs the uniformity tests on tiny sequences.
#pragma once

#include "graph/degree_sequence.hpp"
#include "graph/edge_list.hpp"

#include <cstdint>
#include <vector>

namespace gesmc {

/// One uniform stub pairing; may contain loops and multi-edges.
std::vector<Edge> configuration_model_pairing(const DegreeSequence& seq, std::uint64_t seed);

/// Erased configuration model: simple graph, degrees approximately as given.
EdgeList configuration_model_erased(const DegreeSequence& seq, std::uint64_t seed);

/// Rejection-sampled simple configuration graph; throws after max_attempts.
EdgeList configuration_model_rejection(const DegreeSequence& seq, std::uint64_t seed,
                                       int max_attempts = 10000);

/// Configuration model with repair: pairs stubs uniformly, then places the
/// stubs left over from loops/multi-edges via degree-preserving edge splits
/// (remove {x,y}, add {u,x} and {v,y}) until the graph is simple and
/// realizes `seq` *exactly*.  The result is not exactly uniform — it is an
/// initial state for the switching chains, which is all the pipeline needs —
/// but unlike the erased variant it never loses degrees.  Throws if a stub
/// pair cannot be placed after max_tries random splits (pathological only
/// for near-complete sequences).
EdgeList configuration_model_repaired(const DegreeSequence& seq, std::uint64_t seed,
                                      int max_tries = 1000);

} // namespace gesmc
