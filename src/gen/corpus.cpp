#include "gen/corpus.hpp"

#include "gen/gnp.hpp"
#include "gen/havel_hakimi.hpp"
#include "gen/powerlaw.hpp"
#include "util/check.hpp"

#include <vector>

namespace gesmc {

EdgeList generate_grid(node_t rows, node_t cols) {
    GESMC_CHECK(rows >= 1 && cols >= 1, "degenerate grid");
    const std::uint64_t n = static_cast<std::uint64_t>(rows) * cols;
    GESMC_CHECK(n <= kMaxNode + 1, "grid too large");
    std::vector<edge_key_t> keys;
    keys.reserve(2 * n);
    auto id = [cols](node_t r, node_t c) { return static_cast<node_t>(r * cols + c); };
    for (node_t r = 0; r < rows; ++r) {
        for (node_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) keys.push_back(edge_key(id(r, c), id(r, c + 1)));
            if (r + 1 < rows) keys.push_back(edge_key(id(r, c), id(r + 1, c)));
        }
    }
    return EdgeList::from_keys(static_cast<node_t>(n), std::move(keys));
}

EdgeList generate_regular(node_t n, std::uint32_t degree) {
    GESMC_CHECK(static_cast<std::uint64_t>(n) * degree % 2 == 0, "n*d must be even");
    GESMC_CHECK(degree < n, "degree must be below n");
    return havel_hakimi(DegreeSequence{std::vector<std::uint32_t>(n, degree)});
}

EdgeList generate_powerlaw_graph(node_t n, double gamma, std::uint64_t seed) {
    return havel_hakimi(sample_powerlaw_degrees(n, gamma, seed));
}

namespace {

std::vector<CorpusEntry> build(bool bench_scale) {
    // Fixed seeds make every corpus build identical across runs/platforms.
    std::vector<CorpusEntry> out;
    auto add = [&out](std::string name, std::string category, EdgeList graph) {
        out.push_back(CorpusEntry{std::move(name), std::move(category), std::move(graph)});
    };

    if (!bench_scale) {
        add("tiny-pl22-300", "social", generate_powerlaw_graph(300, 2.2, 101));
        add("email-like-1k", "email", generate_powerlaw_graph(1000, 2.1, 102));
        add("road-grid-30x30", "road", generate_grid(30, 30));
        add("regular-6-1k", "regular", generate_regular(1000, 6));
        add("gnp-1k-d10", "gnp", generate_gnp(1000, gnp_probability_for_edges(1000, 5000), 103));
        add("collab-pl25-2k", "collab", generate_powerlaw_graph(2000, 2.5, 104));
        return out;
    }

    // Bench corpus: mirrors the paper's NetRep sample in spirit — a ladder
    // of sizes, mixed densities, mixed skew. Names hint at the NetRep
    // category each entry stands in for.
    add("email-like-2k", "email", generate_powerlaw_graph(2000, 2.1, 201));
    add("bio-pl25-5k", "bio", generate_powerlaw_graph(5000, 2.5, 202));
    add("tiny-amazon-like", "rec", generate_regular(8000, 5));
    add("road-grid-100x100", "road", generate_grid(100, 100));
    add("cit-like-pl23-20k", "cit", generate_powerlaw_graph(20000, 2.3, 203));
    add("web-like-pl21-30k", "web", generate_powerlaw_graph(30000, 2.1, 204));
    add("gnp-2k-dense", "gnp", generate_gnp(2000, gnp_probability_for_edges(2000, 100000), 205));
    add("road-grid-300x300", "road", generate_grid(300, 300));
    add("regular-8-25k", "regular", generate_regular(25000, 8));
    add("collab-like-pl20-50k", "collab", generate_powerlaw_graph(50000, 2.0, 206));
    add("socfb-like-pl22-60k", "social", generate_powerlaw_graph(60000, 2.2, 207));
    add("gnp-50k-d8", "gnp", generate_gnp(50000, gnp_probability_for_edges(50000, 200000), 208));
    add("tech-like-pl24-80k", "tech", generate_powerlaw_graph(80000, 2.4, 209));
    add("twitter-like-pl20-100k", "social", generate_powerlaw_graph(100000, 2.0, 210));
    add("bn-like-pl26-100k", "bio", generate_powerlaw_graph(100000, 2.6, 211));
    add("road-grid-500x500", "road", generate_grid(500, 500));
    return out;
}

} // namespace

std::vector<CorpusEntry> corpus_test() { return build(false); }
std::vector<CorpusEntry> corpus_bench() { return build(true); }

} // namespace gesmc
