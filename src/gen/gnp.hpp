/// \file gnp.hpp
/// \brief G(n,p) Gilbert graphs — the SynGnp dataset (paper §6).
///
/// Sparse generation by geometric gap skipping: within each row u the gaps
/// between present neighbors v > u are Geom(p), so the expected work is
/// O(n + m) rather than O(n^2).  Rows are processed in parallel with one
/// counter-based stream per row, making the output deterministic in
/// (n, p, seed) and independent of the thread count.
#pragma once

#include "graph/edge_list.hpp"
#include "parallel/thread_pool.hpp"

#include <cstdint>

namespace gesmc {

/// Samples G(n, p). p in [0, 1].
EdgeList generate_gnp(node_t n, double p, std::uint64_t seed, ThreadPool& pool);

/// Single-threaded convenience overload.
EdgeList generate_gnp(node_t n, double p, std::uint64_t seed);

/// p such that the expected number of edges is target_m.
double gnp_probability_for_edges(node_t n, std::uint64_t target_m);

} // namespace gesmc
