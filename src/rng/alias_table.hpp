/// \file alias_table.hpp
/// \brief Walker/Vose alias method: O(1) draws from a discrete distribution.
///
/// Used by the power-law degree sampler (SynPld dataset, §6): the degree
/// distribution Pld([a..b], gamma) is tabulated once and then sampled in
/// constant time per degree.
#pragma once

#include "rng/bounded.hpp"
#include "util/check.hpp"

#include <cstdint>
#include <vector>

namespace gesmc {

class AliasTable {
public:
    /// Builds from non-negative weights (need not be normalized; at least
    /// one weight must be positive).
    explicit AliasTable(const std::vector<double>& weights) {
        const std::size_t n = weights.size();
        GESMC_CHECK(n > 0, "empty weight vector");
        double total = 0;
        for (const double w : weights) {
            GESMC_CHECK(w >= 0, "negative weight");
            total += w;
        }
        GESMC_CHECK(total > 0, "all weights zero");

        prob_.resize(n);
        alias_.resize(n);
        // Vose's algorithm: split scaled probabilities into under/over-full
        // and pair them so every cell holds at most two outcomes.
        std::vector<double> scaled(n);
        for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * static_cast<double>(n) / total;
        std::vector<std::uint32_t> small, large;
        for (std::size_t i = 0; i < n; ++i) {
            (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
        }
        while (!small.empty() && !large.empty()) {
            const std::uint32_t s = small.back();
            const std::uint32_t l = large.back();
            small.pop_back();
            prob_[s] = scaled[s];
            alias_[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if (scaled[l] < 1.0) {
                large.pop_back();
                small.push_back(l);
            }
        }
        for (const std::uint32_t i : large) prob_[i] = 1.0;
        for (const std::uint32_t i : small) prob_[i] = 1.0; // numerical leftovers
    }

    /// Draws an index with probability proportional to its weight.
    template <typename Urbg>
    [[nodiscard]] std::uint32_t sample(Urbg& gen) const {
        const std::uint64_t cell = uniform_below(gen, prob_.size());
        return uniform_real(gen) < prob_[cell] ? static_cast<std::uint32_t>(cell)
                                               : alias_[cell];
    }

    [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

} // namespace gesmc
