#include "rng/shuffle.hpp"

#include "rng/counter_rng.hpp"
#include "rng/mt19937_64.hpp"
#include "util/bits.hpp"

#include <algorithm>

namespace gesmc {

namespace {

constexpr std::uint64_t kBucketSalt = 0xb5c4e1a3f2d60789ULL;
constexpr std::uint64_t kSmallSalt = 0x9d3f6c2ab54e8701ULL;

// Below this size a single sequential Fisher-Yates is faster than the
// bucket machinery. The cutoff only depends on n, so determinism across
// pool sizes is preserved.
constexpr std::uint64_t kSequentialCutoff = 2048;
constexpr unsigned kBucketBits = 8; // 256 buckets, power of two: unbiased via top bits

/// In-place Fisher-Yates over a subrange.
template <typename Urbg>
void shuffle_range(std::uint32_t* first, std::uint64_t count, Urbg& gen) {
    for (std::uint64_t i = count; i > 1; --i) {
        const std::uint64_t j = uniform_below(gen, i);
        std::swap(first[i - 1], first[j]);
    }
}

} // namespace

void sample_permutation(std::vector<std::uint32_t>& out, std::uint64_t n, std::uint64_t seed,
                        ThreadPool& pool) {
    out.resize(n);
    if (n == 0) return;

    if (n < kSequentialCutoff) {
        for (std::uint64_t i = 0; i < n; ++i) out[i] = static_cast<std::uint32_t>(i);
        Mt19937_64 gen(mix64(seed, kSmallSalt));
        shuffle_range(out.data(), n, gen);
        return;
    }

    constexpr std::uint64_t num_buckets = 1ULL << kBucketBits;
    const unsigned p = pool.num_threads();

    // The bucket of item i is the top kBucketBits bits of mix64 — exactly
    // uniform because the bucket count is a power of two.
    auto bucket_of = [seed](std::uint64_t i) {
        return mix64(mix64(seed, kBucketSalt), i) >> (64 - kBucketBits);
    };

    // Pass 1: per-(thread, bucket) counts over contiguous ascending chunks.
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p) * num_buckets, 0);
    pool.for_chunks(0, n, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t* local = counts.data() + static_cast<std::size_t>(tid) * num_buckets;
        for (std::uint64_t i = lo; i < hi; ++i) ++local[bucket_of(i)];
    });

    // Exclusive prefix sums in (bucket-major, thread-minor) order give each
    // (thread, bucket) cell its scatter offset; because chunks ascend with
    // the thread id, items land within each bucket in ascending item order —
    // a canonical pre-shuffle layout independent of the thread count.
    std::vector<std::uint64_t> offsets(counts.size());
    std::uint64_t running = 0;
    for (std::uint64_t b = 0; b < num_buckets; ++b) {
        for (unsigned t = 0; t < p; ++t) {
            offsets[static_cast<std::size_t>(t) * num_buckets + b] = running;
            running += counts[static_cast<std::size_t>(t) * num_buckets + b];
        }
    }
    std::vector<std::uint64_t> bucket_begin(num_buckets + 1);
    bucket_begin[0] = 0;
    {
        std::uint64_t acc = 0;
        for (std::uint64_t b = 0; b < num_buckets; ++b) {
            for (unsigned t = 0; t < p; ++t)
                acc += counts[static_cast<std::size_t>(t) * num_buckets + b];
            bucket_begin[b + 1] = acc;
        }
    }

    // Pass 2: scatter.
    pool.for_chunks(0, n, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t* local = offsets.data() + static_cast<std::size_t>(tid) * num_buckets;
        for (std::uint64_t i = lo; i < hi; ++i) {
            out[local[bucket_of(i)]++] = static_cast<std::uint32_t>(i);
        }
    });

    // Pass 3: shuffle every bucket with its own deterministic generator.
    pool.for_chunks_dynamic(0, num_buckets, 8, [&](unsigned, std::uint64_t blo, std::uint64_t bhi) {
        for (std::uint64_t b = blo; b < bhi; ++b) {
            const std::uint64_t begin = bucket_begin[b];
            const std::uint64_t count = bucket_begin[b + 1] - begin;
            if (count < 2) continue;
            Mt19937_64 gen(mix64(seed, kBucketSalt, b));
            shuffle_range(out.data() + begin, count, gen);
        }
    });
}

void sample_permutation(std::vector<std::uint32_t>& out, std::uint64_t n, std::uint64_t seed) {
    ThreadPool pool(1);
    sample_permutation(out, n, seed, pool);
}

} // namespace gesmc
