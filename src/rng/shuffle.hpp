/// \file shuffle.hpp
/// \brief Uniform random permutations, sequential and parallel (paper §5.3).
///
/// G-ES-MC consumes one uniform random permutation of the edge indices [m]
/// per global switch.  The parallel sampler follows the bucket scheme of
/// Sanders (IPL 1998): every item is assigned to one of B buckets
/// independently and uniformly, each bucket is Fisher–Yates-shuffled, and
/// the buckets are concatenated in fixed order.  Conditioning on the bucket
/// sizes, every output order is equally likely, so the result is an exactly
/// uniform permutation.
///
/// Determinism: the bucket of item i is derived from mix64(seed, i) and each
/// bucket shuffle is seeded with mix64(seed, bucket) — the output is a pure
/// function of (seed, n) and therefore *independent of the thread count*.
/// SeqGlobalES and ParGlobalES share this function, which is what makes
/// their outputs comparable bit-for-bit in the exactness tests.
#pragma once

#include "parallel/thread_pool.hpp"
#include "rng/bounded.hpp"

#include <cstdint>
#include <vector>

namespace gesmc {

/// In-place Fisher–Yates shuffle; uniform given a uniform generator.
template <typename T, typename Urbg>
void fisher_yates(std::vector<T>& items, Urbg& gen) {
    for (std::uint64_t i = items.size(); i > 1; --i) {
        const std::uint64_t j = uniform_below(gen, i);
        std::swap(items[i - 1], items[j]);
    }
}

/// Writes a uniform random permutation of [0, n) into `out` (resized).
/// Deterministic given `seed`; identical for every pool size.
/// The number of buckets is fixed (independent of the pool) so that the
/// result only depends on (seed, n).
void sample_permutation(std::vector<std::uint32_t>& out, std::uint64_t n, std::uint64_t seed,
                        ThreadPool& pool);

/// Convenience overload running on a single thread.
void sample_permutation(std::vector<std::uint32_t>& out, std::uint64_t n, std::uint64_t seed);

} // namespace gesmc
