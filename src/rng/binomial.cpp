#include "rng/binomial.hpp"

#include "util/check.hpp"

#include <cmath>

namespace gesmc::detail {

namespace {

/// log(n choose k) via lgamma.
double log_choose(double n, double k) {
    return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}

} // namespace

/// Counts successes by jumping between success positions with geometric
/// gaps: if each trial succeeds with probability p, the gap to the next
/// success is Geom(p). Exact; expected O(np) iterations.
std::uint64_t binomial_small_np(double (*next_unit)(void*), void* gen, std::uint64_t n, double p) {
    if (p <= 0 || n == 0) return 0;
    const double log_q = std::log1p(-p);
    std::uint64_t count = 0;
    double pos = 0;
    for (;;) {
        const double gap = std::floor(std::log(next_unit(gen)) / log_q);
        pos += gap + 1;
        if (pos > static_cast<double>(n)) return count;
        ++count;
    }
}

/// Inversion by CDF search that starts at the mode and sweeps outward,
/// alternating right/left. Probabilities follow the exact recurrence
///   pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/q.
/// A single uniform U is consumed; expected work O(sqrt(npq)).
std::uint64_t binomial_inversion_mode(double (*next_unit)(void*), void* gen, std::uint64_t n,
                                      double p) {
    const double q = 1 - p;
    const double nd = static_cast<double>(n);
    const auto mode = static_cast<std::uint64_t>(std::min(nd, std::floor((nd + 1) * p)));
    const double log_pmf_mode = log_choose(nd, static_cast<double>(mode)) +
                                static_cast<double>(mode) * std::log(p) +
                                (nd - static_cast<double>(mode)) * std::log(q);
    const double pmf_mode = std::exp(log_pmf_mode);

    double u = next_unit(gen);

    // Sweep outward from the mode; subtract each visited pmf from u.
    const double ratio = p / q;
    double pmf_right = pmf_mode; // pmf at `right`
    double pmf_left = pmf_mode;  // pmf at `left`
    std::uint64_t right = mode;
    std::uint64_t left = mode;

    u -= pmf_mode;
    if (u <= 0) return mode;
    for (;;) {
        bool advanced = false;
        if (right < n) {
            pmf_right *= (nd - static_cast<double>(right)) / (static_cast<double>(right) + 1) *
                         ratio;
            ++right;
            u -= pmf_right;
            if (u <= 0) return right;
            advanced = true;
        }
        if (left > 0) {
            pmf_left *= static_cast<double>(left) / ((nd - static_cast<double>(left) + 1) * ratio);
            --left;
            u -= pmf_left;
            if (u <= 0) return left;
            advanced = true;
        }
        // Floating-point tail: all mass visited but u > 0 due to rounding.
        if (!advanced || (pmf_right < 1e-300 && pmf_left < 1e-300)) return mode;
    }
}

std::uint64_t sample_binomial_impl(double (*next_unit)(void*), void* gen, std::uint64_t n,
                                   double p) {
    GESMC_CHECK(p >= 0 && p <= 1, "binomial probability out of range");
    if (n == 0 || p <= 0) return 0;
    if (p >= 1) return n;
    if (p > 0.5) return n - sample_binomial_impl(next_unit, gen, n, 1 - p);

    const double np = static_cast<double>(n) * p;
    if (np < 16.0) return binomial_small_np(next_unit, gen, n, p);
    return binomial_inversion_mode(next_unit, gen, n, p);
}

} // namespace gesmc::detail
