#include "rng/mt19937_64.hpp"

namespace gesmc {

void Mt19937_64::seed(std::uint64_t value) noexcept {
    state_[0] = value;
    for (unsigned i = 1; i < kN; ++i) {
        state_[i] = 6364136223846793005ULL * (state_[i - 1] ^ (state_[i - 1] >> 62)) + i;
    }
    index_ = kN;
}

void Mt19937_64::regenerate() noexcept {
    static constexpr std::uint64_t mag01[2] = {0ULL, kMatrixA};
    for (unsigned i = 0; i < kN - kM; ++i) {
        const std::uint64_t x = (state_[i] & kUpperMask) | (state_[i + 1] & kLowerMask);
        state_[i] = state_[i + kM] ^ (x >> 1) ^ mag01[x & 1ULL];
    }
    for (unsigned i = kN - kM; i < kN - 1; ++i) {
        const std::uint64_t x = (state_[i] & kUpperMask) | (state_[i + 1] & kLowerMask);
        state_[i] = state_[i + kM - kN] ^ (x >> 1) ^ mag01[x & 1ULL];
    }
    const std::uint64_t x = (state_[kN - 1] & kUpperMask) | (state_[0] & kLowerMask);
    state_[kN - 1] = state_[kM - 1] ^ (x >> 1) ^ mag01[x & 1ULL];
    index_ = 0;
}

std::uint64_t Mt19937_64::operator()() noexcept {
    if (index_ >= kN) regenerate();
    std::uint64_t x = state_[index_++];
    x ^= (x >> 29) & 0x5555555555555555ULL;
    x ^= (x << 17) & 0x71D67FFFEDA60000ULL;
    x ^= (x << 37) & 0xFFF7EEE000000000ULL;
    x ^= x >> 43;
    return x;
}

} // namespace gesmc
