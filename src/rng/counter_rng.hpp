/// \file counter_rng.hpp
/// \brief Counter-based random streams keyed by (seed, index).
///
/// All randomness consumed by the parallel algorithms is drawn from
/// counter-based streams: the k-th edge switch, the k-th global switch, or
/// the k-th item of a permutation each own an independent stream derived
/// from (seed, k) via SplitMix64.  This makes every algorithm fully
/// deterministic given its seed and — crucially — independent of the number
/// of threads, which is what allows the exactness tests
/// (ParES(seed) == SeqES(seed), ParGlobalES(seed) == SeqGlobalES(seed))
/// to compare byte-identical graphs.
#pragma once

#include "util/bits.hpp"

#include <cstdint>

namespace gesmc {

/// SplitMix64 generator: tiny state, passes BigCrush, ideal for keyed
/// sub-streams. Satisfies UniformRandomBitGenerator.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t operator()() noexcept {
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

private:
    std::uint64_t state_;
};

/// Returns an independent SplitMix64 stream for sub-key `key` of `seed`.
inline SplitMix64 stream_for(std::uint64_t seed, std::uint64_t key) noexcept {
    return SplitMix64{mix64(seed, key)};
}

inline SplitMix64 stream_for(std::uint64_t seed, std::uint64_t key1, std::uint64_t key2) noexcept {
    return SplitMix64{mix64(seed, key1, key2)};
}

} // namespace gesmc
