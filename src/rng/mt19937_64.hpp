/// \file mt19937_64.hpp
/// \brief From-scratch MT19937-64 Mersenne Twister (Matsumoto & Nishimura).
///
/// The paper (§5.3) generates pseudo-random bits with the MT19937-64 variant
/// of the Mersenne Twister.  This implementation is bit-identical to
/// std::mt19937_64 (verified by tests) and satisfies the C++
/// UniformRandomBitGenerator concept, so it can be used with the bounded
/// samplers in lemire.hpp.
#pragma once

#include <array>
#include <cstdint>

namespace gesmc {

class Mt19937_64 {
public:
    using result_type = std::uint64_t;

    static constexpr std::uint64_t default_seed = 5489ULL;

    explicit Mt19937_64(std::uint64_t seed = default_seed) noexcept { this->seed(seed); }

    /// Re-seeds with the standard MT19937-64 initialization recurrence.
    void seed(std::uint64_t value) noexcept;

    /// Returns the next 64 uniformly distributed bits.
    std::uint64_t operator()() noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

private:
    static constexpr unsigned kN = 312;
    static constexpr unsigned kM = 156;
    static constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
    static constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
    static constexpr std::uint64_t kLowerMask = 0x7FFFFFFFULL;

    void regenerate() noexcept;

    std::array<std::uint64_t, kN> state_;
    unsigned index_ = kN;
};

} // namespace gesmc
