/// \file bounded.hpp
/// \brief Unbiased bounded random integers and related draws (paper §5.3).
///
/// Implements Lemire's multiply-shift rejection method ("Fast random integer
/// generation in an interval", TOMACS 2019): a single 64x64->128-bit multiply
/// plus a cheap, rarely-taken rejection loop yields an exactly uniform value
/// in [0, bound).
#pragma once

#include <cassert>
#include <cstdint>

namespace gesmc {

/// Uniform integer in [0, bound). bound must be > 0. Unbiased.
template <typename Urbg>
std::uint64_t uniform_below(Urbg& gen, std::uint64_t bound) {
    assert(bound > 0);
    std::uint64_t x = gen();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound; // 2^64 mod bound
        while (lo < threshold) {
            x = gen();
            m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in [lo, hi] (inclusive).
template <typename Urbg>
std::uint64_t uniform_between(Urbg& gen, std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + uniform_below(gen, hi - lo + 1);
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <typename Urbg>
double uniform_real(Urbg& gen) {
    return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1] — safe as an argument to log().
template <typename Urbg>
double uniform_real_nonzero(Urbg& gen) {
    return static_cast<double>((gen() >> 11) + 1) * 0x1.0p-53;
}

/// Fair coin.
template <typename Urbg>
bool uniform_bit(Urbg& gen) {
    return (gen() >> 63) != 0;
}

/// Draws an ordered pair (i, j) with i != j uniformly from [0, n)^2,
/// using exactly two bounded draws (the j-draw skips i).
template <typename Urbg>
void uniform_distinct_pair(Urbg& gen, std::uint64_t n, std::uint64_t& i, std::uint64_t& j) {
    assert(n >= 2);
    i = uniform_below(gen, n);
    j = uniform_below(gen, n - 1);
    if (j >= i) ++j;
}

} // namespace gesmc
