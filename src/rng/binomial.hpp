/// \file binomial.hpp
/// \brief Exact binomial sampling for the global-switch length l (paper §3).
///
/// G-ES-MC draws l ~ Binom(floor(m/2), 1 - P_L) per global switch.  Two
/// exact strategies are combined:
///   * geometric skipping over success positions when min(np, nq) is small
///     (the common case: P_L is tiny, so the number of *rejected* switches
///     is small) — expected O(min(np, nq) + 1) time;
///   * inversion started at the mode with an outward alternating sweep for
///     the general case — expected O(sqrt(n p q)) time, numerically stable
///     via the PMF ratio recurrence.
/// Both consume a UniformRandomBitGenerator and are exact up to floating-
/// point rounding of the PMF (no normal approximation).
#pragma once

#include "rng/bounded.hpp"

#include <cstdint>

namespace gesmc {

namespace detail {
std::uint64_t binomial_small_np(double (*next_unit)(void*), void* gen, std::uint64_t n, double p);
std::uint64_t binomial_inversion_mode(double (*next_unit)(void*), void* gen, std::uint64_t n,
                                      double p);
std::uint64_t sample_binomial_impl(double (*next_unit)(void*), void* gen, std::uint64_t n,
                                   double p);
} // namespace detail

/// Draws X ~ Binom(n, p). Requires 0 <= p <= 1.
template <typename Urbg>
std::uint64_t sample_binomial(Urbg& gen, std::uint64_t n, double p) {
    auto next_unit = +[](void* g) { return uniform_real_nonzero(*static_cast<Urbg*>(g)); };
    return detail::sample_binomial_impl(next_unit, &gen, n, p);
}

} // namespace gesmc
