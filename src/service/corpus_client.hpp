/// \file corpus_client.hpp
/// \brief Client-side corpus merging for `gesmc_submit --corpus`.
///
/// A corpus submitted to the sampling service travels as per-graph jobs:
/// the client expands the corpus config locally (pipeline/corpus.hpp),
/// renders each shard back to config text (pipeline_config_to_string) and
/// submits it like any single job — the daemon never learns about corpora
/// and schedules the shards with the same round-robin fairness as all
/// other traffic.  What the daemon *does* produce per shard is the
/// standard JSON run report in the shard's output directory; this helper
/// parses those documents (with the service's strict JSON reader) back
/// into corpus summary rows so the client can reassemble the same merged
/// summary a local run_corpus writes.
#pragma once

#include "pipeline/corpus.hpp"

#include <string>

namespace gesmc {

/// Rebuilds corpus member `input`'s summary row from the JSON text of its
/// shard run report (the document write_json_report emits).  Field-for-
/// field equivalent to corpus_row_from_report on the in-memory RunReport —
/// asserted by tests/test_service.cpp.  Throws Error on malformed or
/// incomplete JSON.
[[nodiscard]] CorpusGraphRow corpus_row_from_report_json(const CorpusInput& input,
                                                         const std::string& json_text);

} // namespace gesmc
