#include "service/job_manager.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

#include <algorithm>
#include <utility>

namespace gesmc {

// SharedExecutor moved to pipeline/shared_executor.cpp — the corpus layer
// schedules over the same round-robin budget machinery as the daemon.

// --------------------------------------------------------------- statuses

std::string to_string(JobStatus status) {
    switch (status) {
    case JobStatus::kQueued:
        return "queued";
    case JobStatus::kRunning:
        return "running";
    case JobStatus::kSucceeded:
        return "succeeded";
    case JobStatus::kFailed:
        return "failed";
    case JobStatus::kCancelled:
        return "cancelled";
    case JobStatus::kInterrupted:
        return "interrupted";
    }
    return "unknown";
}

// ------------------------------------------------------------- JobManager

namespace {

/// Forwards a job's pipeline events to its (possibly null) observer while
/// counting completed replicates and attempted switches for status frames
/// and the job's throughput row in the metrics frame.
class CountingObserver final : public RunObserver {
public:
    CountingObserver(RunObserver* inner, std::atomic<std::uint64_t>& done,
                     std::atomic<std::uint64_t>& attempted,
                     std::atomic<std::uint64_t>& realized)
        : inner_(inner), done_(&done), attempted_(&attempted), realized_(&realized) {}

    void on_superstep(std::uint64_t replicate, const Chain& chain) override {
        if (inner_ != nullptr) inner_->on_superstep(replicate, chain);
    }
    void on_checkpoint(std::uint64_t replicate, const ChainState& state,
                       const std::string& path) override {
        if (inner_ != nullptr) inner_->on_checkpoint(replicate, state, path);
    }
    void on_replicate_done(const ReplicateReport& report) override {
        done_->fetch_add(1, std::memory_order_relaxed);
        attempted_->fetch_add(report.stats.attempted, std::memory_order_relaxed);
        realized_->fetch_add(report.stats.supersteps, std::memory_order_relaxed);
        if (inner_ != nullptr) inner_->on_replicate_done(report);
    }

private:
    RunObserver* inner_;
    std::atomic<std::uint64_t>* done_;
    std::atomic<std::uint64_t>* attempted_;
    std::atomic<std::uint64_t>* realized_;
};

/// service.jobs.* lifecycle counters (the snapshot-style per-status totals
/// live in ServiceStats, computed exactly under the manager lock).
struct JobCounters {
    obs::Counter& submitted =
        obs::MetricsRegistry::instance().counter("service.jobs.submitted");
    obs::Counter& finished =
        obs::MetricsRegistry::instance().counter("service.jobs.finished");
};

JobCounters& job_counters() {
    static JobCounters& c = *new JobCounters();
    return c;
}

} // namespace

JobManager::JobManager(unsigned threads, unsigned max_concurrent)
    : executor_(threads) {
    const unsigned runners = std::max(1u, max_concurrent);
    runners_.reserve(runners);
    for (unsigned i = 0; i < runners; ++i) {
        runners_.emplace_back([this] { runner_loop(); });
    }
}

JobManager::~JobManager() {
    drain();
    {
        CheckedLockGuard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& r : runners_) r.join();
}

unsigned JobManager::threads() const noexcept { return executor_.threads(); }

std::uint64_t JobManager::submit(const PipelineConfig& config, RunObserver* observer) {
    return submit(config, [observer](std::uint64_t) { return observer; });
}

std::uint64_t
JobManager::submit(const PipelineConfig& config,
                   const std::function<RunObserver*(std::uint64_t)>& make_observer) {
    validate(config); // reject before queueing: submit errors belong to the caller
    auto job = std::make_shared<Job>();
    job->config = config;
    {
        CheckedLockGuard lock(mutex_);
        GESMC_CHECK(!draining_, "daemon is draining; not accepting jobs");
        job->id = next_job_id_++;
        jobs_.emplace(job->id, job);
        prune_terminal_locked();
    }
    job_counters().submitted.add(1);

    // The factory runs *outside* the manager lock: the server's factory does
    // blocking socket I/O (the "accepted" frame), and its failure path calls
    // cancel(), which re-locks this mutex — under the lock that is a
    // self-deadlock and a slow client would stall every other request.  The
    // job is already registered, so such a cancel lands; it is not yet
    // queued, so no runner can start it — the factory's first frame still
    // precedes every pipeline event.
    RunObserver* observer = nullptr;
    if (make_observer != nullptr) {
        try {
            observer = make_observer(job->id);
        } catch (...) {
            {
                CheckedLockGuard lock(mutex_);
                if (!is_terminal(job->status)) {
                    job->status = JobStatus::kFailed;
                    job->error = "observer construction failed";
                }
            }
            cv_.notify_all();
            throw;
        }
    }

    {
        CheckedLockGuard lock(mutex_);
        job->observer = observer;
        // Cancelled (or drained) while the factory ran: already terminal —
        // queueing it would only make a runner skip it.
        if (job->status == JobStatus::kQueued) queue_.push_back(job);
    }
    cv_.notify_all();
    return job->id;
}

void JobManager::prune_terminal_locked() {
    std::size_t terminal = 0;
    for (const auto& [id, job] : jobs_) {
        if (is_terminal(job->status)) ++terminal;
    }
    for (auto it = jobs_.begin(); terminal > kTerminalJobRetention && it != jobs_.end();) {
        if (is_terminal(it->second->status)) {
            it = jobs_.erase(it); // oldest first: map iterates ids ascending
            --terminal;
        } else {
            ++it;
        }
    }
}

JobInfo JobManager::info_locked(const Job& job) const {
    JobInfo info;
    info.id = job.id;
    info.status = job.status;
    info.algorithm = job.config.algorithm;
    info.edge_set_backend = to_string(job.config.edge_set_backend);
    info.replicates = job.config.replicates;
    info.replicates_done = job.replicates_done.load(std::memory_order_relaxed);
    info.output_dir = job.config.output_dir;
    info.error = job.error;
    info.attempted_switches = job.attempted_switches.load(std::memory_order_relaxed);
    info.adaptive = job.config.adaptive;
    info.realized_supersteps = job.realized_supersteps.load(std::memory_order_relaxed);
    if (job.has_started) {
        const auto end = job.has_finished ? job.finished
                                          : std::chrono::steady_clock::now();
        info.seconds = std::chrono::duration<double>(end - job.started).count();
        if (info.seconds > 0) {
            info.switches_per_second =
                static_cast<double>(info.attempted_switches) / info.seconds;
        }
    }
    return info;
}

std::optional<JobInfo> JobManager::job(std::uint64_t id) const {
    CheckedLockGuard lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    return info_locked(*it->second);
}

std::vector<JobInfo> JobManager::jobs() const {
    CheckedLockGuard lock(mutex_);
    std::vector<JobInfo> out;
    out.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) out.push_back(info_locked(*job));
    return out;
}

ServiceStats JobManager::stats() const {
    ServiceStats s;
    s.executor = executor_.stats();
    CheckedLockGuard lock(mutex_);
    s.jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) {
        s.jobs.push_back(info_locked(*job));
        switch (job->status) {
        case JobStatus::kQueued:
            ++s.jobs_queued;
            break;
        case JobStatus::kRunning:
            ++s.jobs_running;
            break;
        case JobStatus::kSucceeded:
            ++s.jobs_succeeded;
            break;
        case JobStatus::kFailed:
            ++s.jobs_failed;
            break;
        case JobStatus::kCancelled:
            ++s.jobs_cancelled;
            break;
        case JobStatus::kInterrupted:
            ++s.jobs_interrupted;
            break;
        }
    }
    return s;
}

bool JobManager::cancel(std::uint64_t id) {
    CheckedLockGuard lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    if (is_terminal(job.status)) return false;
    job.cancel_requested = true;
    job.interrupt.store(true, std::memory_order_relaxed);
    if (job.status == JobStatus::kQueued) {
        // Never started: finalize here; the runner skips it when popped.
        job.status = JobStatus::kCancelled;
        job.error = "cancelled before start";
        cv_.notify_all();
    }
    return true;
}

JobInfo JobManager::wait(std::uint64_t id) {
    CheckedUniqueLock lock(mutex_);
    const auto it = jobs_.find(id);
    GESMC_CHECK(it != jobs_.end(), "unknown job id " + std::to_string(id));
    // Own shared_ptr: the job stays valid across the wait even if pruning
    // evicts it from the map meanwhile.
    const std::shared_ptr<Job> job = it->second;
    cv_.wait(lock, [&job] { return is_terminal(job->status); });
    return info_locked(*job);
}

void JobManager::finish_job(Job& job, JobStatus status, std::string error) {
    {
        CheckedLockGuard lock(mutex_);
        job.status = status;
        job.error = std::move(error);
        job.finished = std::chrono::steady_clock::now();
        job.has_finished = true;
    }
    job_counters().finished.add(1);
    cv_.notify_all();
}

void JobManager::drain() {
    CheckedUniqueLock lock(mutex_);
    draining_ = true;
    for (const auto& [id, job] : jobs_) {
        if (job->status == JobStatus::kQueued) {
            job->status = JobStatus::kCancelled;
            job->error = "daemon shutting down before the job started";
        } else if (job->status == JobStatus::kRunning &&
                   job->config.checkpoint_every > 0) {
            // Checkpointed jobs stop at their next boundary and resume
            // after a daemon restart; uncheckpointed ones run to completion
            // (there is no consistent state to stop them at).
            job->interrupt.store(true, std::memory_order_relaxed);
        }
    }
    cv_.notify_all();
    cv_.wait(lock, [this] {
        mutex_.assert_held();
        return std::all_of(jobs_.begin(), jobs_.end(), [](const auto& entry) {
            return is_terminal(entry.second->status);
        });
    });
}

void JobManager::runner_loop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            CheckedUniqueLock lock(mutex_);
            cv_.wait(lock, [this] {
                mutex_.assert_held();
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) return; // stopping_, nothing left to run
            job = queue_.front();
            queue_.pop_front();
            if (job->status != JobStatus::kQueued) continue; // cancelled in queue
            job->status = JobStatus::kRunning;
            job->started = std::chrono::steady_clock::now();
            job->has_started = true;
        }

        CountingObserver observer(job->observer, job->replicates_done,
                                  job->attempted_switches,
                                  job->realized_supersteps);
        PipelineExec exec;
        exec.executor = &executor_;
        exec.interrupt = &job->interrupt;
        try {
            const RunReport report = run_pipeline(job->config, nullptr, &observer, exec);
            // A replicate error is either the interrupt marker (the chain
            // stopped at a cancel/drain boundary — resumable) or a genuine
            // failure.  Only genuine failures may fail the job; only marker
            // errors may classify it interrupted/cancelled — an interrupt
            // flag alone must not mask real failures behind a resume hint.
            std::uint64_t failed = 0;
            std::uint64_t stopped = 0;
            std::string first_error;
            for (const ReplicateReport& r : report.replicates) {
                if (r.error.empty()) continue;
                if (is_interrupt_error(r.error)) {
                    ++stopped;
                    continue;
                }
                ++failed;
                if (first_error.empty()) first_error = r.error;
            }
            // cancel_requested is written under mutex_ (cancel()); read it
            // the same way — the run is over, so the value is final.
            bool cancel_requested = false;
            {
                CheckedLockGuard lock(mutex_);
                cancel_requested = job->cancel_requested;
            }
            if (failed > 0) {
                std::string error = std::to_string(failed) + " of " +
                                    std::to_string(report.replicates.size()) +
                                    " replicate(s) failed; first: " +
                                    first_error.substr(0, 512);
                if (stopped > 0) {
                    error += " (" + std::to_string(stopped) +
                             " stopped at an interrupt boundary)";
                }
                finish_job(*job, JobStatus::kFailed, std::move(error));
            } else if (stopped == 0) {
                finish_job(*job, JobStatus::kSucceeded, "");
            } else if (cancel_requested) {
                finish_job(*job, JobStatus::kCancelled,
                           "cancelled; " + std::to_string(stopped) + " of " +
                               std::to_string(report.replicates.size()) +
                               " replicate(s) stopped");
            } else {
                finish_job(*job, JobStatus::kInterrupted,
                           "drained; resubmit with resume-from = \"" +
                               job->config.output_dir + "\" to continue");
            }
        } catch (const std::exception& e) {
            finish_job(*job, JobStatus::kFailed, e.what());
        }
    }
}

} // namespace gesmc
