#include "service/server.hpp"

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "pipeline/config.hpp"
#include "util/check.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace gesmc {

namespace {

std::string json_event_frame(const std::string& body) {
    return encode_frame(FrameType::kJson, body);
}

std::string json_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void append_job_info_json(std::string& out, const JobInfo& info) {
    out += "{\"job\": " + std::to_string(info.id);
    out += ", \"status\": " + json_quote(to_string(info.status));
    out += ", \"algorithm\": " + json_quote(info.algorithm);
    out += ", \"replicates\": " + std::to_string(info.replicates);
    out += ", \"replicates_done\": " + std::to_string(info.replicates_done);
    if (info.seconds > 0) {
        out += ", \"seconds\": " + json_double(info.seconds);
        out += ", \"switches_per_second\": " + json_double(info.switches_per_second);
    }
    if (info.adaptive) {
        out += ", \"adaptive\": true";
        out += ", \"realized_supersteps\": " + std::to_string(info.realized_supersteps);
    }
    if (!info.output_dir.empty()) {
        out += ", \"output_dir\": " + json_quote(info.output_dir);
    }
    if (!info.error.empty()) out += ", \"error\": " + json_quote(info.error);
    out += "}";
}

/// Bytes/frames on the daemon->client direction, summed over connections.
struct WireCounters {
    obs::Counter& frames =
        obs::MetricsRegistry::instance().counter("service.frames.sent");
    obs::Counter& bytes =
        obs::MetricsRegistry::instance().counter("service.bytes.sent");
};

WireCounters& wire_counters() {
    static WireCounters& c = *new WireCounters();
    return c;
}

/// The daemon's `metrics` response: executor load, per-status job counts,
/// per-job throughput rows, and the full registry snapshot.
std::string metrics_event_body(const ServiceStats& stats) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.kv("event", "metrics");

    w.key("executor");
    w.begin_object();
    w.kv("threads", stats.executor.threads);
    w.kv("leased_width", stats.executor.leased);
    w.kv("lease_waiters", stats.executor.lease_waiters);
    w.kv("active_runs", stats.executor.active_runs);
    w.kv("pending_replicates", stats.executor.pending_replicates);
    w.kv("inflight_replicates", stats.executor.inflight_replicates);
    w.end_object();

    w.key("jobs");
    w.begin_object();
    w.kv("queued", stats.jobs_queued);
    w.kv("running", stats.jobs_running);
    w.kv("succeeded", stats.jobs_succeeded);
    w.kv("failed", stats.jobs_failed);
    w.kv("cancelled", stats.jobs_cancelled);
    w.kv("interrupted", stats.jobs_interrupted);
    w.end_object();

    w.key("per_job");
    w.begin_array();
    for (const JobInfo& info : stats.jobs) {
        w.begin_object();
        w.kv("job", info.id);
        w.kv("status", to_string(info.status));
        w.kv("algorithm", info.algorithm);
        w.kv("edge_set_backend", info.edge_set_backend);
        w.kv("replicates", info.replicates);
        w.kv("replicates_done", info.replicates_done);
        w.kv("seconds", info.seconds);
        w.kv("attempted_switches", info.attempted_switches);
        w.kv("switches_per_second", info.switches_per_second);
        if (info.adaptive) {
            w.kv("adaptive", true);
            w.kv("realized_supersteps", info.realized_supersteps);
        }
        w.end_object();
    }
    w.end_array();

    w.key("registry");
    obs::write_metrics_json(w, obs::MetricsRegistry::instance().snapshot());

    w.end_object();
    return os.str();
}

} // namespace

// --------------------------------------------------------- SocketObserver

SocketObserver::SocketObserver(int fd, std::uint64_t job_id,
                               std::function<void()> on_broken,
                               std::uint64_t chunk_bytes)
    : fd_(fd), job_id_(job_id), on_broken_(std::move(on_broken)),
      chunk_bytes_(std::min<std::uint64_t>(std::max<std::uint64_t>(chunk_bytes, 1),
                                           kGraphChunkBytes)) {}

bool SocketObserver::send_frame_locked(FrameType type, std::string_view payload) {
    if (broken()) return false;
    try {
        const std::string encoded = encode_frame(type, payload);
        write_all(fd_, encoded);
        if (obs::metrics_enabled()) {
            WireCounters& c = wire_counters();
            c.frames.add(1);
            c.bytes.add(encoded.size());
        }
        return true;
    } catch (const std::exception&) {
        // Client gone: stop streaming for good.  Never rethrow — these
        // sends run inside pipeline pool threads.
        broken_.store(true, std::memory_order_relaxed);
        return false;
    }
}

void SocketObserver::send_frame(const std::string& encoded) {
    if (broken()) return;
    bool just_broke = false;
    {
        CheckedLockGuard lock(mutex_);
        if (broken()) return;
        try {
            write_all(fd_, encoded);
            if (obs::metrics_enabled()) {
                WireCounters& c = wire_counters();
                c.frames.add(1);
                c.bytes.add(encoded.size());
            }
        } catch (const std::exception&) {
            broken_.store(true, std::memory_order_relaxed);
            just_broke = true;
        }
    }
    if (just_broke && on_broken_ != nullptr) on_broken_();
}

void SocketObserver::send_graph(std::uint64_t replicate, const std::string& path) {
    if (broken()) return;
    GraphFrame header;
    header.replicate = replicate;
    header.name = std::filesystem::path(path).filename().string();
    // Copy-loop streaming: never more than one chunk of the file in memory,
    // whatever the replicate's size.  The file is ours (the replicate wrote
    // and closed it before on_replicate_done fired), so its size is stable;
    // a short read mid-transfer is still treated as file trouble.
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open replicate output: " + path);
    header.total_bytes = std::filesystem::file_size(path);

    bool just_broke = false;
    std::exception_ptr file_error;
    {
        CheckedLockGuard lock(mutex_);
        if (broken()) return;
        // One mutex hold for the whole transfer: a concurrently finishing
        // replicate must not interleave its frames into this one's chunks.
        if (!send_frame_locked(FrameType::kGraph, encode_graph_payload(header))) {
            just_broke = true;
        } else {
            try {
                std::string chunk(static_cast<std::size_t>(chunk_bytes_), '\0');
                std::uint64_t left = header.total_bytes;
                while (left > 0) {
                    const std::uint64_t want =
                        std::min<std::uint64_t>(left, chunk_bytes_);
                    is.read(chunk.data(), static_cast<std::streamsize>(want));
                    GESMC_CHECK(static_cast<std::uint64_t>(is.gcount()) == want,
                                "replicate output truncated mid-stream: " + path);
                    if (!send_frame_locked(
                            FrameType::kGraphData,
                            std::string_view(chunk.data(),
                                             static_cast<std::size_t>(want)))) {
                        just_broke = true;
                        break;
                    }
                    left -= want;
                }
            } catch (...) {
                // File trouble *after* the header went out: the wire now
                // announces more bytes than were sent, so the stream is
                // unrecoverable — any later frame would be read as part of
                // this transfer.  Break it for good (the client sees EOF,
                // on_broken cancels the job) and let the file error
                // propagate to the caller's reporting path.
                broken_.store(true, std::memory_order_relaxed);
                just_broke = true;
                file_error = std::current_exception();
            }
        }
    }
    if (just_broke && on_broken_ != nullptr) on_broken_();
    if (file_error != nullptr) std::rethrow_exception(file_error);
}

void SocketObserver::on_superstep(std::uint64_t replicate, const Chain& chain) {
    send_frame(json_event_frame(
        "{\"event\": \"superstep\", \"job\": " + std::to_string(job_id_) +
        ", \"replicate\": " + std::to_string(replicate) +
        ", \"superstep\": " + std::to_string(chain.stats().supersteps) + "}"));
}

void SocketObserver::on_checkpoint(std::uint64_t replicate, const ChainState& state,
                                   const std::string& path) {
    send_frame(json_event_frame(
        "{\"event\": \"checkpoint\", \"job\": " + std::to_string(job_id_) +
        ", \"replicate\": " + std::to_string(replicate) +
        ", \"superstep\": " + std::to_string(state.stats.supersteps) +
        ", \"path\": " + json_quote(path) + "}"));
}

void SocketObserver::on_replicate_done(const ReplicateReport& report) {
    // Report fragment first, then the graph bytes: a client that stops
    // after the fragment still knows the replicate's outcome.
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.kv("event", "replicate");
    w.kv("job", job_id_);
    w.key("report");
    write_replicate_json(w, report);
    w.end_object();
    send_frame(json_event_frame(os.str()));

    if (report.error.empty() && !report.output_path.empty()) {
        try {
            send_graph(report.index, report.output_path);
        } catch (const std::exception& e) {
            send_frame(json_event_frame(
                "{\"event\": \"error\", \"message\": " +
                json_quote(std::string("graph stream failed: ") + e.what()) + "}"));
        }
    }
}

// ---------------------------------------------------------- ServiceServer

namespace {

/// The daemon's sampler configuration: registry + executor occupancy at the
/// configured tick, optionally mirrored to an NDJSON file.
obs::TelemetrySamplerConfig sampler_config(const ServerConfig& config,
                                           JobManager& manager) {
    obs::TelemetrySamplerConfig out;
    out.interval = config.telemetry_interval;
    out.ndjson_path = config.telemetry_out;
    out.executor_stats = [&manager] { return manager.stats().executor; };
    return out;
}

} // namespace

ServiceServer::ServiceServer(const ServerConfig& config)
    : config_(config), manager_(config.threads, std::max(1u, config.max_jobs)),
      sampler_(sampler_config(config_, manager_)) {
    GESMC_CHECK(!config_.socket_path.empty(), "service: socket path is required");
    listen_fd_ = listen_unix(config_.socket_path);
    int pipe_fds[2];
    GESMC_CHECK(::pipe(pipe_fds) == 0,
                std::string("pipe: ") + std::strerror(errno));
    wake_read_ = FdHandle(pipe_fds[0]);
    wake_write_ = FdHandle(pipe_fds[1]);
    // Non-blocking on both ends: serve() drains the pipe without stalling,
    // and a wake() against a full pipe may simply drop its byte — a full
    // pipe already guarantees a pending wakeup.
    for (const int fd : pipe_fds) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        GESMC_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                    std::string("fcntl(wake pipe): ") + std::strerror(errno));
    }
    sampler_.start();
}

ServiceServer::~ServiceServer() {
    request_stop();
    unblock_active_connections();
    reap_connections(/*join_all=*/true);
    std::error_code ec;
    std::filesystem::remove(config_.socket_path, ec);
}

void ServiceServer::reap_connections(bool join_all) {
    std::vector<std::thread> joinable;
    {
        CheckedLockGuard lock(connections_mutex_);
        if (join_all) {
            for (auto& [id, thread] : connection_threads_) {
                joinable.push_back(std::move(thread));
            }
            connection_threads_.clear();
            finished_connections_.clear();
        } else {
            // A thread can announce completion before serve() stored its
            // handle; leave such ids queued for the next sweep.
            std::vector<std::uint64_t> unresolved;
            for (const std::uint64_t id : finished_connections_) {
                auto it = connection_threads_.find(id);
                if (it == connection_threads_.end()) {
                    unresolved.push_back(id);
                    continue;
                }
                joinable.push_back(std::move(it->second));
                connection_threads_.erase(it);
            }
            finished_connections_ = std::move(unresolved);
        }
    }
    for (std::thread& thread : joinable) {
        if (thread.joinable()) thread.join();
    }
}

void ServiceServer::unblock_active_connections() {
    CheckedLockGuard lock(connections_mutex_);
    for (const auto& [id, fd] : active_fds_) ::shutdown(fd, SHUT_RD);
}

void ServiceServer::request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
    wake();
}

void ServiceServer::wake() noexcept {
    // Only async-signal-safe calls here: this runs from SIGTERM handlers.
    if (wake_write_.valid()) {
        const char byte = 'w';
        [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &byte, 1);
    }
}

void ServiceServer::serve(std::ostream* log) {
    if (log != nullptr) {
        *log << "gesmc_serve: listening on " << config_.socket_path << " ("
             << manager_.threads() << " threads, " << std::max(1u, config_.max_jobs)
             << " concurrent jobs)\n";
    }
    while (!stop_.load(std::memory_order_relaxed)) {
        reap_connections(/*join_all=*/false); // exited threads join promptly
        pollfd fds[2] = {{listen_fd_.get(), POLLIN, 0}, {wake_read_.get(), POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            throw Error(std::string("poll: ") + std::strerror(errno));
        }
        if ((fds[1].revents & POLLIN) != 0) {
            // Drain every pending wake byte (non-blocking read), then act:
            // request_stop means exit; a connection-thread wake just loops
            // so reap_connections joins the thread that announced itself.
            char drained[64];
            while (::read(wake_read_.get(), drained, sizeof(drained)) > 0) {}
            if (stop_.load(std::memory_order_relaxed)) break;
            continue;
        }
        if ((fds[0].revents & POLLIN) == 0) continue;
        const int client = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            throw Error(std::string("accept: ") + std::strerror(errno));
        }
        // Send timeout: a client that stops *reading* while keeping the
        // socket open would otherwise block an observer's send inside a
        // pool thread forever — wedging its job, and with it drain().
        // After 10s of a full send buffer the write fails, the observer
        // marks the stream broken and the job is cancelled instead.
        const timeval send_timeout{10, 0};
        ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                     sizeof(send_timeout));
        std::uint64_t id = 0;
        {
            CheckedLockGuard lock(connections_mutex_);
            id = next_connection_++;
            active_fds_.emplace(id, client);
        }
        std::thread worker([this, id, fd = FdHandle(client), log]() mutable {
            try {
                handle_connection(fd.get(), log);
            } catch (const std::exception& e) {
                if (log != nullptr) {
                    *log << "gesmc_serve: connection error: " << e.what() << "\n";
                }
            }
            // Deregister before the handle closes (the fd stays open until
            // this lambda's captures die), so a shutdown sweep can never
            // touch a recycled descriptor; then announce completion and
            // poke the accept loop so the join happens even on an
            // otherwise idle daemon.
            {
                CheckedLockGuard lock(connections_mutex_);
                active_fds_.erase(id);
                finished_connections_.push_back(id);
            }
            wake();
        });
        {
            CheckedLockGuard lock(connections_mutex_);
            connection_threads_.emplace(id, std::move(worker));
        }
    }

    if (log != nullptr) {
        *log << "gesmc_serve: draining (running jobs finish or checkpoint)\n";
    }
    GESMC_LOG_EVENT(Info, "service", "draining");
    // Order matters: drain settles jobs (submit connections wake from
    // wait() and flush their done frames), then the sampler stop wakes
    // `watch` subscribers, then the read-side shutdown frees threads parked
    // on idle control connections, then join.
    manager_.drain();
    sampler_.stop();
    unblock_active_connections();
    reap_connections(/*join_all=*/true);
    std::error_code ec;
    std::filesystem::remove(config_.socket_path, ec);
    if (log != nullptr) *log << "gesmc_serve: drained, exiting\n";
}

void ServiceServer::handle_connection(int fd, std::ostream* log) {
    std::string buffer;
    std::string line;
    if (!read_line(fd, buffer, line)) return; // client connected and left

    Request request;
    try {
        request = parse_request(line);
    } catch (const std::exception& e) {
        GESMC_LOG_EVENT(Warn, "service", "bad_request").str("error", e.what());
        write_all(fd,
                  json_event_frame("{\"event\": \"error\", \"message\": " +
                                   json_quote(e.what()) + "}"));
        return;
    }

    const obs::TraceSpan request_span(
        "request", "service",
        {{"kind", static_cast<std::uint64_t>(request.kind)}});

    switch (request.kind) {
    case RequestKind::kStatus: {
        std::string body = "{\"event\": \"status\", \"jobs\": [";
        bool first = true;
        for (const JobInfo& info : manager_.jobs()) {
            if (request.has_job && info.id != request.job) continue;
            if (!first) body += ", ";
            first = false;
            append_job_info_json(body, info);
        }
        body += "]}";
        write_all(fd, json_event_frame(body));
        return;
    }
    case RequestKind::kCancel: {
        const bool ok = manager_.cancel(request.job);
        write_all(fd, json_event_frame(
                                "{\"event\": \"cancelled\", \"job\": " +
                                std::to_string(request.job) +
                                ", \"ok\": " + (ok ? "true" : "false") + "}"));
        return;
    }
    case RequestKind::kMetrics:
        write_all(fd, json_event_frame(metrics_event_body(manager_.stats())));
        return;
    case RequestKind::kProm: {
        // The registry plus the daemon's live executor occupancy as
        // synthetic gauges — a scrape is useful even when collection is off.
        obs::MetricsSnapshot snapshot = obs::MetricsRegistry::instance().snapshot();
        const ExecutorStats exec = manager_.stats().executor;
        snapshot.gauges.emplace_back("executor.threads",
                                     static_cast<std::int64_t>(exec.threads));
        snapshot.gauges.emplace_back("executor.leased",
                                     static_cast<std::int64_t>(exec.leased));
        snapshot.gauges.emplace_back("executor.lease_waiters",
                                     static_cast<std::int64_t>(exec.lease_waiters));
        snapshot.gauges.emplace_back("executor.active_runs",
                                     static_cast<std::int64_t>(exec.active_runs));
        snapshot.gauges.emplace_back(
            "executor.pending_replicates",
            static_cast<std::int64_t>(exec.pending_replicates));
        snapshot.gauges.emplace_back(
            "executor.inflight_replicates",
            static_cast<std::int64_t>(exec.inflight_replicates));
        std::ostringstream os;
        obs::write_metrics_prometheus(os, snapshot);
        write_all(fd, json_event_frame("{\"event\": \"prom\", \"exposition\": " +
                                       json_quote(os.str()) + "}"));
        return;
    }
    case RequestKind::kWatch:
        stream_telemetry(fd);
        return;
    case RequestKind::kShutdown:
        write_all(fd, json_event_frame("{\"event\": \"shutting-down\"}"));
        GESMC_LOG_EVENT(Info, "service", "shutdown_requested");
        request_stop();
        return;
    case RequestKind::kSubmit:
        break; // handled below
    }

    // Submit: admit the job with a socket-backed observer, then hold the
    // connection open until the job settles — the observer does the
    // streaming from pipeline threads in the meantime.
    std::optional<SocketObserver> observer;
    std::uint64_t id = 0;
    try {
        const PipelineConfig config = read_pipeline_config_string(request.config_text);
        id = manager_.submit(config, [&](std::uint64_t job_id) -> RunObserver* {
            observer.emplace(fd, job_id,
                             [this, job_id] { manager_.cancel(job_id); });
            // Inside the factory the job cannot have started yet, so
            // "accepted" is guaranteed to be the stream's first frame.  The
            // factory runs outside the manager lock with the job already
            // registered (see JobManager::submit), so this blocking send
            // stalls no other request, and if it breaks the stream the
            // on_broken cancel above lands before the job is queued.
            observer->send_frame(json_event_frame(
                "{\"event\": \"accepted\", \"job\": " + std::to_string(job_id) + "}"));
            return &*observer;
        });
    } catch (const std::exception& e) {
        write_all(fd,
                  json_event_frame("{\"event\": \"error\", \"message\": " +
                                   json_quote(e.what()) + "}"));
        return;
    }
    if (log != nullptr) {
        *log << "gesmc_serve: job " << id << " accepted\n";
    }
    GESMC_LOG_EVENT(Info, "service", "job_accepted").num("job", id);

    const JobInfo info = manager_.wait(id);
    std::string body = "{\"event\": \"done\", \"job\": " + std::to_string(id) +
                       ", \"status\": " + json_quote(to_string(info.status)) +
                       ", \"replicates\": " + std::to_string(info.replicates) +
                       ", \"replicates_done\": " + std::to_string(info.replicates_done);
    if (!info.error.empty()) body += ", \"error\": " + json_quote(info.error);
    body += "}";
    observer->send_frame(json_event_frame(body));
    if (log != nullptr) {
        *log << "gesmc_serve: job " << id << " " << to_string(info.status) << "\n";
    }
    GESMC_LOG_EVENT(Info, "service", "job_done")
        .num("job", id)
        .str("status", to_string(info.status))
        .num("replicates_done", info.replicates_done)
        .str("error", info.error);
}

void ServiceServer::stream_telemetry(int fd) {
    GESMC_LOG_EVENT(Info, "service", "watch_subscribed");
    // Start from the latest tick so a new subscriber sees data on its very
    // next tick instead of replaying the whole ring.
    std::uint64_t last = 0;
    if (const auto tick = sampler_.latest(); tick.has_value()) {
        last = tick->sequence;
        try {
            write_all(fd, json_event_frame(obs::telemetry_tick_frame_body(*tick)));
        } catch (const std::exception&) {
            return; // client gone before the first frame
        }
    }
    while (!stop_.load(std::memory_order_relaxed)) {
        // Bounded wait so daemon stop is noticed even between ticks; a
        // stopped sampler returns nullopt immediately and the stop_ check
        // ends the loop on the next pass.
        const std::optional<obs::TelemetryTick> tick =
            sampler_.wait_for_tick(last, std::chrono::milliseconds(500));
        if (!tick.has_value()) continue; // timeout (or sampler stopping —
                                         // stop_ ends the loop next pass)
        last = tick->sequence;
        try {
            write_all(fd, json_event_frame(obs::telemetry_tick_frame_body(*tick)));
            if (obs::metrics_enabled()) {
                WireCounters& c = wire_counters();
                c.frames.add(1);
            }
        } catch (const std::exception&) {
            GESMC_LOG_EVENT(Info, "service", "watch_disconnected");
            return; // client disconnected
        }
    }
}

} // namespace gesmc
