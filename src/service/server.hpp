/// \file server.hpp
/// \brief Unix-domain socket front-end of the sampling service.
///
/// ServiceServer binds the protocol (frame.hpp) to the compute core
/// (job_manager.hpp): an accept loop hands each connection to its own
/// thread, which reads one NDJSON control line and answers with
/// length-prefixed frames.  A submit connection stays open for the job's
/// lifetime — a SocketObserver forwards the pipeline's on_superstep /
/// on_checkpoint / on_replicate_done callbacks over the socket as 'J'
/// event frames and streams each finished replicate's output file as a
/// 'G' graph frame, so clients see results exactly as they land on the
/// daemon's disk.  status / cancel / shutdown connections answer one 'J'
/// frame and close.
///
/// Shutdown (client "shutdown" frame or SIGTERM via request_stop) stops
/// accepting, drains the JobManager — running checkpointed jobs stop at
/// their next checkpoint boundary, uncheckpointed ones finish — and joins
/// every connection thread before serve() returns.
#pragma once

#include "check/checked_mutex.hpp"
#include "obs/timeseries.hpp"
#include "service/job_manager.hpp"
#include "service/socket.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace gesmc {

struct ServerConfig {
    std::string socket_path;   ///< Unix-domain socket to listen on
    unsigned threads = 0;      ///< shared executor width (0 = hardware)
    unsigned max_jobs = 2;     ///< jobs running concurrently; others queue
    /// Telemetry sampler tick; `watch` subscribers get one frame per tick.
    std::chrono::milliseconds telemetry_interval{1000};
    /// Optional NDJSON time-series sink (one row per tick, tail -f-able).
    std::string telemetry_out;
};

/// RunObserver streaming one job's pipeline events over one connection.
/// Callbacks fire concurrently from pool threads (RunObserver contract), so
/// every send is serialized by a mutex; a replicate graph's whole chunked
/// transfer ('G' header + 'D' chunks, copied from the output file in
/// O(chunk) memory) holds the mutex once, keeping its frames contiguous on
/// the wire.  A failed send (client vanished) flips broken() permanently,
/// drops all further output, and invokes the on_broken callback once — the
/// server wires that to JobManager::cancel so an orphaned job stops
/// wasting the machine.  Never throws: observer callbacks unwind through
/// the pipeline's pool threads.
class SocketObserver final : public RunObserver {
public:
    /// `chunk_bytes` bounds each 'D' frame (and the daemon-side buffer);
    /// tests shrink it to exercise multi-chunk transfers on small files.
    SocketObserver(int fd, std::uint64_t job_id, std::function<void()> on_broken,
                   std::uint64_t chunk_bytes = kGraphChunkBytes);

    void on_superstep(std::uint64_t replicate, const Chain& chain) override;
    void on_checkpoint(std::uint64_t replicate, const ChainState& state,
                       const std::string& path) override;
    void on_replicate_done(const ReplicateReport& report) override;

    [[nodiscard]] bool broken() const noexcept {
        return broken_.load(std::memory_order_relaxed);
    }

    /// Sends an already-encoded frame (used by the server for job-level
    /// events on the same stream); drops it silently once broken.
    void send_frame(const std::string& encoded);

    /// Streams `path` as one chunked graph transfer for `replicate`:
    /// 'G' header, then ≤ chunk_bytes 'D' frames read-and-sent in a copy
    /// loop.  Throws Error on file trouble (caller reports it as an event);
    /// a *socket* failure flips broken() like any other send.
    void send_graph(std::uint64_t replicate, const std::string& path);

private:
    /// Encodes and writes under an already-held mutex_; returns false once
    /// the stream broke (sets broken_, defers on_broken_ to the caller).
    bool send_frame_locked(FrameType type, std::string_view payload)
        GESMC_REQUIRES(mutex_);

    CheckedMutex mutex_{LockRank::kSocketObserver, "SocketObserver"};
    int fd_;
    std::uint64_t job_id_;
    std::function<void()> on_broken_;
    std::uint64_t chunk_bytes_;
    std::atomic<bool> broken_{false};
};

class ServiceServer {
public:
    /// Binds the socket (throws Error on failure, e.g. a live daemon
    /// already listening) and starts the job manager; serve() must follow.
    explicit ServiceServer(const ServerConfig& config);
    ~ServiceServer();

    ServiceServer(const ServiceServer&) = delete;
    ServiceServer& operator=(const ServiceServer&) = delete;

    /// Accept loop: blocks until request_stop() (or a client shutdown
    /// frame), then drains jobs and joins connection threads.  `log` (may
    /// be null) receives human-readable progress lines.
    void serve(std::ostream* log);

    /// Triggers shutdown from another thread or a signal handler — only
    /// writes one byte to an internal pipe (async-signal-safe).
    void request_stop() noexcept;

    [[nodiscard]] const std::string& socket_path() const noexcept {
        return config_.socket_path;
    }

private:
    /// Serves one connection; `fd` stays owned (and open) by the caller.
    void handle_connection(int fd, std::ostream* log);

    /// The `watch` subscription loop: pushes one telemetry 'J' frame per
    /// sampler tick until the client disconnects (failed write) or the
    /// daemon stops.  Runs on the connection's own thread.
    void stream_telemetry(int fd);

    /// Joins connection threads that announced completion (each accept-loop
    /// wakeup — exiting threads poke the wake pipe, so an idle daemon never
    /// retains dead-but-unjoined threads); `join_all` additionally blocks
    /// on the still-running ones (shutdown).
    void reap_connections(bool join_all);

    /// Wakes the accept loop's poll via the self-pipe (async-signal-safe).
    void wake() noexcept;

    /// shutdown(SHUT_RD) on every live connection so threads blocked
    /// reading a control line from an idle client wake with EOF instead of
    /// hanging the daemon's exit; pending writes (done frames) still flush.
    void unblock_active_connections();

    ServerConfig config_;
    JobManager manager_;
    FdHandle listen_fd_;
    FdHandle wake_read_;
    FdHandle wake_write_;
    std::atomic<bool> stop_{false};

    CheckedMutex connections_mutex_{LockRank::kServerConnections,
                                    "ServiceServer.connections"};
    std::uint64_t next_connection_ GESMC_GUARDED_BY(connections_mutex_) = 0;
    std::map<std::uint64_t, std::thread> connection_threads_
        GESMC_GUARDED_BY(connections_mutex_);
    /// Live connections, by id.
    std::map<std::uint64_t, int> active_fds_ GESMC_GUARDED_BY(connections_mutex_);
    /// Awaiting join.
    std::vector<std::uint64_t> finished_connections_
        GESMC_GUARDED_BY(connections_mutex_);

    /// Live-telemetry sampler feeding `watch` subscribers and the optional
    /// NDJSON sink.  Declared last: its destructor joins the sampler thread
    /// (which reads manager_ stats) before any other member dies.
    obs::TelemetrySampler sampler_;
};

} // namespace gesmc
