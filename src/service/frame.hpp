/// \file frame.hpp
/// \brief Wire framing for the sampling-service protocol.
///
/// The protocol (docs/service_protocol.md) has two directions with two
/// framings:
///
///   * client -> daemon: newline-delimited JSON *control frames* — one
///     request object per line (submit / status / cancel / shutdown).  The
///     submitted pipeline config document travels verbatim as a JSON string
///     inside the submit frame ("key = value" lines, pipeline/config.hpp).
///   * daemon -> client: *length-prefixed frames* — one type byte, a 64-bit
///     little-endian payload length, then the payload.  Type 'J' carries a
///     JSON event/response document; a replicate graph travels as one 'G'
///     *header* frame (replicate index, basename, total byte count)
///     followed by bounded 'D' *data chunk* frames whose payloads
///     concatenate to the replicate's output file — byte-identical to what
///     a local run writes, streamed in O(chunk) memory on both ends with
///     no ceiling on the file size.
///
/// Everything here is pure encode/decode over in-memory buffers —
/// deliberately free of sockets so tests can round-trip and fuzz frames
/// without a daemon (tests/test_service.cpp).
#pragma once

#include "util/check.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gesmc {

// ------------------------------------------------- daemon -> client frames

/// Frame type byte on the daemon->client stream.
enum class FrameType : unsigned char {
    kJson = 'J',       ///< UTF-8 JSON event / response document
    kGraph = 'G',      ///< graph transfer header (see GraphFrame)
    kGraphData = 'D',  ///< raw data chunk of the current graph transfer
};

struct Frame {
    FrameType type = FrameType::kJson;
    std::string payload;
};

/// Upper bound a decoder accepts for one payload — bounds memory against a
/// corrupt or hostile length prefix, not legitimate traffic (graph bytes
/// travel in kGraphChunkBytes-bounded 'D' chunks).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 32;

/// Protocol bound on one 'D' chunk's payload: the sender splits a replicate
/// file into chunks of at most this size, so both ends stream a transfer of
/// any length in O(chunk) memory.  Receivers must reject larger chunks
/// (GraphTransferState enforces it).
inline constexpr std::uint64_t kGraphChunkBytes = 1ull << 20;

/// Encodes type byte + LE64 length + payload.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental decoder: examines [data, data+size).  Returns nullopt (and
/// consumed = 0) while the buffer holds no complete frame; otherwise the
/// frame with consumed = its encoded size — callers erase the prefix and
/// call again.  Throws Error on a malformed frame (unknown type byte,
/// length above kMaxFramePayload).
[[nodiscard]] std::optional<Frame> decode_frame(const char* data, std::size_t size,
                                                std::size_t& consumed);

/// Buffering decoder over a byte stream: feed() appends raw bytes, next()
/// yields complete frames until the buffer runs dry.
class FrameReader {
public:
    void feed(const char* data, std::size_t size) { buffer_.append(data, size); }

    /// Next complete frame, or nullopt when more bytes are needed.  Throws
    /// Error on malformed input (the stream is unrecoverable then).
    [[nodiscard]] std::optional<Frame> next();

private:
    std::string buffer_;
    std::size_t offset_ = 0; ///< consumed prefix, compacted lazily
};

/// Payload of a kGraph *header* frame: LE64 replicate index, LE32 basename
/// length, the basename (e.g. "replicate_03.gesb"), then LE64 total byte
/// count of the file.  The bytes themselves follow in kGraphData chunks.
struct GraphFrame {
    std::uint64_t replicate = 0;
    std::string name;               ///< output basename the client saves under
    std::uint64_t total_bytes = 0;  ///< exact size of the transfer that follows
};

[[nodiscard]] std::string encode_graph_payload(const GraphFrame& graph);

/// Throws Error on a truncated or inconsistent payload.
[[nodiscard]] GraphFrame decode_graph_payload(std::string_view payload);

/// Receive-side state machine of one chunked graph transfer: validates the
/// header/chunk sequencing and the per-chunk and total-size caps while the
/// caller sinks the actual bytes (to disk — the point of chunking is that
/// neither end buffers the file).  Usage: begin() on each 'G' frame (true =
/// zero-byte transfer, already complete), consume(chunk size) on each 'D'
/// frame (true = transfer complete).  Throws Error on protocol violations:
/// a chunk with no open transfer, a header while one is open, a chunk over
/// kGraphChunkBytes, or more bytes than the header announced.
class GraphTransferState {
public:
    [[nodiscard]] bool open() const noexcept { return open_; }

    /// Header frame of the GraphFrame the transfer delivers; open() only.
    [[nodiscard]] const GraphFrame& header() const { return header_; }

    [[nodiscard]] std::uint64_t remaining() const noexcept {
        return header_.total_bytes - received_;
    }

    bool begin(const GraphFrame& header);
    bool consume(std::uint64_t chunk_bytes);

private:
    GraphFrame header_;
    std::uint64_t received_ = 0;
    bool open_ = false;
};

// ------------------------------------------------- client -> daemon frames

enum class RequestKind {
    kSubmit,    ///< run a pipeline config document as a job
    kStatus,    ///< report all jobs (or one, when a job id is given)
    kCancel,    ///< stop a queued or running job
    kMetrics,   ///< snapshot executor load + observability counters
    kWatch,     ///< subscribe: one telemetry 'J' frame per sampler tick
    kProm,      ///< Prometheus text exposition of the metrics registry
    kShutdown,  ///< drain all jobs and exit the daemon
};

[[nodiscard]] std::string to_string(RequestKind kind);

struct Request {
    RequestKind kind = RequestKind::kStatus;
    std::string config_text;  ///< submit: the config document, verbatim
    std::uint64_t job = 0;    ///< cancel (required), status (optional)
    bool has_job = false;
};

/// Parses one control line (no trailing newline required).  Throws Error on
/// malformed JSON, an unknown "type", or missing required members.
[[nodiscard]] Request parse_request(const std::string& json_line);

/// Builds the NDJSON control line for `request`, trailing '\n' included.
[[nodiscard]] std::string make_request_line(const Request& request);

/// "text" JSON-escaped and double-quoted — shared by the compact one-line
/// emitters here and the event payload builders in server.cpp.
[[nodiscard]] std::string json_quote(std::string_view text);

} // namespace gesmc
