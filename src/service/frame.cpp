#include "service/frame.hpp"

#include "pipeline/report.hpp"
#include "service/json.hpp"

#include <sstream>

namespace gesmc {

namespace {

void append_le(std::string& out, std::uint64_t value, unsigned bytes) {
    for (unsigned i = 0; i < bytes; ++i) {
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
}

std::uint64_t read_le(std::string_view data, std::size_t offset, unsigned bytes) {
    std::uint64_t value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data[offset + i]))
                 << (8 * i);
    }
    return value;
}

} // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
    // Enforced on both ends: encoding an over-limit frame would hand every
    // conforming decoder something it must reject mid-stream.  Bulk data
    // (replicate graphs) never comes near this — it travels in
    // kGraphChunkBytes-bounded 'D' chunks.
    GESMC_CHECK(payload.size() <= kMaxFramePayload,
                "frame: payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the protocol maximum");
    std::string out;
    out.reserve(9 + payload.size());
    out.push_back(static_cast<char>(type));
    append_le(out, payload.size(), 8);
    out.append(payload);
    return out;
}

std::optional<Frame> decode_frame(const char* data, std::size_t size,
                                  std::size_t& consumed) {
    consumed = 0;
    if (size == 0) return std::nullopt;
    const unsigned char type = static_cast<unsigned char>(data[0]);
    GESMC_CHECK(type == static_cast<unsigned char>(FrameType::kJson) ||
                    type == static_cast<unsigned char>(FrameType::kGraph) ||
                    type == static_cast<unsigned char>(FrameType::kGraphData),
                "frame: unknown type byte " + std::to_string(type));
    if (size < 9) return std::nullopt;
    const std::uint64_t length = read_le(std::string_view(data, size), 1, 8);
    GESMC_CHECK(length <= kMaxFramePayload,
                "frame: payload length " + std::to_string(length) +
                    " exceeds the protocol maximum");
    // Per-type cap, enforced from the 9-byte header alone: a 'D' chunk is
    // bounded by the protocol chunk size, so a hostile length prefix can
    // never make a receiver buffer gigabytes before GraphTransferState
    // gets a chance to reject it — the O(chunk) memory bound holds even
    // against a corrupt peer.
    GESMC_CHECK(type != static_cast<unsigned char>(FrameType::kGraphData) ||
                    length <= kGraphChunkBytes,
                "frame: data chunk of " + std::to_string(length) +
                    " bytes exceeds the protocol chunk bound");
    if (size < 9 + length) return std::nullopt;
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(data + 9, length);
    consumed = 9 + static_cast<std::size_t>(length);
    return frame;
}

std::optional<Frame> FrameReader::next() {
    std::size_t consumed = 0;
    std::optional<Frame> frame =
        decode_frame(buffer_.data() + offset_, buffer_.size() - offset_, consumed);
    if (!frame.has_value()) return std::nullopt;
    offset_ += consumed;
    // Compact once the dead prefix dominates, so long sessions stay O(frame).
    if (offset_ > buffer_.size() / 2) {
        buffer_.erase(0, offset_);
        offset_ = 0;
    }
    return frame;
}

std::string encode_graph_payload(const GraphFrame& graph) {
    GESMC_CHECK(graph.name.size() <= 0xFFFFFFFFull, "graph frame: name too long");
    std::string out;
    out.reserve(20 + graph.name.size());
    append_le(out, graph.replicate, 8);
    append_le(out, graph.name.size(), 4);
    out.append(graph.name);
    append_le(out, graph.total_bytes, 8);
    return out;
}

GraphFrame decode_graph_payload(std::string_view payload) {
    GESMC_CHECK(payload.size() >= 20, "graph frame: truncated header");
    GraphFrame graph;
    graph.replicate = read_le(payload, 0, 8);
    const std::uint64_t name_len = read_le(payload, 8, 4);
    GESMC_CHECK(12 + name_len + 8 == payload.size(),
                "graph frame: inconsistent header length");
    graph.name.assign(payload.substr(12, name_len));
    GESMC_CHECK(graph.name.find('/') == std::string::npos &&
                    graph.name.find('\\') == std::string::npos &&
                    graph.name != "." && graph.name != ".." && !graph.name.empty(),
                "graph frame: name is not a plain basename");
    graph.total_bytes = read_le(payload, 12 + name_len, 8);
    return graph;
}

bool GraphTransferState::begin(const GraphFrame& header) {
    GESMC_CHECK(!open_, "graph transfer: header for \"" + header.name +
                            "\" while \"" + header_.name + "\" is still open");
    header_ = header;
    received_ = 0;
    open_ = header.total_bytes > 0;
    return !open_; // a zero-byte transfer is complete at the header
}

bool GraphTransferState::consume(std::uint64_t chunk_bytes) {
    GESMC_CHECK(open_, "graph transfer: data chunk with no open transfer");
    GESMC_CHECK(chunk_bytes > 0, "graph transfer: empty data chunk");
    GESMC_CHECK(chunk_bytes <= kGraphChunkBytes,
                "graph transfer: chunk of " + std::to_string(chunk_bytes) +
                    " bytes exceeds the protocol chunk bound");
    GESMC_CHECK(chunk_bytes <= remaining(),
                "graph transfer: \"" + header_.name + "\" overflows its announced " +
                    std::to_string(header_.total_bytes) + " bytes");
    received_ += chunk_bytes;
    if (received_ == header_.total_bytes) {
        open_ = false;
        return true;
    }
    return false;
}

std::string to_string(RequestKind kind) {
    switch (kind) {
    case RequestKind::kSubmit:
        return "submit";
    case RequestKind::kStatus:
        return "status";
    case RequestKind::kCancel:
        return "cancel";
    case RequestKind::kMetrics:
        return "metrics";
    case RequestKind::kWatch:
        return "watch";
    case RequestKind::kProm:
        return "prom";
    case RequestKind::kShutdown:
        return "shutdown";
    }
    return "unknown";
}

std::string json_quote(std::string_view text) {
    std::ostringstream os;
    write_json_escaped(os, std::string(text));
    return os.str();
}

Request parse_request(const std::string& json_line) {
    const JsonValue doc = parse_json(json_line);
    GESMC_CHECK(doc.is_object(), "request: not a JSON object");
    const std::string& type = doc.string_member("type");

    Request request;
    if (type == "submit") {
        request.kind = RequestKind::kSubmit;
        request.config_text = doc.string_member("config");
    } else if (type == "status") {
        request.kind = RequestKind::kStatus;
        if (doc.find("job") != nullptr) {
            request.job = doc.uint_member("job");
            request.has_job = true;
        }
    } else if (type == "cancel") {
        request.kind = RequestKind::kCancel;
        request.job = doc.uint_member("job");
        request.has_job = true;
    } else if (type == "metrics") {
        request.kind = RequestKind::kMetrics;
    } else if (type == "watch") {
        request.kind = RequestKind::kWatch;
    } else if (type == "prom") {
        request.kind = RequestKind::kProm;
    } else if (type == "shutdown") {
        request.kind = RequestKind::kShutdown;
    } else {
        throw Error("request: unknown type \"" + type + "\"");
    }
    return request;
}

std::string make_request_line(const Request& request) {
    std::string out = "{\"type\": " + json_quote(to_string(request.kind));
    if (request.kind == RequestKind::kSubmit) {
        out += ", \"config\": " + json_quote(request.config_text);
    }
    if (request.has_job) {
        out += ", \"job\": " + std::to_string(request.job);
    }
    out += "}\n";
    return out;
}

} // namespace gesmc
