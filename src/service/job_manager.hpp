/// \file job_manager.hpp
/// \brief Multi-job execution over one thread budget for the sampling daemon.
///
/// The daemon's compute core, deliberately socket-free (tests drive it
/// directly).  Two pieces:
///
///   * SharedExecutor (pipeline/shared_executor.hpp, shared with the
///     corpus layer) — a machine-wide ReplicateExecutor over one
///     ThreadBudget of P threads that multiplexes the replicates of many
///     concurrent jobs round-robin while preserving each job's resolved
///     (K, T) schedule; the width-counting budget is the admission gate.
///
///   * JobManager — admission, queueing and lifecycle.  submit() validates
///     a PipelineConfig and queues it; max_concurrent runner threads feed
///     jobs into run_pipeline with the SharedExecutor injected, the job's
///     RunObserver forwarded (the daemon passes a socket-backed one), and a
///     per-job interrupt flag wired into PipelineExec.  cancel() trips that
///     flag (queued jobs never start); drain() — the SIGTERM path —
///     cancels the queue, interrupts running *checkpointed* jobs at their
///     next boundary and lets uncheckpointed ones finish, then waits: jobs
///     either complete or leave resumable checkpoints, never half-written
///     outputs.  Checkpoint/resume config keys work unchanged, so a daemon
///     restart resumes in-flight jobs from their output directories.
#pragma once

#include "check/checked_mutex.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/shared_executor.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace gesmc {

/// Lifecycle of one submitted job.
enum class JobStatus {
    kQueued,       ///< admitted, waiting for a runner slot
    kRunning,      ///< run_pipeline in flight
    kSucceeded,    ///< every replicate finished without error
    kFailed,       ///< run threw, or >= 1 replicate recorded a real error
    kCancelled,    ///< stopped by an explicit cancel request
    kInterrupted,  ///< stopped by a daemon drain; checkpoints support resume
};

[[nodiscard]] std::string to_string(JobStatus status);
[[nodiscard]] inline bool is_terminal(JobStatus status) noexcept {
    return status != JobStatus::kQueued && status != JobStatus::kRunning;
}

/// Snapshot of one job for status frames and callers.
struct JobInfo {
    std::uint64_t id = 0;
    JobStatus status = JobStatus::kQueued;
    std::string algorithm;
    std::string edge_set_backend; ///< resolved ConcurrentEdgeSet backend
    std::uint64_t replicates = 0;
    std::uint64_t replicates_done = 0;  ///< on_replicate_done count (any outcome)
    std::string output_dir;
    std::string error;  ///< run-level error (admission errors throw at submit)

    /// Throughput so far: wall clock since the job started running (still
    /// ticking while kRunning) and attempted switches over it.  Zero until
    /// the job leaves the queue.
    double seconds = 0;
    std::uint64_t attempted_switches = 0;
    double switches_per_second = 0;

    /// True when the job runs with `supersteps = adaptive` (docs/adaptive.md);
    /// realized_supersteps then sums the supersteps its finished replicates
    /// actually ran — against replicates_done x max-supersteps it shows how
    /// much budget the adaptive stop saved.  (Summed for fixed-budget jobs
    /// too, where it is simply replicates_done x supersteps.)
    bool adaptive = false;
    std::uint64_t realized_supersteps = 0;
};

/// Point-in-time load snapshot of the whole manager — the payload of the
/// daemon's `metrics` frame.
struct ServiceStats {
    ExecutorStats executor;
    std::uint64_t jobs_queued = 0;
    std::uint64_t jobs_running = 0;
    std::uint64_t jobs_succeeded = 0;
    std::uint64_t jobs_failed = 0;
    std::uint64_t jobs_cancelled = 0;
    std::uint64_t jobs_interrupted = 0;
    std::vector<JobInfo> jobs;  ///< per-job rows, id ascending
};

class JobManager {
public:
    /// `threads`: shared executor width (0 = hardware); `max_concurrent`:
    /// jobs running at once — admission beyond it queues (>= 1).
    JobManager(unsigned threads, unsigned max_concurrent);
    ~JobManager();

    JobManager(const JobManager&) = delete;
    JobManager& operator=(const JobManager&) = delete;

    /// Validates and queues `config`; returns the job id.  `observer` (may
    /// be null) receives the job's pipeline events from runner/pool threads
    /// and must outlive the job (wait for a terminal status before
    /// destroying it).  Throws Error on an invalid config or when the
    /// manager is draining.
    std::uint64_t submit(const PipelineConfig& config, RunObserver* observer);

    /// As above, but the observer is built *knowing its job id*: the
    /// factory runs after the job is registered but before it is queued, so
    /// the first event a client sees already carries the right id (the
    /// server's SocketObserver needs this).  It runs *outside* the manager
    /// lock — it may block on I/O and may call cancel() on its own job
    /// (e.g. from a broken-stream callback); such a cancel finalizes the
    /// job before it ever starts.  The factory may return null; if it
    /// throws, the job is finalized kFailed and the exception propagates.
    std::uint64_t
    submit(const PipelineConfig& config,
           const std::function<RunObserver*(std::uint64_t id)>& make_observer);

    /// Requests a stop: a queued job is finalized kCancelled immediately; a
    /// running one is interrupted (checkpoint boundary / next replicate).
    /// Returns false for unknown or already-terminal jobs.
    bool cancel(std::uint64_t id);

    [[nodiscard]] std::optional<JobInfo> job(std::uint64_t id) const;
    [[nodiscard]] std::vector<JobInfo> jobs() const;

    /// Executor load + per-job throughput in one consistent pass under the
    /// manager lock (the executor part is racy by nature, see ExecutorStats).
    [[nodiscard]] ServiceStats stats() const;

    /// Blocks until `id` reaches a terminal status; throws on unknown id.
    JobInfo wait(std::uint64_t id);

    /// Graceful shutdown: refuse new submissions, cancel queued jobs,
    /// interrupt running checkpointed jobs (uncheckpointed ones finish),
    /// block until everything is terminal.  Idempotent.
    void drain();

    [[nodiscard]] unsigned threads() const noexcept;

private:
    /// Non-atomic Job fields are guarded by the *manager's* mutex_ (not
    /// expressible as GUARDED_BY from a nested struct — the runtime rank
    /// detector and TSan still cover them); `interrupt`, `replicates_done`
    /// and `attempted_switches` are atomics written from pool threads.
    struct Job {
        std::uint64_t id = 0;
        PipelineConfig config;
        RunObserver* observer = nullptr;
        JobStatus status = JobStatus::kQueued;
        std::string error;
        std::atomic<bool> interrupt{false};
        bool cancel_requested = false;      ///< distinguishes cancel from drain
        std::atomic<std::uint64_t> replicates_done{0};
        /// Attempted switches summed over finished replicates (fed by the
        /// counting observer) — the numerator of the job's throughput.
        std::atomic<std::uint64_t> attempted_switches{0};
        /// Supersteps the finished replicates actually ran (JobInfo doc).
        std::atomic<std::uint64_t> realized_supersteps{0};
        std::chrono::steady_clock::time_point started;   ///< set at kRunning
        std::chrono::steady_clock::time_point finished;  ///< set at terminal
        bool has_started = false;
        bool has_finished = false;
    };

    JobInfo info_locked(const Job& job) const GESMC_REQUIRES(mutex_);
    void runner_loop();
    void finish_job(Job& job, JobStatus status, std::string error);

    /// Evicts the oldest terminal jobs beyond kTerminalJobRetention so a
    /// long-lived daemon's memory (and its status frames) stay bounded.
    /// Queued/running jobs are never evicted; a blocked wait() survives an
    /// eviction because it holds its own shared_ptr.
    void prune_terminal_locked() GESMC_REQUIRES(mutex_);

    /// Terminal jobs kept findable for status/wait after they settle.
    static constexpr std::size_t kTerminalJobRetention = 64;

    SharedExecutor executor_;

    mutable CheckedMutex mutex_{LockRank::kJobManager, "JobManager"};
    CheckedCondVar cv_;  ///< queue arrivals + status transitions
    std::map<std::uint64_t, std::shared_ptr<Job>> jobs_ GESMC_GUARDED_BY(mutex_);  ///< by id (ascending)
    std::uint64_t next_job_id_ GESMC_GUARDED_BY(mutex_) = 1;
    std::deque<std::shared_ptr<Job>> queue_ GESMC_GUARDED_BY(mutex_);
    bool draining_ GESMC_GUARDED_BY(mutex_) = false;
    bool stopping_ GESMC_GUARDED_BY(mutex_) = false;
    std::vector<std::thread> runners_;
};

} // namespace gesmc
