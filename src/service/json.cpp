#include "service/json.hpp"

#include "util/check.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace gesmc {

namespace {

/// Nesting bound: control frames are flat; anything deeper than this is
/// hostile or broken input, not a protocol message.
constexpr int kMaxDepth = 64;

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value(0);
        skip_whitespace();
        GESMC_CHECK(pos_ == text_.size(),
                    "JSON: trailing content at byte " + std::to_string(pos_));
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw Error("JSON: " + what + " at byte " + std::to_string(pos_));
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect_literal(const char* literal) {
        for (const char* p = literal; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p) {
                fail(std::string("expected \"") + literal + "\"");
            }
            ++pos_;
        }
    }

    JsonValue parse_value(int depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        skip_whitespace();
        const char c = peek();
        switch (c) {
        case '{':
            return parse_object(depth);
        case '[':
            return parse_array(depth);
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::kString;
            v.string_value = parse_string();
            return v;
        }
        case 't': {
            expect_literal("true");
            JsonValue v;
            v.kind = JsonValue::Kind::kBool;
            v.bool_value = true;
            return v;
        }
        case 'f': {
            expect_literal("false");
            JsonValue v;
            v.kind = JsonValue::Kind::kBool;
            v.bool_value = false;
            return v;
        }
        case 'n':
            expect_literal("null");
            return JsonValue{};
        default:
            if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    JsonValue parse_object(int depth) {
        JsonValue v;
        v.kind = JsonValue::Kind::kObject;
        take(); // '{'
        skip_whitespace();
        if (peek() == '}') {
            take();
            return v;
        }
        for (;;) {
            skip_whitespace();
            if (peek() != '"') fail("expected object key string");
            std::string key = parse_string();
            skip_whitespace();
            if (take() != ':') fail("expected ':' after object key");
            v.object_members.emplace_back(std::move(key), parse_value(depth + 1));
            skip_whitespace();
            const char next = take();
            if (next == '}') return v;
            if (next != ',') fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array(int depth) {
        JsonValue v;
        v.kind = JsonValue::Kind::kArray;
        take(); // '['
        skip_whitespace();
        if (peek() == ']') {
            take();
            return v;
        }
        for (;;) {
            v.array_items.push_back(parse_value(depth + 1));
            skip_whitespace();
            const char next = take();
            if (next == ']') return v;
            if (next != ',') fail("expected ',' or ']' in array");
        }
    }

    /// RFC 8259 number: -?int frac? exp?; parsed via strtod after a strict
    /// shape check (strtod alone accepts "0x1", "inf", leading '+', ...).
    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') take();
        if (peek() == '0') {
            take();
        } else if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
                ++pos_;
            }
        } else {
            fail("malformed number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
                fail("malformed number fraction");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (pos_ >= text_.size() ||
                std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
                fail("malformed number exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
                ++pos_;
            }
        }
        JsonValue v;
        v.kind = JsonValue::Kind::kNumber;
        const std::string token = text_.substr(start, pos_ - start);
        v.number_value = std::strtod(token.c_str(), nullptr);
        // Integer-shaped and in range: keep the exact value alongside the
        // double (64-bit seeds/ids overflow double's 53-bit mantissa).
        if (token.find_first_of(".eE-") == std::string::npos) {
            errno = 0;
            char* end = nullptr;
            const unsigned long long exact = std::strtoull(token.c_str(), &end, 10);
            if (errno == 0 && end != nullptr && *end == '\0') {
                v.has_uint = true;
                v.uint_value = exact;
            }
        }
        return v;
    }

    unsigned parse_hex4() {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            value <<= 4;
            if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
            else fail("malformed \\u escape");
        }
        return value;
    }

    void append_utf8(std::string& out, std::uint32_t cp) {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    std::string parse_string() {
        take(); // opening quote
        std::string out;
        for (;;) {
            const char c = take();
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = take();
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                std::uint32_t cp = parse_hex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a low surrogate escape must follow.
                    if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                        text_[pos_ + 1] != 'u') {
                        fail("lone high surrogate");
                    }
                    pos_ += 2;
                    const std::uint32_t low = parse_hex4();
                    if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("lone low surrogate");
                }
                append_utf8(out, cp);
                break;
            }
            default:
                fail("unknown string escape");
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
    const JsonValue* found = nullptr;
    for (const auto& [name, value] : object_members) {
        if (name == key) found = &value;
    }
    return found;
}

const std::string& JsonValue::string_member(const std::string& key) const {
    const JsonValue* v = find(key);
    GESMC_CHECK(v != nullptr, "JSON: missing member \"" + key + "\"");
    GESMC_CHECK(v->is_string(), "JSON: member \"" + key + "\" is not a string");
    return v->string_value;
}

std::uint64_t JsonValue::uint_member(const std::string& key) const {
    const JsonValue* v = find(key);
    GESMC_CHECK(v != nullptr, "JSON: missing member \"" + key + "\"");
    GESMC_CHECK(v->is_number(), "JSON: member \"" + key + "\" is not a number");
    // Integer-shaped input carries its exact value (64-bit seeds/ids do not
    // survive the double round-trip).
    if (v->has_uint) return v->uint_value;
    // The upper bound makes the cast defined (a double >= 2^63 would be
    // UB to convert); protocol integers are job/replicate ids, far below.
    GESMC_CHECK(v->number_value >= 0 && std::floor(v->number_value) == v->number_value &&
                    v->number_value < 9223372036854775808.0,
                "JSON: member \"" + key + "\" is not a representable non-negative integer");
    return static_cast<std::uint64_t>(v->number_value);
}

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

} // namespace gesmc
