/// \file json.hpp
/// \brief Minimal JSON parser for the sampling-service control protocol.
///
/// The service's client->daemon control frames are newline-delimited JSON
/// documents (docs/service_protocol.md); the daemon's streamed event frames
/// carry JSON payloads built with pipeline/report.hpp's JsonWriter.  This
/// is the matching reader: a strict, dependency-free recursive-descent
/// parser covering exactly RFC 8259 — objects, arrays, strings (with
/// \uXXXX escapes incl. surrogate pairs), numbers, true/false/null.
/// Malformed input throws Error with a byte offset; nothing is ever
/// guessed.  Not built for speed: control frames are tens of bytes, the
/// large payloads (graphs) travel as binary frames and never touch JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gesmc {

/// One parsed JSON value.  A tagged tree; cheap enough for control frames.
class JsonValue {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool bool_value = false;
    double number_value = 0;
    /// Exact value of an unsigned-integer-shaped number (no sign, fraction
    /// or exponent, fits in 64 bits).  number_value alone would round 64-bit
    /// ids and seeds through double's 53-bit mantissa — uint_member returns
    /// this when set.
    bool has_uint = false;
    std::uint64_t uint_value = 0;
    std::string string_value;
    std::vector<JsonValue> array_items;
    /// Insertion order preserved (duplicate keys: last wins on lookup).
    std::vector<std::pair<std::string, JsonValue>> object_members;

    [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
    [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
    [[nodiscard]] bool is_number() const noexcept { return kind == Kind::kNumber; }
    [[nodiscard]] bool is_string() const noexcept { return kind == Kind::kString; }
    [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
    [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }

    /// Member lookup (objects only): null when absent.  Last duplicate wins.
    [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept;

    /// Typed member accessors for protocol handling: throw Error naming the
    /// key when it is absent or has the wrong type.
    [[nodiscard]] const std::string& string_member(const std::string& key) const;
    [[nodiscard]] std::uint64_t uint_member(const std::string& key) const;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
/// Throws Error on malformed input (message includes the byte offset).
[[nodiscard]] JsonValue parse_json(const std::string& text);

} // namespace gesmc
