/// \file socket.hpp
/// \brief POSIX Unix-domain socket plumbing for the sampling service.
///
/// Thin RAII + error-checked wrappers shared by the daemon (gesmc_serve),
/// the client (gesmc_submit) and the in-process protocol tests.  All
/// transfer helpers loop over partial reads/writes and retry EINTR; writes
/// use MSG_NOSIGNAL so a vanished peer surfaces as an Error (EPIPE), never
/// as a process-killing SIGPIPE — the daemon must survive any client.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "service/frame.hpp"

namespace gesmc {

/// RAII file descriptor (socket, pipe end, ...).
class FdHandle {
public:
    FdHandle() = default;
    explicit FdHandle(int fd) noexcept : fd_(fd) {}
    ~FdHandle() { reset(); }

    FdHandle(const FdHandle&) = delete;
    FdHandle& operator=(const FdHandle&) = delete;
    FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    FdHandle& operator=(FdHandle&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// Creates, binds and listens on a Unix-domain stream socket at `path`.
/// A stale socket file with no listener behind it (daemon killed hard) is
/// unlinked and rebound; a *live* listener raises Error instead of being
/// hijacked.  Throws Error on any failure (path too long, permissions...).
[[nodiscard]] FdHandle listen_unix(const std::string& path, int backlog = 16);

/// Connects to the daemon socket at `path`; throws Error on failure.
[[nodiscard]] FdHandle connect_unix(const std::string& path);

/// Writes the whole buffer (retrying partial writes / EINTR); throws Error
/// on failure — EPIPE means the peer is gone.
void write_all(int fd, const char* data, std::size_t size);
inline void write_all(int fd, const std::string& data) {
    write_all(fd, data.data(), data.size());
}

/// Appends up to one read's worth of bytes to `buffer`.  Returns false on
/// orderly EOF, true otherwise; throws Error on a read error.
[[nodiscard]] bool read_some(int fd, std::string& buffer);

/// Blocking convenience: feeds `reader` from `fd` until it yields a frame.
/// Returns nullopt on EOF before a complete frame; throws Error on read
/// errors or malformed frames.
[[nodiscard]] std::optional<Frame> read_frame(int fd, FrameReader& reader);

/// Blocking convenience: reads one '\n'-terminated line into `line` (the
/// newline is stripped), buffering extra bytes in `buffer` across calls.
/// Returns false on EOF before any newline; throws Error on read errors or
/// on a line longer than `max_line`.
[[nodiscard]] bool read_line(int fd, std::string& buffer, std::string& line,
                             std::size_t max_line = 1 << 26);

/// Whole local file as bytes — what both ends of the protocol ship over
/// frames (the daemon streams replicate outputs, the client a config
/// document).  Throws Error when the file cannot be opened.
[[nodiscard]] std::string read_file_bytes(const std::string& path);

} // namespace gesmc
