#include "service/corpus_client.hpp"

#include "pipeline/pipeline.hpp"
#include "service/json.hpp"
#include "util/check.hpp"

#include <cstdint>
#include <limits>

namespace gesmc {

namespace {

const JsonValue& member(const JsonValue& doc, const std::string& key) {
    const JsonValue* value = doc.find(key);
    GESMC_CHECK(value != nullptr, "shard report is missing \"" + key + "\"");
    return *value;
}

double number(const JsonValue& doc, const std::string& key) {
    const JsonValue& value = member(doc, key);
    // The report writer emits null for non-finite doubles (JSON has no
    // NaN/Infinity); map it back so client-side means match local ones.
    if (value.is_null()) return std::numeric_limits<double>::quiet_NaN();
    GESMC_CHECK(value.is_number(), "shard report \"" + key + "\" is not a number");
    return value.number_value;
}

std::uint64_t uint(const JsonValue& doc, const std::string& key) {
    // uint_member is exact for integer-shaped numbers — 64-bit seeds would
    // be rounded by the double path.
    return doc.uint_member(key);
}

} // namespace

CorpusGraphRow corpus_row_from_report_json(const CorpusInput& input,
                                           const std::string& json_text) {
    const JsonValue doc = parse_json(json_text);
    GESMC_CHECK(doc.is_object(), "shard report is not a JSON object");

    CorpusGraphRow row;
    row.name = input.name;
    row.input_path = input.path;
    row.seed = uint(member(doc, "config"), "seed");
    const JsonValue& graph = member(doc, "input_graph");
    row.input_nodes = uint(graph, "nodes");
    row.input_edges = uint(graph, "edges");
    row.seconds = number(doc, "total_seconds");
    row.switches_per_second = number(doc, "switches_per_second");

    const JsonValue& replicates = member(doc, "replicates");
    GESMC_CHECK(replicates.is_array(), "shard report \"replicates\" is not an array");
    row.replicates = replicates.array_items.size();

    std::uint64_t attempted = 0, accepted = 0, with_metrics = 0;
    double triangles = 0, clustering = 0, assortativity = 0, components = 0;
    for (const JsonValue& r : replicates.array_items) {
        const JsonValue& stats = member(r, "stats");
        attempted += uint(stats, "attempted");
        accepted += uint(stats, "accepted");
        if (const JsonValue* error = r.find("error"); error != nullptr) {
            GESMC_CHECK(error->is_string(), "shard report replicate error is not a string");
            if (is_interrupt_error(error->string_value)) {
                ++row.interrupted;
            } else {
                ++row.failed;
                if (row.error.empty()) row.error = error->string_value;
            }
        }
        if (const JsonValue* metrics = r.find("metrics"); metrics != nullptr) {
            ++with_metrics;
            triangles += number(*metrics, "triangles");
            clustering += number(*metrics, "global_clustering");
            assortativity += number(*metrics, "assortativity");
            components += number(*metrics, "components");
        }
    }
    row.acceptance_rate =
        attempted > 0 ? static_cast<double>(accepted) / static_cast<double>(attempted)
                      : 0;
    if (with_metrics > 0) {
        row.has_metrics = true;
        const double n = static_cast<double>(with_metrics);
        row.mean_triangles = triangles / n;
        row.mean_clustering = clustering / n;
        row.mean_assortativity = assortativity / n;
        row.mean_components = components / n;
    }
    return row;
}

} // namespace gesmc
