#include "service/socket.hpp"

#include "util/check.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace gesmc {

namespace {

std::string errno_text(const std::string& what) {
    return what + ": " + std::strerror(errno);
}

sockaddr_un make_address(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    GESMC_CHECK(path.size() < sizeof(addr.sun_path),
                "socket path too long (" + std::to_string(path.size()) + " bytes, max " +
                    std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

FdHandle make_stream_socket() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    GESMC_CHECK(fd >= 0, errno_text("socket(AF_UNIX)"));
    return FdHandle(fd);
}

} // namespace

void FdHandle::reset() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

FdHandle listen_unix(const std::string& path, int backlog) {
    const sockaddr_un addr = make_address(path);
    FdHandle fd = make_stream_socket();
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        GESMC_CHECK(errno == EADDRINUSE, errno_text("bind(" + path + ")"));
        // A file exists at the path.  Reclaim it only if it really is a
        // stale daemon socket (a previous daemon died without unlinking):
        // a live daemon -> refuse, and a non-socket file -> refuse too —
        // a typo'd --socket must never delete user data.
        struct stat st;
        GESMC_CHECK(::lstat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode),
                    path + " exists and is not a socket; refusing to replace it");
        {
            FdHandle probe = make_stream_socket();
            const int connected = ::connect(
                probe.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
            GESMC_CHECK(connected != 0,
                        "socket " + path + " already has a live daemon listening");
        }
        GESMC_CHECK(::unlink(path.c_str()) == 0,
                    errno_text("unlink stale socket " + path));
        GESMC_CHECK(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                    errno_text("bind(" + path + ")"));
    }
    GESMC_CHECK(::listen(fd.get(), backlog) == 0, errno_text("listen(" + path + ")"));
    return fd;
}

FdHandle connect_unix(const std::string& path) {
    const sockaddr_un addr = make_address(path);
    FdHandle fd = make_stream_socket();
    GESMC_CHECK(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                errno_text("connect(" + path + ")"));
    return fd;
}

void write_all(int fd, const char* data, std::size_t size) {
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw Error(errno_text("socket write"));
        }
        written += static_cast<std::size_t>(n);
    }
}

bool read_some(int fd, std::string& buffer) {
    char chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw Error(errno_text("socket read"));
        }
        if (n == 0) return false;
        buffer.append(chunk, static_cast<std::size_t>(n));
        return true;
    }
}

std::optional<Frame> read_frame(int fd, FrameReader& reader) {
    for (;;) {
        std::optional<Frame> frame = reader.next();
        if (frame.has_value()) return frame;
        std::string chunk;
        if (!read_some(fd, chunk)) return std::nullopt;
        reader.feed(chunk.data(), chunk.size());
    }
}

std::string read_file_bytes(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open " + path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

bool read_line(int fd, std::string& buffer, std::string& line, std::size_t max_line) {
    for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer, 0, newline);
            buffer.erase(0, newline + 1);
            return true;
        }
        GESMC_CHECK(buffer.size() <= max_line, "control line exceeds the protocol maximum");
        if (!read_some(fd, buffer)) return false;
    }
}

} // namespace gesmc
