/// \file timeseries.hpp
/// \brief Live telemetry: a background sampler turning the cumulative
/// metrics registry into per-interval rates, plus exporters.
///
/// The registry (obs/metrics.hpp) is cumulative-only: a counter answers
/// "how many ever", never "how fast right now".  TelemetrySampler closes
/// the gap: a background thread snapshots the registry plus (optionally)
/// `SharedExecutor::stats()` at a fixed interval, diffs consecutive
/// snapshots, and stores the resulting `TelemetryTick` — timestamp,
/// per-counter rates, per-interval histogram quantiles (e.g. the lease-wait
/// p99 *of this second*, not of the process lifetime), executor occupancy —
/// in a fixed-size ring buffer.
///
/// Consumers:
///   * the daemon's `watch` subscription pushes one 'J' frame per tick
///     (service/server.cpp), rendered live by tools/gesmc_top.cpp;
///   * `--telemetry-out FILE` appends one NDJSON row per tick, `tail -f`-able
///     like corpus_rows.ndjson;
///   * `write_metrics_prometheus` renders a cumulative snapshot in the
///     Prometheus text exposition format v0.0.4 (the daemon's `prom`
///     request and `gesmc_sample --metrics-prom`).
///
/// The sampler only ever *reads* shared state (registry snapshot, executor
/// stats) — it must never perturb sampled graph bytes, which
/// Obs.InstrumentationNeverChangesSampledBytes enforces with the sampler
/// running.
#pragma once

#include "obs/metrics.hpp"
#include "pipeline/shared_executor.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gesmc::obs {

/// One sampling interval's worth of telemetry.
struct TelemetryTick {
    std::uint64_t sequence = 0;   ///< 1-based tick number (monotone)
    std::uint64_t ts_ms = 0;      ///< wall clock at sample time (Unix ms)
    double interval_s = 0.0;      ///< measured seconds since previous sample

    ExecutorStats executor;       ///< occupancy at sample time (zeros if unsourced)

    /// Cumulative totals at sample time, name-sorted (mirrors the registry).
    std::vector<std::pair<std::string, std::uint64_t>> counter_totals;
    /// Per-second rates over the interval: (total - previous) / interval_s.
    /// Non-negative by construction (counters are monotone).
    std::vector<std::pair<std::string, double>> counter_rates;
    /// Gauge values at sample time (point-in-time, no delta).
    std::vector<std::pair<std::string, std::int64_t>> gauges;

    /// Per-interval histogram activity: quantiles are interpolated from the
    /// *bucket deltas* of the interval, so they describe recent samples
    /// only.  `max` is cumulative (a per-interval max is not derivable from
    /// a monotone snapshot).
    struct HistogramWindow {
        std::string name;
        std::uint64_t count = 0;  ///< samples recorded this interval
        double rate = 0.0;        ///< count / interval_s
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        std::uint64_t max = 0;    ///< cumulative max
    };
    std::vector<HistogramWindow> histograms;
};

/// Computes a tick from two consecutive registry snapshots.  Exposed for
/// the rate-math tests: the sampler thread calls exactly this.
[[nodiscard]] TelemetryTick diff_snapshots(const MetricsSnapshot& previous,
                                           const MetricsSnapshot& current,
                                           double interval_s);

/// Emits one tick as a single-line NDJSON row (no trailing newline) — the
/// `--telemetry-out` schema (docs/observability.md).
[[nodiscard]] std::string telemetry_tick_ndjson(const TelemetryTick& tick);

/// Emits one tick as the `watch` frame payload: the NDJSON row fields plus
/// {"event": "telemetry"} so frame consumers can dispatch on it.
[[nodiscard]] std::string telemetry_tick_frame_body(const TelemetryTick& tick);

/// Renders a cumulative snapshot in Prometheus text exposition format
/// v0.0.4: counters as `counter`, gauges as `gauge`, histograms as
/// `summary` (quantile labels from the interpolated p50/p90/p99) plus
/// `_sum`/`_count`.  Metric names are sanitized (`.` -> `_`, prefix
/// `gesmc_`).
void write_metrics_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

struct TelemetrySamplerConfig {
    std::chrono::milliseconds interval{1000};
    std::size_t ring_capacity = 256;
    /// Optional occupancy source (e.g. the daemon's SharedExecutor).
    /// Called from the sampler thread with no sampler locks held.
    std::function<ExecutorStats()> executor_stats;
    /// Optional NDJSON sink: one row appended (and flushed) per tick.
    std::string ndjson_path;
};

/// Background sampling thread + ring buffer.  start()/stop() bracket the
/// thread; sample_now() drives a tick synchronously (tests, final flush).
/// All public members are thread-safe.
class TelemetrySampler {
public:
    explicit TelemetrySampler(TelemetrySamplerConfig config);
    ~TelemetrySampler();

    TelemetrySampler(const TelemetrySampler&) = delete;
    TelemetrySampler& operator=(const TelemetrySampler&) = delete;

    /// Takes the baseline snapshot and launches the sampler thread.
    void start();

    /// Stops and joins the thread.  Idempotent; the ring stays readable.
    void stop();

    /// Takes one sample immediately and appends it to the ring (works with
    /// or without a running thread).  Returns the new tick.
    TelemetryTick sample_now();

    /// Most recent tick, if any tick exists.
    [[nodiscard]] std::optional<TelemetryTick> latest() const;

    /// All ring-resident ticks with sequence > `after_sequence`, oldest
    /// first.  Ticks older than the ring capacity are gone (it's a ring).
    [[nodiscard]] std::vector<TelemetryTick> since(std::uint64_t after_sequence) const;

    /// Blocks until a tick with sequence > `after_sequence` exists (returns
    /// the oldest such tick), the timeout elapses (nullopt), or stop() is
    /// called (nullopt).  The watch loop's wait primitive.
    [[nodiscard]] std::optional<TelemetryTick> wait_for_tick(
        std::uint64_t after_sequence, std::chrono::milliseconds timeout);

    /// Total ticks ever produced (>= ring occupancy).
    [[nodiscard]] std::uint64_t ticks() const;

    /// False iff an `ndjson_path` was configured but could not be opened
    /// (e.g. its directory does not exist).  Callers should fail loudly —
    /// the sampler itself keeps ticking into the ring either way.
    [[nodiscard]] bool ndjson_ok() const;

private:
    void sampler_loop();

    const TelemetrySamplerConfig config_;

    mutable CheckedMutex mutex_{LockRank::kTelemetryRing, "TelemetryRing"};
    CheckedCondVar tick_cv_;
    std::vector<TelemetryTick> ring_ GESMC_GUARDED_BY(mutex_);
    std::uint64_t next_sequence_ GESMC_GUARDED_BY(mutex_) = 1;
    MetricsSnapshot previous_ GESMC_GUARDED_BY(mutex_);
    std::chrono::steady_clock::time_point previous_time_ GESMC_GUARDED_BY(mutex_);
    bool has_baseline_ GESMC_GUARDED_BY(mutex_) = false;
    bool stop_requested_ GESMC_GUARDED_BY(mutex_) = false;
    bool running_ GESMC_GUARDED_BY(mutex_) = false;
    std::ofstream ndjson_ GESMC_GUARDED_BY(mutex_);
    bool ndjson_open_ GESMC_GUARDED_BY(mutex_) = false;

    std::thread thread_;
};

} // namespace gesmc::obs
