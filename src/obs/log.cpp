#include "obs/log.hpp"

#include "check/checked_mutex.hpp"
#include "obs/metrics.hpp"
#include "pipeline/report.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gesmc::obs {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_has_sink{false};
std::atomic<bool> g_stderr_sink{false};

/// The sink state.  Leaked singleton like the metrics registry: events can
/// fire from static destructors of tools, so the sink must never die first.
struct Sink {
    CheckedMutex mutex{LockRank::kEventLogSink, "EventLogSink"};
    std::ofstream file GESMC_GUARDED_BY(mutex);
    bool file_open GESMC_GUARDED_BY(mutex) = false;
};

Sink& sink() {
    static Sink* const s = new Sink();
    return *s;
}

void refresh_has_sink(bool file_open) noexcept {
    g_has_sink.store(file_open || g_stderr_sink.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void append_escaped(std::string& out, std::string_view value) {
    std::ostringstream os;
    write_json_escaped(os, std::string(value));
    out += os.str();
}

std::uint64_t now_ms() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char* to_string(LogLevel level) noexcept {
    switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    }
    return "unknown";
}

bool log_enabled(LogLevel level) noexcept {
    return g_has_sink.load(std::memory_order_relaxed) &&
           static_cast<int>(level) >= g_log_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
    g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool set_log_file(const std::string& path) {
    Sink& s = sink();
    CheckedLockGuard lock(s.mutex);
    if (path.empty()) {
        if (s.file_open) s.file.close();
        s.file_open = false;
        refresh_has_sink(false);
        return true;
    }
    std::ofstream next(path, std::ios::app);
    if (!next.good()) return false;
    if (s.file_open) s.file.close();
    s.file = std::move(next);
    s.file_open = true;
    refresh_has_sink(true);
    return true;
}

void set_log_stderr(bool enabled) noexcept {
    g_stderr_sink.store(enabled, std::memory_order_relaxed);
    // file_open is only mutated under the sink mutex; for the cheap flag it
    // is enough to OR in the stderr state — a racing set_log_file refreshes.
    g_has_sink.store(enabled || g_has_sink.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    if (!enabled) {
        Sink& s = sink();
        CheckedLockGuard lock(s.mutex);
        refresh_has_sink(s.file_open);
    }
}

void close_log_sinks() {
    g_stderr_sink.store(false, std::memory_order_relaxed);
    Sink& s = sink();
    CheckedLockGuard lock(s.mutex);
    if (s.file_open) s.file.close();
    s.file_open = false;
    refresh_has_sink(false);
}

// ---------------------------------------------------------------- LogEvent

LogEvent::LogEvent(LogLevel level, std::string_view component,
                   std::string_view event)
    : live_(log_enabled(level)) {
    if (!live_) return;
    line_.reserve(128);
    line_ += "{\"ts_ms\": ";
    line_ += std::to_string(now_ms());
    line_ += ", \"level\": \"";
    line_ += to_string(level);
    line_ += "\", \"component\": ";
    append_escaped(line_, component);
    line_ += ", \"event\": ";
    append_escaped(line_, event);
}

LogEvent& LogEvent::str(std::string_view key, std::string_view value) {
    if (!live_) return *this;
    line_ += ", ";
    append_escaped(line_, key);
    line_ += ": ";
    append_escaped(line_, value);
    return *this;
}

LogEvent& LogEvent::num(std::string_view key, std::uint64_t value) {
    if (!live_) return *this;
    line_ += ", ";
    append_escaped(line_, key);
    line_ += ": ";
    line_ += std::to_string(value);
    return *this;
}

LogEvent& LogEvent::snum(std::string_view key, std::int64_t value) {
    if (!live_) return *this;
    line_ += ", ";
    append_escaped(line_, key);
    line_ += ": ";
    line_ += std::to_string(value);
    return *this;
}

LogEvent& LogEvent::real(std::string_view key, double value) {
    if (!live_) return *this;
    line_ += ", ";
    append_escaped(line_, key);
    line_ += ": ";
    if (std::isfinite(value)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        line_ += buf;
    } else {
        line_ += "null";
    }
    return *this;
}

LogEvent& LogEvent::flag(std::string_view key, bool value) {
    if (!live_) return *this;
    line_ += ", ";
    append_escaped(line_, key);
    line_ += ": ";
    line_ += value ? "true" : "false";
    return *this;
}

LogEvent::~LogEvent() {
    if (!live_) return;
    line_ += "}\n";
    if (metrics_enabled()) {
        struct LogCounters {
            Counter& lines = MetricsRegistry::instance().counter("obs.log.lines");
        };
        static LogCounters& counters = *new LogCounters();
        counters.lines.add(1);
    }
    Sink& s = sink();
    CheckedLockGuard lock(s.mutex);
    if (s.file_open) {
        s.file.write(line_.data(), static_cast<std::streamsize>(line_.size()));
        s.file.flush();  // `tail -f`-able: one complete line per event
    }
    if (g_stderr_sink.load(std::memory_order_relaxed)) {
        std::fwrite(line_.data(), 1, line_.size(), stderr);
    }
}

} // namespace gesmc::obs
