/// \file metrics.hpp
/// \brief Process-wide metrics registry: sharded counters, gauges and
/// log2-bucketed histograms behind one runtime flag.
///
/// The measurement substrate for the whole stack (chains, hash set, thread
/// budget, executor, service).  Design constraints, in order:
///
///   * Disabled (the default) must be indistinguishable from absent: every
///     record path starts with one relaxed atomic-bool load and an early
///     return, so byte-identical determinism and hot-path perf are
///     untouched when nobody asked to measure.
///   * Enabled must stay off the contention radar: counters and histograms
///     are sharded into cache-line-padded cells and each thread writes only
///     the shard its (stable) thread ordinal hashes to — concurrent
///     increments never bounce a line between cores.
///   * Metrics are process-lifetime: registration allocates once under a
///     mutex, handles are stable references that never dangle, and reads
///     (snapshot()) sum the shards without stopping writers — a snapshot is
///     a consistent-enough view (monotone per counter), not a fence.
///
/// Values accumulate for the life of the process; reset() exists for tests
/// and for tools that want per-run numbers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gesmc {

class JsonWriter;

namespace obs {

/// Shards per counter/histogram.  Enough that a machine's worth of threads
/// rarely collides on one cell; small enough that summing stays trivial.
inline constexpr unsigned kMetricShards = 16;

/// Histogram buckets: bucket i counts values with bit_width(value) == i,
/// i.e. value in [2^(i-1), 2^i).  Index 0 is the zero bucket.
inline constexpr unsigned kHistogramBuckets = 65;

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
/// The calling thread's shard: a stable small ordinal taken modulo
/// kMetricShards (cheap thread_local read, no hashing per record).
[[nodiscard]] unsigned shard_index() noexcept;
} // namespace detail

/// The single runtime flag all record paths check first (relaxed load).
[[nodiscard]] inline bool metrics_enabled() noexcept {
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Flips collection on/off process-wide.  Daemons enable it at startup;
/// batch tools opt in via --metrics/--metrics-out/--trace.
void set_metrics_enabled(bool enabled) noexcept;

/// Monotone event count, sharded per thread.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        if (!metrics_enabled()) return;
        shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
    }

    /// Sum over shards; concurrent adds may or may not be included.
    [[nodiscard]] std::uint64_t total() const noexcept;

private:
    friend class MetricsRegistry;
    void reset() noexcept;

    struct alignas(64) Shard {
        std::atomic<std::uint64_t> value{0};
    };
    Shard shards_[kMetricShards];
};

/// Point-in-time signed value (occupancy, caps).  Not sharded: set() has
/// last-writer-wins semantics a shard sum cannot express, and gauges are
/// written at coarse rates (per lease / per graph, not per switch).
class Gauge {
public:
    void set(std::int64_t v) noexcept {
        if (metrics_enabled()) value_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t delta) noexcept {
        if (metrics_enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
    }

    [[nodiscard]] std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    friend class MetricsRegistry;
    alignas(64) std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed distribution of non-negative integer samples (wait times
/// in microseconds, probe lengths).  Sharded like Counter.
class Histogram {
public:
    void record(std::uint64_t value) noexcept;

private:
    friend class MetricsRegistry;
    void reset() noexcept;

    struct alignas(64) Shard {
        std::atomic<std::uint64_t> buckets[kHistogramBuckets];
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> max{0};
    };
    Shard shards_[kMetricShards];
};

struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    /// Non-empty buckets only: [le lower-power-of-two bound, count].
    struct Bucket {
        std::uint64_t upper_bound = 0;  ///< largest value the bucket admits
        std::uint64_t count = 0;
    };
    std::vector<Bucket> buckets;
    /// Interpolated quantile estimates from the log2 buckets (0 when
    /// count == 0).  Exact only up to bucket resolution: the true quantile
    /// lies within the reported value's bucket.
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/// Interpolated quantile estimate (q in [0, 1]) from a snapshot's log2
/// buckets: walks the cumulative counts to the bucket containing rank
/// q * count and interpolates linearly inside it.  Returns 0 for an empty
/// histogram.  Shared by the JSON, Prometheus and time-series emitters.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& h, double q);

/// One coherent read of every registered metric, name-sorted.
struct MetricsSnapshot {
    bool enabled = false;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
};

/// Name -> metric registry (process singleton).  Lookup takes a mutex;
/// call sites cache the returned reference (static local) so hot paths
/// never re-enter the map.  Handles live until process exit.
class MetricsRegistry {
public:
    static MetricsRegistry& instance();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    [[nodiscard]] MetricsSnapshot snapshot() const;

    /// Zeroes every registered value (names and handles stay valid).
    void reset() noexcept;

private:
    MetricsRegistry() = default;
    struct Impl;
    Impl& impl() const;
};

/// Emits a snapshot as one JSON object: {"enabled": ..., "counters": {...},
/// "gauges": {...}, "histograms": {...}} — embedded by run reports and the
/// daemon's metrics frame (schema in docs/observability.md).
void write_metrics_json(JsonWriter& w, const MetricsSnapshot& snapshot);

} // namespace obs
} // namespace gesmc
