/// \file log.hpp
/// \brief Structured, leveled JSON-lines event log for the library.
///
/// The library's lifecycle and error narration (pipeline start/finish,
/// replicate failures, daemon requests, corpus graph completions) goes
/// through one process-wide sink as machine-parseable JSON lines instead of
/// ad-hoc stderr chatter:
///
///   {"ts_ms":1722990000123,"level":"info","component":"pipeline",
///    "event":"replicate_done","replicate":3,"seconds":0.42}
///
/// Design constraints mirror the metrics registry:
///
///   * Disabled (the default) must be indistinguishable from absent: every
///     emit starts with one relaxed atomic load and an early return.
///   * The sink is guarded by a `CheckedMutex` at `LockRank::kEventLogSink`
///     — low enough that any subsystem may emit while holding its own
///     locks; the only lock acquired underneath is the metrics registry.
///   * Emitting must never throw and never touch sampled bytes: failures
///     to write are swallowed (the log is diagnostics, not state).
///
/// Events are built fluently and emitted by the builder's destructor:
///
///   GESMC_LOG_EVENT(Info, "service", "job_accepted").num("job", id);
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gesmc::obs {

enum class LogLevel : int {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
};

/// Human-readable lowercase name ("debug", "info", "warn", "error").
[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// True when an event at `level` would currently be written (sink present
/// and level at or above the threshold).  One relaxed load each.
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Sets the minimum level written to the sink (default kInfo).
void set_log_level(LogLevel level) noexcept;

/// Routes events to `path` (append mode).  An empty path closes any file
/// sink.  Returns false (and leaves the previous sink in place) when the
/// file cannot be opened.
bool set_log_file(const std::string& path);

/// Routes events to stderr (in addition to a file sink if one is set).
void set_log_stderr(bool enabled) noexcept;

/// Closes every sink; subsequent emits are no-ops.  Used by tests.
void close_log_sinks();

/// One structured event, emitted as a single JSON line when the builder
/// goes out of scope.  All field appenders are no-ops when the event's
/// level is filtered, so building costs nothing when the log is off.
class LogEvent {
public:
    LogEvent(LogLevel level, std::string_view component, std::string_view event);
    ~LogEvent();

    LogEvent(const LogEvent&) = delete;
    LogEvent& operator=(const LogEvent&) = delete;

    /// Appends a string field (JSON-escaped).
    LogEvent& str(std::string_view key, std::string_view value);
    /// Appends an unsigned integer field.
    LogEvent& num(std::string_view key, std::uint64_t value);
    /// Appends a signed integer field.
    LogEvent& snum(std::string_view key, std::int64_t value);
    /// Appends a floating-point field (null when non-finite).
    LogEvent& real(std::string_view key, double value);
    /// Appends a boolean field.
    LogEvent& flag(std::string_view key, bool value);

private:
    bool live_;
    std::string line_;
};

} // namespace gesmc::obs

/// Builds an event only when its level passes the filter; the common
/// disabled case costs one branch and constructs nothing.
#define GESMC_LOG_EVENT(level, component, event) \
    ::gesmc::obs::LogEvent(::gesmc::obs::LogLevel::k##level, (component), (event))
