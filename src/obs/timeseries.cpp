#include "obs/timeseries.hpp"

#include "pipeline/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace gesmc::obs {

namespace {

std::uint64_t now_unix_ms() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/// Cumulative value of `name` in a snapshot's counter list (0 if absent —
/// a counter registered between two samples has an implicit previous of 0).
std::uint64_t counter_at(const MetricsSnapshot& snap, const std::string& name) {
    for (const auto& [n, v] : snap.counters) {
        if (n == name) return v;
    }
    return 0;
}

const HistogramSnapshot* histogram_at(const MetricsSnapshot& snap,
                                      const std::string& name) {
    for (const HistogramSnapshot& h : snap.histograms) {
        if (h.name == name) return &h;
    }
    return nullptr;
}

void write_executor_json(JsonWriter& w, const ExecutorStats& e) {
    w.begin_object();
    w.kv("threads", e.threads);
    w.kv("leased", e.leased);
    w.kv("lease_waiters", e.lease_waiters);
    w.kv("active_runs", e.active_runs);
    w.kv("pending_replicates", e.pending_replicates);
    w.kv("inflight_replicates", e.inflight_replicates);
    w.end_object();
}

void write_tick_fields(JsonWriter& w, const TelemetryTick& tick) {
    w.kv("seq", tick.sequence);
    w.kv("ts_ms", tick.ts_ms);
    w.kv("interval_s", tick.interval_s);
    w.key("executor");
    write_executor_json(w, tick.executor);
    w.key("rates");
    w.begin_object();
    for (const auto& [name, rate] : tick.counter_rates) w.kv(name, rate);
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, total] : tick.counter_totals) w.kv(name, total);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, value] : tick.gauges) {
        // JsonWriter has no signed overload; negative gauges (analysis
        // z-scores, assortativity fixed-point) take the double path, which
        // is exact far beyond any gauge magnitude here.
        if (value >= 0) {
            w.kv(name, static_cast<std::uint64_t>(value));
        } else {
            w.kv(name, static_cast<double>(value));
        }
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const TelemetryTick::HistogramWindow& h : tick.histograms) {
        w.key(h.name);
        w.begin_object();
        w.kv("count", h.count);
        w.kv("rate", h.rate);
        w.kv("p50", h.p50);
        w.kv("p90", h.p90);
        w.kv("p99", h.p99);
        w.kv("max", h.max);
        w.end_object();
    }
    w.end_object();
}

/// JsonWriter pretty-prints; a telemetry row must be a single line (NDJSON,
/// one `watch` frame per line when piped).  Every string value is
/// JSON-escaped — no literal newline survives inside one — so a newline and
/// the indentation after it are always formatting, safe to strip.
std::string collapse_to_one_line(const std::string& pretty) {
    std::string out;
    out.reserve(pretty.size());
    for (std::size_t i = 0; i < pretty.size(); ++i) {
        if (pretty[i] != '\n') {
            out.push_back(pretty[i]);
            continue;
        }
        while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
    }
    return out;
}

/// Prometheus metric names admit [a-zA-Z0-9_:] only; the registry's
/// dot-separated names map '.' (and any other byte) to '_'.
std::string prometheus_name(const std::string& name) {
    std::string out = "gesmc_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void append_double(std::string& out, double value) {
    char buf[64];
    if (std::isfinite(value)) {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    } else {
        std::snprintf(buf, sizeof(buf), "NaN");
    }
    out += buf;
}

} // namespace

// ---------------------------------------------------------- rate math

TelemetryTick diff_snapshots(const MetricsSnapshot& previous,
                             const MetricsSnapshot& current,
                             double interval_s) {
    TelemetryTick tick;
    tick.interval_s = interval_s;
    const bool rateable = interval_s > 0.0;

    tick.counter_totals = current.counters;
    tick.counter_rates.reserve(current.counters.size());
    for (const auto& [name, total] : current.counters) {
        const std::uint64_t before = counter_at(previous, name);
        // A reset() between samples makes total < before; clamp to zero
        // rather than emit a negative rate.
        const std::uint64_t delta = total >= before ? total - before : 0;
        tick.counter_rates.emplace_back(
            name, rateable ? static_cast<double>(delta) / interval_s : 0.0);
    }

    tick.gauges = current.gauges;

    tick.histograms.reserve(current.histograms.size());
    for (const HistogramSnapshot& h : current.histograms) {
        const HistogramSnapshot* prev = histogram_at(previous, h.name);
        // The interval's activity as a histogram of its own: subtract the
        // previous cumulative bucket counts, then reuse the shared
        // quantile interpolation on the difference.
        HistogramSnapshot window;
        window.name = h.name;
        window.max = h.max;
        const std::uint64_t prev_count = prev != nullptr ? prev->count : 0;
        window.count = h.count >= prev_count ? h.count - prev_count : 0;
        for (const HistogramSnapshot::Bucket& b : h.buckets) {
            std::uint64_t before = 0;
            if (prev != nullptr) {
                for (const HistogramSnapshot::Bucket& pb : prev->buckets) {
                    if (pb.upper_bound == b.upper_bound) {
                        before = pb.count;
                        break;
                    }
                }
            }
            if (b.count > before) {
                window.buckets.push_back({b.upper_bound, b.count - before});
            }
        }
        TelemetryTick::HistogramWindow out;
        out.name = h.name;
        out.count = window.count;
        out.rate = rateable ? static_cast<double>(window.count) / interval_s : 0.0;
        out.p50 = histogram_quantile(window, 0.50);
        out.p90 = histogram_quantile(window, 0.90);
        out.p99 = histogram_quantile(window, 0.99);
        out.max = h.max;
        tick.histograms.push_back(std::move(out));
    }
    return tick;
}

// ---------------------------------------------------------------- emitters

std::string telemetry_tick_ndjson(const TelemetryTick& tick) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    write_tick_fields(w, tick);
    w.end_object();
    return collapse_to_one_line(os.str());
}

std::string telemetry_tick_frame_body(const TelemetryTick& tick) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.kv("event", "telemetry");
    write_tick_fields(w, tick);
    w.end_object();
    return collapse_to_one_line(os.str());
}

void write_metrics_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
    std::string out;
    out.reserve(4096);
    for (const auto& [name, value] : snapshot.counters) {
        const std::string prom = prometheus_name(name);
        out += "# HELP " + prom + " gesmc counter " + name + "\n";
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string prom = prometheus_name(name);
        out += "# HELP " + prom + " gesmc gauge " + name + "\n";
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " + std::to_string(value) + "\n";
    }
    for (const HistogramSnapshot& h : snapshot.histograms) {
        const std::string prom = prometheus_name(h.name);
        out += "# HELP " + prom + " gesmc histogram " + h.name + "\n";
        out += "# TYPE " + prom + " summary\n";
        const struct {
            const char* label;
            double value;
        } quantiles[] = {{"0.5", h.p50}, {"0.9", h.p90}, {"0.99", h.p99}};
        for (const auto& q : quantiles) {
            out += prom + "{quantile=\"" + q.label + "\"} ";
            append_double(out, h.count > 0 ? q.value : 0.0);
            out += "\n";
        }
        out += prom + "_sum " + std::to_string(h.sum) + "\n";
        out += prom + "_count " + std::to_string(h.count) + "\n";
    }
    os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

// ----------------------------------------------------------------- sampler

TelemetrySampler::TelemetrySampler(TelemetrySamplerConfig config)
    : config_(std::move(config)) {
    CheckedLockGuard lock(mutex_);
    ring_.reserve(std::max<std::size_t>(config_.ring_capacity, 1));
    if (!config_.ndjson_path.empty()) {
        ndjson_.open(config_.ndjson_path, std::ios::trunc);
        ndjson_open_ = ndjson_.good();
    }
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
    {
        CheckedLockGuard lock(mutex_);
        if (running_) return;
        running_ = true;
        stop_requested_ = false;
    }
    // Baseline snapshot so the first interval has a meaningful delta.
    const MetricsSnapshot baseline = MetricsRegistry::instance().snapshot();
    const auto now = std::chrono::steady_clock::now();
    {
        CheckedLockGuard lock(mutex_);
        previous_ = baseline;
        previous_time_ = now;
        has_baseline_ = true;
    }
    thread_ = std::thread([this] { sampler_loop(); });
}

void TelemetrySampler::stop() {
    bool join = false;
    {
        CheckedLockGuard lock(mutex_);
        stop_requested_ = true;
        join = running_;
        running_ = false;
    }
    tick_cv_.notify_all();
    if (join && thread_.joinable()) thread_.join();
}

void TelemetrySampler::sampler_loop() {
    for (;;) {
        {
            CheckedUniqueLock lock(mutex_);
            const bool stopping = tick_cv_.wait_for(
                lock, config_.interval, [this] {
                    mutex_.assert_held();
                    return stop_requested_;
                });
            if (stopping) return;
        }
        (void)sample_now();
    }
}

TelemetryTick TelemetrySampler::sample_now() {
    // Both snapshots are taken with no sampler lock held: the registry
    // snapshot locks rank 0 and the executor source may lock the job
    // manager (rank 70), both incompatible with holding rank 8 here.
    MetricsSnapshot current = MetricsRegistry::instance().snapshot();
    const ExecutorStats exec =
        config_.executor_stats ? config_.executor_stats() : ExecutorStats{};
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t ts_ms = now_unix_ms();

    TelemetryTick tick;
    {
        CheckedLockGuard lock(mutex_);
        double interval_s = 0.0;
        if (has_baseline_) {
            interval_s =
                std::chrono::duration<double>(now - previous_time_).count();
        }
        tick = diff_snapshots(has_baseline_ ? previous_ : current, current,
                              interval_s);
        tick.sequence = next_sequence_++;
        tick.ts_ms = ts_ms;
        tick.executor = exec;
        previous_ = std::move(current);
        previous_time_ = now;
        has_baseline_ = true;

        const std::size_t capacity = std::max<std::size_t>(config_.ring_capacity, 1);
        if (ring_.size() < capacity) {
            ring_.push_back(tick);
        } else {
            ring_[static_cast<std::size_t>((tick.sequence - 1) % capacity)] = tick;
        }
        if (ndjson_open_) {
            const std::string row = telemetry_tick_ndjson(tick);
            ndjson_.write(row.data(), static_cast<std::streamsize>(row.size()));
            ndjson_.put('\n');
            ndjson_.flush();  // one complete row per tick for tail -f
        }
    }
    tick_cv_.notify_all();
    return tick;
}

std::optional<TelemetryTick> TelemetrySampler::latest() const {
    CheckedLockGuard lock(mutex_);
    if (next_sequence_ == 1) return std::nullopt;
    const std::uint64_t seq = next_sequence_ - 1;
    const std::size_t capacity = std::max<std::size_t>(config_.ring_capacity, 1);
    return ring_[static_cast<std::size_t>((seq - 1) % capacity)];
}

std::vector<TelemetryTick> TelemetrySampler::since(
    std::uint64_t after_sequence) const {
    CheckedLockGuard lock(mutex_);
    std::vector<TelemetryTick> out;
    if (next_sequence_ == 1) return out;
    const std::uint64_t newest = next_sequence_ - 1;
    const std::uint64_t oldest = newest >= ring_.size()
                                     ? newest - ring_.size() + 1
                                     : 1;
    const std::size_t capacity = std::max<std::size_t>(config_.ring_capacity, 1);
    for (std::uint64_t seq = std::max(after_sequence + 1, oldest); seq <= newest;
         ++seq) {
        out.push_back(ring_[static_cast<std::size_t>((seq - 1) % capacity)]);
    }
    return out;
}

std::optional<TelemetryTick> TelemetrySampler::wait_for_tick(
    std::uint64_t after_sequence, std::chrono::milliseconds timeout) {
    CheckedUniqueLock lock(mutex_);
    const bool ready = tick_cv_.wait_for(lock, timeout, [this, after_sequence] {
        mutex_.assert_held();
        return stop_requested_ || next_sequence_ > after_sequence + 1;
    });
    if (!ready || stop_requested_) return std::nullopt;
    const std::uint64_t newest = next_sequence_ - 1;
    const std::uint64_t oldest =
        newest >= ring_.size() ? newest - ring_.size() + 1 : 1;
    const std::uint64_t seq = std::max(after_sequence + 1, oldest);
    const std::size_t capacity = std::max<std::size_t>(config_.ring_capacity, 1);
    return ring_[static_cast<std::size_t>((seq - 1) % capacity)];
}

std::uint64_t TelemetrySampler::ticks() const {
    CheckedLockGuard lock(mutex_);
    return next_sequence_ - 1;
}

bool TelemetrySampler::ndjson_ok() const {
    CheckedLockGuard lock(mutex_);
    return config_.ndjson_path.empty() || ndjson_open_;
}

} // namespace gesmc::obs
