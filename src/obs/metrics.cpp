#include "obs/metrics.hpp"

#include "check/checked_mutex.hpp"
#include "pipeline/report.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>

namespace gesmc::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

unsigned shard_index() noexcept {
    static std::atomic<unsigned> next_ordinal{0};
    // One fetch_add per thread lifetime; afterwards a plain TLS read.
    static thread_local const unsigned shard =
        next_ordinal.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return shard;
}

} // namespace detail

void set_metrics_enabled(bool enabled) noexcept {
    detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Counter

std::uint64_t Counter::total() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
}

void Counter::reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Histogram

void Histogram::record(std::uint64_t value) noexcept {
    if (!metrics_enabled()) return;
    Shard& s = shards_[detail::shard_index()];
    s.buckets[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = s.max.load(std::memory_order_relaxed);
    while (value > prev &&
           !s.max.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
}

void Histogram::reset() noexcept {
    for (Shard& s : shards_) {
        for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        s.max.store(0, std::memory_order_relaxed);
    }
}

// ---------------------------------------------------------------- registry

struct MetricsRegistry::Impl {
    /// Innermost lock of the whole process (rank 0): registrations happen
    /// under subsystem locks (e.g. ThreadBudget registers its counters
    /// while holding its own mutex), never the other way around.
    mutable CheckedMutex mutex{LockRank::kMetricsRegistry, "MetricsRegistry"};
    // unique_ptr values: map growth must never move a metric another thread
    // holds a reference to.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
        GESMC_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
        GESMC_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
        GESMC_GUARDED_BY(mutex);
};

MetricsRegistry& MetricsRegistry::instance() {
    // Leaked on purpose: metric references handed out to static call-site
    // caches must outlive every destructor that might still record.
    static MetricsRegistry* const registry = new MetricsRegistry();
    return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
    static Impl* const impl = new Impl();
    return *impl;
}

// Lookup bodies are spelled out per accessor (not a shared template taking
// the map by reference): the thread-safety analysis only tracks GUARDED_BY
// members accessed where the lock is visibly held, and passing a guarded
// map by reference would trip -Wthread-safety-reference at the call sites.

Counter& MetricsRegistry::counter(std::string_view name) {
    Impl& i = impl();
    CheckedLockGuard lock(i.mutex);
    auto it = i.counters.find(name);
    if (it == i.counters.end()) {
        it = i.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    Impl& i = impl();
    CheckedLockGuard lock(i.mutex);
    auto it = i.gauges.find(name);
    if (it == i.gauges.end()) {
        it = i.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
    Impl& i = impl();
    CheckedLockGuard lock(i.mutex);
    auto it = i.histograms.find(name);
    if (it == i.histograms.end()) {
        it = i.histograms.emplace(std::string(name), std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    Impl& i = impl();
    MetricsSnapshot snap;
    snap.enabled = metrics_enabled();
    CheckedLockGuard lock(i.mutex);
    snap.counters.reserve(i.counters.size());
    for (const auto& [name, counter] : i.counters) {
        snap.counters.emplace_back(name, counter->total());
    }
    snap.gauges.reserve(i.gauges.size());
    for (const auto& [name, gauge] : i.gauges) {
        snap.gauges.emplace_back(name, gauge->value());
    }
    snap.histograms.reserve(i.histograms.size());
    for (const auto& [name, histogram] : i.histograms) {
        HistogramSnapshot h;
        h.name = name;
        std::uint64_t buckets[kHistogramBuckets] = {};
        for (const Histogram::Shard& s : histogram->shards_) {
            for (unsigned b = 0; b < kHistogramBuckets; ++b) {
                buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
            }
            h.count += s.count.load(std::memory_order_relaxed);
            h.sum += s.sum.load(std::memory_order_relaxed);
            h.max = std::max(h.max, s.max.load(std::memory_order_relaxed));
        }
        for (unsigned b = 0; b < kHistogramBuckets; ++b) {
            if (buckets[b] == 0) continue;
            // bucket b holds values of bit_width b: upper bound 2^b - 1.
            const std::uint64_t upper =
                b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
            h.buckets.push_back({upper, buckets[b]});
        }
        h.p50 = histogram_quantile(h, 0.50);
        h.p90 = histogram_quantile(h, 0.90);
        h.p99 = histogram_quantile(h, 0.99);
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

void MetricsRegistry::reset() noexcept {
    Impl& i = impl();
    CheckedLockGuard lock(i.mutex);
    for (auto& [name, counter] : i.counters) counter->reset();
    for (auto& [name, gauge] : i.gauges) gauge->value_.store(0, std::memory_order_relaxed);
    for (auto& [name, histogram] : i.histograms) histogram->reset();
}

// --------------------------------------------------------------- quantiles

double histogram_quantile(const HistogramSnapshot& h, double q) {
    if (h.count == 0 || h.buckets.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested quantile among `count` samples, 1-based.
    const double rank = q * static_cast<double>(h.count);
    double cumulative = 0.0;
    for (const HistogramSnapshot::Bucket& b : h.buckets) {
        const double before = cumulative;
        cumulative += static_cast<double>(b.count);
        if (cumulative < rank) continue;
        // Linear interpolation inside [lower, upper].  Bucket with upper
        // bound 2^k - 1 admits [2^(k-1), 2^k); the zero bucket is exact.
        if (b.upper_bound == 0) return 0.0;
        const double upper = static_cast<double>(b.upper_bound);
        const double lower = b.upper_bound == ~std::uint64_t{0}
                                 ? upper / 2.0 + 1.0
                                 : static_cast<double>((b.upper_bound >> 1) + 1);
        const double fraction =
            (rank - before) / static_cast<double>(b.count);
        const double estimate = lower + (upper - lower) * fraction;
        // Never report beyond the observed maximum — the top bucket's
        // upper bound can overshoot it by almost 2x.
        return h.max > 0 ? std::min(estimate, static_cast<double>(h.max))
                         : estimate;
    }
    return static_cast<double>(h.max);
}

// -------------------------------------------------------------------- JSON

void write_metrics_json(JsonWriter& w, const MetricsSnapshot& snapshot) {
    w.begin_object();
    w.kv("enabled", snapshot.enabled);
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : snapshot.counters) w.kv(name, value);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, value] : snapshot.gauges) {
        // JsonWriter has no signed overload; negative gauges (analysis
        // z-scores, assortativity fixed-point) go through the double path,
        // which is exact far beyond any gauge magnitude here.
        if (value >= 0) {
            w.kv(name, static_cast<std::uint64_t>(value));
        } else {
            w.kv(name, static_cast<double>(value));
        }
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const HistogramSnapshot& h : snapshot.histograms) {
        w.key(h.name);
        w.begin_object();
        w.kv("count", h.count);
        w.kv("sum", h.sum);
        w.kv("max", h.max);
        if (h.count > 0) {
            w.kv("mean", static_cast<double>(h.sum) / static_cast<double>(h.count));
            w.kv("p50", h.p50);
            w.kv("p90", h.p90);
            w.kv("p99", h.p99);
        }
        w.key("buckets");
        w.begin_array();
        for (const HistogramSnapshot::Bucket& b : h.buckets) {
            w.begin_object();
            w.kv("le", b.upper_bound);
            w.kv("count", b.count);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

} // namespace gesmc::obs
