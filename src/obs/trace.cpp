#include "obs/trace.hpp"

#include "check/checked_mutex.hpp"
#include "util/check.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace gesmc::obs {

namespace detail {
std::atomic<bool> g_trace_active{false};
} // namespace detail

namespace {

struct TraceEvent {
    const char* name = nullptr;
    const char* category = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    unsigned tid = 0;
    TraceArg args[4];
    unsigned num_args = 0;
};

struct TraceState {
    CheckedMutex mutex{LockRank::kTraceSession, "TraceSession"};
    std::vector<TraceEvent> events GESMC_GUARDED_BY(mutex);
    /// Session epoch as a raw steady_clock nanosecond count.  Atomic rather
    /// than guarded: TraceSpan timestamps read it on the hot path without
    /// the lock while start() publishes a new session (found as a data race
    /// when the lock gate landed — the old time_point was written under the
    /// mutex but read outside it).  release/acquire so a span that sees the
    /// new epoch also sees it fully written.
    std::atomic<std::int64_t> epoch_ns{0};
    /// Bumped on every start(): a span begun under a previous session must
    /// not leak its event into this one.
    std::uint64_t generation GESMC_GUARDED_BY(mutex) = 0;
};

TraceState& state() {
    static TraceState* const s = new TraceState();
    return *s;
}

/// Small stable per-thread id (Chrome wants numbers; std::thread::id is
/// opaque and often huge).
unsigned trace_thread_id() noexcept {
    static std::atomic<unsigned> next{1};
    static thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint64_t now_ns(const TraceState& s) noexcept {
    const std::int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count();
    return static_cast<std::uint64_t>(now - s.epoch_ns.load(std::memory_order_acquire));
}

void write_microseconds(std::ostream& os, std::uint64_t ns) {
    // Chrome "ts"/"dur" are microseconds; keep sub-µs resolution as a
    // decimal fraction (Perfetto accepts fractional timestamps).
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
}

void write_json_string(std::ostream& os, const char* text) {
    os << '"';
    for (const char* p = text; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os << buf;
        } else {
            os << c;
        }
    }
    os << '"';
}

void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events) {
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const TraceEvent& e : events) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"name\": ";
        write_json_string(os, e.name);
        os << ", \"cat\": ";
        write_json_string(os, e.category);
        os << ", \"ph\": \"X\", \"ts\": ";
        write_microseconds(os, e.start_ns);
        os << ", \"dur\": ";
        write_microseconds(os, e.dur_ns);
        os << ", \"pid\": 1, \"tid\": " << e.tid;
        if (e.num_args > 0) {
            os << ", \"args\": {";
            for (unsigned i = 0; i < e.num_args; ++i) {
                if (i > 0) os << ", ";
                write_json_string(os, e.args[i].key);
                os << ": " << e.args[i].value;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

std::vector<TraceEvent> stop_and_take() {
    detail::g_trace_active.store(false, std::memory_order_relaxed);
    TraceState& s = state();
    CheckedLockGuard lock(s.mutex);
    std::vector<TraceEvent> events = std::move(s.events);
    s.events.clear();
    return events;
}

} // namespace

// ------------------------------------------------------------ TraceSession

void TraceSession::start() {
    TraceState& s = state();
    {
        CheckedLockGuard lock(s.mutex);
        if (trace_enabled()) return;
        s.events.clear();
        s.epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count(),
                         std::memory_order_release);
        ++s.generation;
    }
    detail::g_trace_active.store(true, std::memory_order_relaxed);
}

void TraceSession::stop_and_write(std::ostream& os) {
    write_trace_json(os, stop_and_take());
}

void TraceSession::stop_and_write(const std::string& path) {
    const std::vector<TraceEvent> events = stop_and_take();
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open trace file for writing: " + path);
    write_trace_json(os, events);
    GESMC_CHECK(os.good(), "writing trace file failed: " + path);
}

std::string TraceSession::stop_to_string() {
    std::ostringstream os;
    stop_and_write(os);
    return os.str();
}

void TraceSession::stop() noexcept { stop_and_take(); }

std::size_t TraceSession::event_count() {
    TraceState& s = state();
    CheckedLockGuard lock(s.mutex);
    return s.events.size();
}

// --------------------------------------------------------------- TraceSpan

TraceSpan::TraceSpan(const char* name, const char* category,
                     std::initializer_list<TraceArg> args) noexcept
    : name_(name), category_(category) {
    if (!trace_enabled()) return;
    for (const TraceArg& arg : args) {
        if (num_args_ >= 4) break;
        args_[num_args_++] = arg;
    }
    TraceState& s = state();
    {
        CheckedLockGuard lock(s.mutex);
        generation_ = s.generation;
    }
    start_ns_ = now_ns(s);
    active_ = true;
}

TraceSpan::~TraceSpan() {
    if (!active_ || !trace_enabled()) return;
    TraceState& s = state();
    TraceEvent e;
    e.name = name_;
    e.category = category_;
    e.start_ns = start_ns_;
    e.dur_ns = now_ns(s) - start_ns_;
    e.tid = trace_thread_id();
    for (unsigned i = 0; i < num_args_; ++i) e.args[i] = args_[i];
    e.num_args = num_args_;
    CheckedLockGuard lock(s.mutex);
    // A span begun under an earlier (stopped) session carries timestamps
    // against a dead epoch — drop it rather than corrupt this session.
    if (generation_ != s.generation) return;
    s.events.push_back(e);
}

} // namespace gesmc::obs
