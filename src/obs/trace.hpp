/// \file trace.hpp
/// \brief Span recording emitted as Chrome trace_event JSON.
///
/// A TraceSession captures *where a run's wall clock goes* — superstep
/// compute vs. checkpoint IO vs. lease waits vs. service frame handling —
/// as complete ("ph": "X") events loadable in chrome://tracing or Perfetto.
/// Spans are coarse by design (one per superstep / lease / replicate /
/// request, never per switch), so a single mutex-guarded event buffer is
/// plenty; the per-span cost when *inactive* is one relaxed atomic load.
///
/// Usage: TraceSession::start() begins recording; RAII TraceSpan objects
/// measure scopes; stop_and_write(path) emits the JSON and ends the
/// session.  Span names and categories must be string literals (the
/// session stores the pointers, not copies).  One session at a time;
/// events recorded while no session is active are dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>

namespace gesmc::obs {

namespace detail {
extern std::atomic<bool> g_trace_active;
} // namespace detail

/// True while a TraceSession is recording (relaxed load — the fast gate
/// every span constructor checks first).
[[nodiscard]] inline bool trace_enabled() noexcept {
    return detail::g_trace_active.load(std::memory_order_relaxed);
}

/// One numeric span argument ("replicate": 3).  Keys must be literals.
struct TraceArg {
    const char* key = nullptr;
    std::uint64_t value = 0;
};

/// Process-wide recording session (all members static: there is one event
/// buffer, guarded by an internal mutex).
class TraceSession {
public:
    /// Starts recording (clears any events left by a stopped session).
    /// No-op if already active.
    static void start();

    [[nodiscard]] static bool active() noexcept { return trace_enabled(); }

    /// Stops recording and writes the Chrome trace_event JSON document.
    /// Throws Error if the file cannot be written (the session still ends).
    static void stop_and_write(const std::string& path);
    static void stop_and_write(std::ostream& os);

    /// Stops recording, returning the JSON document (tests).
    static std::string stop_to_string();

    /// Stops recording and discards the events.
    static void stop() noexcept;

    /// Recorded event count (0 when inactive and after stop).
    [[nodiscard]] static std::size_t event_count();
};

/// RAII complete-event span: measures construction-to-destruction and
/// appends one "ph": "X" event if the session was active at construction.
/// Up to four numeric args; name/category/keys must be string literals.
class TraceSpan {
public:
    explicit TraceSpan(const char* name, const char* category = "gesmc") noexcept
        : TraceSpan(name, category, {}) {}
    TraceSpan(const char* name, const char* category,
              std::initializer_list<TraceArg> args) noexcept;
    ~TraceSpan();

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    const char* name_;
    const char* category_;
    std::uint64_t start_ns_ = 0;
    std::uint64_t generation_ = 0;  ///< session the span belongs to
    TraceArg args_[4];
    unsigned num_args_ = 0;
    bool active_ = false;
};

} // namespace gesmc::obs
