/// \file checked_mutex.hpp
/// \brief Annotated mutex wrapper with an optional runtime lock-rank detector.
///
/// Every `std::mutex` in the concurrent subsystems is wrapped in a
/// `CheckedMutex` that carries (1) Clang thread-safety capability
/// attributes, so the clang CI leg statically proves lock discipline under
/// `-Wthread-safety -Werror`, and (2) a documented `LockRank` used by a
/// runtime deadlock detector compiled in only when the `GESMC_CHECKED_LOCKS`
/// CMake option defines the macro of the same name (Debug / TSan CI legs).
///
/// Ranking convention: **higher rank = outer lock**.  A thread may only
/// acquire a mutex whose rank is *strictly lower* than every rank it
/// already holds.  Any acquisition order consistent with the global rank
/// table is deadlock-free; an inversion aborts immediately with the held
/// stack and a backtrace instead of deadlocking some unlucky night in
/// production.  In Release builds the wrapper is exactly a `std::mutex`
/// (the rank is not even stored).
///
/// The full rank table with the nesting evidence for each edge lives in
/// docs/static_analysis.md; keep the two in sync.
#pragma once

#include <condition_variable>
#include <mutex>

#include "check/thread_safety.hpp"

namespace gesmc {

/// Global lock ranks, outermost (largest) to innermost (smallest).
///
/// Gaps are deliberate so future locks slot in without renumbering.  The
/// order encodes every nesting that exists today, e.g. `ThreadBudget`
/// registers metrics counters while holding its own mutex, so
/// `kMetricsRegistry < kThreadBudget`.
enum class LockRank : int {
    kMetricsRegistry = 0,    ///< obs/metrics.cpp registry maps (innermost leaf)
    kEventLogSink = 5,       ///< obs/log.cpp event-log sink (emits from any layer)
    kTelemetryRing = 8,      ///< obs/timeseries.cpp sampler ring buffer
    kTraceSession = 10,      ///< obs/trace.cpp event buffer
    kEpochLimbo = 15,        ///< hashing/epoch.cpp retired-pointer limbo list
    kThreadPool = 20,        ///< parallel/thread_pool.cpp fork-join state
    kThreadBudget = 30,      ///< parallel/pool_lease.cpp admission gate
    kSocketObserver = 40,    ///< service/server.cpp per-job frame stream
    kSharedExecutor = 50,    ///< pipeline/shared_executor.cpp run queues
    kCorpusRowStream = 60,   ///< pipeline/corpus.cpp ndjson row stream
    kCorpusLog = 62,         ///< pipeline/corpus.cpp progress log
    kJobManager = 70,        ///< service/job_manager.cpp job table
    kServerConnections = 80, ///< service/server.cpp connection registry
    kToolProgress = 90,      ///< tools/ progress printers (outermost)
};

#if defined(GESMC_CHECKED_LOCKS)

namespace check_detail {

/// Validates that acquiring (`mutex`, `rank`) now would respect the rank
/// order; on violation invokes the handler (abort by default) and returns
/// false.  Runs *before* the underlying lock call: a genuine inversion
/// under contention would deadlock inside the lock, so checking afterwards
/// would report nothing.
bool check_acquire(const void* mutex, int rank, const char* name);

/// Pushes (`mutex`, `rank`) onto this thread's held stack (no checks).
void record_acquire(const void* mutex, int rank, const char* name);

/// Record the release of `mutex` (need not be LIFO).
void note_release(const void* mutex);

/// Abort (via the violation handler) unless `mutex` is held by this thread.
void note_assert_held(const void* mutex, const char* name);

}  // namespace check_detail

/// Test hook: replace the abort-with-stacks behaviour.  The handler
/// receives a multi-line human-readable report.  Passing `nullptr`
/// restores the default (print to stderr + backtrace + `std::abort`).
/// Returns the previous handler.  Only available in checked builds.
using LockViolationHandler = void (*)(const char* report);
LockViolationHandler set_lock_violation_handler(LockViolationHandler handler);

#endif  // GESMC_CHECKED_LOCKS

/// A `std::mutex` carrying Clang capability attributes and a lock rank.
///
/// Not copyable or movable (like `std::mutex`).  In unchecked builds the
/// rank and name are discarded at construction and the calls compile to
/// bare `std::mutex` operations.
class GESMC_CAPABILITY("mutex") CheckedMutex {
public:
#if defined(GESMC_CHECKED_LOCKS)
    explicit CheckedMutex(LockRank rank, const char* name)
        : rank_(static_cast<int>(rank)), name_(name) {}
#else
    explicit CheckedMutex(LockRank /*rank*/, const char* /*name*/) {}
#endif

    CheckedMutex(const CheckedMutex&) = delete;
    CheckedMutex& operator=(const CheckedMutex&) = delete;

    void lock() GESMC_ACQUIRE() {
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::check_acquire(this, rank_, name_);
#endif
        inner_.lock();
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::record_acquire(this, rank_, name_);
#endif
    }

    void unlock() GESMC_RELEASE() {
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::note_release(this);
#endif
        inner_.unlock();
    }

    bool try_lock() GESMC_TRY_ACQUIRE(true) {
#if defined(GESMC_CHECKED_LOCKS)
        // try_lock participates in the rank order too: a try-acquire of an
        // out-of-rank mutex that happens to succeed is the same latent
        // deadlock, just not on this run.  Checking first also keeps a
        // recursive try_lock away from the underlying mutex (UB).
        if (!check_detail::check_acquire(this, rank_, name_)) return false;
#endif
        if (!inner_.try_lock()) return false;
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::record_acquire(this, rank_, name_);
#endif
        return true;
    }

    /// Runtime + static assertion that the calling thread holds this mutex.
    /// Use inside condition-variable wait predicates so the analysis (and
    /// the checked build) know guarded members are safe to read there.
    void assert_held() const GESMC_ASSERT_CAPABILITY(this) {
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::note_assert_held(this, name_);
#endif
    }

private:
    friend class CheckedUniqueLock;

    std::mutex inner_;
#if defined(GESMC_CHECKED_LOCKS)
    int rank_;
    const char* name_;
#endif
};

/// RAII guard, `std::lock_guard` shaped.  Scoped capability for Clang.
class GESMC_SCOPED_CAPABILITY CheckedLockGuard {
public:
    explicit CheckedLockGuard(CheckedMutex& mutex) GESMC_ACQUIRE(mutex)
        : mutex_(mutex) {
        mutex_.lock();
    }

    ~CheckedLockGuard() GESMC_RELEASE() { mutex_.unlock(); }

    CheckedLockGuard(const CheckedLockGuard&) = delete;
    CheckedLockGuard& operator=(const CheckedLockGuard&) = delete;

private:
    CheckedMutex& mutex_;
};

/// Re-lockable guard, `std::unique_lock` shaped, usable with
/// `CheckedCondVar`.  Internally adopts the wrapped `std::mutex` into a
/// `std::unique_lock` so waits use the native condition variable (no
/// `condition_variable_any` overhead in Release builds).
class GESMC_SCOPED_CAPABILITY CheckedUniqueLock {
public:
    explicit CheckedUniqueLock(CheckedMutex& mutex) GESMC_ACQUIRE(mutex)
        : mutex_(mutex) {
        mutex_.lock();
        inner_ = std::unique_lock<std::mutex>(mutex_.inner_, std::adopt_lock);
    }

    ~CheckedUniqueLock() GESMC_RELEASE() {
        if (inner_.owns_lock()) release_bookkeeping();
    }

    CheckedUniqueLock(const CheckedUniqueLock&) = delete;
    CheckedUniqueLock& operator=(const CheckedUniqueLock&) = delete;

    void lock() GESMC_ACQUIRE() {
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::check_acquire(&mutex_, mutex_.rank_, mutex_.name_);
#endif
        inner_.lock();
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::record_acquire(&mutex_, mutex_.rank_, mutex_.name_);
#endif
    }

    void unlock() GESMC_RELEASE() {
        release_bookkeeping();
        // (bookkeeping first: the rank entry must go before another thread
        // can acquire and re-register the same mutex address.)
    }

    bool owns_lock() const noexcept { return inner_.owns_lock(); }

private:
    friend class CheckedCondVar;

    void release_bookkeeping() {
#if defined(GESMC_CHECKED_LOCKS)
        check_detail::note_release(&mutex_);
#endif
        inner_.unlock();
    }

    CheckedMutex& mutex_;
    std::unique_lock<std::mutex> inner_;
};

/// Condition variable paired with `CheckedMutex` via `CheckedUniqueLock`.
///
/// The rank bookkeeping deliberately keeps the mutex registered as "held"
/// across the wait: a blocked thread acquires nothing, so it cannot create
/// an inversion, and on wake-up the lock is held again — exactly the state
/// the bookkeeping already describes.
class CheckedCondVar {
public:
    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    void wait(CheckedUniqueLock& lock) { cv_.wait(lock.inner_); }

    template <typename Predicate>
    void wait(CheckedUniqueLock& lock, Predicate pred) {
        cv_.wait(lock.inner_, std::move(pred));
    }

    template <typename Rep, typename Period, typename Predicate>
    bool wait_for(CheckedUniqueLock& lock,
                  const std::chrono::duration<Rep, Period>& dur,
                  Predicate pred) {
        return cv_.wait_for(lock.inner_, dur, std::move(pred));
    }

private:
    std::condition_variable cv_;
};

}  // namespace gesmc
