/// \file checked_mutex.cpp
/// \brief Runtime lock-rank detector (compiled only under GESMC_CHECKED_LOCKS).

#include "check/checked_mutex.hpp"

#if defined(GESMC_CHECKED_LOCKS)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace gesmc {
namespace check_detail {
namespace {

/// Deepest legitimate nesting today is 2 (e.g. budget -> metrics); 16
/// leaves generous headroom and keeps the thread-local trivially cheap.
constexpr int kMaxHeldLocks = 16;

struct HeldLock {
    const void* mutex;
    int rank;
    const char* name;
};

struct HeldStack {
    HeldLock locks[kMaxHeldLocks];
    int depth = 0;
};

thread_local HeldStack t_held;

std::atomic<LockViolationHandler> g_handler{nullptr};

void default_handler(const char* report) {
    std::fputs(report, stderr);
#if defined(__GLIBC__)
    std::fputs("current thread backtrace:\n", stderr);
    void* frames[64];
    int n = backtrace(frames, 64);
    backtrace_symbols_fd(frames, n, /*fd=*/2);
#endif
    std::fflush(stderr);
    std::abort();
}

void report_violation(const char* what, const void* mutex, int rank,
                      const char* name) {
    // Built with snprintf (not iostream/string) so the path works even if
    // the violation fires during static destruction or under allocation
    // pressure.
    char buf[2048];
    int off = std::snprintf(
        buf, sizeof(buf),
        "gesmc lock-rank violation: %s\n"
        "  attempted: %-24s rank %3d  (%p)\n"
        "  held by this thread (outermost first):\n",
        what, name != nullptr ? name : "?", rank, mutex);
    for (int i = 0; i < t_held.depth && off < static_cast<int>(sizeof(buf)); ++i) {
        off += std::snprintf(
            buf + off, sizeof(buf) - static_cast<std::size_t>(off),
            "    [%d] %-24s rank %3d  (%p)\n", i,
            t_held.locks[i].name != nullptr ? t_held.locks[i].name : "?",
            t_held.locks[i].rank, t_held.locks[i].mutex);
    }
    if (t_held.depth == 0 && off < static_cast<int>(sizeof(buf))) {
        std::snprintf(buf + off, sizeof(buf) - static_cast<std::size_t>(off),
                      "    (none)\n");
    }
    LockViolationHandler handler = g_handler.load(std::memory_order_acquire);
    (handler != nullptr ? handler : &default_handler)(buf);
}

}  // namespace

bool check_acquire(const void* mutex, int rank, const char* name) {
    for (int i = 0; i < t_held.depth; ++i) {
        if (t_held.locks[i].mutex == mutex) {
            report_violation("recursive acquisition of a non-recursive mutex",
                            mutex, rank, name);
            return false;  // only reached with a non-aborting test handler
        }
        if (t_held.locks[i].rank <= rank) {
            report_violation(
                "acquiring a rank >= one already held (higher rank = outer; "
                "see docs/static_analysis.md)",
                mutex, rank, name);
            return false;
        }
    }
    if (t_held.depth >= kMaxHeldLocks) {
        report_violation("held-lock stack overflow (kMaxHeldLocks)", mutex,
                        rank, name);
        return false;
    }
    return true;
}

void record_acquire(const void* mutex, int rank, const char* name) {
    if (t_held.depth >= kMaxHeldLocks) return;  // reported by check_acquire
    t_held.locks[t_held.depth++] = HeldLock{mutex, rank, name};
}

void note_release(const void* mutex) {
    // Releases need not be LIFO (unique_lock allows arbitrary order), so
    // scan rather than pop.
    for (int i = t_held.depth - 1; i >= 0; --i) {
        if (t_held.locks[i].mutex == mutex) {
            for (int j = i; j + 1 < t_held.depth; ++j) {
                t_held.locks[j] = t_held.locks[j + 1];
            }
            --t_held.depth;
            return;
        }
    }
    report_violation("releasing a mutex this thread does not hold", mutex,
                    /*rank=*/-1, "?");
}

void note_assert_held(const void* mutex, const char* name) {
    for (int i = 0; i < t_held.depth; ++i) {
        if (t_held.locks[i].mutex == mutex) return;
    }
    report_violation("assert_held on a mutex this thread does not hold", mutex,
                    /*rank=*/-1, name);
}

}  // namespace check_detail

LockViolationHandler set_lock_violation_handler(LockViolationHandler handler) {
    return check_detail::g_handler.exchange(handler, std::memory_order_acq_rel);
}

}  // namespace gesmc

#endif  // GESMC_CHECKED_LOCKS
