/// \file thread_safety.hpp
/// \brief Clang thread-safety-analysis attribute macros (no-op elsewhere).
///
/// The static half of the correctness gate (docs/static_analysis.md): these
/// macros expand to Clang's capability attributes so a clang build with
/// `-Wthread-safety -Werror` proves at compile time that every access to a
/// `GESMC_GUARDED_BY` member happens under its mutex and that every
/// `GESMC_REQUIRES` function is only called with the right lock held.  GCC
/// (and any compiler without the attributes) sees empty macros — the
/// annotations cost nothing outside the analysis.
///
/// Spelling follows the Clang documentation's capability vocabulary
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the library's
/// annotated mutex types live in check/checked_mutex.hpp.
#pragma once

#if defined(__clang__)
#define GESMC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GESMC_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define GESMC_CAPABILITY(x) GESMC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define GESMC_SCOPED_CAPABILITY GESMC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define GESMC_GUARDED_BY(x) GESMC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define GESMC_PT_GUARDED_BY(x) GESMC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define GESMC_ACQUIRE(...) GESMC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define GESMC_RELEASE(...) GESMC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the capability; first argument is the success value.
#define GESMC_TRY_ACQUIRE(...) \
    GESMC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability held (the `_locked` helpers).
#define GESMC_REQUIRES(...) GESMC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the capability *not* held.
#define GESMC_EXCLUDES(...) GESMC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held — informs the analysis
/// from that point on.  Used inside condition-variable wait predicates,
/// where the analysis cannot see that the wait re-acquires the lock.
#define GESMC_ASSERT_CAPABILITY(x) GESMC_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability.
#define GESMC_RETURN_CAPABILITY(x) GESMC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot follow.
#define GESMC_NO_THREAD_SAFETY_ANALYSIS \
    GESMC_THREAD_ANNOTATION(no_thread_safety_analysis)
