/// \file switch_stream.hpp
/// \brief Deterministic stream of uniform random edge switches.
///
/// The k-th switch of a run is a pure function of (seed, k): indices i != j
/// uniform over [m]^2 and an unbiased direction bit, drawn from a
/// counter-based SplitMix64 stream with Lemire rejection.  SeqES, ParES and
/// NaiveParES all consume this same stream, which makes
/// ParES(seed) == SeqES(seed) testable as graph equality (the exactness
/// property of Algorithm 2) independent of the thread count.
#pragma once

#include "core/edge_switch.hpp"
#include "rng/bounded.hpp"
#include "rng/counter_rng.hpp"

#include <cstdint>

namespace gesmc {

class SwitchStream {
public:
    SwitchStream(std::uint64_t seed, std::uint64_t num_edges) noexcept
        : seed_(seed), m_(num_edges) {}

    /// The k-th switch of the stream.
    [[nodiscard]] Switch get(std::uint64_t k) const {
        auto gen = stream_for(seed_, kSalt, k);
        std::uint64_t i = 0, j = 0;
        uniform_distinct_pair(gen, m_, i, j);
        const auto g = static_cast<std::uint8_t>(gen() >> 63);
        return Switch{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), g};
    }

    [[nodiscard]] std::uint64_t num_edges() const noexcept { return m_; }

    /// The seed the stream was keyed with (recorded in chain snapshots).
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

private:
    static constexpr std::uint64_t kSalt = 0x51a9e4d20cb37f68ULL;
    std::uint64_t seed_;
    std::uint64_t m_;
};

} // namespace gesmc
