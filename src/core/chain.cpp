#include "core/chain.hpp"

#include "core/adj_list_es.hpp"
#include "core/naive_par_es.hpp"
#include "core/par_es.hpp"
#include "core/par_global_es.hpp"
#include "core/seq_es.hpp"
#include "core/seq_global_es.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

#include <algorithm>

namespace gesmc {

std::string to_string(ChainAlgorithm algo) {
    switch (algo) {
    case ChainAlgorithm::kSeqES:
        return "SeqES";
    case ChainAlgorithm::kSeqGlobalES:
        return "SeqGlobalES";
    case ChainAlgorithm::kParES:
        return "ParES";
    case ChainAlgorithm::kParGlobalES:
        return "ParGlobalES";
    case ChainAlgorithm::kNaiveParES:
        return "NaiveParES";
    case ChainAlgorithm::kAdjListES:
        return "AdjListES";
    }
    return "unknown";
}

const std::vector<std::pair<std::string, ChainAlgorithm>>& chain_algorithm_names() {
    static const std::vector<std::pair<std::string, ChainAlgorithm>> names = {
        {"seq-es", ChainAlgorithm::kSeqES},
        {"seq-global-es", ChainAlgorithm::kSeqGlobalES},
        {"par-es", ChainAlgorithm::kParES},
        {"par-global-es", ChainAlgorithm::kParGlobalES},
        {"naive-par-es", ChainAlgorithm::kNaiveParES},
        {"adj-list-es", ChainAlgorithm::kAdjListES},
    };
    return names;
}

std::string chain_algorithm_name(ChainAlgorithm algo) {
    for (const auto& [name, a] : chain_algorithm_names()) {
        if (a == algo) return name;
    }
    return "unknown";
}

ChainAlgorithm chain_algorithm_from_string(const std::string& name) {
    std::string valid;
    for (const auto& [n, algo] : chain_algorithm_names()) {
        if (n == name) return algo;
        valid += valid.empty() ? n : " | " + n;
    }
    throw Error("unknown chain algorithm: \"" + name + "\" (expected " + valid + ")");
}

void validate(const ChainConfig& config) {
    if (config.pl <= 0.0 || config.pl >= 1.0) {
        throw Error("ChainConfig::pl must be in (0, 1) — Definition 3 requires "
                    "0 < P_L < 1 for aperiodicity (got " +
                    std::to_string(config.pl) + ")");
    }
    if (config.threads == 0) {
        throw Error("ChainConfig::threads must be >= 1 (resolve hardware "
                    "concurrency before make_chain)");
    }
}

std::unique_ptr<Chain> make_chain(ChainAlgorithm algo, const EdgeList& initial,
                                  const ChainConfig& config) {
    validate(config);
    switch (algo) {
    case ChainAlgorithm::kSeqES:
        return std::make_unique<SeqES>(initial, config);
    case ChainAlgorithm::kSeqGlobalES:
        return std::make_unique<SeqGlobalES>(initial, config);
    case ChainAlgorithm::kParES:
        return std::make_unique<ParES>(initial, config);
    case ChainAlgorithm::kParGlobalES:
        return std::make_unique<ParGlobalES>(initial, config);
    case ChainAlgorithm::kNaiveParES:
        return std::make_unique<NaiveParES>(initial, config);
    case ChainAlgorithm::kAdjListES:
        return std::make_unique<AdjListES>(initial, config);
    }
    GESMC_CHECK(false, "unknown algorithm");
    return nullptr;
}

std::unique_ptr<Chain> make_chain(const ChainState& state, const ChainConfig& config) {
    // Validate what the restored chain will actually run with: the
    // snapshot's seed and pl override the config's (config_with_state), so
    // a corrupt .gesc with pl = 0 must be rejected here, not mid-run.
    validate(config_with_state(config, state));
    switch (state.algorithm) {
    case ChainAlgorithm::kSeqES:
        return std::make_unique<SeqES>(state, config);
    case ChainAlgorithm::kSeqGlobalES:
        return std::make_unique<SeqGlobalES>(state, config);
    case ChainAlgorithm::kParES:
        return std::make_unique<ParES>(state, config);
    case ChainAlgorithm::kParGlobalES:
        return std::make_unique<ParGlobalES>(state, config);
    case ChainAlgorithm::kNaiveParES:
        return std::make_unique<NaiveParES>(state, config);
    case ChainAlgorithm::kAdjListES:
        return std::make_unique<AdjListES>(state, config);
    }
    GESMC_CHECK(false, "unknown algorithm in chain state");
    return nullptr;
}

namespace {

/// Folds the superstep's ChainStats delta into the chain.* counters.  Every
/// driven run of every chain algorithm passes through run_checkpointed, so
/// this one seam instruments all six chains (and resumed chains: the delta
/// starts at the restored stats, never re-counting checkpointed work).
void count_chain_progress(const ChainStats& before, const ChainStats& after) {
    struct ChainCounters {
        obs::Counter& supersteps =
            obs::MetricsRegistry::instance().counter("chain.supersteps");
        obs::Counter& attempted =
            obs::MetricsRegistry::instance().counter("chain.switches.attempted");
        obs::Counter& accepted =
            obs::MetricsRegistry::instance().counter("chain.switches.accepted");
        obs::Counter& rejected_loop =
            obs::MetricsRegistry::instance().counter("chain.switches.rejected_loop");
        obs::Counter& rejected_edge =
            obs::MetricsRegistry::instance().counter("chain.switches.rejected_edge");
        obs::Counter& rounds =
            obs::MetricsRegistry::instance().counter("chain.rounds");
    };
    static ChainCounters& counters = *new ChainCounters();
    counters.supersteps.add(after.supersteps - before.supersteps);
    counters.attempted.add(after.attempted - before.attempted);
    counters.accepted.add(after.accepted - before.accepted);
    counters.rejected_loop.add(after.rejected_loop - before.rejected_loop);
    counters.rejected_edge.add(after.rejected_edge - before.rejected_edge);
    counters.rounds.add(after.rounds_total - before.rounds_total);
}

} // namespace

void run_checkpointed(Chain& chain, std::uint64_t target, std::uint64_t checkpoint_every,
                      RunObserver* observer, std::uint64_t replicate,
                      const std::function<void()>& on_checkpoint_boundary) {
    GESMC_CHECK(on_checkpoint_boundary != nullptr, "null checkpoint boundary");
    std::uint64_t done = chain.stats().supersteps;
    GESMC_CHECK(done <= target, "chain is already past the target superstep count");
    const ChainStats before = chain.stats();
    while (done < target) {
        const std::uint64_t chunk = checkpoint_every > 0
                                        ? std::min(checkpoint_every, target - done)
                                        : target - done;
        if (obs::trace_enabled()) {
            // Per-superstep spans: split the chunk into single supersteps.
            // Byte-identical to the chunked path — randomness is counter-
            // based, so split points never change the trajectory (the same
            // property checkpoint/resume relies on).
            for (std::uint64_t s = 0; s < chunk; ++s) {
                obs::TraceSpan span("superstep", "core",
                                    {{"replicate", replicate}, {"superstep", done + s}});
                chain.run_supersteps(1, observer, replicate);
            }
        } else {
            chain.run_supersteps(chunk, observer, replicate);
        }
        done += chunk;
        if (done < target) on_checkpoint_boundary();
    }
    on_checkpoint_boundary(); // completion boundary: the finished marker
    if (obs::metrics_enabled()) count_chain_progress(before, chain.stats());
}

void run_adaptive_checkpointed(Chain& chain, std::uint64_t max_target,
                               std::uint64_t min_supersteps, std::uint64_t check_every,
                               std::uint64_t checkpoint_every, RunObserver* observer,
                               std::uint64_t replicate,
                               const std::function<bool()>& should_stop,
                               const std::function<void()>& on_checkpoint_boundary) {
    GESMC_CHECK(should_stop != nullptr, "null stop predicate");
    GESMC_CHECK(on_checkpoint_boundary != nullptr, "null checkpoint boundary");
    GESMC_CHECK(check_every >= 1, "check-every must be >= 1");
    std::uint64_t done = chain.stats().supersteps;
    GESMC_CHECK(done <= max_target, "chain is already past the adaptive budget");
    const ChainStats before = chain.stats();
    // Smallest check step strictly after s — chunks end exactly on check
    // steps so the chain never overruns a stop verdict (overrunning would
    // make the realized superstep count depend on chunk sizes).
    const auto next_check = [&](std::uint64_t s) {
        std::uint64_t t = std::max(s + 1, min_supersteps);
        if (t % check_every != 0) t += check_every - t % check_every;
        return t;
    };
    while (done < max_target && !should_stop()) {
        std::uint64_t next = std::min(max_target, next_check(done));
        if (checkpoint_every > 0) {
            next = std::min(next, done + checkpoint_every - done % checkpoint_every);
        }
        const std::uint64_t chunk = next - done;
        if (obs::trace_enabled()) {
            // Same per-superstep span splitting as run_checkpointed; the
            // trajectory is split-invariant either way.
            for (std::uint64_t s = 0; s < chunk; ++s) {
                obs::TraceSpan span("superstep", "core",
                                    {{"replicate", replicate}, {"superstep", done + s}});
                chain.run_supersteps(1, observer, replicate);
            }
        } else {
            chain.run_supersteps(chunk, observer, replicate);
        }
        done = next;
        // Mid-run checkpoints only on absolute multiples of the cadence —
        // never on a plain check step — so the set of boundary points a
        // resumed run sees matches the uninterrupted run's.
        const bool finished = done == max_target || should_stop();
        if (!finished && checkpoint_every > 0 && done % checkpoint_every == 0) {
            on_checkpoint_boundary();
        }
    }
    on_checkpoint_boundary(); // completion boundary: the finished marker
    if (obs::metrics_enabled()) count_chain_progress(before, chain.stats());
}

} // namespace gesmc
