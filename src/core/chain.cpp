#include "core/chain.hpp"

#include "core/adj_list_es.hpp"
#include "core/naive_par_es.hpp"
#include "core/par_es.hpp"
#include "core/par_global_es.hpp"
#include "core/seq_es.hpp"
#include "core/seq_global_es.hpp"
#include "util/check.hpp"

namespace gesmc {

std::string to_string(ChainAlgorithm algo) {
    switch (algo) {
    case ChainAlgorithm::kSeqES:
        return "SeqES";
    case ChainAlgorithm::kSeqGlobalES:
        return "SeqGlobalES";
    case ChainAlgorithm::kParES:
        return "ParES";
    case ChainAlgorithm::kParGlobalES:
        return "ParGlobalES";
    case ChainAlgorithm::kNaiveParES:
        return "NaiveParES";
    case ChainAlgorithm::kAdjListES:
        return "AdjListES";
    }
    return "unknown";
}

const std::vector<std::pair<std::string, ChainAlgorithm>>& chain_algorithm_names() {
    static const std::vector<std::pair<std::string, ChainAlgorithm>> names = {
        {"seq-es", ChainAlgorithm::kSeqES},
        {"seq-global-es", ChainAlgorithm::kSeqGlobalES},
        {"par-es", ChainAlgorithm::kParES},
        {"par-global-es", ChainAlgorithm::kParGlobalES},
        {"naive-par-es", ChainAlgorithm::kNaiveParES},
        {"adj-list-es", ChainAlgorithm::kAdjListES},
    };
    return names;
}

std::string chain_algorithm_name(ChainAlgorithm algo) {
    for (const auto& [name, a] : chain_algorithm_names()) {
        if (a == algo) return name;
    }
    return "unknown";
}

ChainAlgorithm chain_algorithm_from_string(const std::string& name) {
    std::string valid;
    for (const auto& [n, algo] : chain_algorithm_names()) {
        if (n == name) return algo;
        valid += valid.empty() ? n : " | " + n;
    }
    throw Error("unknown chain algorithm: \"" + name + "\" (expected " + valid + ")");
}

std::unique_ptr<Chain> make_chain(ChainAlgorithm algo, const EdgeList& initial,
                                  const ChainConfig& config) {
    switch (algo) {
    case ChainAlgorithm::kSeqES:
        return std::make_unique<SeqES>(initial, config);
    case ChainAlgorithm::kSeqGlobalES:
        return std::make_unique<SeqGlobalES>(initial, config);
    case ChainAlgorithm::kParES:
        return std::make_unique<ParES>(initial, config);
    case ChainAlgorithm::kParGlobalES:
        return std::make_unique<ParGlobalES>(initial, config);
    case ChainAlgorithm::kNaiveParES:
        return std::make_unique<NaiveParES>(initial, config);
    case ChainAlgorithm::kAdjListES:
        return std::make_unique<AdjListES>(initial, config);
    }
    GESMC_CHECK(false, "unknown algorithm");
    return nullptr;
}

} // namespace gesmc
