/// \file seq_global_es.hpp
/// \brief SeqGlobalES — sequential G-ES-MC (paper §5, Definition 3).
///
/// Per superstep (= one global switch): draw a uniform permutation pi of
/// the edge indices, draw l ~ Binom(floor(m/2), 1 - P_L), and execute the
/// switches sigma_k = (pi(2k-1), pi(2k), 1_{pi(2k-1) < pi(2k)}) for
/// k = 1..l in sequence.  The permutation and l are derived from the same
/// counter-based streams ParGlobalES uses, so ParGlobalES(seed) produces
/// the identical graph — the exactness tests rely on this.
#pragma once

#include "core/chain.hpp"
#include "core/edge_switch.hpp"
#include "hashing/robin_set.hpp"
#include "parallel/pool_ref.hpp"

#include <vector>

namespace gesmc {

/// Shared by Seq/ParGlobalES: materializes global switch `gidx` of `seed`
/// as a switch array (deterministic, thread-count independent).
/// Returns the number of switches l; `out` is resized accordingly.
std::uint64_t sample_global_switch(std::vector<Switch>& out,
                                   std::vector<std::uint32_t>& perm_scratch,
                                   std::uint64_t num_edges, std::uint64_t seed,
                                   std::uint64_t gidx, double pl, ThreadPool& pool);

class SeqGlobalES final : public Chain {
public:
    SeqGlobalES(const EdgeList& initial, const ChainConfig& config);

    /// Restores a snapshotted chain (see Chain::snapshot / make_chain).
    SeqGlobalES(const ChainState& state, const ChainConfig& config);

    ~SeqGlobalES() override;

    using Chain::run_supersteps;
    void run_supersteps(std::uint64_t count, RunObserver* observer,
                        std::uint64_t replicate) override;

    [[nodiscard]] ChainState snapshot() const override;

    [[nodiscard]] const EdgeList& graph() const override { return edges_; }
    [[nodiscard]] bool has_edge(edge_key_t key) const override { return set_.contains(key); }
    [[nodiscard]] const ChainStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "SeqGlobalES"; }

private:
    EdgeList edges_;
    RobinSet set_;
    std::uint64_t seed_;
    double pl_;
    std::uint64_t next_global_ = 0; ///< index of the next global switch
    std::vector<Switch> switch_scratch_;
    std::vector<std::uint32_t> perm_scratch_;
    PoolRef pool_; ///< single-thread pool for the shared sampler (or borrowed)
    ChainStats stats_;
};

} // namespace gesmc
