#include "core/adj_list_es.hpp"

#include "util/check.hpp"

#include <algorithm>

namespace gesmc {

AdjListES::AdjListES(const EdgeList& initial, const ChainConfig& config)
    : edges_(initial),
      adjacency_(initial.num_nodes()),
      stream_(config.seed, initial.num_edges()) {
    GESMC_CHECK(initial.num_edges() >= 2, "need at least two edges to switch");
    GESMC_CHECK(initial.is_simple(), "initial graph must be simple");
    for (std::uint64_t i = 0; i < initial.num_edges(); ++i) {
        const Edge e = initial.edge(i);
        adjacency_[e.u].push_back(e.v);
        adjacency_[e.v].push_back(e.u);
    }
    for (auto& nb : adjacency_) std::sort(nb.begin(), nb.end());
}

AdjListES::AdjListES(const ChainState& state, const ChainConfig& config)
    : AdjListES(EdgeList::from_keys(state.num_nodes, state.keys),
                config_with_state(config, state)) {
    next_switch_ = state.counter;
    stats_ = state.stats;
}

ChainState AdjListES::snapshot() const {
    ChainState state;
    state.algorithm = ChainAlgorithm::kAdjListES;
    state.seed = stream_.seed();
    state.counter = next_switch_;
    state.num_nodes = edges_.num_nodes();
    state.keys = edges_.keys();
    state.stats = stats_;
    return state;
}

bool AdjListES::has_edge(edge_key_t key) const {
    const Edge e = edge_from_key(key);
    const auto& small =
        adjacency_[e.u].size() <= adjacency_[e.v].size() ? adjacency_[e.u] : adjacency_[e.v];
    const node_t other = adjacency_[e.u].size() <= adjacency_[e.v].size() ? e.v : e.u;
    return std::binary_search(small.begin(), small.end(), other);
}

void AdjListES::insert_adj(node_t u, node_t v) {
    auto& nb = adjacency_[u];
    nb.insert(std::lower_bound(nb.begin(), nb.end(), v), v);
}

void AdjListES::erase_adj(node_t u, node_t v) {
    auto& nb = adjacency_[u];
    nb.erase(std::lower_bound(nb.begin(), nb.end(), v));
}

void AdjListES::run_supersteps(std::uint64_t count, RunObserver* observer,
                               std::uint64_t replicate) {
    const std::uint64_t per_superstep = edges_.num_edges() / 2;
    for (std::uint64_t step = 0; step < count; ++step) {
        run_switches(per_superstep);
        ++stats_.supersteps;
        if (observer != nullptr) observer->on_superstep(replicate, *this);
    }
}

void AdjListES::run_switches(std::uint64_t switches) {
    auto& keys = edges_.keys();
    for (std::uint64_t t = 0; t < switches; ++t) {
        const Switch sw = stream_.get(next_switch_++);
        const edge_key_t k1 = keys[sw.i];
        const edge_key_t k2 = keys[sw.j];
        const Edge e1 = edge_from_key(k1);
        const Edge e2 = edge_from_key(k2);
        const auto [t3, t4] = switch_targets(e1, e2, sw.g != 0);
        const SwitchOutcome outcome =
            decide_switch(k1, k2, t3, t4, [this](edge_key_t k) { return has_edge(k); });
        switch (outcome) {
        case SwitchOutcome::kAccepted: {
            const edge_key_t k3 = edge_key(t3);
            if (k3 != k1 && k3 != k2) { // identity no-op needs no updates
                erase_adj(e1.u, e1.v);
                erase_adj(e1.v, e1.u);
                erase_adj(e2.u, e2.v);
                erase_adj(e2.v, e2.u);
                const Edge c3 = t3.canonical();
                const Edge c4 = t4.canonical();
                insert_adj(c3.u, c3.v);
                insert_adj(c3.v, c3.u);
                insert_adj(c4.u, c4.v);
                insert_adj(c4.v, c4.u);
            }
            keys[sw.i] = k3;
            keys[sw.j] = edge_key(t4);
            ++stats_.accepted;
            break;
        }
        case SwitchOutcome::kRejectedLoop:
            ++stats_.rejected_loop;
            break;
        case SwitchOutcome::kRejectedEdge:
            ++stats_.rejected_edge;
            break;
        }
    }
    stats_.attempted += switches;
}

} // namespace gesmc
