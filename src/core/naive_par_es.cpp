#include "core/naive_par_es.hpp"

#include "util/check.hpp"

#include <thread>

namespace gesmc {

NaiveParES::NaiveParES(const EdgeList& initial, const ChainConfig& config)
    : edges_(initial.num_edges()),
      num_nodes_(initial.num_nodes()),
      set_(initial.num_edges(), config.edge_set_backend),
      seed_(config.seed),
      pool_(make_pool_ref(config.shared_pool, config.threads)) {
    GESMC_CHECK(initial.num_edges() >= 2, "need at least two edges to switch");
    GESMC_CHECK(initial.is_simple(), "initial graph must be simple");
    for (std::uint64_t i = 0; i < initial.num_edges(); ++i) {
        edges_[i].store(initial.key(i), std::memory_order_relaxed);
        set_.insert_unique(initial.key(i));
    }
}

NaiveParES::NaiveParES(const ChainState& state, const ChainConfig& config)
    : NaiveParES(EdgeList::from_keys(state.num_nodes, state.keys),
                 config_with_state(config, state)) {
    next_switch_ = state.counter;
    stats_ = state.stats;
}

NaiveParES::~NaiveParES() = default;

ChainState NaiveParES::snapshot() const {
    ChainState state;
    state.algorithm = ChainAlgorithm::kNaiveParES;
    state.seed = seed_;
    state.counter = next_switch_;
    state.num_nodes = num_nodes_;
    state.keys.resize(edges_.size());
    // Only exact at a quiescent point (between run_supersteps calls),
    // like every other accessor of this chain.
    for (std::uint64_t i = 0; i < edges_.size(); ++i) {
        state.keys[i] = edges_[i].load(std::memory_order_relaxed);
    }
    state.stats = stats_;
    return state;
}

const EdgeList& NaiveParES::graph() const {
    if (!snapshot_valid_) {
        std::vector<edge_key_t> keys(edges_.size());
        for (std::uint64_t i = 0; i < edges_.size(); ++i) {
            keys[i] = edges_[i].load(std::memory_order_relaxed);
        }
        snapshot_ = EdgeList::from_keys(num_nodes_, std::move(keys));
        snapshot_valid_ = true;
    }
    return snapshot_;
}

void NaiveParES::run_supersteps(std::uint64_t count, RunObserver* observer,
                                std::uint64_t replicate) {
    const std::uint64_t m = edges_.size();
    const std::uint64_t per_superstep = m / 2;
    for (std::uint64_t step = 0; step < count; ++step) {
        std::atomic<std::uint64_t> accepted{0}, rloop{0}, redge{0};
        const std::uint64_t base = next_switch_;
        // The switch stream is deterministic; its partition onto threads is
        // not part of the chain's definition (the algorithm is inexact
        // anyway), so a static split suffices.
        pool_->for_chunks(base, base + per_superstep,
                         [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
                             SwitchStream stream(seed_, m);
                             std::uint64_t acc = 0, rl = 0, re = 0;
                             for (std::uint64_t k = lo; k < hi; ++k) {
                                 perform_switch(tid, stream.get(k), acc, rl, re);
                             }
                             accepted.fetch_add(acc);
                             rloop.fetch_add(rl);
                             redge.fetch_add(re);
                         });
        next_switch_ += per_superstep;
        stats_.attempted += per_superstep;
        stats_.accepted += accepted.load();
        stats_.rejected_loop += rloop.load();
        stats_.rejected_edge += redge.load();
        ++stats_.supersteps;
        set_.maybe_rebuild(); // quiescent point between supersteps
        snapshot_valid_ = false;
        if (observer != nullptr) observer->on_superstep(replicate, *this);
    }
}

void NaiveParES::perform_switch(unsigned tid, const Switch& sw, std::uint64_t& accepted,
                                std::uint64_t& rejected_loop, std::uint64_t& rejected_edge) {
    constexpr int kMaxConflictRetries = 64;
    int conflict_retries = 0;

    for (;;) {
        const edge_key_t k1 = edges_[sw.i].load(std::memory_order_acquire);
        const edge_key_t k2 = edges_[sw.j].load(std::memory_order_acquire);

        // Acquire tickets on both source edges (lock the edge values).
        auto slot1 = set_.try_lock(k1, tid);
        if (!slot1) {
            std::this_thread::yield();
            continue;
        }
        if (edges_[sw.i].load(std::memory_order_acquire) != k1) {
            set_.unlock(*slot1);
            continue; // index i was rewired under us
        }
        auto slot2 = set_.try_lock(k2, tid);
        if (!slot2) {
            set_.unlock(*slot1);
            std::this_thread::yield();
            continue;
        }
        if (edges_[sw.j].load(std::memory_order_acquire) != k2) {
            set_.unlock(*slot2);
            set_.unlock(*slot1);
            continue;
        }

        // Both sources are pinned; evaluate the switch.
        const auto [t3, t4] = switch_targets(edge_from_key(k1), edge_from_key(k2), sw.g != 0);
        if (t3.is_loop() || t4.is_loop()) {
            set_.unlock(*slot2);
            set_.unlock(*slot1);
            ++rejected_loop;
            return;
        }
        const edge_key_t k3 = edge_key(t3);
        const edge_key_t k4 = edge_key(t4);
        if (k3 == k1 || k3 == k2) { // identity no-op (see edge_switch.hpp)
            set_.unlock(*slot2);
            set_.unlock(*slot1);
            ++accepted;
            return;
        }

        // Tickets on the target edges: insert-and-lock.
        std::uint64_t slot3 = 0, slot4 = 0;
        const auto r3 = set_.try_insert_and_lock(k3, tid, slot3);
        if (r3 != ConcurrentEdgeSet::InsertLock::kInserted) {
            set_.unlock(*slot2);
            set_.unlock(*slot1);
            if (r3 == ConcurrentEdgeSet::InsertLock::kExistsLocked &&
                ++conflict_retries < kMaxConflictRetries) {
                std::this_thread::yield();
                continue; // transient: another PU is mid-switch on k3
            }
            ++rejected_edge;
            return;
        }
        const auto r4 = set_.try_insert_and_lock(k4, tid, slot4);
        if (r4 != ConcurrentEdgeSet::InsertLock::kInserted) {
            set_.erase_locked(slot3); // roll back our tentative insert
            set_.unlock(*slot2);
            set_.unlock(*slot1);
            if (r4 == ConcurrentEdgeSet::InsertLock::kExistsLocked &&
                ++conflict_retries < kMaxConflictRetries) {
                std::this_thread::yield();
                continue;
            }
            ++rejected_edge;
            return;
        }

        // Commit: rewire the indices, release the source edges, publish the
        // targets.
        edges_[sw.i].store(k3, std::memory_order_release);
        edges_[sw.j].store(k4, std::memory_order_release);
        set_.erase_locked(*slot1);
        set_.erase_locked(*slot2);
        set_.unlock(slot3);
        set_.unlock(slot4);
        ++accepted;
        return;
    }
}

} // namespace gesmc
