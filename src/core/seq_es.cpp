#include "core/seq_es.hpp"

#include "core/sequential_apply.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"

namespace gesmc {

SeqES::SeqES(const EdgeList& initial, const ChainConfig& config)
    : edges_(initial),
      set_(initial.num_edges()),
      stream_(config.seed, initial.num_edges()),
      prefetch_(config.prefetch) {
    GESMC_CHECK(initial.num_edges() >= 2, "need at least two edges to switch");
    GESMC_CHECK(initial.is_simple(), "initial graph must be simple");
    set_.reserve(initial.num_edges());
    for (const edge_key_t k : edges_.keys()) set_.insert(k);
    GESMC_CHECK(!set_.would_rehash_on_insert(), "set must be pre-sized (stable prepares)");
}

SeqES::SeqES(const ChainState& state, const ChainConfig& config)
    : SeqES(EdgeList::from_keys(state.num_nodes, state.keys),
            config_with_state(config, state)) {
    next_switch_ = state.counter;
    stats_ = state.stats;
}

ChainState SeqES::snapshot() const {
    ChainState state;
    state.algorithm = ChainAlgorithm::kSeqES;
    state.seed = stream_.seed();
    state.counter = next_switch_;
    state.num_nodes = edges_.num_nodes();
    state.keys = edges_.keys();
    state.stats = stats_;
    return state;
}

void SeqES::run_supersteps(std::uint64_t count, RunObserver* observer,
                           std::uint64_t replicate) {
    const std::uint64_t per_superstep = edges_.num_edges() / 2;
    for (std::uint64_t step = 0; step < count; ++step) {
        run_switches(per_superstep);
        ++stats_.supersteps;
        if (observer != nullptr) observer->on_superstep(replicate, *this);
    }
}

void SeqES::run_switches(std::uint64_t count) {
    if (!prefetch_) {
        for (std::uint64_t t = 0; t < count; ++t) {
            apply_one(stream_.get(next_switch_ + t));
        }
    } else {
        std::uint64_t done = 0;
        while (done < count) {
            const auto block = static_cast<unsigned>(std::min<std::uint64_t>(4, count - done));
            run_block_pipelined(next_switch_ + done, block);
            done += block;
        }
    }
    next_switch_ += count;
    stats_.attempted += count;
}

void SeqES::apply_one(const Switch& sw) {
    apply_switch_sequential(edges_.keys(), set_, sw, stats_);
}

/// Four switches in flight (paper §5.4): stage 0 samples indices and
/// prefetches the edge-array entries, stage 1 reads the edges and
/// prefetches the four hash buckets each switch will touch, stage 2
/// decides and applies in stream order.  Decisions re-verify the cached
/// edge values: if an earlier switch of the same block rewired one of our
/// source indices (a source dependency within the block), the switch is
/// re-processed unpipelined — rare (O(block^2/m)) and exact.
void SeqES::run_block_pipelined(std::uint64_t first, unsigned block_len) {
    struct InFlight {
        Switch sw;
        edge_key_t k1, k2, k3, k4;
        RobinSet::Prepared p3, p4;
        bool degenerate; // loop or identity: no prepared queries used
    };
    InFlight fl[4];

    auto& keys = edges_.keys();

    // Stage 0: sample and prefetch edge array entries.
    for (unsigned b = 0; b < block_len; ++b) {
        fl[b].sw = stream_.get(first + b);
        prefetch_read(&keys[fl[b].sw.i]);
        prefetch_read(&keys[fl[b].sw.j]);
    }
    // Stage 1: read edges, compute targets, prefetch their buckets.
    for (unsigned b = 0; b < block_len; ++b) {
        auto& f = fl[b];
        f.k1 = keys[f.sw.i];
        f.k2 = keys[f.sw.j];
        const auto [t3, t4] = switch_targets(edge_from_key(f.k1), edge_from_key(f.k2),
                                             f.sw.g != 0);
        f.k3 = edge_key(t3);
        f.k4 = edge_key(t4);
        f.degenerate = t3.is_loop() || t4.is_loop() || f.k3 == f.k1 || f.k3 == f.k2;
        if (!f.degenerate) {
            f.p3 = set_.prepare(f.k3);
            f.p4 = set_.prepare(f.k4);
        }
    }
    // Stage 2: decide and apply in order.
    for (unsigned b = 0; b < block_len; ++b) {
        auto& f = fl[b];
        if (keys[f.sw.i] != f.k1 || keys[f.sw.j] != f.k2) {
            // In-block source dependency: cached state is stale.
            apply_one(f.sw);
            continue;
        }
        if (f.degenerate) {
            apply_one(f.sw); // cheap: no hash queries needed for loops/identity
            continue;
        }
        if (set_.contains_prepared(f.p3) || set_.contains_prepared(f.p4)) {
            ++stats_.rejected_edge;
            continue;
        }
        set_.erase(f.k1);
        set_.erase(f.k2);
        set_.insert(f.k3);
        set_.insert(f.k4);
        keys[f.sw.i] = f.k3;
        keys[f.sw.j] = f.k4;
        ++stats_.accepted;
    }
}

} // namespace gesmc
