/// \file chain.hpp
/// \brief Common interface for all edge-switching Markov chain runners.
///
/// A *superstep* is the unit the paper uses to align ES-MC and G-ES-MC
/// (§6.1): m/2 uniform random edge switches for ES-type chains, one global
/// switch for G-ES-type chains.  All evaluation drivers (mixing analysis,
/// benchmarks, examples) advance chains superstep by superstep through this
/// interface.
///
/// Chains are *resumable*: all randomness comes from counter-based streams
/// keyed by the seed, so a chain's complete state is just (edge keys in
/// slot order, seed, position counter, accumulated stats).  snapshot()
/// captures that state as a ChainState value; make_chain(state, config)
/// reconstructs a chain that continues the identical trajectory — the
/// restored run is byte-for-byte the uninterrupted run.  RunObserver lets
/// long runs stream progress (and, driven by the pipeline, checkpoints and
/// finished replicates) instead of being fire-and-forget.
#pragma once

#include "graph/edge_list.hpp"
#include "hashing/edge_set_backend.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gesmc {

class ThreadPool;

/// Tuning knobs shared by all chain implementations.
struct ChainConfig {
    std::uint64_t seed = 1;

    /// Threads for parallel chains (ignored by sequential ones).  Must be
    /// >= 1: make_chain rejects 0 (callers wanting hardware concurrency
    /// resolve std::thread::hardware_concurrency() themselves).
    unsigned threads = 1;

    /// Optional externally owned pool shared across chains.  When set, the
    /// chain runs its parallel sections on this pool instead of spawning a
    /// private one and `threads` is ignored.  The pool must outlive the
    /// chain, and because ThreadPool::run is a single fork-join job, at most
    /// one chain may be running on a shared pool at any moment (the pipeline
    /// scheduler's intra-chain policy guarantees this).
    ThreadPool* shared_pool = nullptr;

    /// G-ES-MC per-switch rejection probability P_L (Definition 3 requires
    /// 0 < P_L < 1 for aperiodicity; small values keep a global switch at
    /// ~m/2 attempted switches, matching the superstep accounting).
    double pl = 1e-3;

    /// Enables the prefetching switch pipeline (paper §5.4).
    bool prefetch = true;

    /// ParGlobalES: graphs with fewer edges than this execute each global
    /// switch sequentially instead of through ParallelSuperstep — the
    /// "dedicated base cases for small graphs" the paper's §7 proposes to
    /// cut synchronization overhead. 0 disables the base case (the paper's
    /// plain Algorithm 3). The produced graphs are identical either way
    /// (sequential execution is what the superstep reproduces).
    std::uint64_t small_graph_cutoff = 0;

    /// Which ConcurrentEdgeSet implementation the parallel chains probe
    /// (sequential chains ignore it).  A pure runtime/perf knob: exact
    /// chains are byte-identical on either backend, so it is not part of
    /// ChainState and may change across a resume.
    EdgeSetBackend edge_set_backend = EdgeSetBackend::kLocked;
};

/// Counters accumulated while running a chain.
struct ChainStats {
    std::uint64_t supersteps = 0;
    std::uint64_t attempted = 0;      ///< switches attempted
    std::uint64_t accepted = 0;       ///< switches that rewired the graph
    std::uint64_t rejected_loop = 0;  ///< rejected: target was a loop
    std::uint64_t rejected_edge = 0;  ///< rejected: target existed / conflict
    std::uint64_t rounds_total = 0;   ///< ParallelSuperstep rounds (parallel chains)
    std::uint64_t rounds_max = 0;     ///< max rounds over supersteps
    double first_round_seconds = 0;   ///< time spent in first rounds (Fig. 9)
    double later_rounds_seconds = 0;  ///< time spent in rounds >= 2 (Fig. 9)
};

/// Algorithm selector for the factory.
enum class ChainAlgorithm {
    kSeqES,        ///< sequential ES-MC (§5)
    kSeqGlobalES,  ///< sequential G-ES-MC (§5)
    kParES,        ///< exact parallel ES-MC (Algorithm 2)
    kParGlobalES,  ///< exact parallel G-ES-MC (Algorithm 3)
    kNaiveParES,   ///< inexact parallel baseline (§5.1)
    kAdjListES,    ///< adjacency-list reference implementation (stand-in for
                   ///< NetworKit/Gengraph-class comparators, see DESIGN.md §4)
};

/// A serializable snapshot of a running chain.  Because every chain draws
/// its randomness from counter-based streams, this value is *complete*:
/// make_chain(state, config) continues the chain exactly where snapshot()
/// left it, producing the same graphs and counters as an uninterrupted run
/// (exception: NaiveParES, whose thread partition is part of the process —
/// its resumes reproduce only under a fixed thread count, and only with one
/// thread exactly).  Persisted as the GESB chain-state section (graph/io).
struct ChainState {
    ChainAlgorithm algorithm = ChainAlgorithm::kSeqES;
    std::uint64_t seed = 0;

    /// Position in the chain's randomness stream: the switch-stream index
    /// for ES-type chains, the global-switch index for G-ES-type chains.
    std::uint64_t counter = 0;

    /// P_L of the snapshotted chain — part of the G-ES trajectory (it
    /// drives the binomial switch-count draw), so restores replay it from
    /// here, not from the restore config.  ES-type chains ignore it and
    /// leave this default.
    double pl = 1e-3;

    node_t num_nodes = 0;

    /// Edge keys in *slot order* (not sorted): switches address edges by
    /// array index, so the order is part of the chain state.
    std::vector<edge_key_t> keys;

    ChainStats stats;
};

class Chain;

/// Streaming callbacks for long runs.  Chains invoke on_superstep after
/// every completed superstep; the batch pipeline additionally invokes
/// on_checkpoint after persisting a replicate's ChainState and
/// on_replicate_done as each replicate finishes (its output graph is
/// already on disk by then).  Under the replicate-parallel schedule policy
/// the callbacks fire concurrently from pool threads — implementations
/// must synchronize their own state.
struct ReplicateReport; // pipeline/report.hpp

class RunObserver {
public:
    virtual ~RunObserver() = default;

    /// `replicate` is the replicate index the chain runs under (0 outside
    /// the pipeline).  The chain reference is only valid during the call.
    virtual void on_superstep(std::uint64_t replicate, const Chain& chain) {
        (void)replicate;
        (void)chain;
    }

    /// A checkpoint for `replicate` landed at `path`.
    virtual void on_checkpoint(std::uint64_t replicate, const ChainState& state,
                               const std::string& path) {
        (void)replicate;
        (void)state;
        (void)path;
    }

    /// Replicate `report.index` finished (successfully or with an error).
    virtual void on_replicate_done(const ReplicateReport& report) { (void)report; }
};

/// A Markov-chain runner owning its graph state.
class Chain {
public:
    virtual ~Chain() = default;

    /// Advances the chain by `count` supersteps.  A non-null `observer`
    /// receives on_superstep(replicate, *this) after every superstep.
    virtual void run_supersteps(std::uint64_t count, RunObserver* observer,
                                std::uint64_t replicate) = 0;

    /// Convenience overload for fire-and-forget runs.  Implementations
    /// re-export it with `using Chain::run_supersteps;`.
    void run_supersteps(std::uint64_t count) { run_supersteps(count, nullptr, 0); }

    /// Captures the chain's complete resumable state (cheap: one copy of
    /// the edge keys).  Snapshots taken between run_supersteps calls are
    /// exact; see ChainState.
    [[nodiscard]] virtual ChainState snapshot() const = 0;

    /// Current graph (materialized edge list; cheap for all chains).
    [[nodiscard]] virtual const EdgeList& graph() const = 0;

    /// O(1) edge existence query against the current state.
    [[nodiscard]] virtual bool has_edge(edge_key_t key) const = 0;

    [[nodiscard]] virtual const ChainStats& stats() const = 0;

    [[nodiscard]] virtual std::string name() const = 0;

    [[nodiscard]] std::uint64_t num_edges() const { return graph().num_edges(); }
    [[nodiscard]] node_t num_nodes() const { return graph().num_nodes(); }
};

[[nodiscard]] std::string to_string(ChainAlgorithm algo);

/// CLI/config-facing names ("seq-es", "par-global-es", ...), one per
/// algorithm, in a stable order. Shared by every tool and the pipeline.
[[nodiscard]] const std::vector<std::pair<std::string, ChainAlgorithm>>&
chain_algorithm_names();

/// The CLI/config-facing name of `algo` ("par-global-es", ...).
[[nodiscard]] std::string chain_algorithm_name(ChainAlgorithm algo);

/// Parses a CLI/config-facing name; throws Error listing the valid names.
[[nodiscard]] ChainAlgorithm chain_algorithm_from_string(const std::string& name);

/// Validates the tuning knobs every implementation shares; throws Error on
/// pl outside (0, 1) (Definition 3 aperiodicity) or threads == 0.  Called
/// by both make_chain overloads.
void validate(const ChainConfig& config);

/// Resolved hardware concurrency, never 0 — what callers assign to
/// ChainConfig::threads when they want "all the machine has" (make_chain
/// itself rejects 0, see validate).
[[nodiscard]] inline unsigned hardware_threads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

/// `config` with the trajectory-defining knobs (seed, pl) replaced by the
/// snapshot's — the restore path replays the original streams regardless
/// of what the restore-time config says.
[[nodiscard]] inline ChainConfig config_with_state(ChainConfig config,
                                                   const ChainState& state) noexcept {
    config.seed = state.seed;
    config.pl = state.pl;
    return config;
}

/// Creates a chain of the given kind started at `initial`.
std::unique_ptr<Chain> make_chain(ChainAlgorithm algo, const EdgeList& initial,
                                  const ChainConfig& config);

/// Restores a chain from a snapshot: same algorithm, seed, pl, stream
/// position and edge-slot order as the chain that produced `state` (config
/// supplies the runtime knobs — threads, pool, prefetch — and its seed/pl
/// fields are overridden by the state's).
std::unique_ptr<Chain> make_chain(const ChainState& state, const ChainConfig& config);

/// Drives `chain` to `target` *total* supersteps (counting any restored
/// ones) in checkpoint-sized chunks: with checkpoint_every > 0,
/// `on_checkpoint_boundary` runs after every `checkpoint_every` supersteps;
/// it always runs once more at completion — including when the chain is
/// already at the target — so the final state can be persisted as a
/// finished marker.  The single cadence shared by the pipeline scheduler
/// and the tools (their resume semantics must never diverge).  Throws if
/// the chain is already past `target`.
void run_checkpointed(Chain& chain, std::uint64_t target, std::uint64_t checkpoint_every,
                      RunObserver* observer, std::uint64_t replicate,
                      const std::function<void()>& on_checkpoint_boundary);

/// Adaptive-budget variant of run_checkpointed: drives `chain` until
/// `should_stop()` returns true or `max_target` total supersteps, whichever
/// comes first.  `should_stop` is polled only at *absolute check steps*
/// (s >= min_supersteps and s % check_every == 0) and at max_target — and
/// the chain is advanced in chunks that end exactly on those steps, so the
/// realized stopping point is a pure function of the superstep stream,
/// never of chunking, checkpoint cadence or resume position.  Checkpoints
/// land on absolute multiples of checkpoint_every for the same reason.
/// `on_checkpoint_boundary` always runs once more at completion (the
/// finished marker), exactly like run_checkpointed.
void run_adaptive_checkpointed(Chain& chain, std::uint64_t max_target,
                               std::uint64_t min_supersteps, std::uint64_t check_every,
                               std::uint64_t checkpoint_every, RunObserver* observer,
                               std::uint64_t replicate,
                               const std::function<bool()>& should_stop,
                               const std::function<void()>& on_checkpoint_boundary);

} // namespace gesmc
