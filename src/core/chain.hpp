/// \file chain.hpp
/// \brief Common interface for all edge-switching Markov chain runners.
///
/// A *superstep* is the unit the paper uses to align ES-MC and G-ES-MC
/// (§6.1): m/2 uniform random edge switches for ES-type chains, one global
/// switch for G-ES-type chains.  All evaluation drivers (mixing analysis,
/// benchmarks, examples) advance chains superstep by superstep through this
/// interface.
#pragma once

#include "graph/edge_list.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gesmc {

class ThreadPool;

/// Tuning knobs shared by all chain implementations.
struct ChainConfig {
    std::uint64_t seed = 1;

    /// Threads for parallel chains (ignored by sequential ones).
    unsigned threads = 1;

    /// Optional externally owned pool shared across chains.  When set, the
    /// chain runs its parallel sections on this pool instead of spawning a
    /// private one and `threads` is ignored.  The pool must outlive the
    /// chain, and because ThreadPool::run is a single fork-join job, at most
    /// one chain may be running on a shared pool at any moment (the pipeline
    /// scheduler's intra-chain policy guarantees this).
    ThreadPool* shared_pool = nullptr;

    /// G-ES-MC per-switch rejection probability P_L (Definition 3 requires
    /// 0 < P_L < 1 for aperiodicity; small values keep a global switch at
    /// ~m/2 attempted switches, matching the superstep accounting).
    double pl = 1e-3;

    /// Enables the prefetching switch pipeline (paper §5.4).
    bool prefetch = true;

    /// ParGlobalES: graphs with fewer edges than this execute each global
    /// switch sequentially instead of through ParallelSuperstep — the
    /// "dedicated base cases for small graphs" the paper's §7 proposes to
    /// cut synchronization overhead. 0 disables the base case (the paper's
    /// plain Algorithm 3). The produced graphs are identical either way
    /// (sequential execution is what the superstep reproduces).
    std::uint64_t small_graph_cutoff = 0;
};

/// Counters accumulated while running a chain.
struct ChainStats {
    std::uint64_t supersteps = 0;
    std::uint64_t attempted = 0;      ///< switches attempted
    std::uint64_t accepted = 0;       ///< switches that rewired the graph
    std::uint64_t rejected_loop = 0;  ///< rejected: target was a loop
    std::uint64_t rejected_edge = 0;  ///< rejected: target existed / conflict
    std::uint64_t rounds_total = 0;   ///< ParallelSuperstep rounds (parallel chains)
    std::uint64_t rounds_max = 0;     ///< max rounds over supersteps
    double first_round_seconds = 0;   ///< time spent in first rounds (Fig. 9)
    double later_rounds_seconds = 0;  ///< time spent in rounds >= 2 (Fig. 9)
};

/// A Markov-chain runner owning its graph state.
class Chain {
public:
    virtual ~Chain() = default;

    /// Advances the chain by `count` supersteps.
    virtual void run_supersteps(std::uint64_t count) = 0;

    /// Current graph (materialized edge list; cheap for all chains).
    [[nodiscard]] virtual const EdgeList& graph() const = 0;

    /// O(1) edge existence query against the current state.
    [[nodiscard]] virtual bool has_edge(edge_key_t key) const = 0;

    [[nodiscard]] virtual const ChainStats& stats() const = 0;

    [[nodiscard]] virtual std::string name() const = 0;

    [[nodiscard]] std::uint64_t num_edges() const { return graph().num_edges(); }
    [[nodiscard]] node_t num_nodes() const { return graph().num_nodes(); }
};

/// Algorithm selector for the factory.
enum class ChainAlgorithm {
    kSeqES,        ///< sequential ES-MC (§5)
    kSeqGlobalES,  ///< sequential G-ES-MC (§5)
    kParES,        ///< exact parallel ES-MC (Algorithm 2)
    kParGlobalES,  ///< exact parallel G-ES-MC (Algorithm 3)
    kNaiveParES,   ///< inexact parallel baseline (§5.1)
    kAdjListES,    ///< adjacency-list reference implementation (stand-in for
                   ///< NetworKit/Gengraph-class comparators, see DESIGN.md §4)
};

[[nodiscard]] std::string to_string(ChainAlgorithm algo);

/// CLI/config-facing names ("seq-es", "par-global-es", ...), one per
/// algorithm, in a stable order. Shared by every tool and the pipeline.
[[nodiscard]] const std::vector<std::pair<std::string, ChainAlgorithm>>&
chain_algorithm_names();

/// The CLI/config-facing name of `algo` ("par-global-es", ...).
[[nodiscard]] std::string chain_algorithm_name(ChainAlgorithm algo);

/// Parses a CLI/config-facing name; throws Error listing the valid names.
[[nodiscard]] ChainAlgorithm chain_algorithm_from_string(const std::string& name);

/// Creates a chain of the given kind started at `initial`.
std::unique_ptr<Chain> make_chain(ChainAlgorithm algo, const EdgeList& initial,
                                  const ChainConfig& config);

} // namespace gesmc
