/// \file adj_list_es.hpp
/// \brief AdjListES — adjacency-list ES-MC reference implementation.
///
/// Stands in for the NetworKit / Gengraph comparators of the paper's
/// runtime table (Fig. 4), which are not available offline (DESIGN.md §4).
/// It mirrors the data-structure choices of that implementation class
/// (paper §5.2): the graph lives in per-node sorted adjacency vectors,
/// existence queries binary-search the smaller neighborhood (O(log d)),
/// and updates shift vector elements (O(d)).  An auxiliary edge array
/// provides uniform edge sampling.  The paper's argument is that hash-set
/// representations beat this by an order of magnitude — our Fig. 4 bench
/// reproduces exactly that comparison.
#pragma once

#include "core/chain.hpp"
#include "core/switch_stream.hpp"

#include <vector>

namespace gesmc {

class AdjListES final : public Chain {
public:
    AdjListES(const EdgeList& initial, const ChainConfig& config);

    /// Restores a snapshotted chain (see Chain::snapshot / make_chain).
    AdjListES(const ChainState& state, const ChainConfig& config);

    using Chain::run_supersteps;
    void run_supersteps(std::uint64_t count, RunObserver* observer,
                        std::uint64_t replicate) override;

    [[nodiscard]] ChainState snapshot() const override;

    [[nodiscard]] const EdgeList& graph() const override { return edges_; }
    [[nodiscard]] bool has_edge(edge_key_t key) const override;
    [[nodiscard]] const ChainStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "AdjListES"; }

private:
    void run_switches(std::uint64_t switches);
    void insert_adj(node_t u, node_t v);
    void erase_adj(node_t u, node_t v);

    EdgeList edges_;
    std::vector<std::vector<node_t>> adjacency_; ///< sorted neighbor vectors
    SwitchStream stream_;
    std::uint64_t next_switch_ = 0;
    ChainStats stats_;
};

} // namespace gesmc
