#include "core/seq_global_es.hpp"

#include "core/sequential_apply.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/binomial.hpp"
#include "rng/counter_rng.hpp"
#include "rng/shuffle.hpp"
#include "util/check.hpp"

namespace gesmc {

namespace {
constexpr std::uint64_t kPermSalt = 0x7be20d4c91a6f358ULL;
constexpr std::uint64_t kLenSalt = 0x1f84c6b09e3d57a2ULL;
} // namespace

std::uint64_t sample_global_switch(std::vector<Switch>& out,
                                   std::vector<std::uint32_t>& perm_scratch,
                                   std::uint64_t num_edges, std::uint64_t seed,
                                   std::uint64_t gidx, double pl, ThreadPool& pool) {
    GESMC_CHECK(pl > 0.0 && pl < 1.0, "Definition 3 requires 0 < P_L < 1");
    sample_permutation(perm_scratch, num_edges, mix64(seed, kPermSalt, gidx), pool);
    auto len_gen = stream_for(seed, kLenSalt, gidx);
    const std::uint64_t l = sample_binomial(len_gen, num_edges / 2, 1.0 - pl);
    out.resize(l);
    pool.for_chunks(0, l, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t k = lo; k < hi; ++k) {
            const std::uint32_t a = perm_scratch[2 * k];     // pi(2k-1), 0-based
            const std::uint32_t b = perm_scratch[2 * k + 1]; // pi(2k)
            out[k] = Switch{a, b, static_cast<std::uint8_t>(a < b ? 1 : 0)};
        }
    });
    return l;
}

SeqGlobalES::SeqGlobalES(const EdgeList& initial, const ChainConfig& config)
    : edges_(initial),
      set_(initial.num_edges()),
      seed_(config.seed),
      pl_(config.pl),
      pool_(make_pool_ref(config.shared_pool, 1)) {
    GESMC_CHECK(initial.num_edges() >= 2, "need at least two edges to switch");
    GESMC_CHECK(initial.is_simple(), "initial graph must be simple");
    set_.reserve(initial.num_edges());
    for (const edge_key_t k : edges_.keys()) set_.insert(k);
}

SeqGlobalES::SeqGlobalES(const ChainState& state, const ChainConfig& config)
    : SeqGlobalES(EdgeList::from_keys(state.num_nodes, state.keys),
                  config_with_state(config, state)) {
    next_global_ = state.counter;
    stats_ = state.stats;
}

SeqGlobalES::~SeqGlobalES() = default;

ChainState SeqGlobalES::snapshot() const {
    ChainState state;
    state.algorithm = ChainAlgorithm::kSeqGlobalES;
    state.seed = seed_;
    state.counter = next_global_;
    state.pl = pl_;
    state.num_nodes = edges_.num_nodes();
    state.keys = edges_.keys();
    state.stats = stats_;
    return state;
}

void SeqGlobalES::run_supersteps(std::uint64_t count, RunObserver* observer,
                                 std::uint64_t replicate) {
    for (std::uint64_t step = 0; step < count; ++step) {
        const std::uint64_t l =
            sample_global_switch(switch_scratch_, perm_scratch_, edges_.num_edges(), seed_,
                                 next_global_++, pl_, *pool_);
        for (std::uint64_t k = 0; k < l; ++k) {
            apply_switch_sequential(edges_.keys(), set_, switch_scratch_[k], stats_);
        }
        stats_.attempted += l;
        ++stats_.supersteps;
        if (observer != nullptr) observer->on_superstep(replicate, *this);
    }
}

} // namespace gesmc
