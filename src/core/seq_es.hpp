/// \file seq_es.hpp
/// \brief SeqES — the fast sequential ES-MC implementation (paper §5).
///
/// Graph state: an indexed edge list (uniform edge sampling from an
/// auxiliary array, §5.3) plus a robin-hood hash set with load factor <= 1/2
/// for existence queries (§5.2).  With prefetching enabled, switches are
/// processed in blocks of four whose hash-set queries are issued in stages
/// so that bucket cache lines are in flight while the previous switch is
/// decided (§5.4).  The pipelined path re-verifies its cached edge reads at
/// decision time, so its results are bit-identical to the plain path — a
/// property the tests assert.
#pragma once

#include "core/chain.hpp"
#include "core/switch_stream.hpp"
#include "hashing/robin_set.hpp"

namespace gesmc {

class SeqES final : public Chain {
public:
    SeqES(const EdgeList& initial, const ChainConfig& config);

    /// Restores a snapshotted chain (see Chain::snapshot / make_chain).
    SeqES(const ChainState& state, const ChainConfig& config);

    using Chain::run_supersteps;
    void run_supersteps(std::uint64_t count, RunObserver* observer,
                        std::uint64_t replicate) override;

    [[nodiscard]] ChainState snapshot() const override;

    [[nodiscard]] const EdgeList& graph() const override { return edges_; }
    [[nodiscard]] bool has_edge(edge_key_t key) const override { return set_.contains(key); }
    [[nodiscard]] const ChainStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "SeqES"; }

    /// Runs `count` individual switches (a superstep is m/2 of these).
    void run_switches(std::uint64_t count);

private:
    void apply_one(const Switch& sw);
    void run_block_pipelined(std::uint64_t first, unsigned block_len);

    EdgeList edges_;
    RobinSet set_;
    SwitchStream stream_;
    std::uint64_t next_switch_ = 0; ///< position in the switch stream
    ChainStats stats_;
    bool prefetch_;
};

} // namespace gesmc
