/// \file par_global_es.hpp
/// \brief ParGlobalES — exact parallel G-ES-MC (Algorithm 3 of the paper).
///
/// A global switch has no source dependencies by construction (every edge
/// index appears exactly once in the permutation), so the whole algorithm
/// is: sample the global switch, run one ParallelSuperstep — the simplicity
/// relative to ParES is the point of the paper.  The permutation and the
/// binomial length come from the same deterministic samplers as
/// SeqGlobalES, so both produce identical graphs for identical seeds
/// (exactness tests).
#pragma once

#include "core/chain.hpp"
#include "core/parallel_superstep.hpp"
#include "hashing/concurrent_edge_set.hpp"
#include "parallel/pool_ref.hpp"
#include "parallel/thread_pool.hpp"

#include <vector>

namespace gesmc {

class ParGlobalES final : public Chain {
public:
    ParGlobalES(const EdgeList& initial, const ChainConfig& config);

    /// Restores a snapshotted chain (see Chain::snapshot / make_chain).
    ParGlobalES(const ChainState& state, const ChainConfig& config);

    ~ParGlobalES() override;

    using Chain::run_supersteps;
    void run_supersteps(std::uint64_t count, RunObserver* observer,
                        std::uint64_t replicate) override;

    [[nodiscard]] ChainState snapshot() const override;

    [[nodiscard]] const EdgeList& graph() const override { return edges_; }
    [[nodiscard]] bool has_edge(edge_key_t key) const override { return set_.contains(key); }
    [[nodiscard]] const ChainStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "ParGlobalES"; }

    /// Rounds used by the most recent global switch (Fig. 9 driver).
    [[nodiscard]] std::uint32_t last_rounds() const noexcept { return last_rounds_; }

private:
    /// §7 base case: applies the sampled global switch sequentially.
    void run_global_switch_sequential();

    EdgeList edges_;
    ConcurrentEdgeSet set_;
    std::uint64_t seed_;
    double pl_;
    std::uint64_t small_graph_cutoff_;
    PoolRef pool_; ///< owned, or borrowed from ChainConfig::shared_pool
    SuperstepRunner runner_;
    std::vector<Switch> switch_scratch_;
    std::vector<std::uint32_t> perm_scratch_;
    std::uint64_t next_global_ = 0;
    std::uint32_t last_rounds_ = 0;
    ChainStats stats_;
};

} // namespace gesmc
