#include "core/parallel_superstep.hpp"

#include "util/check.hpp"
#include "util/prefetch.hpp"
#include "util/timer.hpp"

#include <numeric>

namespace gesmc {

SuperstepRunner::SuperstepRunner(std::uint64_t max_switches, bool prefetch)
    : table_(max_switches),
      status_(max_switches),
      src_(2 * max_switches),
      tgt_(2 * max_switches),
      prefetch_(prefetch) {
    undecided_.reserve(max_switches);
    next_undecided_.reserve(max_switches);
}

SuperstepResult SuperstepRunner::run(ThreadPool& pool, std::vector<edge_key_t>& edges,
                                     ConcurrentEdgeSet& set,
                                     std::span<const Switch> switches) {
    const std::uint64_t l = switches.size();
    GESMC_CHECK(l <= status_.size(), "batch exceeds the runner's sizing");
    SuperstepResult result;
    if (l == 0) return result;

    table_.begin_superstep(l, pool);
    if (delayed_.size() != pool.num_threads()) delayed_.resize(pool.num_threads());

    // ---- Phase A: read sources, compute targets, register dependencies.
    pool.for_chunks(0, l, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t k = lo; k < hi; ++k) {
            if (prefetch_ && k + 1 < hi) {
                // One switch ahead: the edge-array reads are random (§5.4).
                prefetch_read(&edges[switches[k + 1].i]);
                prefetch_read(&edges[switches[k + 1].j]);
            }
            const Switch sw = switches[k];
            const edge_key_t k1 = edges[sw.i];
            const edge_key_t k2 = edges[sw.j];
            const auto [t3, t4] =
                switch_targets(edge_from_key(k1), edge_from_key(k2), sw.g != 0);
            src_[2 * k] = k1;
            src_[2 * k + 1] = k2;
            tgt_[2 * k] = edge_key(t3);
            tgt_[2 * k + 1] = edge_key(t4);
            status_[k].store(SwitchStatus::kUndecided, std::memory_order_relaxed);

            const auto idx = static_cast<std::uint32_t>(k);
            table_.register_erase(k1, idx, tid);
            table_.register_erase(k2, idx, tid);
            // Loop targets are never registered: no switch can legally
            // insert a loop, and the loop check below decides such
            // switches in their first round regardless of dependencies.
            if (!t3.is_loop()) table_.register_insert(tgt_[2 * k], idx, 0, tid);
            if (!t4.is_loop()) table_.register_insert(tgt_[2 * k + 1], idx, 1, tid);
        }
    });

    // ---- Decision rounds.
    undecided_.resize(l);
    std::iota(undecided_.begin(), undecided_.end(), 0u);
    std::atomic<std::uint64_t> accepted{0}, rejected_loop{0}, rejected_edge{0};

    while (!undecided_.empty()) {
        ++result.rounds;
        ++global_round_; // tags the per-edge insert-min caches of this round
        const std::uint32_t round_id = global_round_;
        Timer round_timer;
        pool.for_chunks_dynamic(
            0, undecided_.size(), 256, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
                std::uint64_t acc = 0, rloop = 0, redge = 0;
                for (std::uint64_t u = lo; u < hi; ++u) {
                    if (prefetch_ && u + 1 < hi) {
                        // Dependency-table probes of the next switch (§5.4).
                        const std::uint32_t nk = undecided_[u + 1];
                        table_.prefetch(tgt_[2 * nk]);
                        table_.prefetch(tgt_[2 * nk + 1]);
                    }
                    const std::uint32_t k = undecided_[u];
                    // Loop targets dominate (same precedence as the
                    // sequential decide_switch, so the reject counters of
                    // parallel and sequential runs are comparable).
                    const bool loop =
                        key_is_loop(tgt_[2 * k]) || key_is_loop(tgt_[2 * k + 1]);
                    bool illegal = loop;
                    bool wait = false;
                    for (unsigned which = 0; which < 2 && !illegal; ++which) {
                        const edge_key_t target = tgt_[2 * k + which];
                        // One probe resolves both dependency roles.
                        const std::uint64_t slot = table_.find_slot(target);
                        // Erase rule. p == kNone means no switch erases the
                        // target; it is then illegal iff already in the graph
                        // (the implicit (e, infinity, erase, illegal) tuple).
                        const std::uint32_t p = slot == DependencyTable::kNoSlot
                                                    ? DependencyTable::kNone
                                                    : table_.erase_idx_at(slot);
                        if (p == DependencyTable::kNone) {
                            if (set.contains(target)) illegal = true;
                        } else if (k < p) {
                            illegal = true; // erased only by a later switch
                        } else if (k > p) {
                            const SwitchStatus sp =
                                status_[p].load(std::memory_order_acquire);
                            if (sp == SwitchStatus::kIllegal) {
                                illegal = true; // the eraser failed; edge stays
                            } else if (sp == SwitchStatus::kUndecided) {
                                wait = true;
                            }
                        } // k == p: our own source edge (identity case) — fine.

                        // Insert rule: only the smallest non-illegal inserter
                        // may proceed; it is our own tuple iff q == k.
                        const std::uint32_t q =
                            slot == DependencyTable::kNoSlot
                                ? DependencyTable::kNone
                                : table_.insert_min_at(slot, status_, round_id);
                        if (q < k) {
                            const SwitchStatus sq =
                                status_[q].load(std::memory_order_acquire);
                            if (sq == SwitchStatus::kLegal) {
                                illegal = true;
                            } else if (sq == SwitchStatus::kUndecided) {
                                wait = true;
                            }
                            // sq may read as kIllegal if it changed after the
                            // lookup; re-examining next round is safe.
                            if (sq == SwitchStatus::kIllegal) wait = true;
                        }
                    }

                    if (illegal) {
                        status_[k].store(SwitchStatus::kIllegal, std::memory_order_release);
                        if (loop) {
                            ++rloop;
                        } else {
                            ++redge;
                        }
                    } else if (wait) {
                        delayed_[tid].push_back(k);
                    } else {
                        // Legal: rewire the edge list *before* publishing the
                        // verdict (nobody else reads these indices — no
                        // source dependencies — but the final graph must be
                        // complete when dependents observe kLegal).
                        const Switch sw = switches[k];
                        edges[sw.i] = tgt_[2 * k];
                        edges[sw.j] = tgt_[2 * k + 1];
                        status_[k].store(SwitchStatus::kLegal, std::memory_order_release);
                        ++acc;
                    }
                }
                accepted.fetch_add(acc, std::memory_order_relaxed);
                rejected_loop.fetch_add(rloop, std::memory_order_relaxed);
                rejected_edge.fetch_add(redge, std::memory_order_relaxed);
            });

        // Collect delayed switches for the next round.
        next_undecided_.clear();
        for (auto& local : delayed_) {
            next_undecided_.insert(next_undecided_.end(), local.begin(), local.end());
            local.clear();
        }
        GESMC_CHECK(next_undecided_.size() < undecided_.size(),
                    "no progress in a superstep round (dependency cycle?)");
        undecided_.swap(next_undecided_);

        const double secs = round_timer.elapsed_s();
        if (result.rounds == 1) {
            result.first_round_seconds += secs;
        } else {
            result.later_rounds_seconds += secs;
        }
    }

    result.accepted = accepted.load();
    result.rejected_loop = rejected_loop.load();
    result.rejected_edge = rejected_edge.load();

    // ---- Apply the edge-set delta: removals first, then insertions (an
    // edge erased by one legal switch may be re-inserted by a later one).
    pool.for_chunks(0, l, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t k = lo; k < hi; ++k) {
            if (status_[k].load(std::memory_order_relaxed) != SwitchStatus::kLegal) continue;
            if (tgt_[2 * k] == src_[2 * k] || tgt_[2 * k] == src_[2 * k + 1]) continue;
            const bool e1 = set.erase_unique(src_[2 * k]);
            const bool e2 = set.erase_unique(src_[2 * k + 1]);
            GESMC_CHECK(e1 && e2, "legal switch erased a missing edge");
        }
    });
    pool.for_chunks(0, l, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t k = lo; k < hi; ++k) {
            if (status_[k].load(std::memory_order_relaxed) != SwitchStatus::kLegal) continue;
            if (tgt_[2 * k] == src_[2 * k] || tgt_[2 * k] == src_[2 * k + 1]) continue;
            const bool i1 = set.insert_unique(tgt_[2 * k]);
            const bool i2 = set.insert_unique(tgt_[2 * k + 1]);
            GESMC_CHECK(i1 && i2, "legal switch inserted an existing edge");
        }
    });

    return result;
}

} // namespace gesmc
