/// \file naive_par_es.hpp
/// \brief NaiveParES — the simplistic parallel ES-MC baseline (paper §5.1).
///
/// Each processing unit performs switches independently, synchronizing
/// implicitly only by preventing concurrent updates of individual edges:
/// removing an edge requires a *ticket*, acquired by locking an existing
/// edge or by inserting-and-locking a new one (compare-and-exchange on the
/// bucket's lock byte).  Dependencies *between* switches are deliberately
/// ignored, so the process can deviate from the intended Markov chain —
/// the paper's motivation for the exact algorithms.  We therefore test only
/// invariants (degree preservation, simplicity), never sequential
/// equivalence.
///
/// Conflict handling: failed ticket acquisitions roll back everything and
/// retry the same switch with backoff; a target edge found locked by
/// another PU is retried a bounded number of times, then treated as a
/// rejection (a transient conflict — the "hardware sequences concurrent
/// updates" behaviour of the paper).
#pragma once

#include "core/chain.hpp"
#include "core/switch_stream.hpp"
#include "hashing/concurrent_edge_set.hpp"
#include "parallel/pool_ref.hpp"
#include "parallel/thread_pool.hpp"

#include <atomic>
#include <vector>

namespace gesmc {

class NaiveParES final : public Chain {
public:
    NaiveParES(const EdgeList& initial, const ChainConfig& config);

    /// Restores a snapshotted chain.  Caveat (fixed-policy): the thread
    /// partition is part of this process, so a resume reproduces the
    /// uninterrupted run only for the same thread count, and exactly only
    /// with one thread (concurrent interleavings are inherently racy).
    NaiveParES(const ChainState& state, const ChainConfig& config);

    ~NaiveParES() override;

    using Chain::run_supersteps;
    void run_supersteps(std::uint64_t count, RunObserver* observer,
                        std::uint64_t replicate) override;

    [[nodiscard]] ChainState snapshot() const override;

    [[nodiscard]] const EdgeList& graph() const override;
    [[nodiscard]] bool has_edge(edge_key_t key) const override { return set_.contains(key); }
    [[nodiscard]] const ChainStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "NaiveParES"; }

private:
    /// One switch attempt by thread `tid`; returns counters via references.
    void perform_switch(unsigned tid, const Switch& sw, std::uint64_t& accepted,
                        std::uint64_t& rejected_loop, std::uint64_t& rejected_edge);

    // Edge array entries are written concurrently -> atomics.
    std::vector<std::atomic<edge_key_t>> edges_;
    node_t num_nodes_;
    ConcurrentEdgeSet set_;
    std::uint64_t seed_;
    PoolRef pool_; ///< owned, or borrowed from ChainConfig::shared_pool
    std::uint64_t next_switch_ = 0;
    ChainStats stats_;

    mutable EdgeList snapshot_; ///< materialized on demand by graph()
    mutable bool snapshot_valid_ = false;
};

} // namespace gesmc
