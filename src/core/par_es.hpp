/// \file par_es.hpp
/// \brief ParES — exact parallel ES-MC (Algorithm 2 of the paper).
///
/// Consumes the same deterministic switch stream as SeqES.  Repeatedly
/// finds the longest prefix sigma_s..sigma_{t-1} of remaining switches with
/// no source dependencies (no edge index used twice) via concurrent
/// insert-if-min on a per-edge-index map, then executes that prefix with
/// ParallelSuperstep.  Because the superstep preserves the sequential
/// outcome, ParES(seed) produces the same graph as SeqES(seed) for every
/// thread count — the paper's exactness claim, asserted by the tests.
///
/// The paper stores the (index, switch) pairs in a concurrent hash set; we
/// use a direct-addressed array over the m edge indices (one CAS-min per
/// access, reset via touched lists), which implements the identical
/// insert_if_min semantics with fewer indirections.
#pragma once

#include "core/chain.hpp"
#include "core/parallel_superstep.hpp"
#include "core/switch_stream.hpp"
#include "hashing/concurrent_edge_set.hpp"
#include "parallel/pool_ref.hpp"
#include "parallel/thread_pool.hpp"

#include <atomic>
#include <memory>
#include <vector>

namespace gesmc {

/// Concurrent map: edge index -> smallest switch index that uses it.
/// insert_if_min returns the previous minimum (or kNone).
class MinIndexMap {
public:
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    explicit MinIndexMap(std::uint64_t num_edges, unsigned num_threads);

    /// CAS-min loop; returns the value observed before our update (kNone if
    /// the cell was untouched). Records touched cells for reset().
    std::uint32_t insert_if_min(std::uint32_t edge_index, std::uint32_t switch_index,
                                unsigned tid);

    /// Clears only the cells touched since the last reset.
    void reset(ThreadPool& pool);

private:
    std::vector<std::atomic<std::uint32_t>> min_;
    std::vector<std::vector<std::uint32_t>> touched_;
};

class ParES final : public Chain {
public:
    ParES(const EdgeList& initial, const ChainConfig& config);

    /// Restores a snapshotted chain (see Chain::snapshot / make_chain).
    ParES(const ChainState& state, const ChainConfig& config);

    ~ParES() override;

    using Chain::run_supersteps;
    void run_supersteps(std::uint64_t count, RunObserver* observer,
                        std::uint64_t replicate) override;

    [[nodiscard]] ChainState snapshot() const override;

    [[nodiscard]] const EdgeList& graph() const override;
    [[nodiscard]] bool has_edge(edge_key_t key) const override { return set_.contains(key); }
    [[nodiscard]] const ChainStats& stats() const override { return stats_; }
    [[nodiscard]] std::string name() const override { return "ParES"; }

    /// Average length of the dependency-free prefixes executed by *this*
    /// chain object (the paper's Theta(sqrt(m)) expectation for ES-MC,
    /// §3).  On a restored chain the average covers the windows since the
    /// restore — window counts are not part of ChainState.
    [[nodiscard]] double mean_superstep_length() const;

private:
    /// Executes switches [next_switch_, end) of the stream in windows.
    void run_switch_range(std::uint64_t end);

    /// Finds the end t of the maximal source-dependency-free window
    /// starting at s (exclusive end, capped at `cap`).
    std::uint64_t find_window_end(std::uint64_t s, std::uint64_t cap);

    mutable EdgeList edges_; // keys mutated in place; num_nodes constant
    ConcurrentEdgeSet set_;
    SwitchStream stream_;
    PoolRef pool_; ///< owned, or borrowed from ChainConfig::shared_pool
    MinIndexMap index_map_;
    SuperstepRunner runner_;
    std::vector<Switch> window_;
    std::uint64_t next_switch_ = 0;
    std::uint64_t windows_executed_ = 0;
    std::uint64_t attempted_at_construction_ = 0; ///< restored stats baseline
    ChainStats stats_;
};

} // namespace gesmc
