/// \file sequential_apply.hpp
/// \brief Shared single-switch executor for the sequential chains.
///
/// SeqES, SeqGlobalES and the test reference executor all decide and apply
/// one switch against (edge array, robin set) state with identical
/// semantics (see edge_switch.hpp for the identity-case convention).
#pragma once

#include "core/chain.hpp"
#include "core/edge_switch.hpp"
#include "hashing/robin_set.hpp"

#include <vector>

namespace gesmc {

/// Decides sw against the current state and applies it if legal.
/// Returns the outcome; updates accepted/rejected counters in `stats`.
inline SwitchOutcome apply_switch_sequential(std::vector<edge_key_t>& keys, RobinSet& set,
                                             const Switch& sw, ChainStats& stats) {
    const edge_key_t k1 = keys[sw.i];
    const edge_key_t k2 = keys[sw.j];
    const auto [t3, t4] = switch_targets(edge_from_key(k1), edge_from_key(k2), sw.g != 0);
    const SwitchOutcome outcome =
        decide_switch(k1, k2, t3, t4, [&set](edge_key_t k) { return set.contains(k); });
    switch (outcome) {
    case SwitchOutcome::kAccepted: {
        const edge_key_t k3 = edge_key(t3);
        const edge_key_t k4 = edge_key(t4);
        if (k3 != k1 && k3 != k2) { // identity no-op needs no set updates
            set.erase(k1);
            set.erase(k2);
            set.insert(k3);
            set.insert(k4);
        }
        keys[sw.i] = k3;
        keys[sw.j] = k4;
        ++stats.accepted;
        break;
    }
    case SwitchOutcome::kRejectedLoop:
        ++stats.rejected_loop;
        break;
    case SwitchOutcome::kRejectedEdge:
        ++stats.rejected_edge;
        break;
    }
    return outcome;
}

} // namespace gesmc
