#include "core/par_es.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

#include <cmath>

namespace gesmc {

MinIndexMap::MinIndexMap(std::uint64_t num_edges, unsigned num_threads)
    : min_(num_edges), touched_(num_threads) {
    for (auto& cell : min_) cell.store(kNone, std::memory_order_relaxed);
}

std::uint32_t MinIndexMap::insert_if_min(std::uint32_t edge_index, std::uint32_t switch_index,
                                         unsigned tid) {
    auto& cell = min_[edge_index];
    std::uint32_t seen = cell.load(std::memory_order_relaxed);
    for (;;) {
        if (seen == kNone) {
            if (cell.compare_exchange_weak(seen, switch_index, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
                touched_[tid].push_back(edge_index);
                return kNone;
            }
            continue; // seen updated; re-evaluate
        }
        if (switch_index >= seen) return seen; // cell already holds a smaller index
        if (cell.compare_exchange_weak(seen, switch_index, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
            return seen;
        }
    }
}

void MinIndexMap::reset(ThreadPool& pool) {
    pool.for_chunks_dynamic(0, touched_.size(), 1,
                            [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                                for (std::uint64_t t = lo; t < hi; ++t) {
                                    for (const std::uint32_t cell : touched_[t]) {
                                        min_[cell].store(kNone, std::memory_order_relaxed);
                                    }
                                    touched_[t].clear();
                                }
                            });
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

ParES::ParES(const EdgeList& initial, const ChainConfig& config)
    : edges_(initial),
      set_(initial.num_edges(), config.edge_set_backend),
      stream_(config.seed, initial.num_edges()),
      pool_(make_pool_ref(config.shared_pool, config.threads)),
      index_map_(initial.num_edges(), pool_->num_threads()),
      runner_(initial.num_edges(), config.prefetch) {
    GESMC_CHECK(initial.num_edges() >= 2, "need at least two edges to switch");
    GESMC_CHECK(initial.is_simple(), "initial graph must be simple");
    for (const edge_key_t k : edges_.keys()) set_.insert_unique(k);
}

ParES::ParES(const ChainState& state, const ChainConfig& config)
    : ParES(EdgeList::from_keys(state.num_nodes, state.keys),
            config_with_state(config, state)) {
    next_switch_ = state.counter;
    stats_ = state.stats;
    attempted_at_construction_ = state.stats.attempted;
}

ParES::~ParES() = default;

ChainState ParES::snapshot() const {
    ChainState state;
    state.algorithm = ChainAlgorithm::kParES;
    state.seed = stream_.seed();
    state.counter = next_switch_;
    state.num_nodes = edges_.num_nodes();
    state.keys = edges_.keys();
    state.stats = stats_;
    return state;
}

const EdgeList& ParES::graph() const { return edges_; }

double ParES::mean_superstep_length() const {
    if (windows_executed_ == 0) return 0.0;
    // Only the switches attempted by this object: restored stats carry the
    // pre-snapshot attempts, but windows_executed_ starts at the restore.
    return static_cast<double>(stats_.attempted - attempted_at_construction_) /
           static_cast<double>(windows_executed_);
}

void ParES::run_supersteps(std::uint64_t count, RunObserver* observer,
                           std::uint64_t replicate) {
    const std::uint64_t per_superstep = edges_.num_edges() / 2;
    for (std::uint64_t s = 0; s < count; ++s) {
        run_switch_range(next_switch_ + per_superstep);
        ++stats_.supersteps;
        if (observer != nullptr) observer->on_superstep(replicate, *this);
    }
}

std::uint64_t ParES::find_window_end(std::uint64_t s, std::uint64_t cap) {
    index_map_.reset(*pool_);
    std::atomic<std::uint64_t> bound{cap};
    // Expected window length is Theta(sqrt(m)) (paper §3); scan in chunks of
    // that order, doubling, so we rarely overshoot by more than 2x.
    std::uint64_t chunk = std::max<std::uint64_t>(
        256, static_cast<std::uint64_t>(2.0 * std::sqrt(double(stream_.num_edges()))));
    std::uint64_t scanned = s;
    while (scanned < bound.load(std::memory_order_relaxed)) {
        const std::uint64_t begin = scanned;
        const std::uint64_t end = std::min(begin + chunk, cap);
        pool_->for_chunks(begin, end, [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t k = lo; k < hi; ++k) {
                // Skip work beyond the current bound (it will be discarded),
                // but stay conservative: the bound may still shrink.
                if (k >= bound.load(std::memory_order_relaxed)) break;
                const Switch sw = stream_.get(k);
                const auto ki = static_cast<std::uint32_t>(k);
                for (const std::uint32_t edge_idx : {sw.i, sw.j}) {
                    const std::uint32_t prev = index_map_.insert_if_min(edge_idx, ki, tid);
                    if (prev == MinIndexMap::kNone) continue;
                    // Collision: the later of the two indices bounds the
                    // window (paper: t' = max{k, k'}, t = min{t, t'}).
                    const std::uint64_t t = std::max<std::uint64_t>(ki, prev);
                    std::uint64_t cur = bound.load(std::memory_order_relaxed);
                    while (t < cur &&
                           !bound.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
                    }
                }
            }
        });
        scanned = end;
        chunk *= 2;
    }
    const std::uint64_t t = bound.load();
    GESMC_CHECK(t > s, "window must contain at least one switch");
    return t;
}

void ParES::run_switch_range(std::uint64_t end) {
    while (next_switch_ < end) {
        const std::uint64_t s = next_switch_;
        // Capping windows at the superstep boundary only shortens them;
        // the executed switch sequence (and thus the graph) is unchanged.
        const std::uint64_t t = find_window_end(s, end);

        window_.resize(t - s);
        pool_->for_chunks(s, t, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t k = lo; k < hi; ++k) window_[k - s] = stream_.get(k);
        });

        const SuperstepResult result = runner_.run(*pool_, edges_.keys(), set_, window_);
        stats_.attempted += t - s;
        stats_.accepted += result.accepted;
        stats_.rejected_loop += result.rejected_loop;
        stats_.rejected_edge += result.rejected_edge;
        stats_.rounds_total += result.rounds;
        stats_.rounds_max = std::max<std::uint64_t>(stats_.rounds_max, result.rounds);
        stats_.first_round_seconds += result.first_round_seconds;
        stats_.later_rounds_seconds += result.later_rounds_seconds;
        ++windows_executed_;

        set_.maybe_rebuild();
        next_switch_ = t;
    }
}

} // namespace gesmc
