#include "core/par_global_es.hpp"

#include "core/seq_global_es.hpp" // sample_global_switch
#include "util/check.hpp"

namespace gesmc {

ParGlobalES::ParGlobalES(const EdgeList& initial, const ChainConfig& config)
    : edges_(initial),
      set_(initial.num_edges(), config.edge_set_backend),
      seed_(config.seed),
      pl_(config.pl),
      small_graph_cutoff_(config.small_graph_cutoff),
      pool_(make_pool_ref(config.shared_pool, config.threads)),
      runner_(initial.num_edges() / 2, config.prefetch) {
    GESMC_CHECK(initial.num_edges() >= 2, "need at least two edges to switch");
    GESMC_CHECK(initial.is_simple(), "initial graph must be simple");
    for (const edge_key_t k : edges_.keys()) set_.insert_unique(k);
}

ParGlobalES::ParGlobalES(const ChainState& state, const ChainConfig& config)
    : ParGlobalES(EdgeList::from_keys(state.num_nodes, state.keys),
                  config_with_state(config, state)) {
    next_global_ = state.counter;
    stats_ = state.stats;
}

ParGlobalES::~ParGlobalES() = default;

ChainState ParGlobalES::snapshot() const {
    ChainState state;
    state.algorithm = ChainAlgorithm::kParGlobalES;
    state.seed = seed_;
    state.counter = next_global_;
    state.pl = pl_;
    state.num_nodes = edges_.num_nodes();
    state.keys = edges_.keys();
    state.stats = stats_;
    return state;
}

void ParGlobalES::run_supersteps(std::uint64_t count, RunObserver* observer,
                                 std::uint64_t replicate) {
    for (std::uint64_t step = 0; step < count; ++step) {
        const std::uint64_t l =
            sample_global_switch(switch_scratch_, perm_scratch_, edges_.num_edges(), seed_,
                                 next_global_++, pl_, *pool_);
        stats_.attempted += l;
        if (edges_.num_edges() < small_graph_cutoff_) {
            // §7 base case: skip the superstep machinery; the outcome is
            // identical (the superstep reproduces sequential execution).
            run_global_switch_sequential();
            last_rounds_ = 0;
        } else {
            const SuperstepResult result =
                runner_.run(*pool_, edges_.keys(), set_, switch_scratch_);
            last_rounds_ = result.rounds;
            stats_.accepted += result.accepted;
            stats_.rejected_loop += result.rejected_loop;
            stats_.rejected_edge += result.rejected_edge;
            stats_.rounds_total += result.rounds;
            stats_.rounds_max = std::max<std::uint64_t>(stats_.rounds_max, result.rounds);
            stats_.first_round_seconds += result.first_round_seconds;
            stats_.later_rounds_seconds += result.later_rounds_seconds;
        }
        ++stats_.supersteps;
        set_.maybe_rebuild();
        if (observer != nullptr) observer->on_superstep(replicate, *this);
    }
}

void ParGlobalES::run_global_switch_sequential() {
    auto& keys = edges_.keys();
    for (const Switch& sw : switch_scratch_) {
        const edge_key_t k1 = keys[sw.i];
        const edge_key_t k2 = keys[sw.j];
        const auto [t3, t4] =
            switch_targets(edge_from_key(k1), edge_from_key(k2), sw.g != 0);
        const SwitchOutcome outcome = decide_switch(
            k1, k2, t3, t4, [this](edge_key_t k) { return set_.contains(k); });
        switch (outcome) {
        case SwitchOutcome::kAccepted: {
            const edge_key_t k3 = edge_key(t3);
            const edge_key_t k4 = edge_key(t4);
            if (k3 != k1 && k3 != k2) {
                set_.erase_unique(k1);
                set_.erase_unique(k2);
                set_.insert_unique(k3);
                set_.insert_unique(k4);
            }
            keys[sw.i] = k3;
            keys[sw.j] = k4;
            ++stats_.accepted;
            break;
        }
        case SwitchOutcome::kRejectedLoop:
            ++stats_.rejected_loop;
            break;
        case SwitchOutcome::kRejectedEdge:
            ++stats_.rejected_edge;
            break;
        }
    }
}

} // namespace gesmc
