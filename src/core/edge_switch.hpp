/// \file edge_switch.hpp
/// \brief Definition 1 of the paper: the edge switch and its tau function.
///
/// An edge switch sigma = (i, j, g) reads the edges e1 = E[i], e2 = E[j]
/// (in their canonical orientations) and proposes the targets
///   tau((u,v), (x,y), 0) = ((u,x), (v,y))
///   tau((u,v), (x,y), 1) = ((u,y), (v,x)).
/// The switch is rejected if either target is a self-loop or already exists
/// in the graph.
///
/// Degenerate identity case: when e1 and e2 share an endpoint *and* g points
/// the shared endpoint at itself, the targets equal the sources as sets
/// ({t3,t4} == {e1,e2}); the graph is unchanged whether we call that switch
/// accepted or rejected.  All implementations in this library treat it as
/// accepted (equivalently: existence is checked against E minus the two
/// source edges), which is also what the dependency rules of
/// ParallelSuperstep yield naturally.  One can show {t3,t4} and {e1,e2}
/// are either disjoint or equal, so this is the only special case.
#pragma once

#include "graph/edge.hpp"

#include <cstdint>
#include <utility>

namespace gesmc {

/// An edge switch: two edge-list indices and the direction bit.
struct Switch {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    std::uint8_t g = 0;
};

/// The paper's tau: proposed (directed) target edges for sources e1, e2.
[[nodiscard]] constexpr std::pair<Edge, Edge> switch_targets(Edge e1, Edge e2,
                                                             bool g) noexcept {
    if (!g) return {Edge{e1.u, e2.u}, Edge{e1.v, e2.v}};
    return {Edge{e1.u, e2.v}, Edge{e1.v, e2.u}};
}

/// Outcome classification for statistics.
enum class SwitchOutcome : std::uint8_t {
    kAccepted = 0,     ///< rewired (includes the identity no-op case)
    kRejectedLoop = 1, ///< a target was a self-loop
    kRejectedEdge = 2, ///< a target already existed (multi-edge)
};

/// Decides a single switch against an edge-existence oracle, *excluding*
/// the source edges themselves (identity-accepting semantics above).
/// `contains` is called only for targets distinct from both sources.
template <typename ContainsFn>
[[nodiscard]] SwitchOutcome decide_switch(edge_key_t k1, edge_key_t k2, Edge t3, Edge t4,
                                          ContainsFn&& contains) {
    if (t3.is_loop() || t4.is_loop()) return SwitchOutcome::kRejectedLoop;
    const edge_key_t k3 = edge_key(t3);
    const edge_key_t k4 = edge_key(t4);
    if (k3 == k1 || k3 == k2) {
        // Identity case ({t3,t4} == {e1,e2}); accepted no-op.
        return SwitchOutcome::kAccepted;
    }
    if (contains(k3) || contains(k4)) return SwitchOutcome::kRejectedEdge;
    return SwitchOutcome::kAccepted;
}

} // namespace gesmc
