/// \file parallel_superstep.hpp
/// \brief Algorithm 1 of the paper: exact parallel superstep execution.
///
/// Executes a batch of edge switches *without source dependencies* (every
/// edge-list index appears in at most one switch) in parallel while
/// producing exactly the graph a sequential in-order execution would
/// produce.  Target dependencies are tracked in a DependencyTable:
///
///  * erase dependency: sigma_k wants to insert an edge that sigma_p
///    (p < k) erases — sigma_k must wait for sigma_p's verdict; if nobody
///    erases the edge but it is in the graph, sigma_k is illegal
///    (the paper's implicit (e, infinity, erase, illegal) tuple);
///    if the eraser comes *later* (k < p), sigma_k is illegal.
///  * insert dependency: among all switches inserting the same edge, only
///    the smallest non-illegal index may succeed; later ones are illegal
///    once it is legal, and must wait while it is undecided.
///
/// Switches are decided over multiple rounds; each round decides every
/// switch whose dependencies are settled (waits only point to smaller
/// indices, so the minimum undecided switch always decides and the loop
/// terminates).  Theorems 2/3 of the paper bound the expected rounds.
///
/// The graph's edge set is only read during the rounds; erase/insert deltas
/// of legal switches are applied in two parallel phases afterwards (all
/// removals, then all insertions — at most one legal eraser and one legal
/// inserter exist per edge, so the lock-free *_unique set operations apply).
#pragma once

#include "core/edge_switch.hpp"
#include "hashing/concurrent_edge_set.hpp"
#include "hashing/dependency_table.hpp"
#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace gesmc {

/// Per-superstep instrumentation (drives Fig. 9 and the stats counters).
struct SuperstepResult {
    std::uint32_t rounds = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_loop = 0;
    std::uint64_t rejected_edge = 0;
    double first_round_seconds = 0;
    double later_rounds_seconds = 0;
};

/// Reusable executor: owns the dependency table and all scratch arrays so
/// repeated supersteps allocate nothing.
class SuperstepRunner {
public:
    /// max_switches: largest batch ever passed to run() (m/2 for G-ES-MC).
    /// With `prefetch`, registration and decision loops issue one-switch-
    /// ahead prefetches of edge-array entries and hash buckets (§5.4).
    explicit SuperstepRunner(std::uint64_t max_switches, bool prefetch = true);

    /// Executes the batch on (edges, set). `switches` must be free of
    /// source dependencies; `set` must contain exactly the keys of `edges`.
    SuperstepResult run(ThreadPool& pool, std::vector<edge_key_t>& edges,
                        ConcurrentEdgeSet& set, std::span<const Switch> switches);

private:
    DependencyTable table_;
    std::vector<std::atomic<SwitchStatus>> status_;
    std::vector<edge_key_t> src_; ///< 2 per switch: source keys at batch start
    std::vector<edge_key_t> tgt_; ///< 2 per switch: target keys (maybe loops)
    std::vector<std::uint32_t> undecided_;
    std::vector<std::uint32_t> next_undecided_;
    std::vector<std::vector<std::uint32_t>> delayed_; ///< per thread
    std::uint32_t global_round_ = 0; ///< increases across supersteps (cache tags)
    bool prefetch_;
};

} // namespace gesmc
