/// \file hash.hpp
/// \brief 64-bit key hashing for the edge hash sets (paper §5.2).
///
/// The paper's hash function uses the 64-bit variant of the crc32
/// instruction available on x64 processors with SSE 4.2.  We provide
///   * crc_hash  — hardware CRC32c when compiled with SSE4.2, otherwise a
///                 table-driven software CRC32c (bit-identical);
///   * mix_hash  — SplitMix64 finalizer, used as a portable alternative and
///                 compared against crc_hash in the micro ablation bench.
/// Both produce well-distributed 64-bit values whose *high* bits feed
/// power-of-two tables via a right shift.
#pragma once

#include "util/bits.hpp"

#include <cstdint>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace gesmc {

namespace detail {

/// Software CRC32c (Castagnoli, reflected polynomial 0x82F63B78), processed
/// bytewise with a lazily built 256-entry table. Matches _mm_crc32_u64.
std::uint32_t crc32c_sw(std::uint32_t crc, std::uint64_t data) noexcept;

} // namespace detail

/// CRC32c of a 64-bit key, widened to 64 well-distributed bits by a
/// Fibonacci multiply (the CRC itself only yields 32 bits).
inline std::uint64_t crc_hash(std::uint64_t key) noexcept {
#if defined(__SSE4_2__)
    const auto crc = static_cast<std::uint32_t>(_mm_crc32_u64(0xB2D05E13u, key));
#else
    const auto crc = detail::crc32c_sw(0xB2D05E13u, key);
#endif
    // Mix the CRC back with the key so that more than 32 bits of entropy
    // survive, then spread with the golden-ratio constant.
    return (static_cast<std::uint64_t>(crc) ^ (key << 32)) * 0x9E3779B97F4A7C15ULL;
}

/// SplitMix64-based hash (full 64-bit avalanche).
inline std::uint64_t mix_hash(std::uint64_t key) noexcept { return mix64(key); }

/// Default hash used by the edge sets.
inline std::uint64_t edge_hash(std::uint64_t key) noexcept { return crc_hash(key); }

} // namespace gesmc
