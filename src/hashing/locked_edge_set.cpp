#include "hashing/locked_edge_set.hpp"

#include "hashing/edge_set_stats.hpp"
#include "obs/metrics.hpp"

#include <thread>

namespace gesmc {

namespace {
constexpr std::uint64_t kLockShift = LockedEdgeSet::kKeyBits;
constexpr std::uint64_t kUnlockedMask = LockedEdgeSet::kKeyMask;
constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

constexpr std::uint64_t key_of(std::uint64_t bucket) noexcept { return bucket & kUnlockedMask; }
constexpr unsigned owner_of(std::uint64_t bucket) noexcept {
    return static_cast<unsigned>(bucket >> kLockShift);
}

/// Probe statistics, counted locally per call and added once at the end —
/// the disabled cost on the contains() hot path is two relaxed loads and a
/// predictable branch (obs flag + the bench-rig stats hook).
struct LockedMetrics {
    obs::Counter& lookups =
        obs::MetricsRegistry::instance().counter("hashset.locked.lookups");
    obs::Counter& probe_steps =
        obs::MetricsRegistry::instance().counter("hashset.locked.probe_steps");
    obs::Counter& inserts =
        obs::MetricsRegistry::instance().counter("hashset.locked.inserts");
    obs::Counter& insert_collisions =
        obs::MetricsRegistry::instance().counter("hashset.locked.insert_collisions");
    obs::Counter& cas_retries =
        obs::MetricsRegistry::instance().counter("hashset.locked.cas_retries");
    obs::Gauge& psl_max =
        obs::MetricsRegistry::instance().gauge("hashset.locked.psl_max");
};

LockedMetrics& locked_metrics() noexcept {
    static LockedMetrics& m = *new LockedMetrics();
    return m;
}

[[nodiscard]] bool measuring() noexcept {
    return obs::metrics_enabled() || edge_set_stats_active();
}
} // namespace

LockedEdgeSet::LockedEdgeSet(std::uint64_t max_live_keys) {
    // 4x headroom: live keys stay below 1/4 load, tombstones may add another
    // 1/4 before maybe_rebuild() compacts, so probes stay short.
    const std::uint64_t cap = next_pow2(std::max<std::uint64_t>(64, max_live_keys * 4));
    table_ = std::vector<std::atomic<std::uint64_t>>(cap);
    for (auto& b : table_) b.store(kEmpty, std::memory_order_relaxed);
    stripes_ = std::vector<std::atomic<std::uint8_t>>(kStripes);
    for (auto& s : stripes_) s.store(0, std::memory_order_relaxed);
    mask_ = cap - 1;
    shift_ = 64 - log2_floor(cap);
}

void LockedEdgeSet::note_psl(std::uint64_t distance) noexcept {
    std::uint64_t cur = psl_max_.load(std::memory_order_relaxed);
    while (distance > cur &&
           !psl_max_.compare_exchange_weak(cur, distance, std::memory_order_relaxed)) {
    }
    if (distance > cur) {
        locked_metrics().psl_max.set(
            static_cast<std::int64_t>(psl_max_.load(std::memory_order_relaxed)));
        if (EdgeSetOpStats* ls = edge_set_thread_stats(); ls && distance > ls->psl_max) {
            ls->psl_max = distance;
        }
    }
}

bool LockedEdgeSet::contains(std::uint64_t key) const noexcept {
    if (!measuring()) {
        std::uint64_t idx = home(key);
        for (std::uint64_t probes = 0; probes <= mask_; ++probes) {
            const std::uint64_t bucket = table_[idx].load(std::memory_order_acquire);
            const std::uint64_t k = key_of(bucket);
            if (k == key) return true;
            if (k == kEmpty) return false;
            idx = (idx + 1) & mask_;
        }
        return false; // table fully scanned (cannot happen at load <= 1/2)
    }
    LockedMetrics& m = locked_metrics();
    m.lookups.add(1);
    EdgeSetOpStats* ls = edge_set_thread_stats();
    if (ls) ls->lookups += 1;
    std::uint64_t idx = home(key);
    for (std::uint64_t probes = 0; probes <= mask_; ++probes) {
        const std::uint64_t bucket = table_[idx].load(std::memory_order_acquire);
        const std::uint64_t k = key_of(bucket);
        if (k == key || k == kEmpty) {
            m.probe_steps.add(probes + 1);
            if (ls) ls->probe_steps += probes + 1;
            return k == key;
        }
        idx = (idx + 1) & mask_;
    }
    m.probe_steps.add(mask_ + 1);
    if (ls) ls->probe_steps += mask_ + 1;
    return false;
}

void LockedEdgeSet::lock_stripe(std::atomic<std::uint8_t>& s) noexcept {
    unsigned spins = 0;
    std::uint64_t retries = 0;
    for (;;) {
        std::uint8_t expected = 0;
        if (s.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
            if (retries > 0 && measuring()) {
                locked_metrics().cas_retries.add(retries);
                if (EdgeSetOpStats* ls = edge_set_thread_stats()) ls->cas_retries += retries;
            }
            return;
        }
        ++retries;
        if (++spins > 256) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

void LockedEdgeSet::unlock_stripe(std::atomic<std::uint8_t>& s) noexcept {
    s.store(0, std::memory_order_release);
}

/// Core probe-and-claim. Must run with same-key operations excluded (either
/// under the key's stripe lock or by the insert_unique contract).
bool LockedEdgeSet::insert_impl(std::uint64_t key, std::uint64_t locked_state,
                                std::uint64_t* slot_out, bool* exists_locked_out) {
    const std::uint64_t value = key | locked_state;
    const bool measure = measuring();
    std::uint64_t retries = 0;
retry:
    std::uint64_t idx = home(key);
    std::uint64_t first_tomb = kNoSlot;
    for (std::uint64_t probes = 0; probes <= mask_; ++probes) {
        const std::uint64_t bucket = table_[idx].load(std::memory_order_acquire);
        const std::uint64_t k = key_of(bucket);
        if (k == key) {
            if (slot_out) *slot_out = idx;
            if (exists_locked_out) *exists_locked_out = owner_of(bucket) != 0;
            return false;
        }
        if (k == kTomb && first_tomb == kNoSlot) {
            first_tomb = idx;
        } else if (k == kEmpty) {
            // Prefer recycling the first tombstone of the probe chain.
            if (first_tomb != kNoSlot) {
                std::uint64_t expected = kTomb;
                if (table_[first_tomb].compare_exchange_strong(expected, value,
                                                               std::memory_order_acq_rel)) {
                    tombs_.fetch_sub(1, std::memory_order_relaxed);
                    size_.fetch_add(1, std::memory_order_relaxed);
                    if (measure) {
                        LockedMetrics& m = locked_metrics();
                        m.inserts.add(1);
                        if (probes > 0) m.insert_collisions.add(probes);
                        if (retries > 0) m.cas_retries.add(retries);
                        if (EdgeSetOpStats* ls = edge_set_thread_stats()) {
                            ls->inserts += 1;
                            ls->probe_steps += probes + 1;
                            ls->cas_retries += retries;
                        }
                        note_psl((first_tomb - home(key)) & mask_);
                    }
                    if (slot_out) *slot_out = first_tomb;
                    return true;
                }
                ++retries;
                goto retry; // another key claimed the tombstone; rescan
            }
            std::uint64_t expected = kEmpty;
            if (table_[idx].compare_exchange_strong(expected, value,
                                                    std::memory_order_acq_rel)) {
                size_.fetch_add(1, std::memory_order_relaxed);
                if (measure) {
                    LockedMetrics& m = locked_metrics();
                    m.inserts.add(1);
                    if (probes > 0) m.insert_collisions.add(probes);
                    if (retries > 0) m.cas_retries.add(retries);
                    if (EdgeSetOpStats* ls = edge_set_thread_stats()) {
                        ls->inserts += 1;
                        ls->probe_steps += probes + 1;
                        ls->cas_retries += retries;
                    }
                    note_psl((idx - home(key)) & mask_);
                }
                if (slot_out) *slot_out = idx;
                return true;
            }
            ++retries;
            continue; // slot taken by another key; re-examine the same slot
        }
        idx = (idx + 1) & mask_;
    }
    GESMC_CHECK(false, "LockedEdgeSet overfull — missing rebuild?");
    return false;
}

bool LockedEdgeSet::insert(std::uint64_t key) {
    GESMC_CHECK(key != kEmpty && key < kTomb, "key out of the 56-bit domain");
    auto& s = stripe(key);
    lock_stripe(s);
    const bool inserted = insert_impl(key, 0, nullptr, nullptr);
    unlock_stripe(s);
    return inserted;
}

bool LockedEdgeSet::insert_unique(std::uint64_t key) {
    GESMC_CHECK(key != kEmpty && key < kTomb, "key out of the 56-bit domain");
    return insert_impl(key, 0, nullptr, nullptr);
}

bool LockedEdgeSet::erase(std::uint64_t key) {
    auto& s = stripe(key);
    lock_stripe(s);
    const bool erased = erase_unique(key);
    unlock_stripe(s);
    return erased;
}

bool LockedEdgeSet::erase_unique(std::uint64_t key) {
    std::uint64_t idx = home(key);
    for (std::uint64_t probes = 0; probes <= mask_; ++probes) {
        std::uint64_t bucket = table_[idx].load(std::memory_order_acquire);
        const std::uint64_t k = key_of(bucket);
        if (k == key) {
            // Spin out transient locks held by ticket holders (NaiveParES
            // never erases a key another thread still has locked, but the
            // general API tolerates brief lock windows).
            for (;;) {
                if (owner_of(bucket) == 0 &&
                    table_[idx].compare_exchange_weak(bucket, kTomb,
                                                      std::memory_order_acq_rel)) {
                    size_.fetch_sub(1, std::memory_order_relaxed);
                    tombs_.fetch_add(1, std::memory_order_relaxed);
                    if (measuring()) {
                        if (EdgeSetOpStats* ls = edge_set_thread_stats()) {
                            ls->erases += 1;
                            ls->probe_steps += probes + 1;
                        }
                    }
                    return true;
                }
                if (key_of(bucket) != key) return false; // vanished concurrently
                if (measuring()) {
                    locked_metrics().cas_retries.add(1);
                    if (EdgeSetOpStats* ls = edge_set_thread_stats()) ls->cas_retries += 1;
                }
                std::this_thread::yield();
                bucket = table_[idx].load(std::memory_order_acquire);
            }
        }
        if (k == kEmpty) return false;
        idx = (idx + 1) & mask_;
    }
    return false;
}

std::optional<std::uint64_t> LockedEdgeSet::try_lock(std::uint64_t key, unsigned tid) noexcept {
    const std::uint64_t locked = key | (static_cast<std::uint64_t>(tid + 1) << kLockShift);
    std::uint64_t idx = home(key);
    for (std::uint64_t probes = 0; probes <= mask_; ++probes) {
        std::uint64_t bucket = table_[idx].load(std::memory_order_acquire);
        const std::uint64_t k = key_of(bucket);
        if (k == key) {
            if (owner_of(bucket) != 0) return std::nullopt; // already locked
            if (table_[idx].compare_exchange_strong(bucket, locked,
                                                    std::memory_order_acq_rel)) {
                return idx;
            }
            return std::nullopt; // raced: state changed under us
        }
        if (k == kEmpty) return std::nullopt;
        idx = (idx + 1) & mask_;
    }
    return std::nullopt;
}

LockedEdgeSet::InsertLock LockedEdgeSet::try_insert_and_lock(std::uint64_t key, unsigned tid,
                                                             std::uint64_t& slot_out) {
    GESMC_CHECK(key != kEmpty && key < kTomb, "key out of the 56-bit domain");
    const std::uint64_t locked_state = static_cast<std::uint64_t>(tid + 1) << kLockShift;
    auto& s = stripe(key);
    lock_stripe(s);
    bool exists_locked = false;
    const bool inserted = insert_impl(key, locked_state, &slot_out, &exists_locked);
    unlock_stripe(s);
    if (inserted) return InsertLock::kInserted;
    return exists_locked ? InsertLock::kExistsLocked : InsertLock::kExists;
}

void LockedEdgeSet::unlock(std::uint64_t slot) noexcept {
    const std::uint64_t bucket = table_[slot].load(std::memory_order_relaxed);
    table_[slot].store(key_of(bucket), std::memory_order_release);
}

void LockedEdgeSet::erase_locked(std::uint64_t slot) noexcept {
    table_[slot].store(kTomb, std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_relaxed);
    tombs_.fetch_add(1, std::memory_order_relaxed);
}

void LockedEdgeSet::rebuild() {
    std::vector<std::uint64_t> live;
    live.reserve(size());
    for_each([&](std::uint64_t key) { live.push_back(key); });
    for (auto& b : table_) b.store(kEmpty, std::memory_order_relaxed);
    size_.store(0, std::memory_order_relaxed);
    tombs_.store(0, std::memory_order_relaxed);
    psl_max_.store(0, std::memory_order_relaxed);
    for (const std::uint64_t key : live) insert_unique(key);
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

} // namespace gesmc
