/// \file edge_set_backend.hpp
/// \brief Selection enum shared by the two ConcurrentEdgeSet backends.
///
/// `ConcurrentEdgeSet` is a facade over two interchangeable tables with the
/// same 56-bit key / 8-bit owner bucket layout (docs/hashing.md):
///
///   * kLocked   — per-bucket CAS + striped same-key locks (the seed
///                 implementation, LockedEdgeSet);
///   * kLockFree — linear probing over cache-line-aligned buckets with a
///                 bounded probe-sequence length and epoch-reclaimed
///                 rebuilds (LockFreeEdgeSet).
///
/// The backend is a pure runtime knob: exact chains produce byte-identical
/// trajectories on either table, so it never enters ChainState.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gesmc {

enum class EdgeSetBackend {
    kLocked,
    kLockFree,
};

/// Result of try_insert_and_lock on either backend.
enum class EdgeSetInsertLock { kInserted, kExists, kExistsLocked };

[[nodiscard]] std::string to_string(EdgeSetBackend backend);

/// Parses "locked" / "lockfree"; nullopt for anything else.
[[nodiscard]] std::optional<EdgeSetBackend>
edge_set_backend_from_string(std::string_view name);

/// All valid config spellings, in enum order (for error messages / docs).
[[nodiscard]] const std::vector<std::string>& edge_set_backend_names();

} // namespace gesmc
