#include "hashing/epoch.hpp"

#include "util/check.hpp"

#include <limits>

namespace gesmc {

/// One reader's pin state, padded so pin/unpin never share a cache line
/// with another reader.  Slots live until the domain dies and are recycled
/// across guards via the in_use flag.
struct alignas(64) EpochDomain::ReaderSlot {
    std::atomic<std::uint64_t> epoch{0}; ///< 0 = not pinned
    std::atomic<bool> in_use{false};
    ReaderSlot* next = nullptr; ///< immutable after publication
};

EpochDomain::Guard::Guard(EpochDomain& domain) : slot_(nullptr) {
    // Claim a free slot; append a fresh one when every slot is pinned.
    for (auto* s = static_cast<ReaderSlot*>(domain.slots_.load(std::memory_order_acquire));
         s != nullptr; s = s->next) {
        bool expected = false;
        if (s->in_use.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
            slot_ = s;
            break;
        }
    }
    if (slot_ == nullptr) {
        auto* fresh = new ReaderSlot();
        fresh->in_use.store(true, std::memory_order_relaxed);
        void* head = domain.slots_.load(std::memory_order_relaxed);
        do {
            fresh->next = static_cast<ReaderSlot*>(head);
        } while (!domain.slots_.compare_exchange_weak(head, fresh,
                                                      std::memory_order_acq_rel));
        slot_ = fresh;
    }
    // Pin: publish the observed global epoch, then re-check it so a retire
    // racing with the pin can never be missed by both sides.
    std::uint64_t e = domain.global_epoch_.load(std::memory_order_acquire);
    for (;;) {
        slot_->epoch.store(e, std::memory_order_seq_cst);
        const std::uint64_t e2 = domain.global_epoch_.load(std::memory_order_seq_cst);
        if (e2 == e) break;
        e = e2;
    }
}

EpochDomain::Guard::~Guard() {
    slot_->epoch.store(0, std::memory_order_release);
    slot_->in_use.store(false, std::memory_order_release);
}

void EpochDomain::retire(void* p, void (*deleter)(void*)) {
    GESMC_CHECK(p != nullptr && deleter != nullptr, "retire needs a pointer and deleter");
    {
        CheckedLockGuard lock(limbo_mutex_);
        limbo_.push_back({p, deleter, global_epoch_.load(std::memory_order_relaxed)});
    }
    // Advance after stamping: readers pinning from here on are provably
    // past the retired pointer and never delay its reclamation.
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
}

void EpochDomain::collect() {
    std::uint64_t min_active = std::numeric_limits<std::uint64_t>::max();
    for (auto* s = static_cast<ReaderSlot*>(slots_.load(std::memory_order_acquire));
         s != nullptr; s = s->next) {
        const std::uint64_t e = s->epoch.load(std::memory_order_seq_cst);
        if (e != 0 && e < min_active) min_active = e;
    }
    std::vector<Retired> to_free;
    {
        CheckedLockGuard lock(limbo_mutex_);
        auto it = limbo_.begin();
        while (it != limbo_.end()) {
            if (it->epoch < min_active) {
                to_free.push_back(*it);
                it = limbo_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const Retired& r : to_free) r.deleter(r.ptr);
}

std::size_t EpochDomain::retired_count() const {
    CheckedLockGuard lock(limbo_mutex_);
    return limbo_.size();
}

EpochDomain::~EpochDomain() {
    // No guard may outlive the domain; every limbo entry is now safe.
    {
        CheckedLockGuard lock(limbo_mutex_);
        for (const Retired& r : limbo_) r.deleter(r.ptr);
        limbo_.clear();
    }
    auto* s = static_cast<ReaderSlot*>(slots_.load(std::memory_order_acquire));
    while (s != nullptr) {
        ReaderSlot* next = s->next;
        delete s;
        s = next;
    }
}

} // namespace gesmc
