/// \file lockfree_edge_set.hpp
/// \brief The lock-free ConcurrentEdgeSet backend: bounded-PSL linear
/// probing over cache-line-aligned buckets with epoch-reclaimed rebuilds.
///
/// Same 64-bit bucket word as the locked backend (56 key bits, 8 owner
/// bits) but no locks anywhere:
///
///   * Buckets live in alignas(64) lines of eight, so a probe window of
///     8 buckets costs at most two cache lines and the prefetch hint of
///     paper §5.4 covers it exactly.
///   * Inserts claim **empty buckets only** (CAS kEmpty -> key).  Because
///     a bucket transitions empty -> occupied exactly once between
///     rebuilds, two racing inserters of the same key converge on the same
///     first-empty bucket — the CAS loser re-reads it, sees the key, and
///     reports "exists".  Tombstone recycling is what would break this
///     (a recycled bucket can be claimed while a second inserter has
///     already probed past it), so tombstones are only reclaimed by
///     rebuild().
///   * Probe-sequence length is bounded: every placement must land within
///     kMaxPsl buckets of its home.  A placement that cannot raises the
///     table's probe limit (rare, flips needs_rebuild()) so readers stay
///     correct; otherwise every lookup terminates after at most kMaxPsl
///     branch-predictable steps.  rebuild() re-places all keys and grows
///     the table until the bound holds again.
///   * rebuild() publishes a fresh table through an atomic pointer and
///     retires the old one to an EpochDomain — readers holding an
///     EpochDomain::Guard (see ConcurrentEdgeSet::ReadGuard) never block
///     and never touch freed memory.  Chain hot paths skip the guard
///     because chains rebuild only at quiescent points.
///
/// The NaiveParES ticket calls (try_lock / try_insert_and_lock /
/// erase_locked / unlock) CAS the owner byte inside the bucket word, same
/// as the locked backend.  Full layout walk-through: docs/hashing.md.
#pragma once

#include "hashing/edge_set_backend.hpp"
#include "hashing/epoch.hpp"
#include "hashing/hash.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace gesmc {

class LockFreeEdgeSet {
public:
    static constexpr std::uint64_t kKeyBits = 56;
    static constexpr std::uint64_t kKeyMask = (1ULL << kKeyBits) - 1;
    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::uint64_t kTomb = kKeyMask;

    /// Probe-sequence-length bound: a placement farther than this from its
    /// home bucket raises the table's probe limit and schedules a rebuild.
    /// 64 buckets = 8 cache lines, comfortably beyond the probe lengths a
    /// 1/4-load table produces (p50 is 1-2) yet small enough that the
    /// worst-case lookup stays branch-predictable.
    static constexpr std::uint64_t kMaxPsl = 64;

    using InsertLock = EdgeSetInsertLock;

    explicit LockFreeEdgeSet(std::uint64_t max_live_keys);
    ~LockFreeEdgeSet();

    LockFreeEdgeSet(const LockFreeEdgeSet&) = delete;
    LockFreeEdgeSet& operator=(const LockFreeEdgeSet&) = delete;

    [[nodiscard]] std::uint64_t size() const noexcept {
        return size_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bucket_count() const noexcept;

    [[nodiscard]] bool contains(std::uint64_t key) const noexcept;

    void prefetch(std::uint64_t key) const noexcept;

    /// Insert / erase are safe under arbitrary concurrency — there is no
    /// cheaper "unique" variant because there are no locks to skip; the
    /// _unique spellings below exist for API parity with the locked
    /// backend.
    bool insert(std::uint64_t key);
    bool erase(std::uint64_t key);
    bool insert_unique(std::uint64_t key) { return insert(key); }
    bool erase_unique(std::uint64_t key) { return erase(key); }

    std::optional<std::uint64_t> try_lock(std::uint64_t key, unsigned tid) noexcept;
    InsertLock try_insert_and_lock(std::uint64_t key, unsigned tid, std::uint64_t& slot_out);
    void unlock(std::uint64_t slot) noexcept;
    void erase_locked(std::uint64_t slot) noexcept;

    /// True when tombstones crossed the rebuild threshold or a placement
    /// overflowed the PSL bound.
    [[nodiscard]] bool needs_rebuild() const noexcept;

    /// Publishes a compacted (and, if the PSL bound demands it, grown)
    /// table; the old one is epoch-retired.  NOT safe against concurrent
    /// writers — call at a quiescent point.  Readers holding a guard are
    /// fine.
    void rebuild();

    void maybe_rebuild() {
        if (needs_rebuild()) rebuild();
    }

    /// The key stored in bucket `idx`, or 0 for an empty/tombstone bucket.
    [[nodiscard]] std::uint64_t key_at_bucket(std::uint64_t idx) const noexcept;

    /// Largest placement distance since the last rebuild.  <= kMaxPsl
    /// unless an overflow raised the probe limit.
    [[nodiscard]] std::uint64_t max_psl() const noexcept {
        return psl_max_.load(std::memory_order_relaxed);
    }

    /// True once a placement exceeded kMaxPsl (cleared by rebuild).
    [[nodiscard]] bool psl_overflowed() const noexcept;

    /// The reclamation domain — ConcurrentEdgeSet::ReadGuard pins it.
    [[nodiscard]] EpochDomain& epochs() const noexcept { return epochs_; }

    /// Retired tables not yet freed (tests observe epoch deferral).
    [[nodiscard]] std::size_t retired_tables() const { return epochs_.retired_count(); }

    template <typename F>
    void for_each(F&& fn) const {
        const std::uint64_t buckets = bucket_count();
        for (std::uint64_t idx = 0; idx < buckets; ++idx) {
            const std::uint64_t key = key_at_bucket(idx);
            if (key != kEmpty) fn(key);
        }
    }

private:
    struct Table;

    [[nodiscard]] Table* table() const noexcept {
        return table_.load(std::memory_order_acquire);
    }

    bool insert_impl(std::uint64_t key, std::uint64_t locked_state, std::uint64_t* slot_out,
                     bool* exists_locked_out);
    void note_psl(std::uint64_t distance) noexcept;
    static void flag_overflow(Table& t) noexcept;

    std::atomic<Table*> table_{nullptr};
    mutable EpochDomain epochs_;
    std::atomic<std::uint64_t> size_{0};
    std::atomic<std::uint64_t> tombs_{0};
    std::atomic<std::uint64_t> psl_max_{0};
};

} // namespace gesmc
