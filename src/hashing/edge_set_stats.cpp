#include "hashing/edge_set_stats.hpp"

namespace gesmc::detail {

thread_local EdgeSetOpStats* t_edge_set_stats = nullptr;
std::atomic<unsigned> g_edge_set_stats_scopes{0};

} // namespace gesmc::detail
