/// \file edge_set_stats.hpp
/// \brief Per-thread operation counters for the edge-set backends.
///
/// The pinned-thread microbench rig (src/bench_util/pinned_rig.hpp) needs
/// *per-thread* probe/CAS/PSL counts, which the sharded process-wide
/// `hashset.*` metrics cannot provide.  A worker installs an
/// EdgeSetStatsScope around its measured loop; both backends then add their
/// per-call counts to the installed struct as well as to the obs counters.
///
/// Cost contract: when no scope is installed anywhere in the process and
/// metrics are disabled, every backend hot path decides with
/// `edge_set_measuring()` — two relaxed loads of process-global atomics and
/// one predictable branch, the same "disabled means absent" bar the obs
/// layer holds itself to (docs/observability.md).
#pragma once

#include <atomic>
#include <cstdint>

namespace gesmc {

/// Counts accumulated by one thread across edge-set calls.
struct EdgeSetOpStats {
    std::uint64_t lookups = 0;      ///< contains() calls
    std::uint64_t probe_steps = 0;  ///< buckets examined across all ops
    std::uint64_t inserts = 0;      ///< successful inserts
    std::uint64_t erases = 0;       ///< successful erases
    std::uint64_t cas_retries = 0;  ///< failed bucket/stripe CAS attempts
    std::uint64_t psl_max = 0;      ///< largest placement distance observed

    void merge(const EdgeSetOpStats& o) noexcept {
        lookups += o.lookups;
        probe_steps += o.probe_steps;
        inserts += o.inserts;
        erases += o.erases;
        cas_retries += o.cas_retries;
        if (o.psl_max > psl_max) psl_max = o.psl_max;
    }
};

namespace detail {
extern thread_local EdgeSetOpStats* t_edge_set_stats;
extern std::atomic<unsigned> g_edge_set_stats_scopes;
} // namespace detail

/// True when any thread wants per-op accounting (obs metrics are checked
/// separately by the backends; this only covers the thread-local hook).
[[nodiscard]] inline bool edge_set_stats_active() noexcept {
    return detail::g_edge_set_stats_scopes.load(std::memory_order_relaxed) != 0;
}

/// The calling thread's installed sink, or nullptr.
[[nodiscard]] inline EdgeSetOpStats* edge_set_thread_stats() noexcept {
    return detail::t_edge_set_stats;
}

/// RAII: routes this thread's edge-set counts into `sink` for the scope's
/// lifetime.  Scopes do not nest (the previous sink is restored on exit,
/// but counts are not split).
class EdgeSetStatsScope {
public:
    explicit EdgeSetStatsScope(EdgeSetOpStats& sink) noexcept
        : previous_(detail::t_edge_set_stats) {
        detail::t_edge_set_stats = &sink;
        detail::g_edge_set_stats_scopes.fetch_add(1, std::memory_order_relaxed);
    }
    ~EdgeSetStatsScope() {
        detail::g_edge_set_stats_scopes.fetch_sub(1, std::memory_order_relaxed);
        detail::t_edge_set_stats = previous_;
    }
    EdgeSetStatsScope(const EdgeSetStatsScope&) = delete;
    EdgeSetStatsScope& operator=(const EdgeSetStatsScope&) = delete;

private:
    EdgeSetOpStats* previous_;
};

} // namespace gesmc
