#include "hashing/hash.hpp"

#include <array>

namespace gesmc::detail {

namespace {

/// Builds the 256-entry lookup table for CRC32c (reflected poly 0x82F63B78).
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
        }
        table[i] = crc;
    }
    return table;
}

constexpr auto kCrcTable = make_crc32c_table();

} // namespace

std::uint32_t crc32c_sw(std::uint32_t crc, std::uint64_t data) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
        crc = kCrcTable[(crc ^ (data & 0xFF)) & 0xFF] ^ (crc >> 8);
        data >>= 8;
    }
    return crc;
}

} // namespace gesmc::detail
