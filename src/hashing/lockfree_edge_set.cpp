#include "hashing/lockfree_edge_set.hpp"

#include "hashing/edge_set_stats.hpp"
#include "obs/metrics.hpp"

namespace gesmc {

namespace {
constexpr std::uint64_t kLockShift = LockFreeEdgeSet::kKeyBits;
constexpr std::uint64_t kUnlockedMask = LockFreeEdgeSet::kKeyMask;

constexpr std::uint64_t key_of(std::uint64_t bucket) noexcept { return bucket & kUnlockedMask; }
constexpr unsigned owner_of(std::uint64_t bucket) noexcept {
    return static_cast<unsigned>(bucket >> kLockShift);
}

struct LockFreeMetrics {
    obs::Counter& lookups =
        obs::MetricsRegistry::instance().counter("hashset.lockfree.lookups");
    obs::Counter& probe_steps =
        obs::MetricsRegistry::instance().counter("hashset.lockfree.probe_steps");
    obs::Counter& inserts =
        obs::MetricsRegistry::instance().counter("hashset.lockfree.inserts");
    obs::Counter& insert_collisions =
        obs::MetricsRegistry::instance().counter("hashset.lockfree.insert_collisions");
    obs::Counter& cas_retries =
        obs::MetricsRegistry::instance().counter("hashset.lockfree.cas_retries");
    obs::Gauge& psl_max =
        obs::MetricsRegistry::instance().gauge("hashset.lockfree.psl_max");
};

LockFreeMetrics& lockfree_metrics() noexcept {
    static LockFreeMetrics& m = *new LockFreeMetrics();
    return m;
}

[[nodiscard]] bool measuring() noexcept {
    return obs::metrics_enabled() || edge_set_stats_active();
}
} // namespace

/// The bucket storage: lines of eight 64-bit buckets, each line on its own
/// cache line, plus the per-table probe limit.  The limit starts at the
/// PSL bound and is raised (once, monotonically) to the full table size by
/// the first placement that overflows the bound — raised *before* the
/// overflowing key is published, so a reader that can observe the key also
/// observes the extended limit.
struct LockFreeEdgeSet::Table {
    explicit Table(std::uint64_t cap)
        : mask(cap - 1),
          shift(64 - log2_floor(cap)),
          probe_limit(std::min<std::uint64_t>(kMaxPsl, cap)),
          lines(cap / 8) {
        GESMC_CHECK(cap >= 64 && (cap & (cap - 1)) == 0, "table size must be a power of two >= 64");
    }

    [[nodiscard]] std::atomic<std::uint64_t>& slot(std::uint64_t idx) noexcept {
        return lines[idx >> 3].slots[idx & 7];
    }
    [[nodiscard]] const std::atomic<std::uint64_t>& slot(std::uint64_t idx) const noexcept {
        return lines[idx >> 3].slots[idx & 7];
    }
    [[nodiscard]] std::uint64_t home(std::uint64_t key) const noexcept {
        return edge_hash(key) >> shift;
    }
    [[nodiscard]] std::uint64_t capacity() const noexcept { return mask + 1; }
    [[nodiscard]] std::uint64_t limit() const noexcept {
        return probe_limit.load(std::memory_order_acquire);
    }

    const std::uint64_t mask;
    const unsigned shift;
    std::atomic<std::uint64_t> probe_limit;
    std::atomic<bool> overflowed{false};

    struct alignas(64) Line {
        Line() noexcept {
            for (auto& s : slots) s.store(LockFreeEdgeSet::kEmpty, std::memory_order_relaxed);
        }
        std::atomic<std::uint64_t> slots[8];
    };
    std::vector<Line> lines;
};

void LockFreeEdgeSet::flag_overflow(Table& t) noexcept {
    // seq_cst stores so the raised limit is globally visible before the
    // overflowing placement CAS that follows in program order.
    t.overflowed.store(true, std::memory_order_seq_cst);
    t.probe_limit.store(t.capacity(), std::memory_order_seq_cst);
}

LockFreeEdgeSet::LockFreeEdgeSet(std::uint64_t max_live_keys) {
    // Same 4x headroom as the locked backend; at <= 1/4 live load the PSL
    // bound is effectively never hit.
    const std::uint64_t cap = next_pow2(std::max<std::uint64_t>(64, max_live_keys * 4));
    table_.store(new Table(cap), std::memory_order_release);
}

LockFreeEdgeSet::~LockFreeEdgeSet() {
    delete table_.load(std::memory_order_acquire);
    // epochs_ frees any tables still in limbo.
}

std::uint64_t LockFreeEdgeSet::bucket_count() const noexcept { return table()->capacity(); }

std::uint64_t LockFreeEdgeSet::key_at_bucket(std::uint64_t idx) const noexcept {
    const Table* t = table();
    const std::uint64_t key = t->slot(idx).load(std::memory_order_relaxed) & kUnlockedMask;
    return (key == kTomb) ? 0 : key;
}

bool LockFreeEdgeSet::psl_overflowed() const noexcept {
    return table()->overflowed.load(std::memory_order_relaxed);
}

bool LockFreeEdgeSet::needs_rebuild() const noexcept {
    const Table* t = table();
    return tombs_.load(std::memory_order_relaxed) > t->capacity() / 4 ||
           t->overflowed.load(std::memory_order_relaxed);
}

void LockFreeEdgeSet::prefetch(std::uint64_t key) const noexcept {
    const Table* t = table();
    prefetch_read_2lines(&t->slot(t->home(key)));
}

void LockFreeEdgeSet::note_psl(std::uint64_t distance) noexcept {
    std::uint64_t cur = psl_max_.load(std::memory_order_relaxed);
    while (distance > cur &&
           !psl_max_.compare_exchange_weak(cur, distance, std::memory_order_relaxed)) {
    }
    if (distance > cur && measuring()) {
        lockfree_metrics().psl_max.set(
            static_cast<std::int64_t>(psl_max_.load(std::memory_order_relaxed)));
        if (EdgeSetOpStats* ls = edge_set_thread_stats(); ls && distance > ls->psl_max) {
            ls->psl_max = distance;
        }
    }
}

bool LockFreeEdgeSet::contains(std::uint64_t key) const noexcept {
    const Table* t = table();
    const std::uint64_t lim = t->limit();
    std::uint64_t idx = t->home(key);
    if (!measuring()) {
        for (std::uint64_t dist = 0; dist < lim; ++dist) {
            const std::uint64_t k = key_of(t->slot(idx).load(std::memory_order_acquire));
            if (k == key) return true;
            if (k == kEmpty) return false;
            idx = (idx + 1) & t->mask;
        }
        return false; // probed the whole bound: a live key cannot sit deeper
    }
    LockFreeMetrics& m = lockfree_metrics();
    m.lookups.add(1);
    EdgeSetOpStats* ls = edge_set_thread_stats();
    if (ls) ls->lookups += 1;
    for (std::uint64_t dist = 0; dist < lim; ++dist) {
        const std::uint64_t k = key_of(t->slot(idx).load(std::memory_order_acquire));
        if (k == key || k == kEmpty) {
            m.probe_steps.add(dist + 1);
            if (ls) ls->probe_steps += dist + 1;
            return k == key;
        }
        idx = (idx + 1) & t->mask;
    }
    m.probe_steps.add(lim);
    if (ls) ls->probe_steps += lim;
    return false;
}

/// Probe-and-claim without any lock: duplicates are impossible because a
/// bucket only ever transitions empty -> occupied (erase leaves a tombstone
/// and tombstones are never recycled), so all racing inserters of a key
/// converge on the same first-CASable-empty bucket.
bool LockFreeEdgeSet::insert_impl(std::uint64_t key, std::uint64_t locked_state,
                                  std::uint64_t* slot_out, bool* exists_locked_out) {
    Table* t = table();
    const std::uint64_t value = key | locked_state;
    const std::uint64_t home_idx = t->home(key);
    const bool measure = measuring();
    std::uint64_t lim = t->limit();
    std::uint64_t retries = 0;
    std::uint64_t dist = 0;
    for (;;) {
        if (dist >= lim) {
            // No slot for this key within the current probe limit.  Extend
            // the limit (scheduling a rebuild) rather than fail: the table
            // still has room, just not within the bound.
            GESMC_CHECK(lim < t->capacity(), "LockFreeEdgeSet overfull — missing rebuild?");
            flag_overflow(*t);
            lim = t->capacity();
        }
        const std::uint64_t idx = (home_idx + dist) & t->mask;
        const std::uint64_t bucket = t->slot(idx).load(std::memory_order_acquire);
        const std::uint64_t k = key_of(bucket);
        if (k == key) {
            if (slot_out) *slot_out = idx;
            if (exists_locked_out) *exists_locked_out = owner_of(bucket) != 0;
            if (measure) {
                LockFreeMetrics& m = lockfree_metrics();
                if (dist > 0) m.insert_collisions.add(dist);
                if (retries > 0) m.cas_retries.add(retries);
                if (EdgeSetOpStats* ls = edge_set_thread_stats()) {
                    ls->probe_steps += dist + 1;
                    ls->cas_retries += retries;
                }
            }
            return false;
        }
        if (k == kEmpty) {
            // Publish the raised limit *before* a placement beyond the
            // bound becomes visible, so no reader can find the key
            // unreachable.
            if (dist >= kMaxPsl) flag_overflow(*t);
            std::uint64_t expected = kEmpty;
            if (t->slot(idx).compare_exchange_strong(expected, value,
                                                     std::memory_order_acq_rel)) {
                size_.fetch_add(1, std::memory_order_relaxed);
                note_psl(dist);
                if (measure) {
                    LockFreeMetrics& m = lockfree_metrics();
                    m.inserts.add(1);
                    if (dist > 0) m.insert_collisions.add(dist);
                    if (retries > 0) m.cas_retries.add(retries);
                    if (EdgeSetOpStats* ls = edge_set_thread_stats()) {
                        ls->inserts += 1;
                        ls->probe_steps += dist + 1;
                        ls->cas_retries += retries;
                    }
                }
                if (slot_out) *slot_out = idx;
                return true;
            }
            // Lost the race for this bucket: it is occupied now (possibly
            // by our own key).  Re-examine the same distance.
            ++retries;
            continue;
        }
        ++dist; // occupied by another key or a tombstone
    }
}

bool LockFreeEdgeSet::insert(std::uint64_t key) {
    GESMC_CHECK(key != kEmpty && key < kTomb, "key out of the 56-bit domain");
    return insert_impl(key, 0, nullptr, nullptr);
}

bool LockFreeEdgeSet::erase(std::uint64_t key) {
    Table* t = table();
    const std::uint64_t lim = t->limit();
    std::uint64_t idx = t->home(key);
    const bool measure = measuring();
    for (std::uint64_t dist = 0; dist < lim; ++dist) {
        std::uint64_t bucket = t->slot(idx).load(std::memory_order_acquire);
        const std::uint64_t k = key_of(bucket);
        if (k == key) {
            std::uint64_t retries = 0;
            for (;;) {
                if (owner_of(bucket) == 0 &&
                    t->slot(idx).compare_exchange_weak(bucket, kTomb,
                                                       std::memory_order_acq_rel)) {
                    size_.fetch_sub(1, std::memory_order_relaxed);
                    tombs_.fetch_add(1, std::memory_order_relaxed);
                    if (measure) {
                        if (retries > 0) lockfree_metrics().cas_retries.add(retries);
                        if (EdgeSetOpStats* ls = edge_set_thread_stats()) {
                            ls->erases += 1;
                            ls->probe_steps += dist + 1;
                            ls->cas_retries += retries;
                        }
                    }
                    return true;
                }
                if (key_of(bucket) != key) return false; // vanished concurrently
                ++retries; // transient ticket owner: spin it out
                bucket = t->slot(idx).load(std::memory_order_acquire);
            }
        }
        if (k == kEmpty) return false;
        idx = (idx + 1) & t->mask;
    }
    return false;
}

std::optional<std::uint64_t> LockFreeEdgeSet::try_lock(std::uint64_t key, unsigned tid) noexcept {
    Table* t = table();
    const std::uint64_t locked = key | (static_cast<std::uint64_t>(tid + 1) << kLockShift);
    const std::uint64_t lim = t->limit();
    std::uint64_t idx = t->home(key);
    for (std::uint64_t dist = 0; dist < lim; ++dist) {
        std::uint64_t bucket = t->slot(idx).load(std::memory_order_acquire);
        const std::uint64_t k = key_of(bucket);
        if (k == key) {
            if (owner_of(bucket) != 0) return std::nullopt; // already locked
            if (t->slot(idx).compare_exchange_strong(bucket, locked,
                                                     std::memory_order_acq_rel)) {
                return idx;
            }
            return std::nullopt; // raced: state changed under us
        }
        if (k == kEmpty) return std::nullopt;
        idx = (idx + 1) & t->mask;
    }
    return std::nullopt;
}

LockFreeEdgeSet::InsertLock LockFreeEdgeSet::try_insert_and_lock(std::uint64_t key, unsigned tid,
                                                                 std::uint64_t& slot_out) {
    GESMC_CHECK(key != kEmpty && key < kTomb, "key out of the 56-bit domain");
    const std::uint64_t locked_state = static_cast<std::uint64_t>(tid + 1) << kLockShift;
    bool exists_locked = false;
    const bool inserted = insert_impl(key, locked_state, &slot_out, &exists_locked);
    if (inserted) return InsertLock::kInserted;
    return exists_locked ? InsertLock::kExistsLocked : InsertLock::kExists;
}

void LockFreeEdgeSet::unlock(std::uint64_t slot) noexcept {
    Table* t = table();
    const std::uint64_t bucket = t->slot(slot).load(std::memory_order_relaxed);
    t->slot(slot).store(key_of(bucket), std::memory_order_release);
}

void LockFreeEdgeSet::erase_locked(std::uint64_t slot) noexcept {
    Table* t = table();
    t->slot(slot).store(kTomb, std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_relaxed);
    tombs_.fetch_add(1, std::memory_order_relaxed);
}

void LockFreeEdgeSet::rebuild() {
    Table* old = table_.load(std::memory_order_acquire);
    std::vector<std::uint64_t> live;
    live.reserve(size());
    for_each([&](std::uint64_t key) { live.push_back(key); });

    // Re-place into a fresh table, doubling until every placement honours
    // the PSL bound (one doubling is essentially always enough: the bound
    // only broke because tombstones or an adversarial key cluster stretched
    // a probe chain).
    std::uint64_t target = next_pow2(std::max<std::uint64_t>(64, live.size() * 4));
    Table* fresh = nullptr;
    std::uint64_t max_psl = 0;
    for (;;) {
        fresh = new Table(target);
        bool bounded = true;
        max_psl = 0;
        for (const std::uint64_t key : live) {
            std::uint64_t dist = 0;
            std::uint64_t idx = fresh->home(key);
            while (fresh->slot(idx).load(std::memory_order_relaxed) != kEmpty) {
                ++dist;
                idx = (idx + 1) & fresh->mask;
                if (dist >= kMaxPsl) {
                    bounded = false;
                    break;
                }
            }
            if (!bounded) break;
            fresh->slot(idx).store(key, std::memory_order_relaxed);
            if (dist > max_psl) max_psl = dist;
        }
        if (bounded) break;
        delete fresh;
        target <<= 1;
        GESMC_CHECK(target != 0, "LockFreeEdgeSet rebuild overflowed the size domain");
    }

    table_.store(fresh, std::memory_order_release);
    size_.store(live.size(), std::memory_order_relaxed);
    tombs_.store(0, std::memory_order_relaxed);
    psl_max_.store(max_psl, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);

    epochs_.retire(old, [](void* p) { delete static_cast<Table*>(p); });
    epochs_.collect();
}

} // namespace gesmc
