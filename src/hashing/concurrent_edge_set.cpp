#include "hashing/concurrent_edge_set.hpp"

namespace gesmc {

ConcurrentEdgeSet::ConcurrentEdgeSet(std::uint64_t max_live_keys, EdgeSetBackend backend)
    : backend_(backend) {
    if (backend == EdgeSetBackend::kLockFree) {
        lockfree_ = std::make_unique<LockFreeEdgeSet>(max_live_keys);
    } else {
        locked_ = std::make_unique<LockedEdgeSet>(max_live_keys);
    }
}

} // namespace gesmc
