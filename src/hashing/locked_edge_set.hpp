/// \file locked_edge_set.hpp
/// \brief The striped-lock ConcurrentEdgeSet backend (paper §5.2).
///
/// The seed implementation, now one of two backends behind the
/// ConcurrentEdgeSet facade (see edge_set_backend.hpp, docs/hashing.md).
/// Open addressing over flat 64-bit buckets: 56 key bits, 8 owner bits.
/// Same-key insert/erase races are serialized by 4096 striped byte
/// spinlocks; tombstones are recycled in place, so probe chains stay short
/// without rebuilds under balanced churn.
///
/// Thread-safety contract (shared by both backends):
///  * contains is lock-free and may run concurrently with everything else;
///  * insert / erase are safe under arbitrary concurrency;
///  * insert_unique / erase_unique require no concurrent same-key ops;
///  * try_lock / try_insert_and_lock / erase_locked / unlock implement the
///    NaiveParES ticket semantics (§5.1);
///  * rebuild() only at quiescent points.
#pragma once

#include "hashing/edge_set_backend.hpp"
#include "hashing/hash.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace gesmc {

class LockedEdgeSet {
public:
    static constexpr std::uint64_t kKeyBits = 56;
    static constexpr std::uint64_t kKeyMask = (1ULL << kKeyBits) - 1;
    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::uint64_t kTomb = kKeyMask;

    using InsertLock = EdgeSetInsertLock;

    explicit LockedEdgeSet(std::uint64_t max_live_keys);

    LockedEdgeSet(const LockedEdgeSet&) = delete;
    LockedEdgeSet& operator=(const LockedEdgeSet&) = delete;

    [[nodiscard]] std::uint64_t size() const noexcept {
        return size_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bucket_count() const noexcept { return table_.size(); }

    [[nodiscard]] bool contains(std::uint64_t key) const noexcept;

    void prefetch(std::uint64_t key) const noexcept {
        prefetch_read_2lines(&table_[home(key)]);
    }

    bool insert(std::uint64_t key);
    bool erase(std::uint64_t key);
    bool insert_unique(std::uint64_t key);
    bool erase_unique(std::uint64_t key);

    std::optional<std::uint64_t> try_lock(std::uint64_t key, unsigned tid) noexcept;
    InsertLock try_insert_and_lock(std::uint64_t key, unsigned tid, std::uint64_t& slot_out);
    void unlock(std::uint64_t slot) noexcept;
    void erase_locked(std::uint64_t slot) noexcept;

    [[nodiscard]] bool needs_rebuild() const noexcept {
        return tombs_.load(std::memory_order_relaxed) > table_.size() / 4;
    }

    void rebuild();

    void maybe_rebuild() {
        if (needs_rebuild()) rebuild();
    }

    /// The key stored in bucket `idx`, or 0 for an empty/tombstone bucket.
    [[nodiscard]] std::uint64_t key_at_bucket(std::uint64_t idx) const noexcept {
        const std::uint64_t key = table_[idx].load(std::memory_order_relaxed) & kKeyMask;
        return (key == kTomb) ? 0 : key;
    }

    /// Largest placement distance any insert has observed (resets on
    /// rebuild): the table's effective probe-length bound.
    [[nodiscard]] std::uint64_t max_psl() const noexcept {
        return psl_max_.load(std::memory_order_relaxed);
    }

    template <typename F>
    void for_each(F&& fn) const {
        for (const auto& bucket : table_) {
            const std::uint64_t key = bucket.load(std::memory_order_relaxed) & kKeyMask;
            if (key != kEmpty && key != kTomb) fn(key);
        }
    }

private:
    [[nodiscard]] std::uint64_t home(std::uint64_t key) const noexcept {
        return edge_hash(key) >> shift_;
    }

    [[nodiscard]] std::atomic<std::uint8_t>& stripe(std::uint64_t key) noexcept {
        return stripes_[(edge_hash(key) >> 8) & (kStripes - 1)];
    }

    void lock_stripe(std::atomic<std::uint8_t>& s) noexcept;
    void unlock_stripe(std::atomic<std::uint8_t>& s) noexcept;
    void note_psl(std::uint64_t distance) noexcept;

    bool insert_impl(std::uint64_t key, std::uint64_t locked_state, std::uint64_t* slot_out,
                     bool* exists_locked_out);

    static constexpr std::uint64_t kStripes = 4096;

    std::vector<std::atomic<std::uint64_t>> table_;
    std::vector<std::atomic<std::uint8_t>> stripes_;
    std::uint64_t mask_ = 0;
    unsigned shift_ = 64;
    std::atomic<std::uint64_t> size_{0};
    std::atomic<std::uint64_t> tombs_{0};
    std::atomic<std::uint64_t> psl_max_{0};
};

} // namespace gesmc
