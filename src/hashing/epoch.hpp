/// \file epoch.hpp
/// \brief Minimal epoch-based reclamation for the lock-free edge set.
///
/// LockFreeEdgeSet::rebuild() swaps the whole bucket table behind an
/// atomic pointer.  Readers that may overlap a rebuild pin the current
/// epoch with an EpochDomain::Guard before touching the table; the retired
/// table sits in a limbo list until every guard that could still reference
/// it has unpinned.  Readers therefore never block — a rebuild costs them
/// nothing but the pin (two atomic ops on a private cache line).
///
/// Lifecycle (docs/hashing.md has the full walk-through):
///
///   pin:     slot.epoch = global_epoch   (the guard's "I am reading" stamp)
///   retire:  limbo.push({ptr, global_epoch}); ++global_epoch
///   collect: free every limbo entry whose stamp < min(active slot epochs)
///
/// A reader pinned at epoch e blocks exactly the retirements stamped >= e —
/// i.e. every table it could possibly have loaded — and nothing older.
///
/// Guards are intended for rebuild-overlapping readers only; chain hot
/// paths skip them because chains rebuild exclusively at quiescent points
/// (see ConcurrentEdgeSet's thread-safety contract).
#pragma once

#include "check/checked_mutex.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gesmc {

class EpochDomain {
public:
    EpochDomain() = default;
    /// Frees every retired pointer and all reader slots.  By contract no
    /// guard is alive when the domain dies (same rule as the set itself).
    ~EpochDomain();

    EpochDomain(const EpochDomain&) = delete;
    EpochDomain& operator=(const EpochDomain&) = delete;

    struct ReaderSlot; ///< one reader's pin state (defined in epoch.cpp)

    /// RAII pin: while alive, nothing retired at or after construction is
    /// freed.  Cheap enough for test/bench readers; not meant for the
    /// chain's per-switch hot path.
    class Guard {
    public:
        explicit Guard(EpochDomain& domain);
        ~Guard();
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

    private:
        ReaderSlot* slot_;
    };

    /// Hands `p` to the domain; `deleter(p)` runs once no pinned reader can
    /// still observe it (at some later collect() or at destruction).
    void retire(void* p, void (*deleter)(void*));

    /// Frees every limbo entry older than the oldest active pin (all of
    /// them when nobody is pinned).  Called from quiescent points.
    void collect();

    /// Entries still waiting in limbo (tests observe the deferral).
    [[nodiscard]] std::size_t retired_count() const;

private:
    std::atomic<std::uint64_t> global_epoch_{1};
    /// Lock-free push-only list of reader slots; slots are claimed by CAS
    /// on an in_use flag and released on guard destruction, so the list
    /// length tracks the high-water mark of concurrent guards.
    std::atomic<void*> slots_{nullptr};

    struct Retired {
        void* ptr;
        void (*deleter)(void*);
        std::uint64_t epoch;
    };
    mutable CheckedMutex limbo_mutex_{LockRank::kEpochLimbo, "epoch-limbo"};
    std::vector<Retired> limbo_ GESMC_GUARDED_BY(limbo_mutex_);
};

} // namespace gesmc
