#include "hashing/edge_set_backend.hpp"

namespace gesmc {

std::string to_string(EdgeSetBackend backend) {
    switch (backend) {
    case EdgeSetBackend::kLocked: return "locked";
    case EdgeSetBackend::kLockFree: return "lockfree";
    }
    return "locked";
}

std::optional<EdgeSetBackend> edge_set_backend_from_string(std::string_view name) {
    if (name == "locked") return EdgeSetBackend::kLocked;
    if (name == "lockfree") return EdgeSetBackend::kLockFree;
    return std::nullopt;
}

const std::vector<std::string>& edge_set_backend_names() {
    static const std::vector<std::string> names = {"locked", "lockfree"};
    return names;
}

} // namespace gesmc
