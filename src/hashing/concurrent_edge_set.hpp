/// \file concurrent_edge_set.hpp
/// \brief Concurrent edge hash set facade over two backends (§5.2).
///
/// The paper stores each edge in a 64-bit-wide bucket: 56 bits hold the
/// (canonical) edge key, 8 bits are reserved for locking.  A processing
/// unit acquires a lock by compare-and-swapping its thread id into the lock
/// bits, which succeeds only if the bucket held the edge in an unlocked
/// state.  Buckets are *stable*: once a key is placed it never moves until
/// erased (open addressing with tombstones), so a bucket index is a valid
/// handle for unlock/erase.  This supports graphs with up to 2^28 nodes and
/// up to 254 threads — the same restriction as the paper.
///
/// Two interchangeable backends implement that contract (selection via
/// EdgeSetBackend, full comparison in docs/hashing.md):
///
///   * EdgeSetBackend::kLocked   — LockedEdgeSet: per-bucket CAS plus 4096
///     striped byte locks serializing same-key insert/erase, tombstones
///     recycled in place;
///   * EdgeSetBackend::kLockFree — LockFreeEdgeSet: CAS-only linear probing
///     over cache-line-aligned buckets, bounded probe-sequence length, and
///     epoch-reclaimed rebuilds so readers never block.
///
/// The backend is a runtime knob threaded through ChainConfig; exact chains
/// produce byte-identical trajectories on either (asserted by the
/// backend-matrix suite in test_pipeline), so it never enters ChainState.
///
/// Thread-safety contract (both backends):
///  * contains is lock-free and may run concurrently with everything else;
///  * insert / erase are safe under arbitrary concurrency;
///  * insert_unique / erase_unique are variants whose callers guarantee
///    that no two threads operate on the *same key* concurrently — exactly
///    the situation in the batch update phase of ParallelSuperstep (at most
///    one legal inserter / eraser per edge).  On the locked backend they
///    skip the stripe lock; on the lock-free backend they are the same code
///    as insert / erase;
///  * try_lock / try_insert_and_lock / erase_locked / unlock implement the
///    ticket semantics of NaiveParES (§5.1).  Bucket handles are
///    invalidated by rebuild(), so no ticket may be held across one;
///  * rebuild() only at quiescent points.  On the lock-free backend,
///    readers that may overlap a rebuild hold a ReadGuard.
///
/// Tombstones accumulate under erase; when their share crosses a threshold
/// (or, lock-free only, a placement overflows the PSL bound), callers
/// rebuild at a quiescent point via maybe_rebuild().
#pragma once

#include "hashing/edge_set_backend.hpp"
#include "hashing/epoch.hpp"
#include "hashing/locked_edge_set.hpp"
#include "hashing/lockfree_edge_set.hpp"
#include "rng/bounded.hpp"
#include "util/check.hpp"

#include <cstdint>
#include <memory>
#include <optional>

namespace gesmc {

class ConcurrentEdgeSet {
public:
    static constexpr std::uint64_t kKeyBits = 56;
    static constexpr std::uint64_t kKeyMask = (1ULL << kKeyBits) - 1;
    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::uint64_t kTomb = kKeyMask; // all key bits set: encodes the
                                                     // impossible loop (2^28-1, 2^28-1)

    /// Result of try_insert_and_lock.
    using InsertLock = EdgeSetInsertLock;

    /// Bounds on sample_uniform's random probing before it falls back to a
    /// count-and-index scan: at the sizing headroom's >= 1/4 live load a
    /// draw hits a live bucket with p >= 1/4, so 64 draws fail with
    /// p <= (3/4)^64 ~ 1e-8 — the scan is a sparse-table / tombstone-flood
    /// escape hatch, not a steady state.
    static constexpr unsigned kMaxSampleDraws = 64;

    /// Creates a set sized for `max_live_keys` simultaneously live keys.
    explicit ConcurrentEdgeSet(std::uint64_t max_live_keys,
                               EdgeSetBackend backend = EdgeSetBackend::kLocked);

    ConcurrentEdgeSet(const ConcurrentEdgeSet&) = delete;
    ConcurrentEdgeSet& operator=(const ConcurrentEdgeSet&) = delete;

    [[nodiscard]] EdgeSetBackend backend() const noexcept { return backend_; }

    [[nodiscard]] std::uint64_t size() const noexcept {
        return locked_ ? locked_->size() : lockfree_->size();
    }
    [[nodiscard]] std::uint64_t bucket_count() const noexcept {
        return locked_ ? locked_->bucket_count() : lockfree_->bucket_count();
    }

    /// Lock-free existence query (ignores lock bits). key in (0, 2^56-1).
    [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
        return locked_ ? locked_->contains(key) : lockfree_->contains(key);
    }

    /// Issues a prefetch for the probe window of key (paper §5.4).
    void prefetch(std::uint64_t key) const noexcept {
        locked_ ? locked_->prefetch(key) : lockfree_->prefetch(key);
    }

    /// General-purpose insert; returns false if the key was present.
    bool insert(std::uint64_t key) {
        return locked_ ? locked_->insert(key) : lockfree_->insert(key);
    }

    /// General-purpose erase; returns false if the key was absent.
    bool erase(std::uint64_t key) {
        return locked_ ? locked_->erase(key) : lockfree_->erase(key);
    }

    /// Insert under the no-concurrent-same-key contract. Returns false if
    /// present.
    bool insert_unique(std::uint64_t key) {
        return locked_ ? locked_->insert_unique(key) : lockfree_->insert_unique(key);
    }

    /// Erase under the no-concurrent-same-key contract. Returns false if
    /// absent.
    bool erase_unique(std::uint64_t key) {
        return locked_ ? locked_->erase_unique(key) : lockfree_->erase_unique(key);
    }

    // ------------------------------------------------------------- tickets

    /// Attempts to lock an existing unlocked key. Returns the bucket index
    /// on success. tid must be in [0, 254); the stored owner is tid+1.
    std::optional<std::uint64_t> try_lock(std::uint64_t key, unsigned tid) noexcept {
        return locked_ ? locked_->try_lock(key, tid) : lockfree_->try_lock(key, tid);
    }

    /// Attempts to insert key in locked state. On kInserted the bucket index
    /// is stored in slot_out and the caller owns the lock.
    InsertLock try_insert_and_lock(std::uint64_t key, unsigned tid, std::uint64_t& slot_out) {
        return locked_ ? locked_->try_insert_and_lock(key, tid, slot_out)
                       : lockfree_->try_insert_and_lock(key, tid, slot_out);
    }

    /// Releases a lock acquired by try_lock / try_insert_and_lock.
    void unlock(std::uint64_t slot) noexcept {
        locked_ ? locked_->unlock(slot) : lockfree_->unlock(slot);
    }

    /// Erases the key in a bucket currently locked by the caller.
    void erase_locked(std::uint64_t slot) noexcept {
        locked_ ? locked_->erase_locked(slot) : lockfree_->erase_locked(slot);
    }

    // ------------------------------------------------------------- service

    /// True when tombstones crossed the rebuild threshold (lock-free: or a
    /// placement overflowed the PSL bound).
    [[nodiscard]] bool needs_rebuild() const noexcept {
        return locked_ ? locked_->needs_rebuild() : lockfree_->needs_rebuild();
    }

    /// Compacts tombstones away. NOT safe against concurrent writers: call
    /// at a quiescent point.  Lock-free backend: concurrent readers are
    /// fine if they hold a ReadGuard (the old table is epoch-retired).
    void rebuild() { locked_ ? locked_->rebuild() : lockfree_->rebuild(); }

    /// rebuild() iff needs_rebuild().
    void maybe_rebuild() {
        if (needs_rebuild()) rebuild();
    }

    /// Largest placement distance from home the backend has observed (the
    /// lock-free backend keeps this <= kMaxPsl between rebuilds; the locked
    /// backend only tracks it while measuring).
    [[nodiscard]] std::uint64_t max_psl() const noexcept {
        return locked_ ? locked_->max_psl() : lockfree_->max_psl();
    }

    /// The key in bucket `idx`, or 0 when the bucket is empty/tombstone.
    [[nodiscard]] std::uint64_t key_at_bucket(std::uint64_t idx) const noexcept {
        return locked_ ? locked_->key_at_bucket(idx) : lockfree_->key_at_bucket(idx);
    }

    /// Direct access to the lock-free backend (nullptr on kLocked) for
    /// backend-specific tests: PSL overflow state, epoch limbo depth.
    [[nodiscard]] LockFreeEdgeSet* lockfree_backend() noexcept { return lockfree_.get(); }

    /// Pins the epoch for readers that may overlap a rebuild() on the
    /// lock-free backend; a no-op on the locked backend (whose rebuild
    /// mutates in place and tolerates no concurrent readers at all — the
    /// guard cannot help there, see docs/hashing.md).
    class ReadGuard {
    public:
        explicit ReadGuard(const ConcurrentEdgeSet& set) {
            if (set.lockfree_) guard_.emplace(set.lockfree_->epochs());
        }

    private:
        std::optional<EpochDomain::Guard> guard_;
    };

    /// Calls fn(key) for every live key. NOT thread-safe against writers.
    template <typename F>
    void for_each(F&& fn) const {
        if (locked_) {
            locked_->for_each(std::forward<F>(fn));
        } else {
            lockfree_->for_each(std::forward<F>(fn));
        }
    }

    /// Samples a uniformly random live key by probing random buckets
    /// (paper §5.3, "sample directly from the hash-set" option).  NOT
    /// thread-safe against writers.  Expected draws: 1 / load factor.
    /// Draws are capped at kMaxSampleDraws: a sparse or tombstone-flooded
    /// table (possible when callers defer maybe_rebuild) falls back to
    /// counting the live keys and returning a uniformly drawn one by index,
    /// so a call can never spin unboundedly.  Each rejection draw is
    /// uniform over the live keys and so is the fallback, hence the
    /// mixture stays exactly uniform.
    template <typename Urbg>
    [[nodiscard]] std::uint64_t sample_uniform(Urbg& gen) const {
        GESMC_CHECK(size() > 0, "cannot sample from an empty set");
        const std::uint64_t buckets = bucket_count();
        for (unsigned draw = 0; draw < kMaxSampleDraws; ++draw) {
            const std::uint64_t key = key_at_bucket(uniform_below(gen, buckets));
            if (key != kEmpty) return key;
        }
        std::uint64_t live = 0;
        for (std::uint64_t i = 0; i < buckets; ++i) {
            if (key_at_bucket(i) != kEmpty) ++live;
        }
        GESMC_CHECK(live > 0, "sample_uniform found no live key despite size() > 0");
        std::uint64_t r = uniform_below(gen, live);
        for (std::uint64_t i = 0; i < buckets; ++i) {
            const std::uint64_t key = key_at_bucket(i);
            if (key != kEmpty && r-- == 0) return key;
        }
        GESMC_CHECK(false, "live keys changed under sample_uniform");
        return kEmpty;
    }

private:
    EdgeSetBackend backend_;
    // Exactly one is non-null; dispatch tests `locked_` (a never-changing,
    // perfectly predicted branch) so both paths stay inline-able.
    std::unique_ptr<LockedEdgeSet> locked_;
    std::unique_ptr<LockFreeEdgeSet> lockfree_;
};

} // namespace gesmc
