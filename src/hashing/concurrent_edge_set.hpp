/// \file concurrent_edge_set.hpp
/// \brief Concurrent open-addressing hash set with per-bucket locks (§5.2).
///
/// The paper stores each edge in a 64-bit-wide bucket: 56 bits hold the
/// (canonical) edge key, 8 bits are reserved for locking.  A processing
/// unit acquires a lock by compare-and-swapping its thread id into the lock
/// bits, which succeeds only if the bucket held the edge in an unlocked
/// state.  Buckets are *stable*: once a key is placed it never moves until
/// erased (open addressing with tombstones), so a bucket index is a valid
/// handle for unlock/erase.  This supports graphs with up to 2^28 nodes and
/// up to 254 threads — the same restriction as the paper.
///
/// Thread-safety contract:
///  * contains / contains_prepared are lock-free and may run concurrently
///    with everything else;
///  * insert / erase are safe under arbitrary concurrency: a striped lock
///    on the key serializes same-key operations so duplicates are impossible;
///  * insert_unique / erase_unique are cheaper lock-free variants whose
///    callers guarantee that no two threads operate on the *same key*
///    concurrently — exactly the situation in the batch update phase of
///    ParallelSuperstep (at most one legal inserter / eraser per edge);
///  * try_lock / try_insert_and_lock / erase_locked / unlock implement the
///    ticket semantics of NaiveParES (§5.1).
///
/// Tombstones accumulate under erase; when their share crosses a threshold,
/// callers rebuild at a quiescent point via maybe_rebuild().
#pragma once

#include "hashing/hash.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/bounded.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace gesmc {

class ConcurrentEdgeSet {
public:
    static constexpr std::uint64_t kKeyBits = 56;
    static constexpr std::uint64_t kKeyMask = (1ULL << kKeyBits) - 1;
    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::uint64_t kTomb = kKeyMask; // all key bits set: encodes the
                                                     // impossible loop (2^28-1, 2^28-1)

    /// Result of try_insert_and_lock.
    enum class InsertLock { kInserted, kExists, kExistsLocked };

    /// Creates a set sized for `max_live_keys` simultaneously live keys.
    explicit ConcurrentEdgeSet(std::uint64_t max_live_keys);

    ConcurrentEdgeSet(const ConcurrentEdgeSet&) = delete;
    ConcurrentEdgeSet& operator=(const ConcurrentEdgeSet&) = delete;

    [[nodiscard]] std::uint64_t size() const noexcept {
        return size_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bucket_count() const noexcept { return table_.size(); }

    /// Lock-free existence query (ignores lock bits). key in (0, 2^56-1).
    [[nodiscard]] bool contains(std::uint64_t key) const noexcept;

    /// Issues a prefetch for the probe window of key (paper §5.4).
    void prefetch(std::uint64_t key) const noexcept {
        prefetch_read_2lines(&table_[home(key)]);
    }

    /// General-purpose insert; returns false if the key was present.
    bool insert(std::uint64_t key);

    /// General-purpose erase; returns false if the key was absent.
    bool erase(std::uint64_t key);

    /// Lock-free insert. Caller guarantees no concurrent operation on the
    /// same key. Returns false if present.
    bool insert_unique(std::uint64_t key);

    /// Lock-free erase. Caller guarantees no concurrent operation on the
    /// same key. Returns false if absent.
    bool erase_unique(std::uint64_t key);

    // ------------------------------------------------------------- tickets

    /// Attempts to lock an existing unlocked key. Returns the bucket index
    /// on success. tid must be in [0, 254); the stored owner is tid+1.
    std::optional<std::uint64_t> try_lock(std::uint64_t key, unsigned tid) noexcept;

    /// Attempts to insert key in locked state. On kInserted the bucket index
    /// is stored in slot_out and the caller owns the lock.
    InsertLock try_insert_and_lock(std::uint64_t key, unsigned tid, std::uint64_t& slot_out);

    /// Releases a lock acquired by try_lock / try_insert_and_lock.
    void unlock(std::uint64_t slot) noexcept;

    /// Erases the key in a bucket currently locked by the caller.
    void erase_locked(std::uint64_t slot) noexcept;

    // ------------------------------------------------------------- service

    /// True when tombstones crossed the rebuild threshold.
    [[nodiscard]] bool needs_rebuild() const noexcept {
        return tombs_.load(std::memory_order_relaxed) > table_.size() / 4;
    }

    /// Compacts tombstones away. NOT thread-safe: call at a quiescent point.
    void rebuild();

    /// rebuild() iff needs_rebuild().
    void maybe_rebuild() {
        if (needs_rebuild()) rebuild();
    }

    /// Calls fn(key) for every live key. NOT thread-safe against writers.
    template <typename F>
    void for_each(F&& fn) const {
        for (const auto& bucket : table_) {
            const std::uint64_t key = bucket.load(std::memory_order_relaxed) & kKeyMask;
            if (key != kEmpty && key != kTomb) fn(key);
        }
    }

    /// Samples a uniformly random live key by repeatedly probing random
    /// buckets (paper §5.3, "sample directly from the hash-set" option).
    /// NOT thread-safe against writers. Expected draws: 1 / load factor.
    template <typename Urbg>
    [[nodiscard]] std::uint64_t sample_uniform(Urbg& gen) const {
        GESMC_CHECK(size() > 0, "cannot sample from an empty set");
        for (;;) {
            const std::uint64_t idx = uniform_below(gen, table_.size());
            const std::uint64_t key = table_[idx].load(std::memory_order_relaxed) & kKeyMask;
            if (key != kEmpty && key != kTomb) return key;
        }
    }

private:
    [[nodiscard]] std::uint64_t home(std::uint64_t key) const noexcept {
        return edge_hash(key) >> shift_;
    }

    [[nodiscard]] std::atomic<std::uint8_t>& stripe(std::uint64_t key) noexcept {
        return stripes_[(edge_hash(key) >> 8) & (kStripes - 1)];
    }

    void lock_stripe(std::atomic<std::uint8_t>& s) noexcept;
    void unlock_stripe(std::atomic<std::uint8_t>& s) noexcept;

    bool insert_impl(std::uint64_t key, std::uint64_t locked_state, std::uint64_t* slot_out,
                     bool* exists_locked_out);

    static constexpr std::uint64_t kStripes = 4096;

    std::vector<std::atomic<std::uint64_t>> table_;
    std::vector<std::atomic<std::uint8_t>> stripes_;
    std::uint64_t mask_ = 0;
    unsigned shift_ = 64;
    std::atomic<std::uint64_t> size_{0};
    std::atomic<std::uint64_t> tombs_{0};
};

} // namespace gesmc
