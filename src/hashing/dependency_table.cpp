#include "hashing/dependency_table.hpp"

namespace gesmc {

DependencyTable::DependencyTable(std::uint64_t max_switches) {
    // Up to 4 distinct edges are registered per switch; size for load <= 1/2.
    const std::uint64_t cap = next_pow2(std::max<std::uint64_t>(64, max_switches * 8));
    slots_ = std::vector<Slot>(cap);
    for (auto& slot : slots_) {
        slot.key.store(kEmptyKey, std::memory_order_relaxed);
        slot.erase_idx.store(kNone, std::memory_order_relaxed);
        slot.insert_head.store(kNone, std::memory_order_relaxed);
        slot.insert_min_cache.store(0, std::memory_order_relaxed); // round 0: never queried
    }
    arena_next_ = std::vector<std::atomic<std::uint32_t>>(2 * max_switches);
    mask_ = cap - 1;
    shift_ = 64 - log2_floor(cap);
}

void DependencyTable::begin_superstep(std::uint64_t num_switches, ThreadPool& pool) {
    GESMC_CHECK(2 * num_switches <= arena_next_.size(),
                "superstep larger than the table was sized for");
    // Reset only the slots the previous superstep claimed. Iterate by list
    // index (not thread id) so this stays correct if the pool size changed.
    pool.for_chunks_dynamic(0, touched_.size(), 1,
                            [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                                for (std::uint64_t t = lo; t < hi; ++t) {
                                    for (const std::uint64_t s : touched_[t]) {
                                        slots_[s].key.store(kEmptyKey, std::memory_order_relaxed);
                                        slots_[s].erase_idx.store(kNone,
                                                                  std::memory_order_relaxed);
                                        slots_[s].insert_head.store(kNone,
                                                                    std::memory_order_relaxed);
                                    }
                                    touched_[t].clear();
                                }
                            });
    if (touched_.size() != pool.num_threads()) touched_.resize(pool.num_threads());
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

std::uint64_t DependencyTable::find_or_claim(std::uint64_t key, unsigned tid) {
    std::uint64_t idx = home(key);
    for (std::uint64_t probes = 0; probes <= mask_; ++probes) {
        std::uint64_t k = slots_[idx].key.load(std::memory_order_acquire);
        if (k == key) return idx;
        if (k == kEmptyKey) {
            if (slots_[idx].key.compare_exchange_strong(k, key, std::memory_order_acq_rel)) {
                touched_[tid].push_back(idx);
                return idx;
            }
            if (k == key) return idx; // lost the race to the same key
            continue;                 // lost to a different key: re-examine slot
        }
        idx = (idx + 1) & mask_;
    }
    GESMC_CHECK(false, "DependencyTable overfull");
    return kNoSlot;
}

std::uint64_t DependencyTable::find_slot(std::uint64_t key) const noexcept {
    std::uint64_t idx = home(key);
    for (std::uint64_t probes = 0; probes <= mask_; ++probes) {
        const std::uint64_t k = slots_[idx].key.load(std::memory_order_acquire);
        if (k == key) return idx;
        if (k == kEmptyKey) return kNoSlot;
        idx = (idx + 1) & mask_;
    }
    return kNoSlot;
}

void DependencyTable::register_erase(std::uint64_t key, std::uint32_t k, unsigned tid) {
    const std::uint64_t slot = find_or_claim(key, tid);
    // Unique writer per key (Observation 2) — a plain store suffices.
    slots_[slot].erase_idx.store(k, std::memory_order_release);
}

void DependencyTable::register_insert(std::uint64_t key, std::uint32_t k, unsigned which,
                                      unsigned tid) {
    const std::uint64_t slot = find_or_claim(key, tid);
    const std::uint32_t node = 2 * k + which;
    std::uint32_t head = slots_[slot].insert_head.load(std::memory_order_acquire);
    do {
        arena_next_[node].store(head, std::memory_order_relaxed);
    } while (!slots_[slot].insert_head.compare_exchange_weak(
        head, node, std::memory_order_acq_rel, std::memory_order_acquire));
}

std::uint32_t DependencyTable::insert_min_at(
    std::uint64_t slot, const std::vector<std::atomic<SwitchStatus>>& status,
    std::uint32_t round_id) const noexcept {
    Slot& s = slots_[slot];
    const std::uint64_t cached = s.insert_min_cache.load(std::memory_order_acquire);
    if (static_cast<std::uint32_t>(cached >> 32) == round_id) {
        return static_cast<std::uint32_t>(cached);
    }

    std::uint32_t best = kNone;
    std::uint32_t node = s.insert_head.load(std::memory_order_acquire);
    while (node != kNone) {
        const std::uint32_t k = node / 2;
        if (k < best &&
            status[k].load(std::memory_order_acquire) != SwitchStatus::kIllegal) {
            best = k;
        }
        node = arena_next_[node].load(std::memory_order_acquire);
    }
    s.insert_min_cache.store((static_cast<std::uint64_t>(round_id) << 32) | best,
                             std::memory_order_release);
    return best;
}

} // namespace gesmc
