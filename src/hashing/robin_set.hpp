/// \file robin_set.hpp
/// \brief Sequential robin-hood hash set for 64-bit keys (paper §5.2).
///
/// The paper's preliminary experiments identified robin-hood hashing with a
/// maximum load factor of 1/2 and power-of-two bucket counts as the fastest
/// sequential representation for the roughly balanced mix of insertions,
/// deletions and existence queries that edge switching produces.  This
/// implementation uses
///   * open addressing with linear probing and robin-hood displacement,
///   * backward-shift deletion (no tombstones, probe chains stay short),
///   * a two-step prefetch API (prepare/execute) so SeqES can overlap the
///     memory latency of independent queries (paper §5.4).
///
/// Key 0 is reserved as the empty sentinel; edge keys are canonical
/// encodings of simple edges {u,v} with u < v, which are never 0.
#pragma once

#include "hashing/hash.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"

#include <cstdint>
#include <vector>

namespace gesmc {

class RobinSet {
public:
    /// Creates a set able to hold `expected_keys` at load factor <= 1/2.
    explicit RobinSet(std::uint64_t expected_keys = 16) { rehash_for(expected_keys); }

    [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
    [[nodiscard]] std::uint64_t bucket_count() const noexcept { return table_.size(); }
    [[nodiscard]] double load_factor() const noexcept {
        return static_cast<double>(size_) / static_cast<double>(table_.size());
    }

    /// True iff key is present. key must be non-zero.
    [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
        std::uint64_t idx = home(key);
        std::uint64_t dist = 0;
        for (;;) {
            const std::uint64_t k = table_[idx];
            if (k == key) return true;
            if (k == kEmpty) return false;
            // Robin-hood invariant: if the resident key is closer to its
            // home than we are to ours, the key cannot be further along.
            if (probe_distance(k, idx) < dist) return false;
            idx = (idx + 1) & mask_;
            ++dist;
        }
    }

    /// Inserts key; returns false if already present. key must be non-zero.
    /// A duplicate insert never rehashes (and thus never invalidates
    /// outstanding Prepared handles): the table only grows when the key is
    /// actually added.
    bool insert(std::uint64_t key) {
        GESMC_CHECK(key != kEmpty, "key 0 is reserved");
        // Probe without mutating until the key is proven absent: the robin-
        // hood invariant bounds the search at the first resident closer to
        // its home than we are to ours.
        std::uint64_t idx = home(key);
        std::uint64_t dist = 0;
        for (;;) {
            const std::uint64_t k = table_[idx];
            if (k == key) return false;
            if (k == kEmpty || probe_distance(k, idx) < dist) break;
            idx = (idx + 1) & mask_;
            ++dist;
        }
        if ((size_ + 1) * 2 > table_.size()) {
            rehash_for(size_ * 2 + 8);
            idx = home(key);
            dist = 0;
            while (table_[idx] != kEmpty && probe_distance(table_[idx], idx) >= dist) {
                idx = (idx + 1) & mask_;
                ++dist;
            }
        }
        // Rob the rich: displace residents closer to their home while
        // carrying the evicted key forward. The key is known absent here.
        std::uint64_t carry = key;
        for (;;) {
            const std::uint64_t k = table_[idx];
            if (k == kEmpty) {
                table_[idx] = carry;
                ++size_;
                return true;
            }
            const std::uint64_t res_dist = probe_distance(k, idx);
            if (res_dist < dist) {
                table_[idx] = carry;
                carry = k;
                dist = res_dist;
            }
            idx = (idx + 1) & mask_;
            ++dist;
        }
    }

    /// Removes key; returns false if absent. Backward-shift deletion.
    bool erase(std::uint64_t key) noexcept {
        std::uint64_t idx = home(key);
        std::uint64_t dist = 0;
        for (;;) {
            const std::uint64_t k = table_[idx];
            if (k == kEmpty) return false;
            if (k == key) break;
            if (probe_distance(k, idx) < dist) return false;
            idx = (idx + 1) & mask_;
            ++dist;
        }
        // Shift successors back until an empty slot or a key at its home.
        for (;;) {
            const std::uint64_t next = (idx + 1) & mask_;
            const std::uint64_t k = table_[next];
            if (k == kEmpty || probe_distance(k, next) == 0) {
                table_[idx] = kEmpty;
                break;
            }
            table_[idx] = k;
            idx = next;
        }
        --size_;
        return true;
    }

    // ------------------------------------------------------------------
    // Two-step (prefetching) interface, paper §5.4: hash the key and issue
    // a prefetch now, perform the table operation later.
    // ------------------------------------------------------------------

    struct Prepared {
        std::uint64_t key;
        std::uint64_t idx;
    };

    [[nodiscard]] Prepared prepare(std::uint64_t key) const noexcept {
        const Prepared p{key, home(key)};
        prefetch_read_2lines(&table_[p.idx]);
        return p;
    }

    /// contains() that starts probing at the prepared (prefetched) bucket.
    /// Only valid if no rehash happened since prepare().
    [[nodiscard]] bool contains_prepared(const Prepared& p) const noexcept {
        std::uint64_t idx = p.idx;
        std::uint64_t dist = 0;
        for (;;) {
            const std::uint64_t k = table_[idx];
            if (k == p.key) return true;
            if (k == kEmpty) return false;
            if (probe_distance(k, idx) < dist) return false;
            idx = (idx + 1) & mask_;
            ++dist;
        }
    }

    /// True iff an insert may trigger a rehash (invalidating Prepared
    /// handles). SeqES reserves capacity up-front so this stays false.
    [[nodiscard]] bool would_rehash_on_insert() const noexcept {
        return (size_ + 1) * 2 > table_.size();
    }

    /// Grows the table so that `expected_keys` fit at load <= 1/2 with one
    /// insert of headroom (matching rehash_for): after reserve(m) and m
    /// inserts, would_rehash_on_insert() is guaranteed false.
    void reserve(std::uint64_t expected_keys) {
        if (expected_keys * 2 + 1 > table_.size()) rehash_for(expected_keys);
    }

    void clear() noexcept {
        std::fill(table_.begin(), table_.end(), kEmpty);
        size_ = 0;
    }

    /// Calls fn(key) for every stored key (unspecified order).
    template <typename F>
    void for_each(F&& fn) const {
        for (const std::uint64_t k : table_)
            if (k != kEmpty) fn(k);
    }

private:
    static constexpr std::uint64_t kEmpty = 0;

    [[nodiscard]] std::uint64_t home(std::uint64_t key) const noexcept {
        return edge_hash(key) >> shift_;
    }

    [[nodiscard]] std::uint64_t probe_distance(std::uint64_t key, std::uint64_t idx) const noexcept {
        return (idx - home(key)) & mask_;
    }

    void rehash_for(std::uint64_t expected_keys) {
        // +1 gives one insert of headroom at exactly `expected_keys` keys:
        // reserve(m) must leave would_rehash_on_insert() false even when 2m
        // is itself a power of two (e.g. m = 8), or SeqES's stable-prepare
        // invariant breaks on small graphs.
        const std::uint64_t cap =
            next_pow2(std::max<std::uint64_t>(16, expected_keys * 2 + 1));
        std::vector<std::uint64_t> old = std::move(table_);
        table_.assign(cap, kEmpty);
        mask_ = cap - 1;
        shift_ = 64 - log2_floor(cap);
        size_ = 0;
        for (const std::uint64_t k : old)
            if (k != kEmpty) insert(k);
    }

    std::vector<std::uint64_t> table_;
    std::uint64_t mask_ = 0;
    unsigned shift_ = 64;
    std::uint64_t size_ = 0;
};

} // namespace gesmc
