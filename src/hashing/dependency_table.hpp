/// \file dependency_table.hpp
/// \brief The concurrent dependency table T of ParallelSuperstep (paper §4).
///
/// For a superstep of switches sigma_1..sigma_l without source dependencies,
/// the table stores per edge e:
///   * at most one ERASE tuple (e, p): switch sigma_p has e as source edge
///     (unique by Observation 2 of the paper), and
///   * a list of INSERT tuples (e, q): every switch sigma_q that has e as a
///     target edge.
/// Switch *statuses* (undecided / legal / illegal) are shared by all four
/// tuples of a switch, so they live in one external status array indexed by
/// switch id rather than per tuple; lookups return switch indices and the
/// caller reads the status array.  The paper's implicit tuple
/// (e, infinity, erase, illegal) for graph edges untouched by the batch is
/// realized by the caller consulting the graph's edge set when no erase
/// tuple exists.
///
/// Layout: one 32-byte slot per edge (key, erase index, insert-list head,
/// and a round-tagged memo of the minimum live inserter) so that a probe
/// plus both dependency lookups cost a single cache line.  The decision
/// loop first resolves the slot with find_slot() and then reads both roles
/// through the slot handle.
///
/// Concurrency: registration (phase A) runs fully in parallel — slots are
/// claimed by CAS, insert tuples are pushed onto a per-edge lock-free list
/// whose nodes are preallocated in an arena (node 2k+b is target b of
/// switch k, so no allocation happens during a superstep).  Lookups during
/// the decision rounds are wait-free probes.  reset() only touches slots
/// used by the previous superstep.
#pragma once

#include "hashing/hash.hpp"
#include "parallel/thread_pool.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/prefetch.hpp"

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

namespace gesmc {

/// Status values for switches within a superstep. Transitions are
/// monotone: kUndecided -> {kLegal, kIllegal}; never back.
enum class SwitchStatus : std::uint8_t { kUndecided = 0, kLegal = 1, kIllegal = 2 };

class DependencyTable {
public:
    static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
    static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

    /// Sizes the table for supersteps with up to max_switches switches.
    explicit DependencyTable(std::uint64_t max_switches);

    DependencyTable(const DependencyTable&) = delete;
    DependencyTable& operator=(const DependencyTable&) = delete;

    /// Prepares for a superstep of `num_switches` switches: clears the slots
    /// touched by the previous superstep (parallel, O(previously touched)).
    void begin_superstep(std::uint64_t num_switches, ThreadPool& pool);

    /// Registers sigma_k erasing edge `key`. At most one switch per key may
    /// ever be registered as eraser within a superstep (Observation 2).
    /// tid identifies the calling pool thread (for the touched-slot list).
    void register_erase(std::uint64_t key, std::uint32_t k, unsigned tid);

    /// Registers target `which` (0 or 1) of sigma_k inserting edge `key`.
    void register_insert(std::uint64_t key, std::uint32_t k, unsigned which, unsigned tid);

    /// Resolves the slot of `key`, or kNoSlot. One probe serves both the
    /// erase and the insert lookup below.
    [[nodiscard]] std::uint64_t find_slot(std::uint64_t key) const noexcept;

    /// Index of the switch erasing the slot's edge, or kNone.
    [[nodiscard]] std::uint32_t erase_idx_at(std::uint64_t slot) const noexcept {
        return slots_[slot].erase_idx.load(std::memory_order_acquire);
    }

    /// Smallest switch index q with an insert tuple on this slot whose
    /// status is not illegal; kNone if all inserters are illegal. The
    /// caller's own tuple is part of the list.
    ///
    /// `round_id` must strictly increase across decision rounds (and
    /// supersteps): the result of the per-edge list walk is memoized under
    /// that tag, so an edge targeted by L switches costs one O(L) walk per
    /// round instead of O(L) per lookup — without the memo, hub-hub edges
    /// of skewed graphs (thousands of inserters, Theorem 3) degrade a
    /// round to O(L^2).  Memoized values can only be stale towards *larger*
    /// true minima (status transitions are monotone), which callers treat
    /// as "wait one round" — conservative and progress-preserving.
    [[nodiscard]] std::uint32_t
    insert_min_at(std::uint64_t slot, const std::vector<std::atomic<SwitchStatus>>& status,
                  std::uint32_t round_id) const noexcept;

    /// Convenience wrappers (used by tests; the hot path uses find_slot).
    [[nodiscard]] std::uint32_t lookup_erase(std::uint64_t key) const noexcept {
        const std::uint64_t slot = find_slot(key);
        return slot == kNoSlot ? kNone : erase_idx_at(slot);
    }
    [[nodiscard]] std::uint32_t
    lookup_insert_min(std::uint64_t key, const std::vector<std::atomic<SwitchStatus>>& status,
                      std::uint32_t round_id) const noexcept {
        const std::uint64_t slot = find_slot(key);
        return slot == kNoSlot ? kNone : insert_min_at(slot, status, round_id);
    }

    /// Prefetches the probe window of `key` (paper §5.4).
    void prefetch(std::uint64_t key) const noexcept {
        prefetch_read_2lines(&slots_[home(key)]);
    }

    [[nodiscard]] std::uint64_t bucket_count() const noexcept { return slots_.size(); }

private:
    /// One cache-line-quarter per edge: probe + both lookups hit one line.
    struct alignas(32) Slot {
        std::atomic<std::uint64_t> key;
        std::atomic<std::uint32_t> erase_idx;
        std::atomic<std::uint32_t> insert_head; ///< arena node id or kNone
        std::atomic<std::uint64_t> insert_min_cache; ///< (round_id << 32) | min
    };

    [[nodiscard]] std::uint64_t home(std::uint64_t key) const noexcept {
        return edge_hash(key) >> shift_;
    }

    /// Finds the slot of `key`, claiming an empty one if absent.
    std::uint64_t find_or_claim(std::uint64_t key, unsigned tid);

    static constexpr std::uint64_t kEmptyKey = 0;

    mutable std::vector<Slot> slots_;
    std::vector<std::atomic<std::uint32_t>> arena_next_; // node 2k+b -> next node
    std::vector<std::vector<std::uint64_t>> touched_;    // per-thread claimed slots
    std::uint64_t mask_ = 0;
    unsigned shift_ = 64;
};

} // namespace gesmc
