#include "pipeline/scheduler.hpp"

#include "parallel/pool_lease.hpp"
#include "util/check.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace gesmc {

namespace {

/// K = ⌊P/T⌋ bounded by the replicate count and the optional user cap.
unsigned concurrency_for(unsigned budget, unsigned chain_threads,
                         std::uint64_t replicates, unsigned cap) noexcept {
    unsigned k = std::max(1u, budget / std::max(1u, chain_threads));
    if (cap > 0) k = std::min(k, cap);
    if (replicates > 0 && replicates < k) k = static_cast<unsigned>(replicates);
    return k;
}

} // namespace

ResolvedSchedule resolve_schedule(const ScheduleRequest& request,
                                  std::uint64_t replicates, unsigned budget) noexcept {
    const unsigned p = std::max(1u, budget);
    // A pinned chain-threads never exceeds the budget: leases of width > P
    // could not be granted.
    const unsigned pinned = std::min(request.chain_threads, p);

    ResolvedSchedule out;
    SchedulePolicy policy = request.policy;
    if (policy == SchedulePolicy::kAuto) {
        if (pinned > 0) {
            // Budget-aware auto: the pinned width selects the policy that
            // realizes it.  (The pre-budget behavior compared R against the
            // full pool width even when chain-threads was pinned.)
            policy = pinned == 1 ? SchedulePolicy::kReplicates
                     : pinned >= p ? SchedulePolicy::kIntraChain
                                   : SchedulePolicy::kHybrid;
        } else {
            policy = replicates >= p ? SchedulePolicy::kReplicates
                                     : SchedulePolicy::kIntraChain;
        }
    }

    switch (policy) {
    case SchedulePolicy::kReplicates:
        out.policy = SchedulePolicy::kReplicates;
        out.chain_threads = 1;
        out.max_concurrent = concurrency_for(p, 1, replicates, request.max_concurrent);
        return out;
    case SchedulePolicy::kIntraChain:
        out.policy = SchedulePolicy::kIntraChain;
        out.chain_threads = pinned > 0 ? pinned : p;
        out.max_concurrent = 1;
        return out;
    case SchedulePolicy::kHybrid: {
        out.policy = SchedulePolicy::kHybrid;
        unsigned t = pinned;
        if (t == 0) {
            // Spread the budget over the replicates: K = min(R, P) teams of
            // T = ⌊P/K⌋ threads — the widest teams that still run all of R
            // concurrently when R < P (T = 1 when R >= P).  Floor, not
            // ceiling: ⌈P/K⌉-wide teams would not all fit in the budget
            // when K does not divide P, silently serializing part of R.
            const unsigned k0 = concurrency_for(p, 1, replicates, request.max_concurrent);
            t = std::max(1u, p / k0);
        }
        out.chain_threads = std::min(std::max(1u, t), p);
        out.max_concurrent =
            concurrency_for(p, out.chain_threads, replicates, request.max_concurrent);
        return out;
    }
    case SchedulePolicy::kAuto:
        break; // unreachable: resolved above
    }
    return out;
}

SchedulePolicy resolve_policy(SchedulePolicy policy, std::uint64_t replicates,
                              unsigned pool_threads) noexcept {
    ScheduleRequest request;
    request.policy = policy;
    return resolve_schedule(request, replicates, pool_threads).policy;
}

unsigned PoolExecutor::threads() const noexcept { return budget_->total(); }

void PoolExecutor::run(std::uint64_t replicates, const ScheduleRequest& request,
                       const std::function<void(const ReplicateSlot&)>& fn) {
    GESMC_CHECK(fn != nullptr, "null replicate body");
    const ResolvedSchedule schedule = resolve_schedule(request, replicates, threads());
    const unsigned t = schedule.chain_threads;

    if (schedule.max_concurrent <= 1) {
        // One replicate at a time on the calling thread: keeps the leased
        // pool's fork-join un-nested (a pool job must never submit to its
        // own pool) and the kIntraChain ordering strict.
        for (std::uint64_t r = 0; r < replicates; ++r) {
            PoolLease lease = budget_->acquire(t);
            fn(ReplicateSlot{r, lease.width(), lease.pool()});
        }
        return;
    }

    // K workers — the caller participates — each holding one width-T lease
    // for the duration and pulling replicate indices from a shared grain-1
    // queue.  K·T <= P, so the K acquires are granted without waiting.
    std::atomic<std::uint64_t> next{0};
    const auto worker = [&] {
        PoolLease lease = budget_->acquire(t);
        for (;;) {
            const std::uint64_t r = next.fetch_add(1, std::memory_order_relaxed);
            if (r >= replicates) break;
            fn(ReplicateSlot{r, lease.width(), lease.pool()});
        }
    };
    std::vector<std::thread> extra;
    extra.reserve(schedule.max_concurrent - 1);
    for (unsigned k = 1; k < schedule.max_concurrent; ++k) extra.emplace_back(worker);
    worker();
    for (std::thread& thread : extra) thread.join();
}

} // namespace gesmc
