#include "pipeline/scheduler.hpp"

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace gesmc {

SchedulePolicy resolve_policy(SchedulePolicy policy, std::uint64_t replicates,
                              unsigned pool_threads) noexcept {
    if (policy != SchedulePolicy::kAuto) return policy;
    return replicates >= pool_threads ? SchedulePolicy::kReplicates
                                      : SchedulePolicy::kIntraChain;
}

void run_replicates(ThreadPool& pool, std::uint64_t replicates, SchedulePolicy policy,
                    const std::function<void(const ReplicateSlot&)>& fn) {
    GESMC_CHECK(fn != nullptr, "null replicate body");
    const SchedulePolicy resolved = resolve_policy(policy, replicates, pool.num_threads());
    switch (resolved) {
    case SchedulePolicy::kReplicates:
        // Dynamic grain-1 queue: replicate runtimes vary (rejections, IO),
        // so static chunking would leave threads idle at the tail.
        pool.for_chunks_dynamic(0, replicates, 1,
                                [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                                    for (std::uint64_t r = lo; r < hi; ++r) {
                                        fn(ReplicateSlot{r, 1, nullptr});
                                    }
                                });
        return;
    case SchedulePolicy::kIntraChain:
        // One replicate at a time; the chain saturates the pool itself.
        // Running on the calling thread keeps ThreadPool::run un-nested
        // (a pool job must never submit to its own pool).
        for (std::uint64_t r = 0; r < replicates; ++r) {
            fn(ReplicateSlot{r, pool.num_threads(), &pool});
        }
        return;
    case SchedulePolicy::kAuto:
        break; // unreachable: resolve_policy never returns kAuto
    }
    GESMC_CHECK(false, "unresolved schedule policy");
}

unsigned PoolExecutor::threads() const noexcept { return pool_->num_threads(); }

} // namespace gesmc
