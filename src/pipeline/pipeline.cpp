#include "pipeline/pipeline.hpp"

#include "analysis/ess.hpp"
#include "analysis/gauges.hpp"
#include "core/chain.hpp"
#include "gen/configuration_model.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "gen/havel_hakimi.hpp"
#include "graph/adjacency.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/pool_lease.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/seeds.hpp"
#include "util/check.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>

namespace gesmc {

namespace {

/// Error prefix marking a replicate stopped by PipelineExec::interrupt —
/// the one signal was_interrupted keys on, so cancel/drain outcomes stay
/// distinguishable from genuine failures.
constexpr const char* kInterruptPrefix = "interrupted: ";

/// Thrown out of the checkpoint-boundary callback to unwind a replicate
/// that must stop: the checkpoint just written is its resumable state.
struct InterruptReplicate {
    std::uint64_t superstep;
};

EdgeList realize_degree_sequence(const DegreeSequence& seq, const PipelineConfig& config) {
    GESMC_CHECK(seq.degree_sum() % 2 == 0, "degree sum must be even");
    GESMC_CHECK(seq.is_graphical(), "degree sequence is not graphical");
    switch (config.init) {
    case InitMethod::kHavelHakimi:
        return havel_hakimi(seq);
    case InitMethod::kConfigurationModel:
        return configuration_model_repaired(seq, config.seed);
    }
    GESMC_CHECK(false, "unknown init method");
    return {};
}

EdgeList generate_input(const PipelineConfig& config) {
    const auto n = static_cast<node_t>(config.gen_n);
    if (config.generator == "powerlaw") {
        return generate_powerlaw_graph(n, config.gen_gamma, config.seed);
    }
    if (config.generator == "gnp") {
        return generate_gnp(n, gnp_probability_for_edges(n, config.gen_m), config.seed);
    }
    if (config.generator == "grid") {
        return generate_grid(static_cast<node_t>(config.gen_rows),
                             static_cast<node_t>(config.gen_cols));
    }
    if (config.generator == "regular") {
        return generate_regular(n, config.gen_degree);
    }
    throw Error("unknown generator: " + config.generator);
}

/// "0007" — zero-padded so lexicographic = numeric order.
std::string padded_index(const PipelineConfig& config, std::uint64_t index) {
    std::string digits = std::to_string(index);
    const std::string width = std::to_string(config.replicates - 1);
    while (digits.size() < width.size()) digits.insert(digits.begin(), '0');
    return digits;
}

std::string replicate_output_path(const PipelineConfig& config, std::uint64_t index) {
    const char* ext = config.output_format == OutputFormat::kBinary ? ".gesb" : ".txt";
    return (std::filesystem::path(config.output_dir) /
            (config.output_prefix + "_" + padded_index(config, index) + ext))
        .string();
}

/// <run-dir>/checkpoints/<prefix>_0007.gesc — same naming scheme as the
/// outputs so a run directory is self-describing.
std::string checkpoint_path(const std::string& run_dir, const PipelineConfig& config,
                            std::uint64_t index) {
    return (std::filesystem::path(run_dir) / "checkpoints" /
            (config.output_prefix + "_" + padded_index(config, index) + ".gesc"))
        .string();
}

/// The adaptive estimator's sidecar next to a replicate's .gesc: same stem,
/// .gesa extension ("GESA" preamble, analysis/ess.hpp).
std::string estimator_path(const std::string& run_dir, const PipelineConfig& config,
                           std::uint64_t index) {
    return (std::filesystem::path(run_dir) / "checkpoints" /
            (config.output_prefix + "_" + padded_index(config, index) + ".gesa"))
        .string();
}

AdaptiveStopConfig adaptive_stop_config(const PipelineConfig& config) {
    AdaptiveStopConfig out;
    out.ess_target = config.ess_target;
    out.mixing_tau = config.mixing_tau;
    out.min_supersteps = config.min_supersteps;
    out.max_supersteps = config.max_supersteps;
    out.check_every = config.check_every;
    return out;
}

/// Same atomic write protocol as the .gesc files (graph/io): tmp + rename,
/// so a crash never leaves a torn sidecar shadowing a good checkpoint.
void write_estimator_file_atomic(const std::string& path, const EssEstimator& est) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary);
        GESMC_CHECK(os.good(), "cannot open for writing: " + tmp);
        est.save(os);
        os.close();
        GESMC_CHECK(os.good(), "estimator sidecar write failed: " + tmp);
    }
    std::filesystem::rename(tmp, path);
}

/// Restores the estimator sidecar belonging to a restored chain state, or
/// nullopt when it is missing, unreadable, recorded under different knobs,
/// or out of step with the chain — the callers then rerun the replicate
/// from superstep 0 (byte-identical, just recomputing).
std::optional<EssEstimator> try_restore_estimator(const std::string& path,
                                                  const AdaptiveStopConfig& stop_config,
                                                  std::uint64_t chain_supersteps) {
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) return std::nullopt;
    try {
        EssEstimator est = EssEstimator::restore(is, stop_config);
        if (est.supersteps() != chain_supersteps) return std::nullopt;
        return est;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

/// Per-replicate decorator feeding the replicate's superstep stream into
/// its estimator before forwarding to the run's observer chain.
class EssFeed final : public RunObserver {
public:
    EssFeed(EssEstimator* estimator, RunObserver* inner) noexcept
        : estimator_(estimator), inner_(inner) {}

    void on_superstep(std::uint64_t replicate, const Chain& chain) override {
        estimator_->observe(chain);
        if (inner_ != nullptr) inner_->on_superstep(replicate, chain);
    }

    void on_checkpoint(std::uint64_t replicate, const ChainState& state,
                       const std::string& path) override {
        if (inner_ != nullptr) inner_->on_checkpoint(replicate, state, path);
    }

    void on_replicate_done(const ReplicateReport& report) override {
        if (inner_ != nullptr) inner_->on_replicate_done(report);
    }

private:
    EssEstimator* estimator_;
    RunObserver* inner_;
};

obs::Counter& supersteps_saved_counter() {
    static obs::Counter& c =
        obs::MetricsRegistry::instance().counter("pipeline.supersteps.saved");
    return c;
}

} // namespace

EdgeList materialize_input(const PipelineConfig& config) {
    validate(config);
    switch (config.input_kind) {
    // single_input_path, not the raw value: a spaced path travels
    // double-quoted through the `input` list spelling.
    case InputKind::kEdgeList:
        return read_any_edge_list_file(single_input_path(config));
    case InputKind::kDegreeSequence:
        return realize_degree_sequence(
            read_degree_sequence_file(single_input_path(config)), config);
    case InputKind::kGenerator:
        return generate_input(config);
    }
    GESMC_CHECK(false, "unknown input kind");
    return {};
}

bool all_succeeded(const RunReport& report) {
    for (const ReplicateReport& r : report.replicates) {
        if (!r.error.empty()) return false;
    }
    return true;
}

std::uint64_t remove_run_checkpoints(const PipelineConfig& config) {
    std::uint64_t removed = 0;
    for (std::uint64_t r = 0; r < config.replicates; ++r) {
        std::error_code ec;
        if (std::filesystem::remove(checkpoint_path(config.output_dir, config, r), ec)) {
            ++removed;
        }
        // Adaptive estimator sidecars live and die with their .gesc.
        std::filesystem::remove(estimator_path(config.output_dir, config, r), ec);
    }
    std::error_code ec;
    const std::filesystem::path dir =
        std::filesystem::path(config.output_dir) / "checkpoints";
    if (std::filesystem::is_empty(dir, ec) && !ec) std::filesystem::remove(dir, ec);
    return removed;
}

bool is_interrupt_error(const std::string& error) {
    return error.rfind(kInterruptPrefix, 0) == 0;
}

bool was_interrupted(const RunReport& report) {
    for (const ReplicateReport& r : report.replicates) {
        if (is_interrupt_error(r.error)) return true;
    }
    return false;
}

RunReport run_pipeline(const PipelineConfig& config, std::ostream* log,
                       RunObserver* observer) {
    return run_pipeline(config, log, observer, PipelineExec{});
}

RunReport run_pipeline(const PipelineConfig& config, std::ostream* log,
                       RunObserver* observer, const PipelineExec& exec) {
    // materialize_input below runs validate(config); no separate call here.
    const ChainAlgorithm algo = chain_algorithm_from_string(config.algorithm);

    RunReport report;
    report.config = config;

    Timer total_timer;
    const EdgeList initial = materialize_input(config);
    GESMC_CHECK(initial.num_edges() >= 2,
                "input graph needs at least two edges to run a switching chain");
    const DegreeSequence degrees = degree_sequence_of(initial);
    report.input_nodes = initial.num_nodes();
    report.input_edges = initial.num_edges();
    report.input_max_degree = degrees.max_degree();
    report.input_p2 = degrees.p2();
    report.init_seconds = total_timer.elapsed_s();

    // Host the replicates: an injected executor (service jobs share one
    // machine-wide budget) or a private thread budget owned by this run.
    std::optional<ThreadBudget> own_budget;
    std::optional<PoolExecutor> own_executor;
    ReplicateExecutor* executor = exec.executor;
    if (executor == nullptr) {
        own_budget.emplace(config.threads);
        own_executor.emplace(*own_budget);
        executor = &*own_executor;
    }
    const auto interrupted = [&exec]() noexcept {
        return exec.interrupt != nullptr &&
               exec.interrupt->load(std::memory_order_relaxed);
    };
    // Replicate range: everything by default; the corpus coordinator's
    // two-phase early-stop runs partial ranges (PipelineExec doc).
    const std::uint64_t range_begin = std::min(exec.replicate_begin, config.replicates);
    const std::uint64_t range_end =
        std::min(exec.replicate_end, config.replicates);
    GESMC_CHECK(range_begin <= range_end, "replicate range is inverted");
    const std::uint64_t range_count = range_end - range_begin;
    const bool full_range = range_begin == 0 && range_end == config.replicates;
    const ScheduleRequest request{config.policy, config.chain_threads,
                                  config.max_concurrent};
    const ResolvedSchedule schedule = executor->resolve(range_count, request);
    // The effective per-replicate budget: fixed supersteps, or the adaptive
    // cap (each replicate may stop earlier on its own verdict).
    const std::uint64_t target_supersteps =
        config.adaptive ? config.max_supersteps : config.supersteps;
    const AdaptiveStopConfig stop_config = adaptive_stop_config(config);
    report.threads = executor->threads();
    report.resolved_policy = schedule.policy;
    report.chain_threads = schedule.chain_threads;
    report.max_concurrent = schedule.max_concurrent;
    report.resolved_edge_set_backend = config.edge_set_backend;

    if (log != nullptr && algo == ChainAlgorithm::kNaiveParES) {
        *log << "pipeline: warning: naive-par-es outputs depend on the schedule's "
                "chain-threads (inexact chain, paper §5.1); only exact chains "
                "are byte-reproducible across (K, T) points\n";
    }
    if (log != nullptr) {
        *log << "pipeline: n = " << initial.num_nodes() << ", m = " << initial.num_edges()
             << ", max degree = " << report.input_max_degree << "\n"
             << "pipeline: " << config.replicates << " x " << config.algorithm << " x ";
        if (config.adaptive) {
            *log << "adaptive (<= " << config.max_supersteps << ")";
        } else {
            *log << config.supersteps;
        }
        *log << " supersteps, policy = "
             << to_string(report.resolved_policy) << ", budget = " << report.threads
             << " threads (" << schedule.max_concurrent << " x "
             << schedule.chain_threads << ")\n";
    }
    GESMC_LOG_EVENT(Info, "pipeline", "run_started")
        .str("algorithm", config.algorithm)
        .num("replicates", config.replicates)
        .num("supersteps", target_supersteps)
        .num("nodes", initial.num_nodes())
        .num("edges", initial.num_edges())
        .num("threads", report.threads);

    if (!config.output_dir.empty()) {
        std::filesystem::create_directories(config.output_dir);
    }
    if (config.checkpoint_every > 0) {
        std::filesystem::create_directories(std::filesystem::path(config.output_dir) /
                                            "checkpoints");
    }
    if (!config.resume_from.empty()) {
        bool any_checkpoint = false;
        for (std::uint64_t r = range_begin; r < range_end && !any_checkpoint; ++r) {
            any_checkpoint =
                std::filesystem::exists(checkpoint_path(config.resume_from, config, r));
        }
        if (!any_checkpoint) {
            // A *completed* run cleans its checkpoints/ away by default, and
            // an interrupted run can win its race against the interrupt —
            // so resume-after-drain must tolerate "no checkpoints but every
            // output present" by recomputing (byte-identical anyway:
            // outputs are a pure function of config and seed).  Anything
            // else fails fast: a typo'd directory or a naming mismatch (the
            // checkpoint filenames encode output-prefix and the replicate
            // count's digit width) would silently discard the compute the
            // resume exists to save.
            bool outputs_complete = true;
            for (std::uint64_t r = range_begin; r < range_end && outputs_complete; ++r) {
                PipelineConfig prev = config;
                prev.output_dir = config.resume_from;
                outputs_complete = std::filesystem::exists(replicate_output_path(prev, r));
            }
            GESMC_CHECK(outputs_complete,
                        "resume-from \"" + config.resume_from +
                            "\" has neither matching checkpoints nor a complete "
                            "set of outputs (wrong directory, output-prefix or "
                            "replicate count?)");
            if (log != nullptr) {
                *log << "pipeline: resume-from " << config.resume_from
                     << " holds a completed run (checkpoints cleaned); "
                        "re-running replicates without checkpoints\n";
            }
        } else if (log != nullptr) {
            *log << "pipeline: resuming from " << config.resume_from << "/checkpoints\n";
        }
        GESMC_LOG_EVENT(Info, "pipeline", "resume")
            .str("from", config.resume_from)
            .flag("checkpoints", any_checkpoint);
    }

    report.replicates.resize(config.replicates);
    const std::vector<std::uint32_t> initial_degrees = initial.degrees();

    // Live mixing telemetry: when the run both computes metrics and the
    // registry is on, interpose the analysis-layer observer so each
    // replicate's supersteps feed an autocorrelation tracker whose verdict
    // lands in the analysis.* gauges (and through them the telemetry
    // sampler / watch stream).  Pure decoration — `observer` still sees
    // every callback unchanged.
    std::optional<MixingGaugeObserver> mixing;
    RunObserver* effective_observer = observer;
    if (config.metrics && obs::metrics_enabled()) {
        mixing.emplace(config.replicates, target_supersteps, observer);
        effective_observer = &*mixing;
    }

    executor->run(range_count, request,
                  [&](const ReplicateSlot& slot) {
        // Absolute replicate index: seeds and file names come from it, so a
        // partial-range run reproduces the full run's bytes per replicate.
        const std::uint64_t index = range_begin + slot.index;
        ReplicateReport& out = report.replicates[index];
        out.index = index;
        out.seed = replicate_seed(config.seed, index);
        const obs::TraceSpan replicate_span(
            "replicate", "pipeline",
            {{"replicate", index}, {"width", slot.chain_threads}});
        Timer timer;
        try {
            // Drain/cancel: a replicate that has not started is not worth
            // starting — resume-from (or a resubmit) runs it from scratch.
            if (interrupted()) {
                throw InterruptReplicate{0};
            }
            ChainConfig chain_config;
            chain_config.seed = out.seed;
            chain_config.threads = slot.chain_threads;
            chain_config.shared_pool = slot.shared_pool;
            chain_config.pl = config.pl;
            chain_config.prefetch = config.prefetch;
            chain_config.small_graph_cutoff = config.small_graph_cutoff;
            chain_config.edge_set_backend = config.edge_set_backend;

            // Resume: seed the replicate from the previous run's checkpoint
            // when one exists.  A finished replicate is not re-run — its
            // output is re-emitted from the final snapshot.
            std::unique_ptr<Chain> chain;
            std::optional<EssEstimator> estimator; // adaptive mode only
            EdgeList finished_graph;
            bool finished_from_checkpoint = false;
            if (!config.resume_from.empty()) {
                const std::string prev =
                    checkpoint_path(config.resume_from, config, index);
                if (std::filesystem::exists(prev)) {
                    ChainState state = read_chain_state_file(prev);
                    GESMC_CHECK(state.algorithm == algo,
                                "checkpoint " + prev + " was written by " +
                                    to_string(state.algorithm) +
                                    ", not the configured algorithm");
                    GESMC_CHECK(state.seed == out.seed,
                                "checkpoint " + prev +
                                    " does not match this run's seed derivation "
                                    "(different master seed or replicate count?)");
                    // pl is part of the G-ES trajectory; a resume config
                    // that changes it would mix distributions across
                    // resumed and fresh replicates.
                    GESMC_CHECK((algo != ChainAlgorithm::kSeqGlobalES &&
                                 algo != ChainAlgorithm::kParGlobalES) ||
                                    state.pl == config.pl,
                                "checkpoint " + prev + " was written with pl = " +
                                    std::to_string(state.pl) +
                                    ", not the configured pl");
                    GESMC_CHECK(state.stats.supersteps <= target_supersteps,
                                "checkpoint " + prev +
                                    " is ahead of the configured supersteps");
                    // Adaptive resumes additionally need the estimator
                    // sidecar — the stop verdict is a function of the whole
                    // stream, so a chain state alone cannot continue it.  A
                    // missing/mismatched sidecar falls back to a fresh run
                    // from superstep 0: byte-identical, just recomputed.
                    bool usable = true;
                    if (config.adaptive) {
                        estimator = try_restore_estimator(
                            estimator_path(config.resume_from, config, index),
                            stop_config, state.stats.supersteps);
                        usable = estimator.has_value();
                    }
                    const bool finished =
                        usable &&
                        (state.stats.supersteps == target_supersteps ||
                         (config.adaptive && estimator->stopped() &&
                          *estimator->stop_superstep() == state.stats.supersteps));
                    if (!usable) {
                        // fall through to the fresh path below
                    } else if (finished) {
                        out.resumed_supersteps = state.stats.supersteps;
                        out.stats = state.stats;
                        if (config.checkpoint_every > 0) {
                            // Resuming into a different directory: carry the
                            // finished marker over, or a later resume from
                            // *this* run would re-run the replicate.
                            const std::string here =
                                checkpoint_path(config.output_dir, config, index);
                            if (!std::filesystem::exists(here)) {
                                write_chain_state_file_atomic(here, state);
                                if (config.adaptive) {
                                    write_estimator_file_atomic(
                                        estimator_path(config.output_dir, config, index),
                                        *estimator);
                                }
                                if (effective_observer != nullptr) {
                                    effective_observer->on_checkpoint(index, state,
                                                                      here);
                                }
                            }
                        }
                        finished_graph =
                            EdgeList::from_keys(state.num_nodes, std::move(state.keys));
                        finished_from_checkpoint = true;
                    } else {
                        out.resumed_supersteps = state.stats.supersteps;
                        chain = make_chain(state, chain_config);
                    }
                }
            }
            if (!finished_from_checkpoint) {
                if (chain == nullptr) {
                    chain = make_chain(algo, initial, chain_config);
                    if (config.adaptive) {
                        // Built against the superstep-0 state, *before* any
                        // superstep runs: the stream the verdict sees must
                        // start at the initial graph.
                        estimator.emplace(*chain, stop_config,
                                          adaptive_max_thinning(config.max_supersteps));
                    }
                }
                const auto checkpoint_boundary = [&](bool replicate_done) {
                    if (config.checkpoint_every == 0) return;
                    const std::string path =
                        checkpoint_path(config.output_dir, config, index);
                    const ChainState state = chain->snapshot();
                    const obs::TraceSpan span(
                        "checkpoint", "pipeline",
                        {{"replicate", index},
                         {"superstep", state.stats.supersteps}});
                    write_chain_state_file_atomic(path, state);
                    if (config.adaptive) {
                        // The sidecar lands after its .gesc: a crash window
                        // leaves chain-state-without-sidecar, which resume
                        // treats as "rerun fresh", never as corrupt.
                        write_estimator_file_atomic(
                            estimator_path(config.output_dir, config, index),
                            *estimator);
                    }
                    if (effective_observer != nullptr) {
                        effective_observer->on_checkpoint(index, state, path);
                    }
                    // Drain/cancel: the state just persisted is exactly the
                    // resume point — stop here instead of running to the
                    // target.  The completion boundary never throws (the
                    // replicate is done; finishing beats discarding it).
                    if (interrupted() && !replicate_done) {
                        throw InterruptReplicate{state.stats.supersteps};
                    }
                };
                // Snapshots are exact at superstep boundaries; the final
                // one marks the replicate finished so a resume can skip it.
                if (config.adaptive) {
                    EssFeed feed(&*estimator, effective_observer);
                    run_adaptive_checkpointed(
                        *chain, target_supersteps, config.min_supersteps,
                        config.check_every, config.checkpoint_every, &feed,
                        index, [&] { return estimator->stopped(); },
                        [&] {
                            const std::uint64_t done = chain->stats().supersteps;
                            checkpoint_boundary(done == target_supersteps ||
                                                estimator->stopped());
                        });
                } else {
                    run_checkpointed(*chain, config.supersteps, config.checkpoint_every,
                                     effective_observer, index, [&] {
                        checkpoint_boundary(chain->stats().supersteps ==
                                            config.supersteps);
                    });
                }
                out.stats = chain->stats();
            }
            if (config.adaptive) {
                // The realized budget and mixing verdict ride along in the
                // report (emitted only in adaptive mode: fixed-budget report
                // bytes are unchanged).
                out.has_adaptive = true;
                out.realized_supersteps = out.stats.supersteps;
                out.stop_reason =
                    estimator->stopped() ? "ess-target" : "max-supersteps";
                out.ess = estimator->ess();
                out.act_tau = estimator->act_tau();
                out.non_independent = estimator->non_independent_fraction();
                if (obs::metrics_enabled()) {
                    supersteps_saved_counter().add(config.max_supersteps -
                                                   out.stats.supersteps);
                }
            }

            const EdgeList& result =
                finished_from_checkpoint ? finished_graph : chain->graph();
            if (config.verify) {
                GESMC_CHECK(result.is_simple(), "replicate produced a non-simple graph");
                GESMC_CHECK(result.degrees() == initial_degrees,
                            "replicate changed the degree sequence");
            }
            if (!config.output_dir.empty()) {
                out.output_path = replicate_output_path(config, index);
                if (config.output_format == OutputFormat::kBinary) {
                    write_edge_list_binary_file(out.output_path, result);
                } else {
                    write_edge_list_file(out.output_path, result);
                }
            }
            if (config.metrics) {
                const Adjacency adj(result);
                out.triangles = triangle_count(adj);
                out.global_clustering = global_clustering(adj);
                out.assortativity = degree_assortativity(result);
                out.components = connected_components(adj);
                out.has_metrics = true;
            }
        } catch (const InterruptReplicate& stop) {
            out.error = stop.superstep == 0
                            ? std::string(kInterruptPrefix) +
                                  "not started (a resume-from run starts it fresh)"
                            : std::string(kInterruptPrefix) + "stopped at superstep " +
                                  std::to_string(stop.superstep) +
                                  " (checkpointed; a resume-from run continues it)";
            GESMC_LOG_EVENT(Warn, "pipeline", "replicate_interrupted")
                .num("replicate", index)
                .num("superstep", stop.superstep);
        } catch (const std::exception& e) {
            // Exceptions must not cross the pool boundary (scheduler.hpp);
            // record and let the remaining replicates run.
            out.error = e.what();
            GESMC_LOG_EVENT(Error, "pipeline", "replicate_failed")
                .num("replicate", index)
                .str("error", out.error);
        }
        out.seconds = timer.elapsed_s();
        if (out.error.empty()) {
            GESMC_LOG_EVENT(Debug, "pipeline", "replicate_done")
                .num("replicate", index)
                .real("seconds", out.seconds);
        }
        if (obs::metrics_enabled()) {
            struct PipelineCounters {
                obs::Counter& completed = obs::MetricsRegistry::instance().counter(
                    "pipeline.replicates.completed");
                obs::Counter& failed = obs::MetricsRegistry::instance().counter(
                    "pipeline.replicates.failed");
            };
            static PipelineCounters& counters = *new PipelineCounters();
            (out.error.empty() ? counters.completed : counters.failed).add(1);
        }
        // Streamed completion: the replicate's graph is already on disk
        // here — consumers need not wait for the assembled RunReport.
        if (effective_observer != nullptr) effective_observer->on_replicate_done(out);
    });

    report.chain_name = to_string(algo);
    report.total_seconds = total_timer.elapsed_s();

    // Checkpoints exist to survive interruption; once every replicate
    // finished cleanly they are dead weight (stale .gesc files shadowing
    // future runs into the same directory).  keep-checkpoints opts out —
    // e.g. to seed resume-into-fresh-directory moves later.  A partial
    // range never cleans up: the replicates outside it may still need
    // their checkpoints (the coordinator finalizes once it owns the whole
    // run's outcome).
    if (full_range && config.checkpoint_every > 0 && !config.keep_checkpoints &&
        all_succeeded(report)) {
        const std::uint64_t removed = remove_run_checkpoints(config);
        if (log != nullptr && removed > 0) {
            *log << "pipeline: removed " << removed
                 << " checkpoint file(s) after the successful run (set "
                    "keep-checkpoints = true to retain them)\n";
        }
    }

    if (full_range && !config.report_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(config.report_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent);
        write_json_report_file(config.report_path, report);
    }

    std::uint64_t failed = 0;
    for (const ReplicateReport& r : report.replicates) {
        if (!r.error.empty()) ++failed;
    }
    if (log != nullptr) {
        *log << "pipeline: done in " << fmt_seconds(report.total_seconds) << " ("
             << fmt_si(report.switches_per_second()) << " switches/s";
        if (failed > 0) *log << ", " << failed << " replicate(s) FAILED";
        *log << ")\n";
    }
    GESMC_LOG_EVENT(Info, "pipeline", "run_done")
        .num("replicates", config.replicates)
        .num("failed", failed)
        .real("seconds", report.total_seconds)
        .real("switches_per_second", report.switches_per_second());
    return report;
}

} // namespace gesmc
