#include "pipeline/pipeline.hpp"

#include "core/chain.hpp"
#include "gen/configuration_model.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "gen/havel_hakimi.hpp"
#include "graph/adjacency.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/seeds.hpp"
#include "util/check.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <filesystem>
#include <ostream>
#include <string>

namespace gesmc {

namespace {

EdgeList realize_degree_sequence(const DegreeSequence& seq, const PipelineConfig& config) {
    GESMC_CHECK(seq.degree_sum() % 2 == 0, "degree sum must be even");
    GESMC_CHECK(seq.is_graphical(), "degree sequence is not graphical");
    switch (config.init) {
    case InitMethod::kHavelHakimi:
        return havel_hakimi(seq);
    case InitMethod::kConfigurationModel:
        return configuration_model_repaired(seq, config.seed);
    }
    GESMC_CHECK(false, "unknown init method");
    return {};
}

EdgeList generate_input(const PipelineConfig& config) {
    const auto n = static_cast<node_t>(config.gen_n);
    if (config.generator == "powerlaw") {
        return generate_powerlaw_graph(n, config.gen_gamma, config.seed);
    }
    if (config.generator == "gnp") {
        return generate_gnp(n, gnp_probability_for_edges(n, config.gen_m), config.seed);
    }
    if (config.generator == "grid") {
        return generate_grid(static_cast<node_t>(config.gen_rows),
                             static_cast<node_t>(config.gen_cols));
    }
    if (config.generator == "regular") {
        return generate_regular(n, config.gen_degree);
    }
    throw Error("unknown generator: " + config.generator);
}

/// out/<prefix>_0007.txt — zero-padded so lexicographic = numeric order.
std::string replicate_output_path(const PipelineConfig& config, std::uint64_t index) {
    std::string digits = std::to_string(index);
    const std::string width = std::to_string(config.replicates - 1);
    while (digits.size() < width.size()) digits.insert(digits.begin(), '0');
    const char* ext = config.output_format == OutputFormat::kBinary ? ".gesb" : ".txt";
    return (std::filesystem::path(config.output_dir) /
            (config.output_prefix + "_" + digits + ext))
        .string();
}

} // namespace

EdgeList materialize_input(const PipelineConfig& config) {
    validate(config);
    switch (config.input_kind) {
    case InputKind::kEdgeList:
        return read_any_edge_list_file(config.input_path);
    case InputKind::kDegreeSequence:
        return realize_degree_sequence(read_degree_sequence_file(config.input_path), config);
    case InputKind::kGenerator:
        return generate_input(config);
    }
    GESMC_CHECK(false, "unknown input kind");
    return {};
}

bool all_succeeded(const RunReport& report) {
    for (const ReplicateReport& r : report.replicates) {
        if (!r.error.empty()) return false;
    }
    return true;
}

RunReport run_pipeline(const PipelineConfig& config, std::ostream* log) {
    // materialize_input below runs validate(config); no separate call here.
    const ChainAlgorithm algo = chain_algorithm_from_string(config.algorithm);

    RunReport report;
    report.config = config;

    Timer total_timer;
    const EdgeList initial = materialize_input(config);
    GESMC_CHECK(initial.num_edges() >= 2,
                "input graph needs at least two edges to run a switching chain");
    const DegreeSequence degrees = degree_sequence_of(initial);
    report.input_nodes = initial.num_nodes();
    report.input_edges = initial.num_edges();
    report.input_max_degree = degrees.max_degree();
    report.input_p2 = degrees.p2();
    report.init_seconds = total_timer.elapsed_s();

    ThreadPool pool(config.threads);
    report.threads = pool.num_threads();
    report.resolved_policy =
        resolve_policy(config.policy, config.replicates, pool.num_threads());

    if (log != nullptr && algo == ChainAlgorithm::kNaiveParES) {
        *log << "pipeline: warning: naive-par-es outputs depend on the policy and "
                "thread count (inexact chain); only exact chains are "
                "byte-reproducible across schedules\n";
    }
    if (log != nullptr) {
        *log << "pipeline: n = " << initial.num_nodes() << ", m = " << initial.num_edges()
             << ", max degree = " << report.input_max_degree << "\n"
             << "pipeline: " << config.replicates << " x " << config.algorithm << " x "
             << config.supersteps << " supersteps, policy = "
             << to_string(report.resolved_policy) << ", threads = " << pool.num_threads()
             << "\n";
    }

    if (!config.output_dir.empty()) {
        std::filesystem::create_directories(config.output_dir);
    }

    report.replicates.resize(config.replicates);
    const std::vector<std::uint32_t> initial_degrees = initial.degrees();

    run_replicates(pool, config.replicates, config.policy,
                   [&](const ReplicateSlot& slot) {
        ReplicateReport& out = report.replicates[slot.index];
        out.index = slot.index;
        out.seed = replicate_seed(config.seed, slot.index);
        Timer timer;
        try {
            ChainConfig chain_config;
            chain_config.seed = out.seed;
            chain_config.threads = slot.chain_threads;
            chain_config.shared_pool = slot.shared_pool;
            chain_config.pl = config.pl;
            chain_config.prefetch = config.prefetch;
            chain_config.small_graph_cutoff = config.small_graph_cutoff;

            const auto chain = make_chain(algo, initial, chain_config);
            chain->run_supersteps(config.supersteps);
            out.stats = chain->stats();

            const EdgeList& result = chain->graph();
            if (config.verify) {
                GESMC_CHECK(result.is_simple(), "replicate produced a non-simple graph");
                GESMC_CHECK(result.degrees() == initial_degrees,
                            "replicate changed the degree sequence");
            }
            if (!config.output_dir.empty()) {
                out.output_path = replicate_output_path(config, slot.index);
                if (config.output_format == OutputFormat::kBinary) {
                    write_edge_list_binary_file(out.output_path, result);
                } else {
                    write_edge_list_file(out.output_path, result);
                }
            }
            if (config.metrics) {
                const Adjacency adj(result);
                out.triangles = triangle_count(adj);
                out.global_clustering = global_clustering(adj);
                out.assortativity = degree_assortativity(result);
                out.components = connected_components(adj);
                out.has_metrics = true;
            }
        } catch (const std::exception& e) {
            // Exceptions must not cross the pool boundary (scheduler.hpp);
            // record and let the remaining replicates run.
            out.error = e.what();
        }
        out.seconds = timer.elapsed_s();
    });

    report.chain_name = to_string(algo);
    report.total_seconds = total_timer.elapsed_s();

    if (!config.report_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(config.report_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent);
        write_json_report_file(config.report_path, report);
    }

    if (log != nullptr) {
        std::uint64_t failed = 0;
        for (const ReplicateReport& r : report.replicates) {
            if (!r.error.empty()) ++failed;
        }
        *log << "pipeline: done in " << fmt_seconds(report.total_seconds) << " ("
             << fmt_si(report.switches_per_second()) << " switches/s";
        if (failed > 0) *log << ", " << failed << " replicate(s) FAILED";
        *log << ")\n";
    }
    return report;
}

} // namespace gesmc
