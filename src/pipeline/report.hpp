/// \file report.hpp
/// \brief Machine-readable JSON run reports for batch sampling runs.
///
/// Every pipeline run can emit one JSON document describing the input, the
/// effective configuration, and per-replicate results (timings, ChainStats
/// counters, structural metrics).  Downstream null-model analyses consume
/// the report instead of re-deriving statistics from the output graphs.
/// The writer is a minimal hand-rolled emitter (no external dependency) —
/// the schema is flat enough that correctness is easy to eyeball, and the
/// tests parse the output back with string checks.
#pragma once

#include "core/chain.hpp"
#include "pipeline/config.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gesmc {

/// Writes `s` double-quoted with RFC 8259 escaping to `os` — the one JSON
/// string-escaping routine in the library (JsonWriter and the service's
/// compact frame emitters both call it, so the wire never sees two
/// escaping dialects).
void write_json_escaped(std::ostream& os, const std::string& s);

/// Minimal streaming JSON emitter: tracks nesting and comma placement,
/// escapes strings, prints doubles round-trippably.
class JsonWriter {
public:
    explicit JsonWriter(std::ostream& os) : os_(os) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emits the key of the next member (object context only).
    JsonWriter& key(const std::string& name);

    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
    JsonWriter& value(double v);
    JsonWriter& value(bool v);

    template <typename T>
    JsonWriter& kv(const std::string& name, const T& v) {
        key(name);
        return value(v);
    }

private:
    void comma_and_indent();
    void write_escaped(const std::string& s);

    std::ostream& os_;
    std::vector<bool> first_in_scope_;
    bool pending_key_ = false;
};

/// Outcome of one replicate.
struct ReplicateReport {
    std::uint64_t index = 0;
    std::uint64_t seed = 0;
    double seconds = 0;        ///< chain construction + supersteps + output
    ChainStats stats;
    std::string output_path;   ///< empty when graphs are not written
    std::string error;         ///< empty on success

    /// Supersteps restored from a checkpoint instead of being re-run
    /// (equals the configured supersteps when the replicate was skipped as
    /// already finished); 0 on a fresh run.
    std::uint64_t resumed_supersteps = 0;

    bool has_metrics = false;  ///< structural metrics were computed
    std::uint64_t triangles = 0;
    double global_clustering = 0;
    double assortativity = 0;
    std::uint64_t components = 0;

    // Adaptive mode (supersteps = adaptive, docs/adaptive.md).  Emitted in
    // the JSON only when has_adaptive is set, so fixed-budget reports are
    // byte-identical to pre-adaptive ones.
    bool has_adaptive = false;
    std::uint64_t realized_supersteps = 0; ///< where the replicate stopped
    std::string stop_reason;               ///< "ess-target" | "max-supersteps"
    double ess = 0;                        ///< final ESS estimate
    double act_tau = 0;                    ///< final AR(1) autocorrelation time
    double non_independent = 0;            ///< final G2/BIC non-indep. fraction
};

/// Everything the JSON report records about a run.
struct RunReport {
    PipelineConfig config;      ///< effective configuration
    std::string chain_name;     ///< e.g. "ParGlobalES"
    SchedulePolicy resolved_policy = SchedulePolicy::kAuto;
    unsigned threads = 1;       ///< thread budget P the run resolved against
    unsigned chain_threads = 1; ///< resolved T: threads leased per chain
    unsigned max_concurrent = 1;///< resolved K: replicates computing at once

    /// ConcurrentEdgeSet backend the chains actually ran on (sequential
    /// chains accept but ignore it; still reported for provenance).
    EdgeSetBackend resolved_edge_set_backend = EdgeSetBackend::kLocked;

    std::uint64_t input_nodes = 0;
    std::uint64_t input_edges = 0;
    std::uint32_t input_max_degree = 0;
    double input_p2 = 0;        ///< paper Theorem 3 round-bound statistic

    double init_seconds = 0;    ///< input load + initial graph materialization
    double total_seconds = 0;   ///< whole run wall clock
    std::vector<ReplicateReport> replicates;

    /// Attempted switches per second summed over replicates (throughput).
    [[nodiscard]] double switches_per_second() const noexcept;
};

/// Serializes the report as a self-contained JSON document.
void write_json_report(std::ostream& os, const RunReport& report);
void write_json_report_file(const std::string& path, const RunReport& report);

/// Emits one replicate as a JSON object through `w` — the fragment the full
/// report embeds per replicate, and what the sampling service streams over
/// the wire as each replicate finishes (docs/service_protocol.md).
void write_replicate_json(JsonWriter& w, const ReplicateReport& r);

} // namespace gesmc
