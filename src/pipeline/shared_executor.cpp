#include "pipeline/shared_executor.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace gesmc {

SharedExecutor::SharedExecutor(unsigned threads) : budget_(threads) {
    const unsigned n = budget_.total();
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

SharedExecutor::~SharedExecutor() {
    {
        CheckedLockGuard lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

unsigned SharedExecutor::threads() const noexcept { return budget_.total(); }

ExecutorStats SharedExecutor::stats() const {
    ExecutorStats s;
    s.threads = budget_.total();
    s.leased = budget_.leased();
    s.lease_waiters = budget_.waiting();
    s.active_runs = active_runs_.load(std::memory_order_relaxed);
    s.inflight_replicates = inflight_replicates_.load(std::memory_order_relaxed);
    CheckedLockGuard lock(mutex_);
    for (const auto& queue : active_) s.pending_replicates += queue->pending.size();
    return s;
}

std::shared_ptr<SharedExecutor::RunQueue>
SharedExecutor::pick_task_locked(std::uint64_t& replicate) {
    // One rotation over the active runs: take one replicate from the first
    // run under its own K cap, then move that run to the back of the ring —
    // each active job contributes one task per round, regardless of size.
    const std::size_t rounds = active_.size();
    for (std::size_t i = 0; i < rounds; ++i) {
        std::shared_ptr<RunQueue> queue = active_.front();
        active_.pop_front();
        if (queue->inflight < queue->max_inflight) {
            replicate = queue->pending.front();
            queue->pending.pop_front();
            ++queue->inflight;
            if (!queue->pending.empty()) active_.push_back(queue);
            return queue;
        }
        active_.push_back(queue); // at its cap; skip this round
    }
    return nullptr;
}

void SharedExecutor::worker_loop() {
    for (;;) {
        std::shared_ptr<RunQueue> queue;
        std::uint64_t replicate = 0;
        {
            CheckedUniqueLock lock(mutex_);
            work_cv_.wait(lock, [&] {
                mutex_.assert_held();
                if (stopping_ && active_.empty()) return true;
                queue = pick_task_locked(replicate);
                return queue != nullptr;
            });
            // Drain before exiting: a run() may still be counting down on
            // queued replicates when the destructor fires.
            if (queue == nullptr) return;
        }
        {
            // The admission gate: every replicate computes under a leased
            // sub-pool of its run's width, so the total computing width
            // across all jobs never exceeds the budget.  Blocking here is
            // fine — the lease queue is FIFO, so a wide lease drains the
            // budget and narrow tasks queue behind it without starvation.
            PoolLease lease = budget_.acquire(queue->width);
            inflight_replicates_.fetch_add(1, std::memory_order_relaxed);
            const obs::TraceSpan span("replicate", "executor",
                                      {{"replicate", replicate},
                                       {"width", lease.width()}});
            (*queue->fn)(ReplicateSlot{replicate, lease.width(), lease.pool()});
            inflight_replicates_.fetch_sub(1, std::memory_order_relaxed);
        }
        {
            CheckedLockGuard lock(mutex_);
            --queue->inflight;
            if (--queue->remaining == 0) queue->done_cv.notify_all();
        }
        // Freed budget width and a freed K slot may both unblock peers.
        work_cv_.notify_all();
    }
}

void SharedExecutor::run(std::uint64_t replicates, const ScheduleRequest& request,
                         const std::function<void(const ReplicateSlot&)>& fn) {
    GESMC_CHECK(fn != nullptr, "null replicate body");
    if (replicates == 0) return;
    const ResolvedSchedule schedule = resolve_schedule(request, replicates, threads());

    active_runs_.fetch_add(1, std::memory_order_relaxed);
    struct RunGuard {
        std::atomic<std::uint64_t>& runs;
        ~RunGuard() { runs.fetch_sub(1, std::memory_order_relaxed); }
    } run_guard{active_runs_};

    if (schedule.max_concurrent <= 1) {
        // K = 1 (intra-chain): strict replicate order on the calling runner
        // thread.  Leasing per replicate lets other jobs' tasks interleave
        // between chains; the FIFO budget keeps a whole-budget lease from
        // being starved by their width-1 traffic.
        for (std::uint64_t r = 0; r < replicates; ++r) {
            PoolLease lease = budget_.acquire(schedule.chain_threads);
            inflight_replicates_.fetch_add(1, std::memory_order_relaxed);
            const obs::TraceSpan span("replicate", "executor",
                                      {{"replicate", r}, {"width", lease.width()}});
            fn(ReplicateSlot{r, lease.width(), lease.pool()});
            inflight_replicates_.fetch_sub(1, std::memory_order_relaxed);
        }
        return;
    }

    // K > 1: hand the replicates to the shared worker team.  The queue is
    // heap-shared with every worker: the final decrement may race with
    // run() returning, and a worker must never touch a waiter's dead stack
    // frame (fn itself is safe by reference — run() cannot return until
    // the last fn call completed).
    auto queue = std::make_shared<RunQueue>();
    for (std::uint64_t r = 0; r < replicates; ++r) queue->pending.push_back(r);
    queue->width = schedule.chain_threads;
    queue->max_inflight = schedule.max_concurrent;
    queue->remaining = replicates;
    queue->fn = &fn;
    CheckedUniqueLock lock(mutex_);
    GESMC_CHECK(!stopping_, "executor is shutting down");
    active_.push_back(queue);
    work_cv_.notify_all();
    queue->done_cv.wait(lock, [&queue] { return queue->remaining == 0; });
}

} // namespace gesmc
