/// \file corpus.hpp
/// \brief Corpus runs: one config, many input graphs.
///
/// The paper's experimental methodology (and Milo et al.'s null-model
/// practice) evaluates switching chains over *families* of graphs, not
/// single inputs.  This layer lifts the pipeline accordingly: a corpus
/// config names many inputs — an explicit `input = a.gesb b.gesb` list, an
/// `input-glob = data/*.gesb` pattern, a `corpus-manifest = corpus.txt`
/// file, or a synthetic `corpus = powerlaw n=... count=...` spec backed by
/// src/gen/corpus — and one run:
///
///   1. expands the config into per-graph *shards*: single-graph
///      PipelineConfigs with namespaced output directories
///      (<output-dir>/<graph-name>/) and per-graph master seeds derived by
///      corpus_graph_seed(master, graph_index), so each shard is exactly
///      the single-graph run a user could have written by hand;
///   2. schedules all (graph x replicate) cells over ONE ThreadBudget via
///      SharedExecutor: replicates of different graphs interleave
///      round-robin under the lease model instead of graphs running
///      serially, so a small graph is never starved behind a huge one and
///      the budget never idles at a graph boundary;
///   3. merges the per-graph RunReports into a corpus summary — per-graph
///      rows plus min/median/max aggregates of timings, switch acceptance
///      and proxy metrics (write_corpus_json; schema in docs/corpus.md).
///
/// Determinism composes: a shard's outputs are byte-identical to the
/// equivalent standalone run with the derived seed (the corpus adds no
/// randomness of its own), and checkpoint/resume composes per cell — an
/// interrupted corpus run resumed via `resume-from = <previous output-dir>`
/// re-runs only its unfinished (graph, replicate) cells, byte-identically.
#pragma once

#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace gesmc {

/// One member of an expanded corpus.
struct CorpusInput {
    std::string name; ///< unique id; becomes the shard's output subdirectory
    std::string path; ///< input file on disk (edge list, or degree file)
};

/// A corpus config expanded into its member graphs.  `graphs` order is the
/// seed-index order: explicit inputs as listed, glob matches sorted,
/// manifest entries in file order, synthetic members by count index — all
/// deterministic, so the same config always yields the same (graph, seed)
/// pairs.
struct CorpusPlan {
    PipelineConfig base;             ///< the validated corpus-level config
    std::vector<CorpusInput> graphs; ///< expansion in seed-index order
};

/// Parses corpus-manifest text from a stream: one input per line, blank
/// lines and '#'/'%' comments skipped, optional "path :: name" renaming,
/// relative paths resolved against `base_dir` (may be empty).
/// `manifest_path` is used in error messages only.  Throws Error on an
/// empty manifest or malformed line.  Split out of plan_corpus so the
/// parser is drivable from memory (fuzz/fuzz_config.cpp).
[[nodiscard]] std::vector<CorpusInput>
parse_corpus_manifest(std::istream& is, const std::string& manifest_path,
                      const std::string& base_dir);

/// Expands a corpus config: resolves the input source (splitting an
/// explicit list, matching a glob, reading a manifest, or materializing a
/// synthetic corpus under <output-dir>/corpus-inputs/), derives unique
/// graph names, and validates the result — duplicate graph names are
/// rejected naming both offending paths (two inputs called g.gesb in
/// different directories must not silently share one output directory).
/// Throws Error on a non-corpus config or any expansion problem.
[[nodiscard]] CorpusPlan plan_corpus(const PipelineConfig& config);

/// The single-graph config of corpus member `index`: base with the member's
/// input path, seed = corpus_graph_seed(base.seed, index), output-dir and
/// report namespaced under <output-dir>/<name>/, and — when base names a
/// resume-from directory — resume-from pointed at the member's previous
/// shard directory iff it holds resumable state (a member the interrupted
/// run never started begins fresh).  This is the ground truth the
/// determinism contract is stated against: running this config standalone
/// reproduces the corpus member byte for byte.
[[nodiscard]] PipelineConfig corpus_shard(const CorpusPlan& plan, std::size_t index);

/// Per-graph row of the merged corpus summary.
struct CorpusGraphRow {
    std::string name;
    std::string input_path;
    std::uint64_t seed = 0;  ///< derived per-graph master seed
    std::uint64_t input_nodes = 0;
    std::uint64_t input_edges = 0;
    std::uint64_t replicates = 0;
    std::uint64_t failed = 0;      ///< replicates with a genuine error
    std::uint64_t interrupted = 0; ///< replicates stopped at an interrupt boundary
    double seconds = 0;            ///< the shard's wall clock
    double switches_per_second = 0;
    double acceptance_rate = 0; ///< accepted / attempted over all replicates
    bool has_metrics = false;   ///< means below are populated
    double mean_triangles = 0;
    double mean_clustering = 0;
    double mean_assortativity = 0;
    double mean_components = 0;
    /// Adaptive-budget runs (docs/adaptive.md): realized vs configured
    /// superstep budget, and whether the coordinator's two-phase early-stop
    /// skipped the graph's remaining replicates once the first wave's
    /// z-scores stabilized.  Emitted only when has_adaptive.
    bool has_adaptive = false;
    bool stopped_early = false;
    std::uint64_t configured_supersteps = 0;  ///< the adaptive cap (max-supersteps)
    double mean_realized_supersteps = 0;      ///< over the replicates that ran
    std::string error; ///< first genuine error ("" = none)
};

/// Everything the corpus summary records.
struct CorpusReport {
    PipelineConfig config;          ///< the corpus-level config
    std::vector<CorpusGraphRow> rows; ///< one per graph, in plan order
    double total_seconds = 0;       ///< whole corpus wall clock
};

/// Collapses one shard's RunReport into its summary row.  Also the merge
/// path of the service client: gesmc_submit --corpus rebuilds rows from the
/// shard reports the daemon wrote (service/corpus_client.hpp).
[[nodiscard]] CorpusGraphRow corpus_row_from_report(const CorpusInput& input,
                                                    const RunReport& report);

/// True iff every replicate of every graph finished without error.
[[nodiscard]] bool all_succeeded(const CorpusReport& report);
/// True iff any replicate was stopped by the interrupt flag (drain/signal).
[[nodiscard]] bool was_interrupted(const CorpusReport& report);

/// Streaming callbacks for corpus progress.  Both may fire concurrently
/// from executor/runner threads (different graphs complete in parallel);
/// `graph` is the plan index of the member the event belongs to.
struct CorpusHooks {
    std::function<void(std::size_t graph, const ReplicateReport&)> on_replicate_done;
    std::function<void(std::size_t graph, const RunReport&)> on_graph_done;
};

/// Runs the whole corpus over one thread budget (base.threads).  Every
/// graph's shard runs through run_pipeline with a SharedExecutor injected,
/// so the (graph x replicate) cells of all members interleave round-robin
/// within the budget while each shard keeps its own resolved (K, T)
/// schedule.  `log` (may be null) receives corpus-level progress lines;
/// `interrupt` stops unstarted cells and checkpoints running ones exactly
/// as in a single run.  Writes the merged summary to base.report (if set)
/// and returns it.
CorpusReport run_corpus(const CorpusPlan& plan, std::ostream* log = nullptr,
                        const std::atomic<bool>* interrupt = nullptr,
                        const CorpusHooks& hooks = {});

/// Serializes the merged corpus summary (schema in docs/corpus.md).
void write_corpus_json(std::ostream& os, const CorpusReport& report);
void write_corpus_json_file(const std::string& path, const CorpusReport& report);

/// One row as a single compact JSON line (no newline) — the NDJSON spelling
/// run_corpus streams to <output-dir>/corpus_rows.ndjson as each graph
/// finishes, so a long corpus run is monitorable before the summary exists.
/// Same fields as the summary's per-graph objects.
[[nodiscard]] std::string corpus_row_ndjson(const CorpusGraphRow& row);

} // namespace gesmc
